package acl

import (
	"errors"
	"testing"

	"repro/internal/ast"
)

func sampleRules(n int) []ast.Rule {
	out := make([]ast.Rule, n)
	for i := range out {
		out[i] = ast.Rule{
			ID:     "r",
			Origin: "origin",
			Head:   ast.NewAtom("out", "origin", ast.V("x")),
			Body:   []ast.Atom{{Rel: ast.CStr("in"), Peer: ast.CStr("me"), Args: []ast.Term{ast.V("x")}}},
		}
	}
	return out
}

type installRecorder struct {
	calls []struct {
		Origin, RuleID string
		N              int
	}
}

func (r *installRecorder) install(origin, ruleID string, rules []ast.Rule) {
	r.calls = append(r.calls, struct {
		Origin, RuleID string
		N              int
	}{origin, ruleID, len(rules)})
}

func TestTrustPolicyDecisions(t *testing.T) {
	p := NewTrustPolicy("sigmod")
	if p.DecideDelegation("sigmod") != Accept {
		t.Error("trusted peer must be accepted")
	}
	if p.DecideDelegation("stranger") != Hold {
		t.Error("untrusted peer must be held")
	}
	p.Trust("stranger")
	if p.DecideDelegation("stranger") != Accept {
		t.Error("newly trusted peer must be accepted")
	}
	p.Distrust("stranger")
	if p.DecideDelegation("stranger") != Hold {
		t.Error("distrusted peer must be held again")
	}
	if !p.Trusted("sigmod") || p.Trusted("nobody") {
		t.Error("Trusted() inconsistent")
	}
}

func TestOpenAndClosedPolicies(t *testing.T) {
	if (OpenPolicy{}).DecideDelegation("anyone") != Accept {
		t.Error("open policy must accept")
	}
	if (ClosedPolicy{}).DecideDelegation("anyone") != Reject {
		t.Error("closed policy must reject")
	}
}

func TestControllerAcceptFlow(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(NewTrustPolicy(), rec.install)
	d := c.OnDelegation("julia", "r1", sampleRules(1))
	if d != Hold {
		t.Fatalf("decision = %v, want hold", d)
	}
	if len(rec.calls) != 0 {
		t.Fatal("install called before approval")
	}
	pend := c.Pending()
	if len(pend) != 1 || pend[0].Origin != "julia" {
		t.Fatalf("pending = %v", pend)
	}
	if err := c.Accept(pend[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 1 || rec.calls[0].N != 1 {
		t.Fatalf("install calls = %v", rec.calls)
	}
	if len(c.Pending()) != 0 {
		t.Error("queue not cleared after accept")
	}
	// Maintenance updates from the accepted source auto-apply.
	if d := c.OnDelegation("julia", "r1", sampleRules(2)); d != Accept {
		t.Errorf("maintenance update decision = %v, want accept", d)
	}
	if len(rec.calls) != 2 || rec.calls[1].N != 2 {
		t.Fatalf("install calls = %v", rec.calls)
	}
}

func TestControllerRejectFlow(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(NewTrustPolicy(), rec.install)
	c.OnDelegation("julia", "r1", sampleRules(1))
	pend := c.Pending()
	if err := c.Reject(pend[0].ID); err != nil {
		t.Fatal(err)
	}
	if c.Rejected() != 1 || len(c.Pending()) != 0 {
		t.Errorf("rejected=%d pending=%d", c.Rejected(), len(c.Pending()))
	}
	if len(rec.calls) != 0 {
		t.Error("rejected delegation was installed")
	}
	// A rejected (not accepted) origin stays held on resend.
	if d := c.OnDelegation("julia", "r1", sampleRules(1)); d != Hold {
		t.Errorf("resend decision = %v, want hold", d)
	}
}

func TestControllerWithdrawalAlwaysApplies(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(NewTrustPolicy(), rec.install)
	c.OnDelegation("julia", "r1", sampleRules(1)) // held
	if d := c.OnDelegation("julia", "r1", nil); d != Accept {
		t.Errorf("withdrawal decision = %v, want accept", d)
	}
	if len(c.Pending()) != 0 {
		t.Error("withdrawal must clear the pending entry")
	}
	if len(rec.calls) != 1 || rec.calls[0].N != 0 {
		t.Errorf("withdrawal install = %v", rec.calls)
	}
}

func TestControllerResendRefreshesPending(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(NewTrustPolicy(), rec.install)
	c.OnDelegation("julia", "r1", sampleRules(1))
	c.OnDelegation("julia", "r1", sampleRules(3)) // maintenance resend while pending
	pend := c.Pending()
	if len(pend) != 1 || len(pend[0].Rules) != 3 {
		t.Fatalf("pending = %v, want one entry with 3 rules", pend)
	}
}

func TestControllerUnknownIDs(t *testing.T) {
	c := NewController(nil, func(string, string, []ast.Rule) {})
	if err := c.Accept(42); !errors.Is(err, ErrNoSuchDelegation) {
		t.Errorf("Accept(42) = %v", err)
	}
	if err := c.Reject(42); !errors.Is(err, ErrNoSuchDelegation) {
		t.Errorf("Reject(42) = %v", err)
	}
}

func TestControllerNilPolicyAcceptsAll(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(nil, rec.install)
	if d := c.OnDelegation("anyone", "r1", sampleRules(1)); d != Accept {
		t.Errorf("decision = %v", d)
	}
	if len(rec.calls) != 1 {
		t.Error("install not called")
	}
}

func TestControllerRejectPolicy(t *testing.T) {
	rec := &installRecorder{}
	c := NewController(ClosedPolicy{}, rec.install)
	if d := c.OnDelegation("anyone", "r1", sampleRules(1)); d != Reject {
		t.Errorf("decision = %v", d)
	}
	if c.Rejected() != 1 || len(rec.calls) != 0 {
		t.Error("reject accounting wrong")
	}
}

func TestGrants(t *testing.T) {
	g := NewGrants("alice")
	if !g.Allowed("pictures", "alice", ReadPriv|WritePriv|GrantPriv) {
		t.Error("owner must hold all privileges")
	}
	if g.Allowed("pictures", "bob", ReadPriv) {
		t.Error("no grant yet")
	}
	g.Grant("pictures", "bob", ReadPriv)
	if !g.Allowed("pictures", "bob", ReadPriv) || g.Allowed("pictures", "bob", WritePriv) {
		t.Error("grant scope wrong")
	}
	g.Grant("pictures", "bob", WritePriv)
	if !g.Allowed("pictures", "bob", ReadPriv|WritePriv) {
		t.Error("privileges must accumulate")
	}
	g.Revoke("pictures", "bob", WritePriv)
	if g.Allowed("pictures", "bob", WritePriv) || !g.Allowed("pictures", "bob", ReadPriv) {
		t.Error("revoke scope wrong")
	}
	g.Grant("pictures", "*", ReadPriv)
	if !g.Allowed("pictures", "stranger", ReadPriv) {
		t.Error("wildcard grant ignored")
	}
	if got := g.Grantees("pictures"); len(got) != 2 {
		t.Errorf("grantees = %v", got)
	}
}

func TestPrivilegeString(t *testing.T) {
	if got := (ReadPriv | WritePriv).String(); got != "read|write" {
		t.Errorf("priv string = %q", got)
	}
	if got := Privilege(0).String(); got != "none" {
		t.Errorf("zero priv = %q", got)
	}
}

type fakeProv map[string][]ast.Fact

func (f fakeProv) BaseSupports(fact ast.Fact) []ast.Fact { return f[fact.Key()] }

func TestViewGuardProvenancePolicy(t *testing.T) {
	g := NewGrants("alice")
	base1 := ast.NewFact("pictures", "alice")
	base2 := ast.NewFact("private", "alice")
	view := ast.NewFact("album", "alice")
	prov := fakeProv{view.Key(): {base1, base2}}
	vg := NewViewGuard(g, prov)

	g.Grant("pictures", "bob", ReadPriv)
	if vg.CanRead("bob", view, true) {
		t.Error("bob cannot read: private base fact not granted")
	}
	g.Grant("private", "bob", ReadPriv)
	if !vg.CanRead("bob", view, true) {
		t.Error("bob must read once all base facts are granted")
	}
	// Extensional facts check the relation directly.
	if vg.CanRead("carol", base1, false) {
		t.Error("carol has no grant on pictures")
	}
	if !vg.CanRead("alice", base2, false) {
		t.Error("owner always reads")
	}
}

func TestViewGuardDeclassify(t *testing.T) {
	g := NewGrants("alice")
	view := ast.NewFact("album", "alice")
	secret := ast.NewFact("private", "alice")
	prov := fakeProv{view.Key(): {secret}}
	vg := NewViewGuard(g, prov)

	if vg.CanRead("bob", view, true) {
		t.Error("default provenance policy must deny")
	}
	// "a user may override this policy … effectively declassifying some data"
	vg.Declassify("album")
	g.Grant("album", "bob", ReadPriv)
	if !vg.CanRead("bob", view, true) {
		t.Error("declassified view with a grant must be readable")
	}
	vg.Reclassify("album")
	if vg.CanRead("bob", view, true) {
		t.Error("reclassified view must deny again")
	}
	if vg.Declassified("album") {
		t.Error("Declassified() stale")
	}
}

func TestViewGuardNoProvenanceFallsBack(t *testing.T) {
	g := NewGrants("alice")
	vg := NewViewGuard(g, fakeProv{})
	view := ast.NewFact("album", "alice")
	if vg.CanRead("bob", view, true) {
		t.Error("no grants: deny")
	}
	g.Grant("album", "bob", ReadPriv)
	if !vg.CanRead("bob", view, true) {
		t.Error("fallback to grants on the view itself")
	}
}

func TestDecisionString(t *testing.T) {
	if Accept.String() != "accept" || Hold.String() != "hold" || Reject.String() != "reject" {
		t.Error("Decision.String broken")
	}
}
