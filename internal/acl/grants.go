package acl

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Privilege is a discretionary right on a relation, per the paper's §2
// sketch: "users have the power to grant rights to data they own".
type Privilege uint8

// Privileges. GrantPriv lets the holder grant further rights.
const (
	ReadPriv Privilege = 1 << iota
	WritePriv
	GrantPriv
)

// String renders a privilege set like "read|write".
func (p Privilege) String() string {
	var parts []string
	if p&ReadPriv != 0 {
		parts = append(parts, "read")
	}
	if p&WritePriv != 0 {
		parts = append(parts, "write")
	}
	if p&GrantPriv != 0 {
		parts = append(parts, "grant")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Grants records, per stored relation, which peers hold which privileges.
// The relation's owner implicitly holds all privileges.
type Grants struct {
	owner string

	mu sync.RWMutex
	m  map[string]map[string]Privilege // relation name -> grantee -> privileges
}

// NewGrants creates a grant table owned by owner (the local peer).
func NewGrants(owner string) *Grants {
	return &Grants{owner: owner, m: make(map[string]map[string]Privilege)}
}

// Owner returns the owning peer name.
func (g *Grants) Owner() string { return g.owner }

// Grant gives peer the privileges p on relation rel.
func (g *Grants) Grant(rel, peer string, p Privilege) {
	g.mu.Lock()
	defer g.mu.Unlock()
	byPeer := g.m[rel]
	if byPeer == nil {
		byPeer = make(map[string]Privilege)
		g.m[rel] = byPeer
	}
	byPeer[peer] |= p
}

// Revoke removes the privileges p from peer on relation rel.
func (g *Grants) Revoke(rel, peer string, p Privilege) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if byPeer := g.m[rel]; byPeer != nil {
		byPeer[peer] &^= p
		if byPeer[peer] == 0 {
			delete(byPeer, peer)
		}
	}
}

// Allowed reports whether peer holds privilege p on relation rel. The owner
// is always allowed; the special grantee "*" grants to everyone.
func (g *Grants) Allowed(rel, peer string, p Privilege) bool {
	if peer == g.owner {
		return true
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	byPeer := g.m[rel]
	if byPeer == nil {
		return false
	}
	return byPeer[peer]&p == p || byPeer["*"]&p == p
}

// Readers returns the grantees holding read privilege on rel, sorted. The
// special grantee "*" means everyone; the owner is implicit and not listed.
// This is the slice of the table the static ACL-leak analysis consumes
// (analysis.GrantSource).
func (g *Grants) Readers(rel string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for peer, p := range g.m[rel] {
		if p&ReadPriv != 0 {
			out = append(out, peer)
		}
	}
	sort.Strings(out)
	return out
}

// Grantees returns the peers holding any privilege on rel, sorted.
func (g *Grants) Grantees(rel string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for peer := range g.m[rel] {
		out = append(out, peer)
	}
	sort.Strings(out)
	return out
}

// ProvenanceSource answers "which base facts support this derived fact" —
// satisfied by provenance.Store.
type ProvenanceSource interface {
	BaseSupports(f ast.Fact) []ast.Fact
}

// ViewGuard implements the paper's default policy for derived relations:
// "a default access control policy that is derived automatically from the
// provenance of the base relations" — a peer may read a derived fact iff it
// may read every base fact in the fact's provenance. Relations listed in
// declassified override the default ("a user may override this policy in
// order to grant access to views, effectively 'declassifying' some data"),
// falling back to the grant table for the view relation itself.
type ViewGuard struct {
	grants *Grants
	prov   ProvenanceSource

	mu           sync.RWMutex
	declassified map[string]bool
}

// NewViewGuard builds a guard over a grant table and a provenance source.
func NewViewGuard(grants *Grants, prov ProvenanceSource) *ViewGuard {
	return &ViewGuard{grants: grants, prov: prov, declassified: make(map[string]bool)}
}

// Declassify marks the view relation rel as declassified: reads are checked
// against grants on rel itself rather than against provenance.
func (v *ViewGuard) Declassify(rel string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.declassified[rel] = true
}

// Reclassify restores the provenance-derived default for rel.
func (v *ViewGuard) Reclassify(rel string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.declassified, rel)
}

// Declassified reports whether rel is declassified.
func (v *ViewGuard) Declassified(rel string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.declassified[rel]
}

// CanRead decides whether reader may read fact f. Facts in extensional
// relations are checked directly against the grant table. Facts in derived
// relations follow the provenance-derived policy unless declassified.
func (v *ViewGuard) CanRead(reader string, f ast.Fact, derived bool) bool {
	if !derived {
		return v.grants.Allowed(f.Rel, reader, ReadPriv)
	}
	if v.Declassified(f.Rel) {
		return v.grants.Allowed(f.Rel, reader, ReadPriv)
	}
	supports := v.prov.BaseSupports(f)
	if len(supports) == 0 {
		// No recorded provenance: fall back to grants on the view itself.
		return v.grants.Allowed(f.Rel, reader, ReadPriv)
	}
	for _, s := range supports {
		if !v.grants.Allowed(s.Rel, reader, ReadPriv) {
			return false
		}
	}
	return true
}
