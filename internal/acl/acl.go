// Package acl implements WebdamLog's access-control features as demonstrated
// in the paper:
//
//   - control of delegation (§3, Figure 3): "each delegation sent by an
//     untrusted peer will be pending in a queue until the user explicitly
//     accepts it via the Web interface. By default, all peers except the
//     sigmod peer will be considered untrusted";
//   - the sketched model of §2 "Access control": discretionary grants on
//     stored relations, plus a default policy for derived relations computed
//     from the provenance of their base facts (see the provenance package
//     and ViewGuard).
package acl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
)

// Decision is the outcome of a policy check for an incoming delegation.
type Decision uint8

// Possible decisions.
const (
	// Accept installs the delegation immediately.
	Accept Decision = iota
	// Hold queues the delegation until a user explicitly accepts it.
	Hold
	// Reject drops the delegation.
	Reject
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Hold:
		return "hold"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Policy decides what to do with delegations arriving from a peer.
type Policy interface {
	// DecideDelegation is consulted for each incoming delegation set.
	DecideDelegation(origin string) Decision
}

// TrustPolicy is the demonstration's policy: delegations from trusted peers
// are accepted, everything else is held for explicit approval.
type TrustPolicy struct {
	mu      sync.RWMutex
	trusted map[string]bool
}

// NewTrustPolicy builds a policy trusting exactly the given peers.
func NewTrustPolicy(trusted ...string) *TrustPolicy {
	p := &TrustPolicy{trusted: make(map[string]bool, len(trusted))}
	for _, t := range trusted {
		p.trusted[t] = true
	}
	return p
}

// Trust marks origin as trusted.
func (p *TrustPolicy) Trust(origin string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trusted[origin] = true
}

// Distrust removes origin from the trusted set.
func (p *TrustPolicy) Distrust(origin string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.trusted, origin)
}

// Trusted reports whether origin is trusted.
func (p *TrustPolicy) Trusted(origin string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.trusted[origin]
}

// DecideDelegation implements Policy.
func (p *TrustPolicy) DecideDelegation(origin string) Decision {
	if p.Trusted(origin) {
		return Accept
	}
	return Hold
}

// OpenPolicy accepts everything (the engine-level default when no access
// control is configured).
type OpenPolicy struct{}

// DecideDelegation implements Policy.
func (OpenPolicy) DecideDelegation(string) Decision { return Accept }

// ClosedPolicy rejects all delegations (a peer that computes only for
// itself).
type ClosedPolicy struct{}

// DecideDelegation implements Policy.
func (ClosedPolicy) DecideDelegation(string) Decision { return Reject }

// PendingDelegation is a delegation held in the approval queue.
type PendingDelegation struct {
	ID     int
	Origin string
	RuleID string
	Rules  []ast.Rule
}

// String renders the pending entry the way the demo UI shows it.
func (p PendingDelegation) String() string {
	s := fmt.Sprintf("#%d from %s (rule %s):", p.ID, p.Origin, p.RuleID)
	for _, r := range p.Rules {
		s += "\n  " + r.String() + ";"
	}
	return s
}

// InstallFunc applies an accepted delegation: it replaces the rule set
// delegated by (origin, ruleID) at the local peer.
type InstallFunc func(origin, ruleID string, rules []ast.Rule)

// Controller mediates between incoming delegations and the local program,
// implementing the approval queue of Figure 3.
type Controller struct {
	policy  Policy
	install InstallFunc

	mu       sync.Mutex
	pending  map[string]*PendingDelegation // key = origin+"\x00"+ruleID
	accepted map[string]bool               // keys whose updates now auto-apply
	nextID   int
	rejected int
}

// ErrNoSuchDelegation is returned by Accept/Reject for unknown queue ids.
var ErrNoSuchDelegation = errors.New("acl: no such pending delegation")

// NewController builds a controller with the given policy. install is
// called, possibly from Accept, to apply a delegation to the local program.
func NewController(policy Policy, install InstallFunc) *Controller {
	if policy == nil {
		policy = OpenPolicy{}
	}
	return &Controller{
		policy:   policy,
		install:  install,
		pending:  make(map[string]*PendingDelegation),
		accepted: make(map[string]bool),
	}
}

// Policy returns the controller's policy (e.g. to adjust trust at runtime).
func (c *Controller) Policy() Policy { return c.policy }

// OnDelegation handles an incoming delegation set for (origin, ruleID).
// Empty rule sets are withdrawals and always apply immediately (removing
// rules can only reduce what the local peer computes for others). Updates to
// a delegation that was explicitly accepted before are auto-applied: the
// user approved the rule, and the origin is merely maintaining it.
func (c *Controller) OnDelegation(origin, ruleID string, rules []ast.Rule) Decision {
	key := origin + "\x00" + ruleID
	if len(rules) == 0 {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		c.install(origin, ruleID, nil)
		return Accept
	}
	c.mu.Lock()
	wasAccepted := c.accepted[key]
	c.mu.Unlock()
	d := c.policy.DecideDelegation(origin)
	if wasAccepted && d == Hold {
		d = Accept
	}
	switch d {
	case Accept:
		c.mu.Lock()
		c.accepted[key] = true
		delete(c.pending, key)
		c.mu.Unlock()
		c.install(origin, ruleID, rules)
	case Hold:
		c.mu.Lock()
		if cur, ok := c.pending[key]; ok {
			cur.Rules = rules // origin re-sent: keep the freshest version
		} else {
			c.nextID++
			c.pending[key] = &PendingDelegation{ID: c.nextID, Origin: origin, RuleID: ruleID, Rules: rules}
		}
		c.mu.Unlock()
	case Reject:
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
	}
	return d
}

// Pending lists queued delegations ordered by arrival.
func (c *Controller) Pending() []PendingDelegation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PendingDelegation, 0, len(c.pending))
	for _, p := range c.pending {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Rejected returns the count of delegations dropped by policy.
func (c *Controller) Rejected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}

// Accept approves pending delegation id: the rules are installed and future
// updates from the same (origin, rule) auto-apply.
func (c *Controller) Accept(id int) error {
	c.mu.Lock()
	var key string
	var found *PendingDelegation
	for k, p := range c.pending {
		if p.ID == id {
			key, found = k, p
			break
		}
	}
	if found == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrNoSuchDelegation, id)
	}
	delete(c.pending, key)
	c.accepted[key] = true
	c.mu.Unlock()
	c.install(found.Origin, found.RuleID, found.Rules)
	return nil
}

// Reject drops pending delegation id.
func (c *Controller) Reject(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, p := range c.pending {
		if p.ID == id {
			delete(c.pending, k)
			c.rejected++
			return nil
		}
	}
	return fmt.Errorf("%w: id %d", ErrNoSuchDelegation, id)
}
