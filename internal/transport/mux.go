package transport

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/protocol"
)

// Mux multiplexes many peers' endpoints over shared links instead of
// per-pair attachments. Every local peer attaches as a MuxEndpoint — the
// ordinary Endpoint contract, so the peer layer (sessions, outbox) is
// untouched — and envelopes between two local peers are delivered directly,
// taking only the destination endpoint's lock. Envelopes for peers hosted
// by another mux travel as (from, to)-tagged frames (protocol.MuxFrame)
// over a single carrier connection shared by every stream between the two
// muxes: one bus attachment or one TCP link instead of n×m pairs, which is
// what lets a swarm of 10k–100k in-process peers afford cross-host traffic.
//
// Isolation: a send never holds the mux-wide lock while transmitting, so a
// slow (from, to) pair — an injected-latency FaultyEndpoint, a stalling
// carrier write — delays only its own caller, never sibling streams (the
// same discipline as the TCP transport's per-link write mutex).
type Mux struct {
	node    string
	carrier Endpoint // nil for a purely local mux

	mu     sync.Mutex
	locals map[string]*MuxEndpoint
	routes map[string]string // remote peer -> carrier node hosting it
	stats  Stats
	drops  uint64 // carrier frames with no routable local destination
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewMux creates a mux with no carrier: it connects exactly the peers that
// attach to it, like a Bus with direct delivery.
func NewMux() *Mux {
	return &Mux{
		locals: make(map[string]*MuxEndpoint),
		routes: make(map[string]string),
		done:   make(chan struct{}),
	}
}

// NewMuxOver creates a mux whose non-local traffic rides the given carrier
// endpoint as MuxFrame-tagged envelopes — all streams to peers of another
// mux share that one connection. The mux owns the carrier: a pump goroutine
// drains it continuously, and Close closes it. Remote peers become routable
// with Route.
func NewMuxOver(carrier Endpoint) *Mux {
	m := NewMux()
	m.node = carrier.Name()
	m.carrier = carrier
	m.wg.Add(1)
	go m.pump()
	return m
}

// Node returns the mux's name on the carrier link ("" for a local mux).
func (m *Mux) Node() string { return m.node }

// Route declares that the given remote peer is hosted by the carrier node
// with the given name: frames for it are sent over the carrier, tagged for
// that node's mux to deliver.
func (m *Mux) Route(peerName, node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[peerName] = node
}

// Endpoint attaches (or returns the existing) local endpoint named name,
// with the Bus's crash semantics: a closed endpoint under that name is
// replaced by a fresh one, so a restarted peer re-attaches under its old
// name.
func (m *Mux) Endpoint(name string) *MuxEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.locals[name]; ok {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if !closed {
			return e
		}
	}
	e := &MuxEndpoint{mux: m, name: name, notify: make(chan struct{}, 1)}
	m.locals[name] = e
	return e
}

// Peers returns the names of all attached local endpoints, sorted.
func (m *Mux) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.locals))
	for name := range m.locals {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the mux counters (local and carrier traffic
// combined).
func (m *Mux) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Dropped returns the number of carrier frames that named no attached local
// endpoint (misrouted or raced with a detach).
func (m *Mux) Dropped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drops
}

// local resolves an attached endpoint, nil if the name never attached.
func (m *Mux) local(name string) *MuxEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.locals[name]
}

// routeOf resolves the carrier node hosting a remote peer.
func (m *Mux) routeOf(peerName string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.routes[peerName]
	return node, ok
}

// countSent bumps the sent counter (delivery confirmed or handed to the
// carrier).
func (m *Mux) countSent() {
	m.mu.Lock()
	m.stats.MessagesSent++
	m.mu.Unlock()
}

// Deliver injects an inner envelope into the local endpoint it addresses —
// the receive half of a carrier link. Exported so alternative carriers
// (tests, in-memory bridges) can feed a mux directly.
func (m *Mux) Deliver(env protocol.Envelope) error {
	dst := m.local(env.To)
	if dst == nil {
		m.mu.Lock()
		m.drops++
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPeer, env.To)
	}
	if err := dst.enqueue(env); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.MessagesSent++
	m.mu.Unlock()
	return nil
}

// pump drains the carrier for the mux's lifetime, unwrapping MuxFrames into
// local endpoints. One goroutine per mux, not per peer.
func (m *Mux) pump() {
	defer m.wg.Done()
	for {
		for _, env := range m.carrier.Drain() {
			frame, ok := env.Msg.(protocol.MuxFrame)
			if !ok {
				m.mu.Lock()
				m.drops++
				m.mu.Unlock()
				continue
			}
			m.Deliver(frame.Env) // unroutable frames are counted and dropped
		}
		select {
		case <-m.done:
			return
		case <-m.carrier.Notify():
		}
	}
}

// Close shuts the mux down: the pump stops and the carrier (when owned) is
// closed. Local endpoints close individually via their own Close.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	var err error
	if m.carrier != nil {
		err = m.carrier.Close()
	}
	m.wg.Wait()
	return err
}

// MuxEndpoint is one peer's attachment to a Mux. It implements the full
// Endpoint contract (plus Router and WakeHooker), so peers run over it
// exactly as over a BusEndpoint.
type MuxEndpoint struct {
	mux  *Mux
	name string

	mu       sync.Mutex
	queue    []protocol.Envelope
	seq      uint64
	closed   bool
	notify   chan struct{}
	wakeHook func()
}

var _ Endpoint = (*MuxEndpoint)(nil)
var _ Router = (*MuxEndpoint)(nil)
var _ WakeHooker = (*MuxEndpoint)(nil)

// Name returns the endpoint's peer name.
func (e *MuxEndpoint) Name() string { return e.name }

// CanRoute reports whether the destination is attached locally or routed
// over the carrier (implements Router).
func (e *MuxEndpoint) CanRoute(to string) bool {
	if e.mux.local(to) != nil {
		return true
	}
	_, ok := e.mux.routeOf(to)
	return ok
}

// SetWakeHook implements WakeHooker: fn is invoked after every delivery into
// this endpoint's queue.
func (e *MuxEndpoint) SetWakeHook(fn func()) bool {
	e.mu.Lock()
	e.wakeHook = fn
	e.mu.Unlock()
	return true
}

// Send delivers msg to peer to: directly when to is attached to the same
// mux, as a tagged frame over the shared carrier when it is routed to
// another mux node. No mux-wide lock is held during delivery, so one slow
// destination cannot wedge sends between other pairs.
func (e *MuxEndpoint) Send(ctx context.Context, to string, msg protocol.Payload) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.seq++
	seq := e.seq
	e.mu.Unlock()

	env := protocol.Envelope{From: e.name, To: to, Seq: seq, Msg: msg}
	if dst := e.mux.local(to); dst != nil {
		if err := dst.enqueue(env); err != nil {
			return err
		}
		e.mux.countSent()
		return nil
	}
	node, ok := e.mux.routeOf(to)
	if !ok || e.mux.carrier == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if err := e.mux.carrier.Send(ctx, node, protocol.MuxFrame{Env: env}); err != nil {
		return fmt.Errorf("transport: mux frame to %s via %s: %w", to, node, err)
	}
	e.mux.countSent()
	return nil
}

// enqueue appends an envelope to the receive queue and fires the wakeups.
func (e *MuxEndpoint) enqueue(env protocol.Envelope) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("transport: peer %q is closed", e.name)
	}
	e.queue = append(e.queue, env)
	hook := e.wakeHook
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
	if hook != nil {
		hook()
	}
	return nil
}

// Drain removes and returns all pending envelopes.
func (e *MuxEndpoint) Drain() []protocol.Envelope {
	e.mu.Lock()
	out := e.queue
	e.queue = nil
	e.mu.Unlock()
	if len(out) > 0 {
		e.mux.mu.Lock()
		e.mux.stats.MessagesDelivered += uint64(len(out))
		e.mux.mu.Unlock()
	}
	return out
}

// Pending returns the number of queued envelopes.
func (e *MuxEndpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Notify returns the wakeup channel.
func (e *MuxEndpoint) Notify() <-chan struct{} { return e.notify }

// Close detaches the endpoint; subsequent sends to or from it fail. The mux
// itself (and its other endpoints) keeps running.
func (e *MuxEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.queue = nil
	return nil
}
