package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
)

// TCPEndpoint is a peer's attachment to a TCP network of peers. Every peer
// listens on its own address; outgoing connections are dialed lazily per
// destination and kept open (one FIFO link per peer pair, like the paper's
// deployment). Envelopes are gob-encoded and length-prefixed on the wire.
type TCPEndpoint struct {
	name string
	ln   net.Listener

	mu        sync.Mutex
	directory map[string]string   // peer name -> dial address
	conns     map[string]*tcpConn // open outgoing links
	accepted  map[net.Conn]bool   // open inbound links (closed on shutdown)
	queue     []protocol.Envelope
	seq       uint64
	closed    bool
	notify    chan struct{}
	wakeHook  func()
	done      chan struct{} // closed by Close; releases the ctx watcher
	wg        sync.WaitGroup

	// DialTimeout bounds outgoing connection establishment when the Send
	// context carries no earlier deadline.
	DialTimeout time.Duration
}

var _ Endpoint = (*TCPEndpoint)(nil)
var _ WakeHooker = (*TCPEndpoint)(nil)

type tcpConn struct {
	c net.Conn

	mu sync.Mutex // serializes writers on this link
	w  *bufio.Writer
}

// ListenTCP starts a TCP endpoint for peer name on addr (e.g. ":7001" or
// "127.0.0.1:0"). directory maps remote peer names to their dial addresses;
// it may be extended later with AddPeer as new peers are discovered (the
// paper: "peers may discover new peers").
//
// ctx governs the endpoint's lifetime: cancelling it closes the listener
// and all links, exactly as Close does. Pass context.Background() for an
// endpoint managed only by Close.
func ListenTCP(ctx context.Context, name, addr string, directory map[string]string) (*TCPEndpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		name:        name,
		ln:          ln,
		directory:   make(map[string]string, len(directory)),
		conns:       make(map[string]*tcpConn),
		accepted:    make(map[net.Conn]bool),
		notify:      make(chan struct{}, 1),
		done:        make(chan struct{}),
		DialTimeout: 5 * time.Second,
	}
	for k, v := range directory {
		ep.directory[k] = v
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				ep.Close()
			case <-ep.done:
			}
		}()
	}
	return ep, nil
}

// Name returns the endpoint's peer name.
func (e *TCPEndpoint) Name() string { return e.name }

// Addr returns the bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers (or updates) the dial address for a remote peer.
func (e *TCPEndpoint) AddPeer(name, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.directory[name] != addr {
		e.directory[name] = addr
		if old, ok := e.conns[name]; ok {
			old.c.Close()
			delete(e.conns, name)
		}
	}
}

// CanRoute reports whether the directory has a dial address for the peer
// (implements Router).
func (e *TCPEndpoint) CanRoute(to string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.directory[to]
	return ok
}

// Peers returns the names in the directory.
func (e *TCPEndpoint) Peers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.directory))
	for name := range e.directory {
		out = append(out, name)
	}
	return out
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.accepted[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.accepted, c)
		e.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		env, err := readFrame(r)
		if err != nil {
			return // EOF or peer failure: the link is dropped, sender redials
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		e.queue = append(e.queue, env)
		hook := e.wakeHook
		e.mu.Unlock()
		select {
		case e.notify <- struct{}{}:
		default:
		}
		if hook != nil {
			hook()
		}
	}
}

// SetWakeHook implements WakeHooker: fn is invoked after every envelope read
// off an inbound link.
func (e *TCPEndpoint) SetWakeHook(fn func()) bool {
	e.mu.Lock()
	e.wakeHook = fn
	e.mu.Unlock()
	return true
}

// frame layout: 4-byte little-endian length, then the gob-encoded envelope.
const maxFrame = 256 << 20 // 256 MiB: far beyond any sane batch, guards corruption

func readFrame(r io.Reader) (protocol.Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return protocol.Envelope{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return protocol.Envelope{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return protocol.Envelope{}, err
	}
	return protocol.DecodeEnvelope(body)
}

func writeFrame(w *bufio.Writer, env protocol.Envelope) error {
	body, err := protocol.Encode(env)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func (e *TCPEndpoint) link(ctx context.Context, to string) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if conn, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return conn, nil
	}
	addr, ok := e.directory[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	// Dial outside the endpoint lock: a slow or black-holed destination must
	// not stall sends to other peers (or Drain/Pending) for up to
	// DialTimeout.
	d := net.Dialer{Timeout: e.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s at %s: %w", to, addr, err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if cur, ok := e.conns[to]; ok {
		// Lost a dial race; use the established link.
		e.mu.Unlock()
		c.Close()
		return cur, nil
	}
	conn := &tcpConn{c: c, w: bufio.NewWriter(c)}
	e.conns[to] = conn
	e.mu.Unlock()
	return conn, nil
}

func (e *TCPEndpoint) dropLink(to string, conn *tcpConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.conns[to]; ok && cur == conn {
		cur.c.Close()
		delete(e.conns, to)
	}
}

// Send transmits msg to peer to, dialing or redialing the link as needed.
// One transient link failure is retried with a fresh connection. The
// context bounds both the dial and the write: a deadline becomes the
// connection's write deadline, and cancellation aborts before each attempt.
func (e *TCPEndpoint) Send(ctx context.Context, to string, msg protocol.Payload) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.seq++
	env := protocol.Envelope{From: e.name, To: to, Seq: e.seq, Msg: msg}
	e.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := e.link(ctx, to)
		if err != nil {
			return err
		}
		// Serialize writers on the same link only: concurrent sends to
		// different destinations proceed independently.
		conn.mu.Lock()
		if deadline, ok := ctx.Deadline(); ok {
			conn.c.SetWriteDeadline(deadline)
		} else {
			conn.c.SetWriteDeadline(time.Time{})
		}
		err = writeFrame(conn.w, env)
		conn.mu.Unlock()
		if err == nil {
			return nil
		}
		lastErr = err
		e.dropLink(to, conn)
	}
	return fmt.Errorf("transport: sending to %s: %w", to, lastErr)
}

// Drain removes and returns all pending envelopes.
func (e *TCPEndpoint) Drain() []protocol.Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.queue
	e.queue = nil
	return out
}

// Pending returns the number of queued envelopes.
func (e *TCPEndpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Notify returns the wakeup channel.
func (e *TCPEndpoint) Notify() <-chan struct{} { return e.notify }

// Close shuts down the listener and all links.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	for name, conn := range e.conns {
		conn.c.Close()
		delete(e.conns, name)
	}
	for c := range e.accepted {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
