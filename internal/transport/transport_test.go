package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/protocol"
	"repro/internal/value"
)

func factMsg(n int) protocol.FactsMsg {
	return protocol.FactsMsg{Ops: []protocol.FactDelta{{
		Fact: ast.NewFact("r", "p", value.Int(int64(n))),
	}}}
}

func TestBusDelivery(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	envs := b.Drain()
	if len(envs) != 1 || envs[0].From != "a" || envs[0].To != "b" {
		t.Fatalf("envs = %v", envs)
	}
	if b.Pending() != 0 {
		t.Error("queue not drained")
	}
}

func TestBusFIFOPerSender(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	for i := 0; i < 100; i++ {
		if err := a.Send(context.Background(), "b", factMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	envs := b.Drain()
	if len(envs) != 100 {
		t.Fatalf("delivered %d, want 100", len(envs))
	}
	for i, env := range envs {
		got := env.Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal()
		if got != int64(i) {
			t.Fatalf("order violated at %d: got %d", i, got)
		}
	}
}

func TestBusUnknownPeer(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	err := a.Send(context.Background(), "ghost", factMsg(1))
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestBusClosedEndpoint(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "b", factMsg(1)); err == nil {
		t.Error("send to closed endpoint must fail")
	}
	if err := b.Send(context.Background(), "a", factMsg(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("send from closed endpoint: %v", err)
	}
}

func TestBusNotify(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Notify():
	case <-time.After(time.Second):
		t.Fatal("no wakeup after send")
	}
}

func TestBusStatsAndQuiescence(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	if !bus.Quiescent() {
		t.Error("fresh bus must be quiescent")
	}
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	if bus.Quiescent() {
		t.Error("bus with queued message is not quiescent")
	}
	b.Drain()
	if !bus.Quiescent() {
		t.Error("drained bus must be quiescent")
	}
	st := bus.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBusConcurrentSenders(t *testing.T) {
	bus := NewBus()
	dst := bus.Endpoint("dst")
	const senders, each = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := bus.Endpoint(fmt.Sprintf("s%d", s))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ep.Send(context.Background(), "dst", factMsg(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for {
		envs := dst.Drain()
		if len(envs) == 0 {
			break
		}
		total += len(envs)
	}
	if total != senders*each {
		t.Errorf("delivered %d, want %d", total, senders*each)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(context.Background(), "b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	if err := a.Send(context.Background(), "b", factMsg(42)); err != nil {
		t.Fatal(err)
	}
	env := waitForOne(t, b)
	if env.From != "a" {
		t.Errorf("from = %q", env.From)
	}
	msg, ok := env.Msg.(protocol.FactsMsg)
	if !ok || msg.Ops[0].Fact.Args[0].IntVal() != 42 {
		t.Errorf("payload = %#v", env.Msg)
	}

	// And the reverse direction over a separate link.
	if err := b.Send(context.Background(), "a", factMsg(7)); err != nil {
		t.Fatal(err)
	}
	env = waitForOne(t, a)
	if env.From != "b" || env.Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal() != 7 {
		t.Errorf("reverse payload = %#v", env)
	}
}

func waitForOne(t *testing.T, ep Endpoint) protocol.Envelope {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if envs := ep.Drain(); len(envs) > 0 {
			return envs[0]
		}
		select {
		case <-ep.Notify():
		case <-deadline:
			t.Fatal("timed out waiting for delivery")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTCPOrderPreserved(t *testing.T) {
	a, err := ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(context.Background(), "b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), "b", factMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []protocol.Envelope
	deadline := time.After(5 * time.Second)
	for len(got) < n {
		got = append(got, b.Drain()...)
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", len(got), n)
		case <-time.After(time.Millisecond):
		}
	}
	for i, env := range got {
		if env.Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal() != int64(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), "ghost", factMsg(1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := ListenTCP(context.Background(), "b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	a.AddPeer("b", addr)
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	waitForOne(t, b1)
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart b on the same address; a's cached link is dead and must be
	// redialed. A write into the dead socket can succeed before the RST
	// arrives (plain TCP gives at-most-once delivery per send), so the
	// sender retries — exactly what the peer layer's per-stage maintenance
	// does for delegations and updates.
	b2, err := ListenTCP(context.Background(), "b", addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	deadline := time.After(10 * time.Second)
	for {
		_ = a.Send(context.Background(), "b", factMsg(2)) // may land in the dead socket once
		if envs := b2.Drain(); len(envs) > 0 {
			if envs[0].Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal() != 2 {
				t.Errorf("payload after restart = %#v", envs[0].Msg)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("no delivery after restart despite retries")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "b", factMsg(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEnvelopeCodec(t *testing.T) {
	env := protocol.Envelope{From: "a", To: "b", Seq: 9, Msg: protocol.DelegationMsg{
		RuleID: "r1",
		Rules:  []ast.Rule{{ID: "x", Origin: "a", Head: ast.NewAtom("m", "b", ast.V("v"))}},
	}}
	b, err := protocol.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := protocol.DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.Seq != 9 {
		t.Errorf("metadata = %+v", got)
	}
	dm, ok := got.Msg.(protocol.DelegationMsg)
	if !ok || dm.RuleID != "r1" || len(dm.Rules) != 1 || !dm.Rules[0].Equal(env.Msg.(protocol.DelegationMsg).Rules[0]) {
		t.Errorf("payload = %#v", got.Msg)
	}
}

func TestDecodeCorruptEnvelope(t *testing.T) {
	if _, err := protocol.DecodeEnvelope([]byte("not gob")); err == nil {
		t.Error("corrupt envelope decoded")
	}
}
