package transport

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/protocol"
)

// faultSchedule runs a fixed send sequence through a FaultyEndpoint with
// the given config and returns an observable transcript of the fault
// schedule: the per-send error pattern, the injected-fault counters, and
// the multiset of payloads actually delivered (sorted — reorder holds are
// released by timers whose relative order is not part of the schedule).
func faultSchedule(t *testing.T, cfg FaultConfig, sends int) string {
	t.Helper()
	bus := NewBus()
	rcv := bus.Endpoint("rcv")
	f := Faulty(bus.Endpoint("snd"), cfg)
	ctx := context.Background()
	errs := make([]byte, sends)
	for i := 0; i < sends; i++ {
		err := f.Send(ctx, "rcv", protocol.ControlMsg{Token: uint64(i)})
		if err != nil {
			errs[i] = 'x'
		} else {
			errs[i] = '.'
		}
	}
	time.Sleep(4 * reorderHold) // let every held (reordered) message release
	var tokens []uint64
	for _, env := range rcv.Drain() {
		tokens = append(tokens, env.Msg.(protocol.ControlMsg).Token)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	return fmt.Sprintf("errs=%s stats=%+v delivered=%v", errs, f.Stats(), tokens)
}

// TestFaultyEndpointDeterministicSchedule: the same seed must produce the
// identical fault schedule — which verdicts were rolled, which sends
// failed, what was delivered. This determinism is what makes the
// convergence suite and experiments p7/p8 reproducible. A different seed
// must produce a different schedule.
func TestFaultyEndpointDeterministicSchedule(t *testing.T) {
	cfg := FaultConfig{Seed: 20130623, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Fail: 0.1}
	const sends = 400
	first := faultSchedule(t, cfg, sends)
	second := faultSchedule(t, cfg, sends)
	if first != second {
		t.Fatalf("same seed produced different fault schedules:\n run 1: %s\n run 2: %s", first, second)
	}
	other := cfg
	other.Seed = cfg.Seed + 1
	if got := faultSchedule(t, other, sends); got == first {
		t.Fatalf("different seeds produced the identical %d-send schedule: %s", sends, got)
	}
}
