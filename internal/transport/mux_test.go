package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestMuxLocalDelivery(t *testing.T) {
	m := NewMux()
	a := m.Endpoint("a")
	b := m.Endpoint("b")
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	envs := b.Drain()
	if len(envs) != 1 || envs[0].From != "a" || envs[0].To != "b" {
		t.Fatalf("envs = %v", envs)
	}
	st := m.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMuxFIFOPerSender(t *testing.T) {
	m := NewMux()
	a := m.Endpoint("a")
	b := m.Endpoint("b")
	for i := 0; i < 100; i++ {
		if err := a.Send(context.Background(), "b", factMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	envs := b.Drain()
	if len(envs) != 100 {
		t.Fatalf("delivered %d, want 100", len(envs))
	}
	for i, env := range envs {
		got := env.Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal()
		if got != int64(i) {
			t.Fatalf("order violated at %d: got %d", i, got)
		}
	}
}

func TestMuxUnknownPeer(t *testing.T) {
	m := NewMux()
	a := m.Endpoint("a")
	err := a.Send(context.Background(), "nope", factMsg(1))
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	if a.CanRoute("nope") {
		t.Error("CanRoute(nope) = true")
	}
	if !a.CanRoute("a") {
		t.Error("CanRoute(a) = false")
	}
}

func TestMuxClosedEndpointReplaced(t *testing.T) {
	m := NewMux()
	a := m.Endpoint("a")
	b := m.Endpoint("b")
	b.Close()
	if err := a.Send(context.Background(), "b", factMsg(1)); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	// Bus crash semantics: re-attaching under the old name replaces the
	// closed endpoint and receives subsequent traffic.
	b2 := m.Endpoint("b")
	if b2 == b {
		t.Fatal("closed endpoint was not replaced")
	}
	if err := a.Send(context.Background(), "b", factMsg(2)); err != nil {
		t.Fatal(err)
	}
	if got := len(b2.Drain()); got != 1 {
		t.Fatalf("drained %d, want 1", got)
	}
}

// TestMuxCarrier runs two muxes over a shared bus carrier: every stream
// between them rides one (from,to)-tagged frame link.
func TestMuxCarrier(t *testing.T) {
	bus := NewBus()
	m1 := NewMuxOver(bus.Endpoint("node1"))
	m2 := NewMuxOver(bus.Endpoint("node2"))
	defer m1.Close()
	defer m2.Close()

	a := m1.Endpoint("a")
	b := m2.Endpoint("b")
	m1.Route("b", "node2")
	m2.Route("a", "node1")

	if !a.CanRoute("b") {
		t.Fatal("a cannot route to b after Route")
	}
	for i := 0; i < 50; i++ {
		if err := a.Send(context.Background(), "b", factMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	envs := drainWithin(t, b, 50, 2*time.Second)
	for i, env := range envs {
		if env.From != "a" || env.To != "b" {
			t.Fatalf("env %d addressed %s->%s", i, env.From, env.To)
		}
		got := env.Msg.(protocol.FactsMsg).Ops[0].Fact.Args[0].IntVal()
		if got != int64(i) {
			t.Fatalf("order violated at %d: got %d", i, got)
		}
	}
	// Reply path.
	if err := b.Send(context.Background(), "a", factMsg(99)); err != nil {
		t.Fatal(err)
	}
	if got := drainWithin(t, a, 1, 2*time.Second); got[0].From != "b" {
		t.Fatalf("reply from %s", got[0].From)
	}
}

func drainWithin(t *testing.T, e Endpoint, n int, timeout time.Duration) []protocol.Envelope {
	t.Helper()
	deadline := time.After(timeout)
	var envs []protocol.Envelope
	for len(envs) < n {
		envs = append(envs, e.Drain()...)
		if len(envs) >= n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("drained %d of %d envelopes before timeout", len(envs), n)
		case <-e.Notify():
		case <-time.After(time.Millisecond):
		}
	}
	if len(envs) != n {
		t.Fatalf("drained %d, want %d", len(envs), n)
	}
	return envs
}

// TestMuxPerStreamIsolation pins the isolation property the mux shares with
// the TCP transport's per-link write mutex: one slow (from,to) pair — here a
// FaultyEndpoint with injected latency between two muxes — delays only its
// own sender, never a sibling stream on the same mux. This mirrors the PR 3
// regression (a global write lock serializing all destinations).
func TestMuxPerStreamIsolation(t *testing.T) {
	bus := NewBus()
	slowCarrier := Faulty(bus.Endpoint("node1"), FaultConfig{Latency: 150 * time.Millisecond})
	m1 := NewMuxOver(slowCarrier)
	m2 := NewMuxOver(bus.Endpoint("node2"))
	defer m1.Close()
	defer m2.Close()

	slow := m1.Endpoint("slow")
	fast := m1.Endpoint("fast")
	sib := m1.Endpoint("sib")
	m1.Route("remote", "node2")
	m2.Endpoint("remote")
	m2.Route("slow", "node1")

	// The slow sender blocks in its carrier's injected latency...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slow.Send(context.Background(), "remote", factMsg(1))
	}()

	// ...while a local sibling stream on the same mux completes immediately.
	start := time.Now()
	if err := fast.Send(context.Background(), "sib", factMsg(2)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("sibling stream waited %v behind a slow pair", elapsed)
	}
	if got := len(sib.Drain()); got != 1 {
		t.Fatalf("sibling drained %d, want 1", got)
	}
	wg.Wait()
}

// TestMuxWakeHook checks WakeHooker fires on both local and carrier paths.
func TestMuxWakeHook(t *testing.T) {
	bus := NewBus()
	m1 := NewMuxOver(bus.Endpoint("node1"))
	m2 := NewMuxOver(bus.Endpoint("node2"))
	defer m1.Close()
	defer m2.Close()
	a := m1.Endpoint("a")
	b := m2.Endpoint("b")
	m1.Route("b", "node2")

	woke := make(chan struct{}, 4)
	if !b.SetWakeHook(func() { woke <- struct{}{} }) {
		t.Fatal("SetWakeHook refused")
	}
	if err := a.Send(context.Background(), "b", factMsg(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("carrier-path delivery did not fire wake hook")
	}
	local := m2.Endpoint("c")
	if err := local.Send(context.Background(), "b", factMsg(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("local delivery did not fire wake hook")
	}
}
