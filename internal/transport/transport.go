// Package transport moves protocol envelopes between peers. Two
// implementations are provided: an in-process Bus with deterministic FIFO
// queues (used by tests, benchmarks and single-process deployments such as
// the demo's "run everything on one laptop" mode), and a TCP transport
// (tcp.go) for genuinely distributed peers, mirroring the paper's deployment
// of peers on two laptops and the Webdam cloud.
package transport

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/errdefs"
	"repro/internal/protocol"
)

// ErrUnknownPeer is returned when sending to a peer the transport cannot
// route to. It aliases the public taxonomy entry, so
// errors.Is(err, webdamlog.ErrUnknownPeer) works across layers.
var ErrUnknownPeer = errdefs.ErrUnknownPeer

// ErrClosed is returned after an endpoint has been closed.
var ErrClosed = errdefs.ErrClosed

// Endpoint is one peer's attachment to a transport.
//
// Send enqueues a payload for a destination peer; the context bounds
// connection establishment and the write itself (the in-process bus ignores
// it beyond an up-front cancellation check). Drain removes and returns all
// envelopes received so far (in per-sender FIFO order). Notify returns a
// channel that receives a token whenever new envelopes become available
// (edge-triggered with one-slot coalescing, so receivers never miss a wakeup
// but may see spurious ones).
type Endpoint interface {
	Name() string
	Send(ctx context.Context, to string, msg protocol.Payload) error
	Drain() []protocol.Envelope
	Pending() int
	Notify() <-chan struct{}
	Close() error
}

// WakeHooker is optionally implemented by endpoints that can synchronously
// report envelope arrival to an external scheduler. SetWakeHook installs fn
// (replacing any previous hook) to be called — outside the endpoint's locks,
// possibly from the sender's goroutine — every time envelopes are appended
// to the receive queue; it reports whether arrivals will actually invoke the
// hook (a wrapper whose inner endpoint cannot hook returns false, and the
// caller must fall back to polling). The peer network's wake-queue scheduler
// uses this to discover work in O(active peers) instead of scanning every
// peer every round.
type WakeHooker interface {
	SetWakeHook(fn func()) bool
}

// Router is optionally implemented by endpoints that can cheaply answer
// whether a destination is currently routable (attached to the bus, present
// in the TCP dial directory). The peer layer uses it to fail API-level
// updates to unknown peers synchronously instead of queueing them in the
// outbox forever. Endpoints without it are assumed to route everything.
type Router interface {
	CanRoute(to string) bool
}

// Stats aggregates transport counters for benchmarks and monitoring.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
}

// Bus is an in-process transport connecting any number of endpoints by
// name. It is safe for concurrent use and delivers in per-sender FIFO
// order. Delivery is synchronous: Send appends directly to the receiver's
// queue, so after Send returns the message is visible to the receiver's
// next Drain — which makes multi-peer unit tests deterministic.
type Bus struct {
	mu    sync.Mutex
	nodes map[string]*BusEndpoint
	stats Stats
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{nodes: make(map[string]*BusEndpoint)}
}

// Endpoint attaches (or returns the existing) endpoint named name. A
// *closed* endpoint under that name models a crashed peer: it is replaced
// by a fresh one, so a restarted peer can re-attach under its old name (the
// way a restarted TCP peer re-listens on its address). Senders resolve the
// destination on every Send, so they reach the new incarnation as soon as
// it attaches.
func (b *Bus) Endpoint(name string) *BusEndpoint {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.nodes[name]; ok {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if !closed {
			return n
		}
	}
	n := &BusEndpoint{bus: b, name: name, notify: make(chan struct{}, 1)}
	b.nodes[name] = n
	return n
}

// Peers returns the names of all attached endpoints, sorted.
func (b *Bus) Peers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.nodes))
	for name := range b.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Quiescent reports whether no endpoint has undelivered messages.
func (b *Bus) Quiescent() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, n := range b.nodes {
		n.mu.Lock()
		pending := len(n.queue)
		n.mu.Unlock()
		if pending > 0 {
			return false
		}
	}
	return true
}

// BusEndpoint is an endpoint attached to a Bus.
type BusEndpoint struct {
	bus  *Bus
	name string

	mu       sync.Mutex
	queue    []protocol.Envelope
	seq      uint64
	closed   bool
	notify   chan struct{}
	wakeHook func()
}

var _ Endpoint = (*BusEndpoint)(nil)
var _ WakeHooker = (*BusEndpoint)(nil)

// SetWakeHook implements WakeHooker: fn is invoked after every delivery into
// this endpoint's queue.
func (n *BusEndpoint) SetWakeHook(fn func()) bool {
	n.mu.Lock()
	n.wakeHook = fn
	n.mu.Unlock()
	return true
}

// Name returns the endpoint's peer name.
func (n *BusEndpoint) Name() string { return n.name }

// CanRoute reports whether a peer with the given name has attached to the
// bus (implements Router).
func (n *BusEndpoint) CanRoute(to string) bool {
	n.bus.mu.Lock()
	defer n.bus.mu.Unlock()
	_, ok := n.bus.nodes[to]
	return ok
}

// Send enqueues msg for peer to. It fails if to has never attached to the
// bus, so misrouted names surface as errors rather than silent drops.
// Delivery is synchronous, so ctx only gates entry.
func (n *BusEndpoint) Send(ctx context.Context, to string, msg protocol.Payload) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.seq++
	seq := n.seq
	n.mu.Unlock()

	n.bus.mu.Lock()
	dst, ok := n.bus.nodes[to]
	if ok {
		n.bus.stats.MessagesSent++
	}
	n.bus.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}

	env := protocol.Envelope{From: n.name, To: to, Seq: seq, Msg: msg}
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return fmt.Errorf("transport: peer %q is closed", to)
	}
	dst.queue = append(dst.queue, env)
	hook := dst.wakeHook
	dst.mu.Unlock()
	select {
	case dst.notify <- struct{}{}:
	default:
	}
	if hook != nil {
		hook()
	}
	return nil
}

// Drain removes and returns all pending envelopes.
func (n *BusEndpoint) Drain() []protocol.Envelope {
	n.mu.Lock()
	out := n.queue
	n.queue = nil
	n.mu.Unlock()
	if len(out) > 0 {
		n.bus.mu.Lock()
		n.bus.stats.MessagesDelivered += uint64(len(out))
		n.bus.mu.Unlock()
	}
	return out
}

// Pending returns the number of queued envelopes.
func (n *BusEndpoint) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Notify returns the wakeup channel.
func (n *BusEndpoint) Notify() <-chan struct{} { return n.notify }

// Close detaches the endpoint; subsequent sends to or from it fail.
func (n *BusEndpoint) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.queue = nil
	return nil
}
