package transport

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/protocol"
)

// ErrInjectedFault is the transient error a FaultyEndpoint's Send returns
// when a failure is injected (probabilistic Fail or an explicit SetDown).
var ErrInjectedFault = errors.New("transport: injected fault")

// FaultConfig configures the faults a FaultyEndpoint injects into its Send
// path. Probabilities are in [0, 1] and evaluated per message with a seeded
// generator, so a fault schedule is reproducible.
type FaultConfig struct {
	// Seed initializes the fault schedule (0 behaves like 1).
	Seed int64
	// Drop silently loses the message: Send reports success, nothing is
	// delivered — the failure mode acks and retransmission exist for.
	Drop float64
	// Dup delivers the message twice, exercising receiver-side dedup.
	Dup float64
	// Reorder holds the message back and releases it after a subsequent
	// send (or after at most reorderHold), swapping delivery order.
	Reorder float64
	// Fail makes Send return ErrInjectedFault, exercising sender-side
	// retry/backoff.
	Fail float64
	// Latency blocks each delivering Send for the given duration — a
	// simulated link RTT. Stage commit latency must not inherit it
	// (experiment P7).
	Latency time.Duration
}

// reorderHold bounds how long a reordered message waits for a successor
// before being released anyway.
const reorderHold = 5 * time.Millisecond

type heldMsg struct {
	id  uint64
	to  string
	msg protocol.Payload
}

// FaultStats counts the faults actually injected.
type FaultStats struct {
	Sent       uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Failed     uint64
}

// FaultyEndpoint wraps an Endpoint and injects drop / duplicate / reorder /
// failure / latency faults into its Send path (receive-side behavior is
// untouched — wrap both endpoints of a pair to disturb both directions).
// It is the harness for the convergence-under-faults tests and experiment
// P7: with the outbox's at-least-once delivery and the receiver's dedup, a
// network over FaultyEndpoints must converge to exactly the contents of a
// fault-free run.
type FaultyEndpoint struct {
	inner Endpoint

	mu     sync.Mutex
	rng    *rand.Rand
	cfg    FaultConfig
	held   []heldMsg
	heldID uint64
	down   bool
	stats  FaultStats
}

var _ Endpoint = (*FaultyEndpoint)(nil)

// Faulty wraps inner with the given fault schedule.
func Faulty(inner Endpoint, cfg FaultConfig) *FaultyEndpoint {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyEndpoint{inner: inner, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Name returns the wrapped endpoint's peer name.
func (f *FaultyEndpoint) Name() string { return f.inner.Name() }

// SetDown toggles a hard disconnect: while down, every Send fails with
// ErrInjectedFault.
func (f *FaultyEndpoint) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyEndpoint) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SetWakeHook forwards the scheduler hook to the wrapped endpoint, which is
// where arrivals actually land (Drain delegates). It reports false when the
// inner endpoint cannot hook, telling the caller to poll instead.
func (f *FaultyEndpoint) SetWakeHook(fn func()) bool {
	if h, ok := f.inner.(WakeHooker); ok {
		return h.SetWakeHook(fn)
	}
	return false
}

// CanRoute delegates to the wrapped endpoint's Router, if any.
func (f *FaultyEndpoint) CanRoute(to string) bool {
	if r, ok := f.inner.(Router); ok {
		return r.CanRoute(to)
	}
	return true
}

// Send applies the fault schedule, then delivers through the wrapped
// endpoint.
func (f *FaultyEndpoint) Send(ctx context.Context, to string, msg protocol.Payload) error {
	f.mu.Lock()
	if f.down {
		f.stats.Failed++
		f.mu.Unlock()
		return ErrInjectedFault
	}
	roll := f.rng.Float64()
	cfg := f.cfg
	var release *heldMsg
	verdict := ""
	switch {
	case roll < cfg.Fail:
		verdict = "fail"
		f.stats.Failed++
	case roll < cfg.Fail+cfg.Drop:
		verdict = "drop"
		f.stats.Dropped++
	case roll < cfg.Fail+cfg.Drop+cfg.Dup:
		verdict = "dup"
		f.stats.Duplicated++
	case roll < cfg.Fail+cfg.Drop+cfg.Dup+cfg.Reorder:
		verdict = "hold"
		f.stats.Reordered++
	}
	if verdict == "hold" {
		f.heldID++
		held := heldMsg{id: f.heldID, to: to, msg: msg}
		f.held = append(f.held, held)
		f.mu.Unlock()
		// Fallback: release even if no successor ever comes.
		time.AfterFunc(reorderHold, func() { f.release(held.id) })
		return nil
	}
	if verdict == "fail" {
		f.mu.Unlock()
		return ErrInjectedFault
	}
	if verdict == "drop" {
		f.mu.Unlock()
		return nil
	}
	// This message will actually be delivered: release a held predecessor
	// after it (the reordering). A held message was already reported as
	// sent, so it must go out even if this delivery fails.
	if len(f.held) > 0 {
		release = &f.held[0]
		f.held = f.held[1:]
	}
	f.stats.Sent++
	f.mu.Unlock()

	if cfg.Latency > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cfg.Latency):
		}
	}
	err := f.inner.Send(ctx, to, msg)
	if err == nil && verdict == "dup" {
		err = f.inner.Send(ctx, to, msg)
	}
	if release != nil {
		if rerr := f.inner.Send(ctx, release.to, release.msg); err == nil {
			err = rerr
		}
	}
	return err
}

// release delivers a reordered message that never saw a successor.
func (f *FaultyEndpoint) release(id uint64) {
	f.mu.Lock()
	for i := range f.held {
		if f.held[i].id == id {
			h := f.held[i]
			f.held = append(f.held[:i], f.held[i+1:]...)
			f.mu.Unlock()
			f.inner.Send(context.Background(), h.to, h.msg)
			return
		}
	}
	f.mu.Unlock()
}

// Drain removes and returns all pending envelopes (delegated).
func (f *FaultyEndpoint) Drain() []protocol.Envelope { return f.inner.Drain() }

// Pending returns the number of queued envelopes (delegated).
func (f *FaultyEndpoint) Pending() int { return f.inner.Pending() }

// Notify returns the wakeup channel (delegated).
func (f *FaultyEndpoint) Notify() <-chan struct{} { return f.inner.Notify() }

// Close closes the wrapped endpoint.
func (f *FaultyEndpoint) Close() error { return f.inner.Close() }
