// Package email simulates the e-mail system behind the paper's e-mail
// wrapper. Wepic attendees can choose "email" as their preferred transfer
// protocol; the wrapper then turns facts inserted into its mail relation
// into messages delivered to the recipient's mailbox on this server.
package email

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNoSuchMailbox is returned for reads of unknown mailboxes.
var ErrNoSuchMailbox = errors.New("email: no such mailbox")

// Message is one delivered e-mail.
type Message struct {
	ID         int64
	From       string
	To         string
	Subject    string
	Body       string
	Attachment []byte
}

// Server is the simulated mail server. All methods are safe for concurrent
// use. Mailboxes are created on first delivery or by CreateMailbox.
type Server struct {
	mu    sync.RWMutex
	boxes map[string][]Message
	seq   int64
	// seen deduplicates (from,to,subject,body) so wrapper re-pushes are
	// idempotent.
	seen map[string]int64
}

// NewServer creates an empty mail server.
func NewServer() *Server {
	return &Server{boxes: make(map[string][]Message), seen: make(map[string]int64)}
}

// CreateMailbox provisions an empty mailbox (optional; deliveries create
// mailboxes on demand).
func (s *Server) CreateMailbox(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.boxes[user]; !ok {
		s.boxes[user] = nil
	}
}

// Send delivers a message to the recipient's mailbox and returns its id.
// Resending an identical message returns the original id without a second
// delivery.
func (s *Server) Send(from, to, subject, body string, attachment []byte) (int64, error) {
	if to == "" {
		return 0, errors.New("email: empty recipient")
	}
	key := fmt.Sprintf("%s\x00%s\x00%s\x00%s", from, to, subject, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, dup := s.seen[key]; dup {
		return id, nil
	}
	s.seq++
	att := make([]byte, len(attachment))
	copy(att, attachment)
	msg := Message{ID: s.seq, From: from, To: to, Subject: subject, Body: body, Attachment: att}
	s.boxes[to] = append(s.boxes[to], msg)
	s.seen[key] = msg.ID
	return msg.ID, nil
}

// Inbox returns all messages delivered to user, oldest first.
func (s *Server) Inbox(user string) ([]Message, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	box, ok := s.boxes[user]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchMailbox, user)
	}
	out := make([]Message, len(box))
	copy(out, box)
	return out, nil
}

// Mailboxes returns all mailbox names, sorted.
func (s *Server) Mailboxes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.boxes))
	for u := range s.boxes {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of messages in user's mailbox (0 if absent).
func (s *Server) Count(user string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.boxes[user])
}
