package email

import (
	"errors"
	"testing"
)

func TestSendAndInbox(t *testing.T) {
	s := NewServer()
	id, err := s.Send("jules", "emilien", "hello", "body", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("message id must be non-zero")
	}
	msgs, err := s.Inbox("emilien")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("inbox = %v (%v)", msgs, err)
	}
	m := msgs[0]
	if m.From != "jules" || m.Subject != "hello" || m.Body != "body" || len(m.Attachment) != 1 {
		t.Errorf("message = %+v", m)
	}
}

func TestSendIdempotent(t *testing.T) {
	s := NewServer()
	id1, _ := s.Send("a", "b", "s", "body", nil)
	id2, _ := s.Send("a", "b", "s", "body", nil)
	if id1 != id2 {
		t.Error("identical resend must return the original id")
	}
	if s.Count("b") != 1 {
		t.Errorf("count = %d, want 1", s.Count("b"))
	}
	id3, _ := s.Send("a", "b", "s", "different", nil)
	if id3 == id1 {
		t.Error("different body must be a new message")
	}
}

func TestSendValidation(t *testing.T) {
	s := NewServer()
	if _, err := s.Send("a", "", "s", "b", nil); err == nil {
		t.Error("empty recipient accepted")
	}
}

func TestInboxUnknown(t *testing.T) {
	s := NewServer()
	if _, err := s.Inbox("ghost"); !errors.Is(err, ErrNoSuchMailbox) {
		t.Errorf("err = %v", err)
	}
	s.CreateMailbox("ghost")
	msgs, err := s.Inbox("ghost")
	if err != nil || len(msgs) != 0 {
		t.Errorf("provisioned mailbox: %v (%v)", msgs, err)
	}
}

func TestMailboxesSorted(t *testing.T) {
	s := NewServer()
	s.CreateMailbox("zoe")
	s.CreateMailbox("amy")
	if got := s.Mailboxes(); len(got) != 2 || got[0] != "amy" {
		t.Errorf("mailboxes = %v", got)
	}
}

func TestAttachmentIsolated(t *testing.T) {
	s := NewServer()
	att := []byte{1, 2}
	if _, err := s.Send("a", "b", "s", "body", att); err != nil {
		t.Fatal(err)
	}
	att[0] = 99
	msgs, _ := s.Inbox("b")
	if msgs[0].Attachment[0] != 1 {
		t.Error("server aliases caller's attachment")
	}
}

func TestInboxReturnsCopy(t *testing.T) {
	s := NewServer()
	if _, err := s.Send("a", "b", "s", "body", nil); err != nil {
		t.Fatal(err)
	}
	msgs, _ := s.Inbox("b")
	msgs[0].Subject = "mutated"
	again, _ := s.Inbox("b")
	if again[0].Subject != "s" {
		t.Error("Inbox exposes internal storage")
	}
}
