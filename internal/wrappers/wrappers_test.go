package wrappers

import (
	"context"
	"testing"

	"repro/internal/ast"
	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/value"
)

func quiesce(t *testing.T, n *peer.Network) {
	t.Helper()
	if _, _, err := n.RunToQuiescence(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
}

func TestFacebookGroupPullAndPush(t *testing.T) {
	n := peer.NewNetwork()
	svc := facebook.NewService()
	if err := svc.AddUser("emilien", "Emilien"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateGroup("g", "Group"); err != nil {
		t.Fatal(err)
	}
	w, err := NewFacebookGroupPeer(n, "fbg", svc, "g")
	if err != nil {
		t.Fatal(err)
	}
	// Pull: a service-side photo appears as a fact.
	if _, err := svc.PostPhoto("g", "emilien", "native.jpg", []byte{1}); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	quiesce(t, n)
	pics := w.Peer().Query("pictures")
	if len(pics) != 1 || pics[0][1].StringVal() != "native.jpg" {
		t.Fatalf("pulled pictures = %v", pics)
	}

	// Push: a fact inserted into the wrapper's relation lands on the service.
	err = w.Peer().Insert(factPic(w.Peer().Name(), 99, "pushed.jpg", "jules", []byte{2}))
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	photos, err := svc.Photos("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(photos) != 2 {
		t.Fatalf("service photos = %v", photos)
	}
	var found bool
	for _, ph := range photos {
		if ph.Name == "pushed.jpg" && ph.Owner == "jules" {
			found = true
		}
	}
	if !found {
		t.Errorf("pushed photo missing from service: %v", photos)
	}
	// The pushed row keeps its WebdamLog id in the relations (stable
	// identity), and no duplicate row under the service id appears.
	quiesce(t, n)
	pics = w.Peer().Query("pictures")
	if len(pics) != 2 {
		t.Fatalf("mirrored pictures = %v", pics)
	}
	var saw99 bool
	for _, p := range pics {
		if p[0].IntVal() == 99 {
			saw99 = true
		}
	}
	if !saw99 {
		t.Errorf("pushed photo lost its original id: %v", pics)
	}
}

func TestFacebookGroupCommentsAndTagsRoundTrip(t *testing.T) {
	n := peer.NewNetwork()
	svc := facebook.NewService()
	if err := svc.AddUser("u", "U"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateGroup("g", "G"); err != nil {
		t.Fatal(err)
	}
	id, err := svc.PostPhoto("g", "u", "x.jpg", nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewFacebookGroupPeer(n, "fbg", svc, "g")
	if err != nil {
		t.Fatal(err)
	}
	// Service-side comment pulls in.
	if err := svc.AddComment("g", id, "u", "hi"); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	quiesce(t, n)
	if got := w.Peer().Query("comments"); len(got) != 1 {
		t.Fatalf("comments = %v", got)
	}
	// Relation-side tag pushes out.
	err = w.Peer().Insert(factTag(w.Peer().Name(), id, "Serge"))
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	tags, err := svc.Tags("g")
	if err != nil || len(tags) != 1 || tags[0].Person != "Serge" {
		t.Fatalf("service tags = %v (%v)", tags, err)
	}
}

func TestFacebookUserWrapperExportsPaperRelations(t *testing.T) {
	// The paper: "our wrapper will simulate a peer ÉmilienFB with two
	// relations: friends@ÉmilienFB($userID,$friendName) and
	// pictures@ÉmilienFB($picID,$owner,$URL)".
	n := peer.NewNetwork()
	svc := facebook.NewService()
	for _, u := range [][2]string{{"emilien", "Emilien"}, {"jules", "Jules"}} {
		if err := svc.AddUser(u[0], u[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Befriend("emilien", "jules"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateGroup("g", "G"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PostPhoto("g", "jules", "p.jpg", nil); err != nil {
		t.Fatal(err)
	}
	w, err := NewFacebookUserPeer(n, "emilienfb", svc, "emilien", "g")
	if err != nil {
		t.Fatal(err)
	}
	w.Sync()
	quiesce(t, n)
	friends := w.Peer().Query("friends")
	if len(friends) != 1 || friends[0][1].StringVal() != "Jules" {
		t.Fatalf("friends = %v", friends)
	}
	pics := w.Peer().Query("pictures")
	if len(pics) != 1 || pics[0][1].StringVal() != "jules" {
		t.Fatalf("pictures = %v", pics)
	}
	if pics[0][2].StringVal() == "" {
		t.Error("picture URL empty")
	}
}

func TestEmailWrapperSendsAndMirrors(t *testing.T) {
	n := peer.NewNetwork()
	svc := email.NewServer()
	w, err := NewEmailPeer(n, "mailhub", svc)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Peer().Insert(factMail("mailhub", "emilien", "subj", "pic.jpg", 3, "jules"))
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	msgs, err := svc.Inbox("emilien")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("inbox = %v (%v)", msgs, err)
	}
	if msgs[0].From != "jules" || msgs[0].Subject != "subj" {
		t.Errorf("message = %+v", msgs[0])
	}
	// The inbox mirror fills on the next sync.
	w.Sync()
	quiesce(t, n)
	mirror := w.Peer().Query("inbox")
	if len(mirror) != 1 || mirror[0][0].StringVal() != "emilien" {
		t.Fatalf("inbox mirror = %v", mirror)
	}
}

func factPic(peerName string, id int64, name, owner string, data []byte) ast.Fact {
	return ast.Fact{Rel: "pictures", Peer: peerName, Args: value.Tuple{
		value.Int(id), value.Str(name), value.Str(owner), value.Blob(data)}}
}

func factTag(peerName string, id int64, person string) ast.Fact {
	return ast.Fact{Rel: "tags", Peer: peerName, Args: value.Tuple{value.Int(id), value.Str(person)}}
}

func factMail(peerName, to, subject, name string, id int64, owner string) ast.Fact {
	return ast.Fact{Rel: "mail", Peer: peerName, Args: value.Tuple{
		value.Str(to), value.Str(subject), value.Str(name), value.Int(id), value.Str(owner)}}
}
