// Package wrappers adapts external services to WebdamLog peers, following
// the paper's wrapper architecture (§2): "A wrapper to some existing system
// X provides software that exports to WebdamLog one or more relations
// corresponding to the data in X, as well as rules to access/update this
// data."
//
// A wrapper is an ordinary peer whose extensional relations mirror the
// external service. Before each stage the wrapper pulls the service state
// into its relations (so rules and delegations evaluated at the wrapper see
// fresh data); after each stage it pushes rows that rules or remote peers
// wrote into its relations back to the service. Because mirrored relations
// treat the service as the source of truth, pushes are picked up again on
// the next pull under the service's canonical identifiers.
package wrappers

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/value"
)

// FacebookGroupPeer exposes one Facebook group (the demo's SigmodFB) as a
// peer with three relations:
//
//	pictures@<name>(id, name, owner, data)
//	comments@<name>(id, author, text)
//	tags@<name>(id, person)
//
// Rows inserted by rules (e.g. the sigmod peer's publication rule) are
// posted to the group; photos, comments and tags added on the service side
// appear as facts.
//
// The service assigns its own photo identifiers, so the wrapper maintains a
// bidirectional id mapping: a photo pushed from the relations keeps its
// WebdamLog id in the relations (comments and tags pulled from the service
// are translated back to it), while photos native to the service enter the
// relations under their service id.
type FacebookGroupPeer struct {
	p     *peer.Peer
	svc   *facebook.Service
	group string

	mu      sync.Mutex
	idByKey map[string]int64 // owner+"\x00"+name -> relation-side id
	svcByID map[int64]int64  // relation-side id -> service id
	idBySvc map[int64]int64  // service id -> relation-side id
}

// NewFacebookGroupPeer creates the wrapper peer on the given network.
func NewFacebookGroupPeer(n *peer.Network, name string, svc *facebook.Service, group string) (*FacebookGroupPeer, error) {
	p, err := n.NewPeer(peer.Config{Name: name})
	if err != nil {
		return nil, err
	}
	w := &FacebookGroupPeer{
		p: p, svc: svc, group: group,
		idByKey: make(map[string]int64),
		svcByID: make(map[int64]int64),
		idBySvc: make(map[int64]int64),
	}
	if err := w.declare(); err != nil {
		return nil, err
	}
	p.SetHooks(w)
	return w, nil
}

func (w *FacebookGroupPeer) declare() error {
	if err := w.p.DeclareRelation("pictures", ast.Extensional, "id", "name", "owner", "data"); err != nil {
		return err
	}
	if err := w.p.DeclareRelation("comments", ast.Extensional, "id", "author", "text"); err != nil {
		return err
	}
	return w.p.DeclareRelation("tags", ast.Extensional, "id", "person")
}

// Peer returns the underlying WebdamLog peer.
func (w *FacebookGroupPeer) Peer() *peer.Peer { return w.p }

// Sync pokes the wrapper so its next stage pulls fresh service state; call
// it after mutating the service out-of-band.
func (w *FacebookGroupPeer) Sync() { w.p.Poke() }

// BeforeStage implements peer.Hooks: pull the service into the relations,
// translating service photo ids to relation-side ids.
func (w *FacebookGroupPeer) BeforeStage(p *peer.Peer) error {
	photos, err := w.svc.Photos(w.group)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	pics := p.Store().MustGet("pictures", p.Name())
	for _, ph := range photos {
		key := ph.Owner + "\x00" + ph.Name
		relID, known := w.idByKey[key]
		if !known {
			// Native service photo: adopt the service id.
			relID = ph.ID
			w.idByKey[key] = relID
			w.svcByID[relID] = ph.ID
			w.idBySvc[ph.ID] = relID
		}
		pics.Insert(value.Tuple{
			value.Int(relID), value.Str(ph.Name), value.Str(ph.Owner), value.Blob(ph.Data),
		})
	}
	comments := p.Store().MustGet("comments", p.Name())
	svcComments, err := w.svc.Comments(w.group)
	if err != nil {
		return err
	}
	for _, c := range svcComments {
		relID, ok := w.idBySvc[c.PhotoID]
		if !ok {
			continue // photo not mirrored yet; next pull catches up
		}
		comments.Insert(value.Tuple{value.Int(relID), value.Str(c.Author), value.Str(c.Text)})
	}
	tags := p.Store().MustGet("tags", p.Name())
	svcTags, err := w.svc.Tags(w.group)
	if err != nil {
		return err
	}
	for _, tg := range svcTags {
		relID, ok := w.idBySvc[tg.PhotoID]
		if !ok {
			continue
		}
		tags.Insert(value.Tuple{value.Int(relID), value.Str(tg.Person)})
	}
	return nil
}

// AfterStage implements peer.Hooks: push relation rows the service does not
// have yet, recording the id mapping for future pulls.
func (w *FacebookGroupPeer) AfterStage(p *peer.Peer, _ *peer.StageReport) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	pics := p.Store().MustGet("pictures", p.Name())
	posted := false
	for _, t := range pics.Tuples() {
		relID, name, owner := t[0].IntVal(), t[1].StringVal(), t[2].StringVal()
		key := owner + "\x00" + name
		if _, known := w.idByKey[key]; known {
			continue // already on the service (pushed earlier or native)
		}
		svcID, err := w.svc.PostPhoto(w.group, owner, name, t[3].BlobVal())
		if err != nil {
			return fmt.Errorf("wrappers: posting %q to group %q: %w", name, w.group, err)
		}
		w.idByKey[key] = relID
		w.svcByID[relID] = svcID
		w.idBySvc[svcID] = relID
		posted = true
	}
	comments := p.Store().MustGet("comments", p.Name())
	for _, t := range comments.Tuples() {
		svcID, ok := w.svcByID[t[0].IntVal()]
		if !ok {
			continue // comment on an unknown photo; retried after the photo lands
		}
		// AddComment is idempotent, so re-pushing mirrored rows is harmless.
		if err := w.svc.AddComment(w.group, svcID, t[1].StringVal(), t[2].StringVal()); err != nil {
			continue
		}
	}
	tags := p.Store().MustGet("tags", p.Name())
	for _, t := range tags.Tuples() {
		svcID, ok := w.svcByID[t[0].IntVal()]
		if !ok {
			continue
		}
		if err := w.svc.AddTag(w.group, svcID, t[1].StringVal()); err != nil {
			continue
		}
	}
	if posted {
		// Pull the service's view of what we just posted.
		p.Poke()
	}
	return nil
}

// FacebookUserPeer exposes one user's view of the service, exactly the
// paper's example: "our wrapper will simulate a peer ÉmilienFB with two
// relations: friends@ÉmilienFB($userID, $friendName) and
// pictures@ÉmilienFB($picID, $owner, $URL)". It is pull-only.
type FacebookUserPeer struct {
	p      *peer.Peer
	svc    *facebook.Service
	user   string
	groups []string
}

// NewFacebookUserPeer creates the wrapper peer for a user's data across the
// given groups.
func NewFacebookUserPeer(n *peer.Network, name string, svc *facebook.Service, user string, groups ...string) (*FacebookUserPeer, error) {
	p, err := n.NewPeer(peer.Config{Name: name})
	if err != nil {
		return nil, err
	}
	w := &FacebookUserPeer{p: p, svc: svc, user: user, groups: groups}
	if err := p.DeclareRelation("friends", ast.Extensional, "userID", "friendName"); err != nil {
		return nil, err
	}
	if err := p.DeclareRelation("pictures", ast.Extensional, "picID", "owner", "url"); err != nil {
		return nil, err
	}
	p.SetHooks(w)
	return w, nil
}

// Peer returns the underlying WebdamLog peer.
func (w *FacebookUserPeer) Peer() *peer.Peer { return w.p }

// Sync pokes the wrapper to refresh on its next stage.
func (w *FacebookUserPeer) Sync() { w.p.Poke() }

// BeforeStage implements peer.Hooks.
func (w *FacebookUserPeer) BeforeStage(p *peer.Peer) error {
	friends, err := w.svc.Friends(w.user)
	if err != nil {
		return err
	}
	frel := p.Store().MustGet("friends", p.Name())
	for _, f := range friends {
		frel.Insert(value.Tuple{value.Str(w.user), value.Str(f.Name)})
	}
	prel := p.Store().MustGet("pictures", p.Name())
	for _, g := range w.groups {
		photos, err := w.svc.Photos(g)
		if err != nil {
			return err
		}
		for _, ph := range photos {
			prel.Insert(value.Tuple{value.Int(ph.ID), value.Str(ph.Owner), value.Str(ph.URL)})
		}
	}
	return nil
}

// AfterStage implements peer.Hooks (no push: this wrapper is read-only).
func (w *FacebookUserPeer) AfterStage(*peer.Peer, *peer.StageReport) error { return nil }

// EmailPeer exposes the mail server as a peer with two relations:
//
//	mail@<name>(to, subject, name, id, owner) — inserting a fact sends mail
//	inbox@<name>(to, from, subject)           — mirror of delivered mail
//
// The Wepic transfer rule routes picture announcements here when an
// attendee's preferred protocol is "email".
type EmailPeer struct {
	p   *peer.Peer
	svc *email.Server
}

// NewEmailPeer creates the mail wrapper peer.
func NewEmailPeer(n *peer.Network, name string, svc *email.Server) (*EmailPeer, error) {
	p, err := n.NewPeer(peer.Config{Name: name})
	if err != nil {
		return nil, err
	}
	w := &EmailPeer{p: p, svc: svc}
	if err := p.DeclareRelation("mail", ast.Extensional, "to", "subject", "name", "id", "owner"); err != nil {
		return nil, err
	}
	if err := p.DeclareRelation("inbox", ast.Extensional, "to", "from", "subject"); err != nil {
		return nil, err
	}
	p.SetHooks(w)
	return w, nil
}

// Peer returns the underlying WebdamLog peer.
func (w *EmailPeer) Peer() *peer.Peer { return w.p }

// Sync pokes the wrapper to refresh on its next stage.
func (w *EmailPeer) Sync() { w.p.Poke() }

// BeforeStage implements peer.Hooks: mirror delivered mail into inbox.
func (w *EmailPeer) BeforeStage(p *peer.Peer) error {
	inbox := p.Store().MustGet("inbox", p.Name())
	for _, user := range w.svc.Mailboxes() {
		msgs, err := w.svc.Inbox(user)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			inbox.Insert(value.Tuple{value.Str(m.To), value.Str(m.From), value.Str(m.Subject)})
		}
	}
	return nil
}

// AfterStage implements peer.Hooks: send mail for every row of mail@.
// The server deduplicates, so re-pushing already-sent rows is harmless.
func (w *EmailPeer) AfterStage(p *peer.Peer, rep *peer.StageReport) error {
	mail := p.Store().MustGet("mail", p.Name())
	for _, t := range mail.Tuples() {
		to, subject := t[0].StringVal(), t[1].StringVal()
		name, owner := t[2].StringVal(), t[4].StringVal()
		body := fmt.Sprintf("Picture %q (id %s) shared by %s via Wepic", name, t[3].String(), owner)
		if _, err := w.svc.Send(owner, to, subject, body, nil); err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("wrappers: sending mail to %s: %w", to, err))
		}
	}
	return nil
}
