package wepic

import (
	"context"
	"testing"
)

// TestUploadAllAndWatch: the live-UI flow of the v2 API — a batch upload at
// emilien streams deltas out of jules' subscribed attendeePictures view.
func TestUploadAllAndWatch(t *testing.T) {
	d := newDemo(t)
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deltas, err := d.jules.Watch(ctx, "attendeePictures")
	if err != nil {
		t.Fatal(err)
	}

	base := d.emilien.Peer().Stats().Stages
	ids, err := d.emilien.UploadAll(ctx,
		[]string{"a.jpg", "b.jpg", "c.jpg"},
		[][]byte{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] == ids[1] {
		t.Fatalf("ids = %v", ids)
	}
	d.quiesce(t)
	d.acceptAll(t)

	if got := d.emilien.Peer().Stats().Stages - base; got > 3 {
		// The batch itself is one stage; delegation maintenance may add a
		// couple more rounds, but nothing close to one stage per picture
		// would be if the upload were per-fact with more pictures.
		t.Logf("stages after batch upload: %d", got)
	}
	if got := len(d.jules.AttendeePictures()); got != 3 {
		t.Fatalf("attendeePictures = %d, want 3", got)
	}
	var streamed int
	for len(deltas) > 0 {
		dlt := <-deltas
		if dlt.Delete {
			t.Errorf("unexpected delete delta %v", dlt)
		}
		streamed++
	}
	if streamed != 3 {
		t.Errorf("streamed %d deltas, want 3", streamed)
	}
}
