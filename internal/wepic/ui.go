package wepic

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// UI serves the Web interface of a Wepic peer, reproducing the panels of
// the paper's Figure 1 (pictures, attendees, attendee-pictures frame,
// transfer controls) and Figure 3 (the running program, rule customization
// and the pending-delegations queue).
type UI struct {
	app *App
	// run advances the network after a mutation (in the demo: run the
	// in-process network to quiescence).
	run func() error
	mux *http.ServeMux
}

// NewUI builds the HTTP interface for app. run is invoked after every
// mutating request to propagate changes through the network.
func NewUI(app *App, run func() error) *UI {
	u := &UI{app: app, run: run, mux: http.NewServeMux()}
	u.mux.HandleFunc("GET /{$}", u.handleHome)
	u.mux.HandleFunc("GET /rules", u.handleRules)
	u.mux.HandleFunc("POST /upload", u.handleUpload)
	u.mux.HandleFunc("POST /select", u.handleSelect)
	u.mux.HandleFunc("POST /deselect", u.handleDeselect)
	u.mux.HandleFunc("POST /selectpic", u.handleSelectPic)
	u.mux.HandleFunc("POST /protocol", u.handleProtocol)
	u.mux.HandleFunc("POST /rate", u.handleRate)
	u.mux.HandleFunc("POST /comment", u.handleComment)
	u.mux.HandleFunc("POST /tag", u.handleTag)
	u.mux.HandleFunc("POST /authorize", u.handleAuthorize)
	u.mux.HandleFunc("POST /rules/add", u.handleRuleAdd)
	u.mux.HandleFunc("POST /rules/replace", u.handleRuleReplace)
	u.mux.HandleFunc("POST /rules/remove", u.handleRuleRemove)
	u.mux.HandleFunc("POST /delegations/accept", u.handleDelegationAccept)
	u.mux.HandleFunc("POST /delegations/reject", u.handleDelegationReject)
	u.mux.HandleFunc("POST /query", u.handleQuery)
	return u
}

// Handler returns the HTTP handler for mounting.
func (u *UI) Handler() http.Handler { return u.mux }

func (u *UI) advance(w http.ResponseWriter) bool {
	if u.run == nil {
		return true
	}
	if err := u.run(); err != nil {
		http.Error(w, "network error: "+err.Error(), http.StatusInternalServerError)
		return false
	}
	return true
}

func (u *UI) redirect(w http.ResponseWriter, r *http.Request, to string) {
	if !u.advance(w) {
		return
	}
	http.Redirect(w, r, to, http.StatusSeeOther)
}

type homeData struct {
	Me               string
	Pictures         []Ranked
	AttendeePictures []Picture
	Selected         []string
	Protocol         string
	Pending          int
	QueryResult      []string
	QueryText        string
	QueryError       string
}

func (u *UI) handleHome(w http.ResponseWriter, r *http.Request) {
	d := homeData{Me: u.app.Name(), Pictures: u.app.Ranked(), AttendeePictures: u.app.AttendeePictures()}
	for _, t := range u.app.Peer().Query("selectedAttendee") {
		d.Selected = append(d.Selected, t[0].StringVal())
	}
	for _, t := range u.app.Peer().Query("communicate") {
		d.Protocol = t[0].StringVal()
	}
	d.Pending = len(u.app.PendingDelegations())
	render(w, homeTmpl, d)
}

type rulesData struct {
	Me      string
	Rules   []ast.Rule
	Deleg   map[string][]ast.Rule
	Pending []pendingView
	Errors  []string
}

type pendingView struct {
	ID     int
	Origin string
	Text   string
}

func (u *UI) handleRules(w http.ResponseWriter, r *http.Request) {
	d := rulesData{Me: u.app.Name(), Rules: u.app.Peer().Rules(), Deleg: u.app.Peer().DelegatedRules()}
	for _, pd := range u.app.PendingDelegations() {
		var lines []string
		for _, rr := range pd.Rules {
			lines = append(lines, rr.String()+";")
		}
		d.Pending = append(d.Pending, pendingView{ID: pd.ID, Origin: pd.Origin, Text: strings.Join(lines, "\n")})
	}
	for _, err := range u.app.Peer().CompileErrors() {
		d.Errors = append(d.Errors, err.Error())
	}
	render(w, rulesTmpl, d)
}

func (u *UI) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimSpace(r.FormValue("name"))
	if name == "" {
		http.Error(w, "picture name required", http.StatusBadRequest)
		return
	}
	data := []byte(r.FormValue("data"))
	if _, err := u.app.Upload(name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleSelect(w http.ResponseWriter, r *http.Request) {
	if err := u.app.SelectAttendee(strings.TrimSpace(r.FormValue("attendee"))); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleDeselect(w http.ResponseWriter, r *http.Request) {
	if err := u.app.DeselectAttendee(strings.TrimSpace(r.FormValue("attendee"))); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleSelectPic(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad picture id", http.StatusBadRequest)
		return
	}
	if err := u.app.SelectPicture(r.FormValue("name"), id, r.FormValue("owner")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleProtocol(w http.ResponseWriter, r *http.Request) {
	if err := u.app.SetProtocol(r.FormValue("protocol")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleRate(w http.ResponseWriter, r *http.Request) {
	id, err1 := strconv.ParseInt(r.FormValue("id"), 10, 64)
	stars, err2 := strconv.ParseInt(r.FormValue("stars"), 10, 64)
	if err1 != nil || err2 != nil || stars < 1 || stars > 5 {
		http.Error(w, "bad rating", http.StatusBadRequest)
		return
	}
	owner := r.FormValue("owner")
	if owner == "" {
		owner = u.app.Name()
	}
	if err := u.app.Rate(owner, id, stars); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleComment(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad picture id", http.StatusBadRequest)
		return
	}
	owner := r.FormValue("owner")
	if owner == "" {
		owner = u.app.Name()
	}
	if err := u.app.Comment(owner, id, r.FormValue("text")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleTag(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad picture id", http.StatusBadRequest)
		return
	}
	owner := r.FormValue("owner")
	if owner == "" {
		owner = u.app.Name()
	}
	if err := u.app.Tag(owner, id, r.FormValue("person")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleAuthorize(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad picture id", http.StatusBadRequest)
		return
	}
	if err := u.app.Authorize(r.FormValue("target"), id); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/")
}

func (u *UI) handleRuleAdd(w http.ResponseWriter, r *http.Request) {
	if _, err := u.app.Peer().AddRule(r.FormValue("rule")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/rules")
}

func (u *UI) handleRuleReplace(w http.ResponseWriter, r *http.Request) {
	if err := u.app.Peer().ReplaceRule(r.FormValue("id"), r.FormValue("rule")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/rules")
}

func (u *UI) handleRuleRemove(w http.ResponseWriter, r *http.Request) {
	if err := u.app.Peer().RemoveRule(r.FormValue("id")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/rules")
}

func (u *UI) handleDelegationAccept(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.FormValue("id"))
	if err != nil {
		http.Error(w, "bad delegation id", http.StatusBadRequest)
		return
	}
	if err := u.app.AcceptDelegation(id); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/rules")
}

func (u *UI) handleDelegationReject(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.FormValue("id"))
	if err != nil {
		http.Error(w, "bad delegation id", http.StatusBadRequest)
		return
	}
	if err := u.app.RejectDelegation(id); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u.redirect(w, r, "/rules")
}

// handleQuery implements the Query tab: the posted rule's head must target
// a fresh local relation; the rule is installed, the network advanced, the
// result read out, and the rule removed again.
func (u *UI) handleQuery(w http.ResponseWriter, r *http.Request) {
	src := r.FormValue("rule")
	d := homeData{Me: u.app.Name(), QueryText: src}
	id, err := u.app.Peer().AddRule(src)
	if err != nil {
		d.QueryError = err.Error()
	} else {
		if u.run != nil {
			if err := u.run(); err != nil {
				d.QueryError = err.Error()
			}
		}
		rule, _ := parseRule(src)
		if !rule.Head.Peer.IsVar() && !rule.Head.Rel.IsVar() {
			for _, t := range u.app.Peer().Query(rule.Head.Rel.Val.StringVal()) {
				d.QueryResult = append(d.QueryResult, t.String())
			}
		}
		if err := u.app.Peer().RemoveRule(id); err != nil {
			d.QueryError = err.Error()
		}
		if u.run != nil {
			_ = u.run() // propagate the removal (withdraw delegations)
		}
	}
	d.Pictures = u.app.Ranked()
	d.AttendeePictures = u.app.AttendeePictures()
	d.Pending = len(u.app.PendingDelegations())
	render(w, homeTmpl, d)
}

func render(w http.ResponseWriter, t *template.Template, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := t.Execute(w, data); err != nil {
		fmt.Fprintf(w, "<pre>template error: %v</pre>", err)
	}
}

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>Wepic — {{.Me}}</title><style>
body{font-family:sans-serif;margin:2em;max-width:70em}
h1{color:#333} .frame{border:1px solid #aaa;padding:1em;margin:1em 0;border-radius:6px}
table{border-collapse:collapse} td,th{border:1px solid #ccc;padding:4px 8px}
form.inline{display:inline} nav a{margin-right:1em}
</style></head><body>
<h1>Wepic — peer <em>{{.Me}}</em></h1>
<nav><a href="/">Pictures</a> <a href="/rules">Rules &amp; delegations{{if .Pending}} ({{.Pending}} pending){{end}}</a></nav>

<div class="frame"><h2>My pictures</h2>
<table><tr><th>id</th><th>name</th><th>stars</th><th>#ratings</th><th>#comments</th><th>tags</th><th></th></tr>
{{range .Pictures}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{printf "%.1f" .AvgStars}}</td><td>{{.Ratings}}</td><td>{{.Comments}}</td><td>{{range .Tags}}{{.}} {{end}}</td>
<td><form class="inline" method="post" action="/selectpic"><input type="hidden" name="id" value="{{.ID}}"><input type="hidden" name="name" value="{{.Name}}"><input type="hidden" name="owner" value="{{.Owner}}"><button>select for transfer</button></form>
<form class="inline" method="post" action="/authorize"><input type="hidden" name="id" value="{{.ID}}"><select name="target"><option>sigmod</option><option>facebook</option></select><button>authorize</button></form></td></tr>{{end}}
</table>
<form method="post" action="/upload">Upload: name <input name="name"> content <input name="data"> <button>upload</button></form>
<form method="post" action="/rate">Rate: id <input name="id" size="3"> stars <input name="stars" size="1"> owner <input name="owner" size="8" placeholder="{{.Me}}"> <button>rate</button></form>
<form method="post" action="/comment">Comment: id <input name="id" size="3"> text <input name="text"> owner <input name="owner" size="8" placeholder="{{.Me}}"> <button>comment</button></form>
<form method="post" action="/tag">Tag: id <input name="id" size="3"> person <input name="person"> owner <input name="owner" size="8" placeholder="{{.Me}}"> <button>tag</button></form>
</div>

<div class="frame"><h2>Attendees</h2>
Selected: {{range .Selected}}<form class="inline" method="post" action="/deselect"><input type="hidden" name="attendee" value="{{.}}"><button>{{.}} ✕</button></form> {{else}}<em>none</em>{{end}}
<form method="post" action="/select">Highlight attendee: <input name="attendee"> <button>select</button></form>
<form method="post" action="/protocol">My preferred transfer protocol:
<select name="protocol"><option{{if eq .Protocol "wepic"}} selected{{end}}>wepic</option><option{{if eq .Protocol "email"}} selected{{end}}>email</option><option{{if eq .Protocol "facebook"}} selected{{end}}>facebook</option></select>
<button>set</button> (currently: {{if .Protocol}}{{.Protocol}}{{else}}unset{{end}})</form>
</div>

<div class="frame"><h2>Attendee pictures</h2>
<table><tr><th>id</th><th>name</th><th>owner</th></tr>
{{range .AttendeePictures}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{.Owner}}</td></tr>{{else}}<tr><td colspan="3"><em>select an attendee (and wait for their approval)</em></td></tr>{{end}}
</table></div>

<div class="frame"><h2>Query</h2>
<form method="post" action="/query"><textarea name="rule" rows="3" cols="80" placeholder="result@{{.Me}}($n) :- pictures@{{.Me}}($i,$n,$o,$d);">{{.QueryText}}</textarea><br><button>run query</button></form>
{{if .QueryError}}<p style="color:#b00">{{.QueryError}}</p>{{end}}
{{if .QueryResult}}<ul>{{range .QueryResult}}<li><code>{{.}}</code></li>{{end}}</ul>{{end}}
</div>
</body></html>`))

var rulesTmpl = template.Must(template.New("rules").Parse(`<!DOCTYPE html>
<html><head><title>Wepic rules — {{.Me}}</title><style>
body{font-family:sans-serif;margin:2em;max-width:70em}
.frame{border:1px solid #aaa;padding:1em;margin:1em 0;border-radius:6px}
pre{background:#f6f6f6;padding:.5em} nav a{margin-right:1em}
.pending{background:#fff6e0;border:1px solid #e0b050;padding:.7em;margin:.5em 0;border-radius:4px}
</style></head><body>
<h1>WebdamLog program of <em>{{.Me}}</em></h1>
<nav><a href="/">Pictures</a> <a href="/rules">Rules</a></nav>

{{if .Pending}}<div class="frame"><h2>Pending delegations</h2>
{{range .Pending}}<div class="pending"><strong>{{.Origin}}</strong> wants to install:<pre>{{.Text}}</pre>
<form style="display:inline" method="post" action="/delegations/accept"><input type="hidden" name="id" value="{{.ID}}"><button>accept</button></form>
<form style="display:inline" method="post" action="/delegations/reject"><input type="hidden" name="id" value="{{.ID}}"><button>reject</button></form>
</div>{{end}}</div>{{end}}

<div class="frame"><h2>My rules</h2>
{{range .Rules}}<pre>[{{.ID}}] {{.}}</pre>
<form method="post" action="/rules/replace"><input type="hidden" name="id" value="{{.ID}}"><input name="rule" size="100" placeholder="replacement rule"><button>replace</button></form>
<form method="post" action="/rules/remove"><input type="hidden" name="id" value="{{.ID}}"><button>remove</button></form>
{{end}}
<form method="post" action="/rules/add"><h3>Add a rule</h3><input name="rule" size="100"> <button>add</button></form>
</div>

<div class="frame"><h2>Delegated rules (installed by other peers)</h2>
{{range $origin, $rules := .Deleg}}{{range $rules}}<pre>{{.}}; // delegated by {{$origin}}</pre>{{end}}{{else}}<em>none</em>{{end}}
</div>

{{if .Errors}}<div class="frame"><h2>Compilation problems</h2>{{range .Errors}}<pre>{{.}}</pre>{{end}}</div>{{end}}
</body></html>`))
