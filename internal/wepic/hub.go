package wepic

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/peer"
	"repro/internal/value"
)

// Rule ids of the hub peer.
const (
	RuleHubPublishToFacebook = "hub-fb-publish" // the paper's §4 publication rule
	RuleHubPullFromFacebook  = "hub-fb-pull"    // retrieve group pictures back into the hub
	RuleHubPullComments      = "hub-fb-comments"
	RuleHubPullTags          = "hub-fb-tags"
)

// Hub is the aggregation peer of the demo (the "sigmod" peer hosted on the
// Webdam cloud): it stores the shared picture pool and the registry of
// Wepic users, and bridges to the Facebook group wrapper.
type Hub struct {
	p      *peer.Peer
	fbPeer string
}

// HubOptions configures a hub.
type HubOptions struct {
	// FacebookPeer, when non-empty, names the Facebook group wrapper peer
	// (the demo's SigmodFB); the publication and retrieval rules of §4 are
	// installed.
	FacebookPeer string
	// Provenance enables why-provenance tracking.
	Provenance bool
}

// NewHub creates the hub peer named name.
func NewHub(n *peer.Network, name string, opts HubOptions) (*Hub, error) {
	p, err := n.NewPeer(peer.Config{Name: name, Provenance: opts.Provenance})
	if err != nil {
		return nil, err
	}
	h := &Hub{p: p, fbPeer: opts.FacebookPeer}
	decls := []struct {
		name string
		kind ast.RelKind
		cols []string
	}{
		{"pictures", ast.Extensional, []string{"id", "name", "owner", "data"}},
		{"attendees", ast.Extensional, []string{"name"}},
		{"comments", ast.Extensional, []string{"id", "author", "text"}},
		{"tags", ast.Extensional, []string{"id", "person"}},
	}
	for _, d := range decls {
		if err := p.DeclareRelation(d.name, d.kind, d.cols...); err != nil {
			return nil, err
		}
	}
	if opts.FacebookPeer != "" {
		if err := h.installFacebookRules(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *Hub) installFacebookRules() error {
	me, fb := h.p.Name(), h.fbPeer
	add := func(id, src string) error {
		r, err := parser.ParseRule(src)
		if err != nil {
			return fmt.Errorf("wepic: built-in hub rule %s: %w", id, err)
		}
		r.ID = id
		_, err = h.p.AddRuleAST(r)
		return err
	}
	// §4: "the following rule is used by the sigmod peer to automatically
	// publish, on the Facebook group of sigmod, the pictures belonging to
	// sigmod attendees who have authorized this action". Note the
	// delegation to $owner for the authorization check.
	if err := add(RuleHubPublishToFacebook, fmt.Sprintf(
		`pictures@%[2]s($id,$name,$owner,$data) :-
			pictures@%[1]s($id,$name,$owner,$data),
			authorized@$owner("facebook",$id,$owner);`, me, fb)); err != nil {
		return err
	}
	// §4: "Conversely, the sigmod peer will automatically retrieve the
	// pictures with their comments and tags from the Facebook group and
	// publish them to sigmod peer."
	if err := add(RuleHubPullFromFacebook, fmt.Sprintf(
		`pictures@%[1]s($id,$name,$owner,$data) :- pictures@%[2]s($id,$name,$owner,$data);`, me, fb)); err != nil {
		return err
	}
	if err := add(RuleHubPullComments, fmt.Sprintf(
		`comments@%[1]s($id,$author,$text) :- comments@%[2]s($id,$author,$text);`, me, fb)); err != nil {
		return err
	}
	return add(RuleHubPullTags, fmt.Sprintf(
		`tags@%[1]s($id,$person) :- tags@%[2]s($id,$person);`, me, fb))
}

// Peer returns the underlying WebdamLog peer.
func (h *Hub) Peer() *peer.Peer { return h.p }

// Register records an attendee in the hub's user registry ("the sigmod
// peer, which stores the list of registered Wepic users").
func (h *Hub) Register(attendee string) error {
	return h.p.Insert(ast.NewFact("attendees", h.p.Name(), value.Str(attendee)))
}

// Attendees returns the registered attendee names, sorted.
func (h *Hub) Attendees() []string {
	var out []string
	for _, t := range h.p.Query("attendees") {
		out = append(out, t[0].StringVal())
	}
	sort.Strings(out)
	return out
}

// Pictures returns the shared picture pool, sorted by owner then id.
func (h *Hub) Pictures() []Picture {
	return picturesOf(h.p, "pictures")
}

// parseRule is a tiny indirection so wepic.go can parse without importing
// parser twice under different names.
func parseRule(src string) (ast.Rule, error) { return parser.ParseRule(src) }
