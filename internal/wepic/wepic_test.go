package wepic

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/wrappers"
)

// demoNetwork reproduces the Figure 2 topology: attendee peers emilien and
// jules, the sigmod hub, the SigmodFB Facebook-group wrapper, and the mail
// wrapper.
type demoNetwork struct {
	net     *peer.Network
	emilien *App
	jules   *App
	hub     *Hub
	fb      *facebook.Service
	fbGroup *wrappers.FacebookGroupPeer
	mail    *email.Server
	mailHub *wrappers.EmailPeer
}

func newDemo(t *testing.T) *demoNetwork {
	t.Helper()
	d := &demoNetwork{net: peer.NewNetwork(), fb: facebook.NewService(), mail: email.NewServer()}

	if err := d.fb.AddUser("emilien", "Emilien"); err != nil {
		t.Fatal(err)
	}
	if err := d.fb.AddUser("jules", "Jules"); err != nil {
		t.Fatal(err)
	}
	if err := d.fb.Befriend("emilien", "jules"); err != nil {
		t.Fatal(err)
	}
	if err := d.fb.CreateGroup("sigmodgroup", "SIGMOD 2013"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"emilien", "jules"} {
		if err := d.fb.JoinGroup(u, "sigmodgroup"); err != nil {
			t.Fatal(err)
		}
	}

	var err error
	d.fbGroup, err = wrappers.NewFacebookGroupPeer(d.net, "sigmodfb", d.fb, "sigmodgroup")
	if err != nil {
		t.Fatal(err)
	}
	d.mailHub, err = wrappers.NewEmailPeer(d.net, "mailhub", d.mail)
	if err != nil {
		t.Fatal(err)
	}
	d.hub, err = NewHub(d.net, "sigmod", HubOptions{FacebookPeer: "sigmodfb"})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Hub: "sigmod", MailPeer: "mailhub", Policy: acl.NewTrustPolicy("sigmod")}
	d.emilien, err = New(d.net, "emilien", opts)
	if err != nil {
		t.Fatal(err)
	}
	d.jules, err = New(d.net, "jules", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"emilien", "jules"} {
		if err := d.hub.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	d.quiesce(t)
	return d
}

func (d *demoNetwork) quiesce(t *testing.T) {
	t.Helper()
	if _, _, err := d.net.RunToQuiescence(context.Background(), 300); err != nil {
		t.Fatalf("network did not quiesce: %v", err)
	}
}

// acceptAll approves every pending delegation at both attendees (the demo
// user clicking "accept" in the UI).
func (d *demoNetwork) acceptAll(t *testing.T) {
	t.Helper()
	for {
		accepted := false
		for _, app := range []*App{d.emilien, d.jules} {
			for _, pd := range app.PendingDelegations() {
				if err := app.AcceptDelegation(pd.ID); err != nil {
					t.Fatal(err)
				}
				accepted = true
			}
		}
		if !accepted {
			return
		}
		d.quiesce(t)
	}
}

func TestUploadAndViewOwnPictures(t *testing.T) {
	d := newDemo(t)
	if _, err := d.emilien.Upload("sea.jpg", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	pics := d.emilien.Pictures()
	if len(pics) != 1 || pics[0].Name != "sea.jpg" || pics[0].Owner != "emilien" {
		t.Fatalf("pictures = %+v", pics)
	}
	if !bytes.Equal(pics[0].Data, []byte{1, 2, 3}) {
		t.Errorf("picture data corrupted: %v", pics[0].Data)
	}
}

func TestViewSelectedAttendeePictures(t *testing.T) {
	// §3 item 2: "View pictures provided by a particular attendee" — via
	// the delegation rule. Delegations from jules to emilien require
	// approval since only sigmod is trusted.
	d := newDemo(t)
	if _, err := d.emilien.Upload("sea.jpg", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	// The view rule's delegation is pending at emilien (the transfer rule
	// delegates too, since its body also starts with selectedAttendee).
	var sawView bool
	for _, pd := range d.emilien.PendingDelegations() {
		if pd.RuleID == RuleViewAttendeePictures {
			sawView = true
		}
	}
	if !sawView {
		t.Fatalf("view-rule delegation not pending at emilien: %v", d.emilien.PendingDelegations())
	}
	if got := d.jules.AttendeePictures(); len(got) != 0 {
		t.Fatalf("view populated before approval: %+v", got)
	}
	d.acceptAll(t)
	got := d.jules.AttendeePictures()
	if len(got) != 1 || got[0].Name != "sea.jpg" {
		t.Fatalf("attendeePictures = %+v, want sea.jpg", got)
	}
}

func TestPublicationChainToFacebook(t *testing.T) {
	// §4 "Interaction via Facebook": "a photo uploaded by Émilien into his
	// local relation pictures@Émilien is instantly published to
	// pictures@sigmod, and then propagated to pictures@SigmodFB."
	d := newDemo(t)
	id, err := d.emilien.Upload("boat.jpg", []byte{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.Authorize("sigmod", id); err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.Authorize("facebook", id); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t) // sigmod's authorization-check delegation to emilien

	// pictures@sigmod
	hubPics := d.hub.Pictures()
	if len(hubPics) != 1 || hubPics[0].Name != "boat.jpg" {
		t.Fatalf("hub pictures = %+v", hubPics)
	}
	// pictures@SigmodFB — i.e. the photo is on the Facebook service.
	photos, err := d.fb.Photos("sigmodgroup")
	if err != nil {
		t.Fatal(err)
	}
	if len(photos) != 1 || photos[0].Name != "boat.jpg" || photos[0].Owner != "emilien" {
		t.Fatalf("facebook photos = %+v", photos)
	}
}

func TestFacebookCommentsFlowBack(t *testing.T) {
	// §4: "the sigmod peer will automatically retrieve the pictures with
	// their comments and tags from the Facebook group".
	d := newDemo(t)
	id, err := d.emilien.Upload("boat.jpg", []byte{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.Authorize("sigmod", id); err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.Authorize("facebook", id); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t)
	photos, err := d.fb.Photos("sigmodgroup")
	if err != nil || len(photos) != 1 {
		t.Fatalf("photos = %v, err = %v", photos, err)
	}
	// A Facebook-side user comments and tags on the service directly.
	if err := d.fb.AddComment("sigmodgroup", photos[0].ID, "jules", "great shot"); err != nil {
		t.Fatal(err)
	}
	if err := d.fb.AddTag("sigmodgroup", photos[0].ID, "Emilien"); err != nil {
		t.Fatal(err)
	}
	d.fbGroup.Sync()
	d.quiesce(t)

	comments := d.hub.Peer().Query("comments")
	if len(comments) != 1 || comments[0][2].StringVal() != "great shot" {
		t.Fatalf("hub comments = %v", comments)
	}
	tags := d.hub.Peer().Query("tags")
	if len(tags) != 1 || tags[0][1].StringVal() != "Emilien" {
		t.Fatalf("hub tags = %v", tags)
	}
}

func TestFacebookNativePhotoReachesHub(t *testing.T) {
	// A photo posted directly on Facebook must surface in pictures@sigmod
	// ("the system thus allows any Wepic user to see … pictures in SigmodFB
	// even without having a Facebook account").
	d := newDemo(t)
	if _, err := d.fb.PostPhoto("sigmodgroup", "gerome", "keynote.jpg", []byte{7}); err != nil {
		t.Fatal(err)
	}
	d.fbGroup.Sync()
	d.quiesce(t)
	pics := d.hub.Pictures()
	if len(pics) != 1 || pics[0].Name != "keynote.jpg" || pics[0].Owner != "gerome" {
		t.Fatalf("hub pictures = %+v", pics)
	}
}

func TestTransferViaWepicProtocol(t *testing.T) {
	// §3 item 3a: send selected pictures to another Wepic peer using the
	// recipient's preferred protocol.
	d := newDemo(t)
	id, err := d.jules.Upload("dinner.jpg", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.SetProtocol("wepic"); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectPicture("dinner.jpg", id, "jules"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t) // communicate@emilien lookup + fetch-announced delegations
	pics := d.emilien.Pictures()
	if len(pics) != 1 || pics[0].Name != "dinner.jpg" || pics[0].Owner != "jules" {
		t.Fatalf("emilien pictures = %+v, want dinner.jpg from jules", pics)
	}
}

func TestTransferViaEmailProtocol(t *testing.T) {
	// §3 item 3a: "send them by email".
	d := newDemo(t)
	id, err := d.jules.Upload("slides.jpg", []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.SetProtocol("email"); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectPicture("slides.jpg", id, "jules"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t)
	inbox, err := d.mail.Inbox("emilien")
	if err != nil {
		t.Fatalf("no mailbox for emilien: %v", err)
	}
	if len(inbox) != 1 || inbox[0].Subject != "slides.jpg" || inbox[0].From != "jules" {
		t.Fatalf("emilien inbox = %+v", inbox)
	}
}

func TestAnnotationAndRanking(t *testing.T) {
	// §3 items 4 and 5: annotate with ratings/comments/tags, then rank.
	d := newDemo(t)
	id1, _ := d.emilien.Upload("a.jpg", []byte{1})
	id2, _ := d.emilien.Upload("b.jpg", []byte{2})
	// Jules rates emilien's pictures: facts are routed to emilien's peer.
	if err := d.jules.Rate("emilien", id1, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.Rate("emilien", id2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.Comment("emilien", id2, "blurry"); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.Tag("emilien", id1, "Serge"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	ranked := d.emilien.Ranked()
	if len(ranked) != 2 {
		t.Fatalf("ranked = %+v", ranked)
	}
	if ranked[0].ID != id1 || ranked[0].AvgStars != 5 {
		t.Errorf("top picture = %+v, want a.jpg with 5 stars", ranked[0])
	}
	if ranked[1].Comments != 1 {
		t.Errorf("b.jpg comments = %d, want 1", ranked[1].Comments)
	}
	if len(ranked[0].Tags) != 1 || ranked[0].Tags[0] != "Serge" {
		t.Errorf("a.jpg tags = %v", ranked[0].Tags)
	}
}

func TestCustomizedRatingRule(t *testing.T) {
	// §4 "Customizing rules": only rating-5 pictures in the view.
	d := newDemo(t)
	id1, _ := d.emilien.Upload("a.jpg", []byte{1})
	id2, _ := d.emilien.Upload("b.jpg", []byte{2})
	if err := d.emilien.Rate("emilien", id1, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.Rate("emilien", id2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t)
	if got := d.jules.AttendeePictures(); len(got) != 2 {
		t.Fatalf("default view = %+v, want both pictures", got)
	}
	// Customize the rule exactly as in the paper.
	err := d.jules.Peer().ReplaceRule(RuleViewAttendeePictures, `
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data),
			rate@$owner($id, 5);`)
	if err != nil {
		t.Fatal(err)
	}
	d.quiesce(t)
	d.acceptAll(t)
	got := d.jules.AttendeePictures()
	if len(got) != 1 || got[0].Name != "a.jpg" {
		t.Fatalf("customized view = %+v, want only a.jpg", got)
	}
}

func TestProgramTextShowsWepicRules(t *testing.T) {
	d := newDemo(t)
	text := d.jules.Peer().ProgramText()
	for _, want := range []string{"attendeePictures@jules", "selectedAttendee@jules", "communicate@$attendee"} {
		if !strings.Contains(text, want) {
			t.Errorf("program text missing %q:\n%s", want, text)
		}
	}
}
