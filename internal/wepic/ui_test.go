package wepic

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// uiFixture runs one attendee's UI over the full demo network.
func uiFixture(t *testing.T) (*demoNetwork, *UI, *httptest.Server) {
	t.Helper()
	d := newDemo(t)
	run := func() error {
		_, _, err := d.net.RunToQuiescence(context.Background(), 300)
		return err
	}
	ui := NewUI(d.jules, run)
	srv := httptest.NewServer(ui.Handler())
	t.Cleanup(srv.Close)
	return d, ui, srv
}

func getBody(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postForm(t *testing.T, srv *httptest.Server, path string, form url.Values) *http.Response {
	t.Helper()
	resp, err := srv.Client().PostForm(srv.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestUIHomeRenders(t *testing.T) {
	_, _, srv := uiFixture(t)
	body := getBody(t, srv, "/")
	for _, want := range []string{"Wepic", "jules", "Attendee pictures", "My pictures", "Query"} {
		if !strings.Contains(body, want) {
			t.Errorf("home page missing %q", want)
		}
	}
}

func TestUIUploadFlow(t *testing.T) {
	d, _, srv := uiFixture(t)
	resp := postForm(t, srv, "/upload", url.Values{"name": {"ui.jpg"}, "data": {"bytes"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	pics := d.jules.Pictures()
	if len(pics) != 1 || pics[0].Name != "ui.jpg" {
		t.Fatalf("pictures after upload = %+v", pics)
	}
	if !strings.Contains(getBody(t, srv, "/"), "ui.jpg") {
		t.Error("uploaded picture not rendered")
	}
}

func TestUIUploadValidation(t *testing.T) {
	_, _, srv := uiFixture(t)
	resp := postForm(t, srv, "/upload", url.Values{"name": {""}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty name: status %d, want 400", resp.StatusCode)
	}
}

func TestUIRulesPageAndCustomization(t *testing.T) {
	d, _, srv := uiFixture(t)
	body := getBody(t, srv, "/rules")
	if !strings.Contains(body, RuleViewAttendeePictures) {
		t.Errorf("rules page missing the view rule:\n%s", body)
	}
	// Replace the view rule through the form endpoint.
	resp := postForm(t, srv, "/rules/replace", url.Values{
		"id": {RuleViewAttendeePictures},
		"rule": {`attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data),
			rate@$owner($id, 5);`},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace status %d", resp.StatusCode)
	}
	found := false
	for _, r := range d.jules.Peer().Rules() {
		if r.ID == RuleViewAttendeePictures && strings.Contains(r.String(), "rate@$owner") {
			found = true
		}
	}
	if !found {
		t.Error("rule not replaced")
	}
	// A broken rule is rejected with 400.
	resp = postForm(t, srv, "/rules/add", url.Values{"rule": {"not valid ::-"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rule: status %d, want 400", resp.StatusCode)
	}
}

func TestUIDelegationApproval(t *testing.T) {
	d, _, srv := uiFixture(t)
	if _, err := d.jules.Upload("p.jpg", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.emilien.SelectAttendee("jules"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.net.RunToQuiescence(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	pend := d.jules.PendingDelegations()
	if len(pend) == 0 {
		t.Fatal("no pending delegations to approve")
	}
	body := getBody(t, srv, "/rules")
	if !strings.Contains(body, "Pending delegations") || !strings.Contains(body, "emilien") {
		t.Errorf("pending queue not rendered:\n%s", body)
	}
	for _, pd := range pend {
		resp := postForm(t, srv, "/delegations/accept", url.Values{"id": {itoa(pd.ID)}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accept status %d", resp.StatusCode)
		}
	}
	if len(d.jules.PendingDelegations()) != 0 {
		t.Error("queue not drained after accepts")
	}
	if len(d.jules.Peer().DelegatedRules()["emilien"]) == 0 {
		t.Error("delegations not installed after UI approval")
	}
}

func TestUISelectAndProtocol(t *testing.T) {
	d, _, srv := uiFixture(t)
	postForm(t, srv, "/select", url.Values{"attendee": {"emilien"}})
	if got := d.jules.Peer().Query("selectedAttendee"); len(got) != 1 {
		t.Fatalf("selectedAttendee = %v", got)
	}
	postForm(t, srv, "/protocol", url.Values{"protocol": {"email"}})
	if got := d.jules.Peer().Query("communicate"); len(got) != 1 || got[0][0].StringVal() != "email" {
		t.Fatalf("communicate = %v", got)
	}
	postForm(t, srv, "/deselect", url.Values{"attendee": {"emilien"}})
	if got := d.jules.Peer().Query("selectedAttendee"); len(got) != 0 {
		t.Fatalf("selectedAttendee after deselect = %v", got)
	}
}

func TestUIQueryTab(t *testing.T) {
	d, _, srv := uiFixture(t)
	if _, err := d.jules.Upload("q.jpg", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.net.RunToQuiescence(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().PostForm(srv.URL+"/query", url.Values{
		"rule": {`qresult@jules($n) :- pictures@jules($i,$n,$o,$d);`},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "q.jpg") {
		t.Errorf("query result missing q.jpg:\n%s", string(b))
	}
	// The throwaway query rule must be removed again.
	for _, r := range d.jules.Peer().Rules() {
		if strings.Contains(r.String(), "qresult") {
			t.Error("query rule leaked into the program")
		}
	}
}

func TestUIRateValidation(t *testing.T) {
	_, _, srv := uiFixture(t)
	resp := postForm(t, srv, "/rate", url.Values{"id": {"1"}, "stars": {"9"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stars=9: status %d, want 400", resp.StatusCode)
	}
	resp = postForm(t, srv, "/rate", url.Values{"id": {"x"}, "stars": {"3"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("id=x: status %d, want 400", resp.StatusCode)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
