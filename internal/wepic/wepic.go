// Package wepic implements the paper's demonstration application: a
// distributed conference picture manager built from a small set of
// WebdamLog rules (§3). Attendees run a Wepic peer holding their pictures;
// a hub peer ("sigmod") aggregates; wrappers bridge to Facebook and e-mail.
//
// The package wires the exact rules printed in the paper:
//
//	attendeePictures@me($id,$name,$owner,$data) :-
//	    selectedAttendee@me($attendee),
//	    pictures@$attendee($id,$name,$owner,$data)
//
//	$protocol@$attendee($attendee,$name,$id,$owner) :-
//	    selectedAttendee@me($attendee),
//	    communicate@$attendee($protocol),
//	    selectedPictures@me($name,$id,$owner)
//
//	pictures@SigmodFB($id,$name,$owner,$data) :-
//	    pictures@sigmod($id,$name,$owner,$data),
//	    authorized@$owner("facebook",$id,$owner)
//
// plus the supporting plumbing rules (protocol inboxes, e-mail forwarding,
// publication to the hub) that the demo describes in prose.
package wepic

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/peer"
	"repro/internal/value"
)

// Rule ids assigned to the built-in rules of an attendee peer.
const (
	RuleViewAttendeePictures = "wepic-view"     // the §2/§3 view rule
	RuleTransferPictures     = "wepic-transfer" // the §3 transfer rule
	RuleFetchAnnounced       = "wepic-fetch"    // pull content for announced pictures
	RuleForwardEmail         = "wepic-email"    // forward email-protocol announcements to the mail wrapper
	RulePublishToHub         = "wepic-publish"  // guarded publication to the hub peer
)

// Options configures an attendee's Wepic peer.
type Options struct {
	// Hub, when non-empty, is the aggregation peer (the paper's "sigmod"):
	// pictures authorized for it are published automatically.
	Hub string
	// MailPeer, when non-empty, names the e-mail wrapper peer used when
	// another attendee prefers the "email" transfer protocol.
	MailPeer string
	// Policy controls incoming delegations (nil accepts everything; the
	// demo uses acl.NewTrustPolicy(hub)).
	Policy acl.Policy
	// Provenance enables why-provenance tracking.
	Provenance bool
}

// Picture is one photo as stored in a pictures relation.
type Picture struct {
	ID    int64
	Name  string
	Owner string
	Data  []byte
}

// Ranked is a picture with its aggregated annotations, for the "select and
// rank photos based on their annotations" functionality.
type Ranked struct {
	Picture
	Ratings  int
	AvgStars float64
	Comments int
	Tags     []string
}

// App is one attendee's Wepic application instance over a WebdamLog peer.
type App struct {
	p    *peer.Peer
	opts Options

	mu  sync.Mutex
	seq int64
}

// New creates an attendee's Wepic peer named name on the network, declares
// the application schema and installs the default rules.
func New(n *peer.Network, name string, opts Options) (*App, error) {
	p, err := n.NewPeer(peer.Config{Name: name, Policy: opts.Policy, Provenance: opts.Provenance})
	if err != nil {
		return nil, err
	}
	a := &App{p: p, opts: opts}
	// Picture ids must be distinctive across attendees (the paper shows
	// ids like 32 in the shared pictures@sigmod pool; the rate relation is
	// keyed by id). Derive each peer's id space from its name.
	h := fnv.New32a()
	h.Write([]byte(name))
	a.seq = int64(h.Sum32()%100_000) * 1_000
	if err := a.declareSchema(); err != nil {
		return nil, err
	}
	if err := a.installRules(); err != nil {
		return nil, err
	}
	return a, nil
}

// Peer returns the underlying WebdamLog peer.
func (a *App) Peer() *peer.Peer { return a.p }

// Name returns the attendee/peer name.
func (a *App) Name() string { return a.p.Name() }

func (a *App) declareSchema() error {
	me := a.p
	decls := []struct {
		name string
		kind ast.RelKind
		cols []string
	}{
		{"pictures", ast.Extensional, []string{"id", "name", "owner", "data"}},
		{"selectedAttendee", ast.Extensional, []string{"attendee"}},
		{"selectedPictures", ast.Extensional, []string{"name", "id", "owner"}},
		{"communicate", ast.Extensional, []string{"protocol"}},
		{"attendeePictures", ast.Intensional, []string{"id", "name", "owner", "data"}},
		{"rate", ast.Extensional, []string{"id", "stars"}},
		{"comment", ast.Extensional, []string{"id", "author", "text"}},
		{"tag", ast.Extensional, []string{"id", "person"}},
		{"authorized", ast.Extensional, []string{"target", "id", "owner"}},
		// Protocol inboxes for the transfer rule's variable head relation.
		{"wepic", ast.Extensional, []string{"attendee", "name", "id", "owner"}},
		{"email", ast.Extensional, []string{"attendee", "name", "id", "owner"}},
		{"facebook", ast.Extensional, []string{"attendee", "name", "id", "owner"}},
	}
	for _, d := range decls {
		if err := me.DeclareRelation(d.name, d.kind, d.cols...); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) installRules() error {
	me := a.p.Name()
	add := func(id, src string) error {
		_, err := a.p.AddRuleAST(mustRule(id, src))
		return err
	}
	// The paper's view rule (§2 and §3).
	if err := add(RuleViewAttendeePictures, fmt.Sprintf(
		`attendeePictures@%[1]s($id,$name,$owner,$data) :-
			selectedAttendee@%[1]s($attendee),
			pictures@$attendee($id,$name,$owner,$data);`, me)); err != nil {
		return err
	}
	// The paper's transfer rule (§3), with variable relation AND peer in
	// the head.
	if err := add(RuleTransferPictures, fmt.Sprintf(
		`$protocol@$attendee($attendee,$name,$id,$owner) :-
			selectedAttendee@%[1]s($attendee),
			communicate@$attendee($protocol),
			selectedPictures@%[1]s($name,$id,$owner);`, me)); err != nil {
		return err
	}
	// When a picture is announced into the local wepic inbox, fetch its
	// content from the owner (a delegation to $owner).
	if err := add(RuleFetchAnnounced, fmt.Sprintf(
		`pictures@%[1]s($id,$name,$owner,$data) :-
			wepic@%[1]s($rcpt,$name,$id,$owner),
			pictures@$owner($id,$name,$owner,$data);`, me)); err != nil {
		return err
	}
	if a.opts.MailPeer != "" {
		if err := add(RuleForwardEmail, fmt.Sprintf(
			`mail@%[2]s("%[1]s", $name, $name, $id, $owner) :-
				email@%[1]s($rcpt,$name,$id,$owner);`, me, a.opts.MailPeer)); err != nil {
			return err
		}
	}
	if a.opts.Hub != "" {
		// "a photo uploaded by Émilien into his local relation
		// pictures@Émilien is instantly published to pictures@sigmod" —
		// guarded by the authorized relation, which the user populates.
		if err := add(RulePublishToHub, fmt.Sprintf(
			`pictures@%[2]s($id,$name,$owner,$data) :-
				pictures@%[1]s($id,$name,$owner,$data),
				authorized@%[1]s("%[2]s",$id,$owner);`, me, a.opts.Hub)); err != nil {
			return err
		}
	}
	return nil
}

func mustRule(id, src string) ast.Rule {
	r, err := parseRule(src)
	if err != nil {
		panic(fmt.Sprintf("wepic: built-in rule %s does not parse: %v", id, err))
	}
	r.ID = id
	return r
}

// Upload adds a picture to the attendee's local pictures relation and
// returns its id (unique per owner).
func (a *App) Upload(name string, data []byte) (int64, error) {
	a.mu.Lock()
	a.seq++
	id := a.seq
	a.mu.Unlock()
	err := a.p.Insert(ast.NewFact("pictures", a.Name(),
		value.Int(id), value.Str(name), value.Str(a.Name()), value.Blob(data)))
	if err != nil {
		return 0, err
	}
	return id, nil
}

// UploadAll adds several pictures as one atomic batch — one store
// transaction and one fixpoint stage instead of one per picture — and
// returns their assigned ids in order.
func (a *App) UploadAll(ctx context.Context, names []string, datas [][]byte) ([]int64, error) {
	if len(names) != len(datas) {
		return nil, fmt.Errorf("wepic: %d names for %d payloads", len(names), len(datas))
	}
	ids := make([]int64, len(names))
	b := engine.NewBatch()
	a.mu.Lock()
	for i, name := range names {
		a.seq++
		ids[i] = a.seq
		b.Insert(ast.NewFact("pictures", a.Name(),
			value.Int(ids[i]), value.Str(name), value.Str(a.Name()), value.Blob(datas[i])))
	}
	a.mu.Unlock()
	if err := a.p.Apply(ctx, b); err != nil {
		return nil, err
	}
	return ids, nil
}

// Watch streams changes to one of the app's relations ("pictures",
// "attendeePictures", …) as fixpoints commit — the live-UI primitive: a
// photo wall repaints on deltas instead of polling Pictures().
func (a *App) Watch(ctx context.Context, rel string) (<-chan peer.Delta, error) {
	return a.p.Subscribe(ctx, rel)
}

// Authorize records that picture id owned by this attendee may be published
// to target ("sigmod", "facebook", …) — the paper's authorized relation.
func (a *App) Authorize(target string, id int64) error {
	return a.p.Insert(ast.NewFact("authorized", a.Name(),
		value.Str(target), value.Int(id), value.Str(a.Name())))
}

// Revoke removes a publication authorization.
func (a *App) Revoke(target string, id int64) error {
	return a.p.Delete(ast.NewFact("authorized", a.Name(),
		value.Str(target), value.Int(id), value.Str(a.Name())))
}

// SelectAttendee highlights an attendee: their pictures appear in
// attendeePictures (via delegation) and they become transfer targets.
func (a *App) SelectAttendee(attendee string) error {
	return a.p.Insert(ast.NewFact("selectedAttendee", a.Name(), value.Str(attendee)))
}

// DeselectAttendee removes the highlight (withdrawing the delegation).
func (a *App) DeselectAttendee(attendee string) error {
	return a.p.Delete(ast.NewFact("selectedAttendee", a.Name(), value.Str(attendee)))
}

// SelectPicture marks one of this attendee's pictures for transfer.
func (a *App) SelectPicture(name string, id int64, owner string) error {
	return a.p.Insert(ast.NewFact("selectedPictures", a.Name(),
		value.Str(name), value.Int(id), value.Str(owner)))
}

// ClearSelectedPictures unmarks all pictures selected for transfer.
func (a *App) ClearSelectedPictures() error {
	for _, t := range a.p.Query("selectedPictures") {
		if err := a.p.Delete(ast.Fact{Rel: "selectedPictures", Peer: a.Name(), Args: t}); err != nil {
			return err
		}
	}
	return nil
}

// SetProtocol declares this attendee's preferred transfer protocol
// ("wepic", "email" or "facebook") in the communicate relation.
func (a *App) SetProtocol(protocol string) error {
	for _, t := range a.p.Query("communicate") {
		if err := a.p.Delete(ast.Fact{Rel: "communicate", Peer: a.Name(), Args: t}); err != nil {
			return err
		}
	}
	return a.p.Insert(ast.NewFact("communicate", a.Name(), value.Str(protocol)))
}

// Rate stores a star rating for picture id at its owner's peer, as in the
// paper's rate@$owner($id, 5) pattern.
func (a *App) Rate(owner string, id int64, stars int64) error {
	return a.p.Insert(ast.NewFact("rate", owner, value.Int(id), value.Int(stars)))
}

// Comment attaches a comment to picture id at its owner's peer.
func (a *App) Comment(owner string, id int64, text string) error {
	return a.p.Insert(ast.NewFact("comment", owner, value.Int(id), value.Str(a.Name()), value.Str(text)))
}

// Tag records that person appears in picture id, at the owner's peer.
func (a *App) Tag(owner string, id int64, person string) error {
	return a.p.Insert(ast.NewFact("tag", owner, value.Int(id), value.Str(person)))
}

// Pictures returns the attendee's local pictures, sorted by id.
func (a *App) Pictures() []Picture {
	return picturesOf(a.p, "pictures")
}

// AttendeePictures returns the contents of the attendeePictures view
// (pictures of all selected attendees, as of the last stage).
func (a *App) AttendeePictures() []Picture {
	return picturesOf(a.p, "attendeePictures")
}

func picturesOf(p *peer.Peer, rel string) []Picture {
	var out []Picture
	for _, t := range p.Query(rel) {
		if len(t) != 4 {
			continue
		}
		out = append(out, Picture{
			ID:    t[0].IntVal(),
			Name:  t[1].StringVal(),
			Owner: t[2].StringVal(),
			Data:  t[3].BlobVal(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Ranked returns the attendee's local pictures joined with their local
// annotations, ordered by average stars (descending), then rating count,
// then id — the "select and rank photos based on their annotations"
// functionality of §3.
func (a *App) Ranked() []Ranked {
	type agg struct {
		sum, n   int64
		comments int
		tags     []string
	}
	byID := map[int64]*agg{}
	get := func(id int64) *agg {
		if v, ok := byID[id]; ok {
			return v
		}
		v := &agg{}
		byID[id] = v
		return v
	}
	for _, t := range a.p.Query("rate") {
		if len(t) == 2 {
			v := get(t[0].IntVal())
			v.sum += t[1].IntVal()
			v.n++
		}
	}
	for _, t := range a.p.Query("comment") {
		if len(t) == 3 {
			get(t[0].IntVal()).comments++
		}
	}
	for _, t := range a.p.Query("tag") {
		if len(t) == 2 {
			v := get(t[0].IntVal())
			v.tags = append(v.tags, t[1].StringVal())
		}
	}
	var out []Ranked
	for _, pic := range a.Pictures() {
		r := Ranked{Picture: pic}
		if v, ok := byID[pic.ID]; ok {
			r.Ratings = int(v.n)
			if v.n > 0 {
				r.AvgStars = float64(v.sum) / float64(v.n)
			}
			r.Comments = v.comments
			sort.Strings(v.tags)
			r.Tags = v.tags
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgStars != out[j].AvgStars {
			return out[i].AvgStars > out[j].AvgStars
		}
		if out[i].Ratings != out[j].Ratings {
			return out[i].Ratings > out[j].Ratings
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// PendingDelegations lists delegations awaiting the user's approval.
func (a *App) PendingDelegations() []acl.PendingDelegation {
	return a.p.Controller().Pending()
}

// AcceptDelegation approves a pending delegation by queue id.
func (a *App) AcceptDelegation(id int) error { return a.p.Controller().Accept(id) }

// RejectDelegation drops a pending delegation by queue id.
func (a *App) RejectDelegation(id int) error { return a.p.Controller().Reject(id) }
