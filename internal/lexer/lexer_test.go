package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize(`pictures@sigmod(32, "sea.jpg", $x) :- a@b($y);`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, At, Ident, LParen, Number, Comma, String, Comma, Variable, RParen,
		ColonDash, Ident, At, Ident, LParen, Variable, RParen, Semi}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVariableText(t *testing.T) {
	toks, err := Tokenize(`$attendee`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != Variable || toks[0].Text != "attendee" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`"a\"b\n\t\\c"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\"b\n\t\\c" {
		t.Errorf("unescaped = %q", toks[0].Text)
	}
}

func TestStringHexEscapes(t *testing.T) {
	// The renderer (strconv.Quote) writes non-printable content as \xNN /
	// \uNNNN / \UNNNNNNNN and control characters as \a\b\f\v, so the lexer
	// must read all of them back (found by FuzzParseProgram).
	cases := map[string]string{
		`"\x00\xff"`:   "\x00\xff",
		`"\a\b\f\v"`:   "\a\b\f\v",
		`"\u00e9"`:     "é",
		`"\U0001F600"`: "\U0001F600",
		`"mix\x41B"`:   "mixAB",
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if toks[0].Text != want {
			t.Errorf("%s = %q, want %q", src, toks[0].Text, want)
		}
	}
	for _, bad := range []string{`"\x0"`, `"\xzz"`, `"\u12"`, `"\UFFFFFFFF"`} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("%s lexed without error", bad)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		`42`:     "42",
		`-7`:     "-7",
		`3.25`:   "3.25",
		`1e3`:    "1e3",
		`2.5e-2`: "2.5e-2",
		`-0.125`: "-0.125",
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("%q -> %v, want Number %q", src, toks, want)
		}
	}
}

func TestHexBlob(t *testing.T) {
	toks, err := Tokenize(`0xCAFE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != Hex || toks[0].Text != "CAFE" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestComments(t *testing.T) {
	src := `
		// line comment
		a@b(); # hash comment
		/* block
		   comment */ c@d();
	`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	idents := 0
	for _, tok := range toks {
		if tok.Kind == Ident {
			idents++
		}
	}
	if idents != 4 {
		t.Errorf("identifiers = %d, want 4 (comments must be skipped)", idents)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a@b\n  $x")
	if err != nil {
		t.Fatal(err)
	}
	last := toks[len(toks)-1]
	if last.Line != 2 || last.Col != 3 {
		t.Errorf("variable at %d:%d, want 2:3", last.Line, last.Col)
	}
}

func TestDotNotPartOfIdent(t *testing.T) {
	// `1.x` is number then error; `f(1)` works; a dot without digits after
	// the number stays un-consumed and errors.
	if _, err := Tokenize("1.5"); err != nil {
		t.Errorf("1.5: %v", err)
	}
	if _, err := Tokenize("1."); err == nil {
		t.Error("trailing dot accepted")
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"newline
		 inside"`,
		`$`,
		`$1x`,
		`0x`,
		`:`,
		`%`,
		`"bad \q escape"`,
		`/* unterminated`,
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q lexed without error", src)
		} else if !strings.Contains(err.Error(), "lex error") {
			t.Errorf("%q: error lacks position info: %v", src, err)
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	// The paper writes peers like Émilien; unicode letters are identifiers.
	toks, err := Tokenize(`pictures@Émilien($x)`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Ident || toks[2].Text != "Émilien" {
		t.Errorf("peer token = %v", toks[2])
	}
}

func TestMinusVsNegativeNumber(t *testing.T) {
	toks, err := Tokenize(`-a@b(-5)`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Minus {
		t.Errorf("leading '-' = %v, want Minus", toks[0])
	}
	var sawNeg bool
	for _, tok := range toks {
		if tok.Kind == Number && tok.Text == "-5" {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Errorf("no -5 number token in %v", toks)
	}
}
