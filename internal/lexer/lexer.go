// Package lexer tokenizes WebdamLog source text.
//
// The concrete syntax follows the paper: atoms `m@p(t1, …, tn)`, variables
// `$x`, quoted string constants, rules with `:-`, and `not` for negation.
// Statements are terminated with ';'. Line comments start with `//` or `#`,
// block comments are `/* … */`.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Variable // $x, Text holds "x"
	String   // "…", Text holds the unquoted payload
	Number   // integer or float, Text holds the literal
	Hex      // 0x…, Text holds the hex digits (without 0x)
	At       // @
	LParen   // (
	RParen   // )
	Comma    // ,
	Semi     // ;
	ColonDash
	Plus
	Minus
	Bang
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Variable:
		return "variable"
	case String:
		return "string"
	case Number:
		return "number"
	case Hex:
		return "hex literal"
	case At:
		return "'@'"
	case LParen:
		return "'('"
	case RParen:
		return "')'"
	case Comma:
		return "','"
	case Semi:
		return "';'"
	case ColonDash:
		return "':-'"
	case Plus:
		return "'+'"
	case Minus:
		return "'-'"
	case Bang:
		return "'!'"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Token is one lexical unit with its source position (1-based line/column).
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Number:
		return fmt.Sprintf("%q", t.Text)
	case Variable:
		return fmt.Sprintf("\"$%s\"", t.Text)
	case String:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans WebdamLog source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans all of src and returns the token stream (excluding EOF),
// or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	return l.src[start:l.pos]
}

func (l *Lexer) lexString() (string, error) {
	// Opening quote already verified by caller.
	startLine, startCol := l.line, l.col
	l.advance() // consume '"'
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", &Error{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
		}
		r := l.advance()
		switch r {
		case '"':
			return sb.String(), nil
		case '\\':
			if l.pos >= len(l.src) {
				return "", &Error{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
			}
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			case 'a':
				sb.WriteByte('\a')
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'v':
				sb.WriteByte('\v')
			case 'x', 'u', 'U':
				// Hex escapes, as the renderer (strconv.Quote) emits them
				// for non-printable content: \xNN is a raw byte, \uNNNN and
				// \UNNNNNNNN are runes.
				n := 2
				if esc == 'u' {
					n = 4
				} else if esc == 'U' {
					n = 8
				}
				var code uint32
				for i := 0; i < n; i++ {
					if l.pos >= len(l.src) || !isHexDigit(l.src[l.pos]) {
						return "", l.errf("invalid hex escape \\%c: want %d hex digits", esc, n)
					}
					d := l.advance()
					code <<= 4
					switch {
					case d >= '0' && d <= '9':
						code |= uint32(d - '0')
					case d >= 'a' && d <= 'f':
						code |= uint32(d-'a') + 10
					default:
						code |= uint32(d-'A') + 10
					}
				}
				if esc == 'x' {
					sb.WriteByte(byte(code))
				} else {
					if code > 0x10FFFF {
						return "", l.errf("invalid hex escape \\%c: rune out of range", esc)
					}
					sb.WriteRune(rune(code))
				}
			default:
				return "", l.errf("unknown escape sequence \\%c", esc)
			}
		case '\n':
			return "", &Error{Line: startLine, Col: startCol, Msg: "newline in string literal"}
		default:
			sb.WriteRune(r)
		}
	}
}

func isHexDigit(b byte) bool {
	return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')
}

// Next returns the next token, or a token of kind EOF at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	tok := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return tok(EOF, ""), nil
	}
	r := l.peek()
	switch {
	case r == '$':
		l.advance()
		if !isIdentStart(l.peek()) {
			return Token{}, l.errf("expected variable name after '$'")
		}
		return tok(Variable, l.lexIdent()), nil
	case r == '"':
		s, err := l.lexString()
		if err != nil {
			return Token{}, err
		}
		return tok(String, s), nil
	case r == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X'):
		l.advance()
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.advance()
		}
		if l.pos == start {
			return Token{}, l.errf("expected hex digits after 0x")
		}
		return tok(Hex, l.src[start:l.pos]), nil
	case unicode.IsDigit(r):
		return l.lexNumber(line, col, false)
	case isIdentStart(r):
		return tok(Ident, l.lexIdent()), nil
	}
	switch r {
	case '@':
		l.advance()
		return tok(At, "@"), nil
	case '(':
		l.advance()
		return tok(LParen, "("), nil
	case ')':
		l.advance()
		return tok(RParen, ")"), nil
	case ',':
		l.advance()
		return tok(Comma, ","), nil
	case ';':
		l.advance()
		return tok(Semi, ";"), nil
	case ':':
		l.advance()
		if l.peek() != '-' {
			return Token{}, l.errf("expected '-' after ':'")
		}
		l.advance()
		return tok(ColonDash, ":-"), nil
	case '+':
		l.advance()
		return tok(Plus, "+"), nil
	case '-':
		l.advance()
		if unicode.IsDigit(l.peek()) {
			return l.lexNumber(line, col, true)
		}
		return tok(Minus, "-"), nil
	case '!':
		l.advance()
		return tok(Bang, "!"), nil
	}
	return Token{}, l.errf("unexpected character %q", r)
}

func (l *Lexer) lexNumber(line, col int, neg bool) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	// Fraction: only if a digit follows the dot (so `f(1)` vs `1.5` both work).
	if l.peek() == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.advance()
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save // not an exponent after all
		}
	}
	text := l.src[start:l.pos]
	if neg {
		text = "-" + text
	}
	return Token{Kind: Number, Text: text, Line: line, Col: col}, nil
}
