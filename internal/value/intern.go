package value

import "sync"

// Interner deduplicates values, tuples and their canonical keys across many
// holders. In a swarm of in-process peers the same fact is materialized at
// every follower of its author — without interning each replica carries its
// own Tuple slice, its own Value string backings and its own canonical key
// string, and memory per peer becomes the scaling wall (experiment p11). An
// interned relation instead stores the one canonical Tuple and key the whole
// process shares, so the marginal cost of a replica is a map entry.
//
// The table is append-only: entries live as long as the Interner, which is
// why the natural scope is one Interner per swarm (or per deployment) whose
// lifetime matches the fact universe it deduplicates. All methods are safe
// for concurrent use and all of them treat a nil *Interner as "no
// interning", falling back to the private-copy behavior callers had before.
type Interner struct {
	strs   [internShards]strShard
	tuples [internShards]tupleShard
}

// internShards spreads the intern maps over independently locked shards so
// concurrent peers' inserts do not serialize on one mutex. Must be a power
// of two.
const internShards = 64

type strShard struct {
	mu sync.Mutex
	m  map[string]string
}

type tupleShard struct {
	mu sync.Mutex
	m  map[string]internedTuple
}

// internedTuple pairs a canonical tuple with its canonical key. The key
// field shares its backing array with the shard's map key, so the key is
// stored once no matter how many relations hold it.
type internedTuple struct {
	key string
	t   Tuple
}

// NewInterner creates an empty intern table.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.strs {
		in.strs[i].m = make(map[string]string)
	}
	for i := range in.tuples {
		in.tuples[i].m = make(map[string]internedTuple)
	}
	return in
}

// shardOf hashes s to a shard index (FNV-64a folded to internShards).
func shardOf(s string) int {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int(h & (internShards - 1))
}

// String returns the canonical instance of s: every call with equal contents
// returns a string sharing one backing array. A nil interner returns s.
func (in *Interner) String(s string) string {
	if in == nil || s == "" {
		return s
	}
	sh := &in.strs[shardOf(s)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.m[s]; ok {
		return c
	}
	sh.m[s] = s
	return s
}

// Value returns v with any string payload (string and blob kinds) replaced
// by its canonical instance. Scalar kinds are returned unchanged.
func (in *Interner) Value(v Value) Value {
	if in == nil {
		return v
	}
	switch v.K {
	case KindString, KindBlob:
		v.S = in.String(v.S)
	}
	return v
}

// Tuple returns the canonical instance of t and its canonical key. The
// returned tuple is shared by every holder that interned an equal tuple and
// must be treated as immutable (tuples already are, everywhere). A nil
// interner degrades to the non-shared equivalents: a private clone and a
// fresh key.
func (in *Interner) Tuple(t Tuple) (Tuple, string) {
	if in == nil {
		return t.Clone(), t.Key()
	}
	key := t.Key()
	sh := &in.tuples[shardOf(key)]
	sh.mu.Lock()
	if it, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return it.t, it.key
	}
	sh.mu.Unlock()
	// First sighting: build the canonical tuple off the shard lock (string
	// interning takes the string shards' locks), then publish. A concurrent
	// first-sighting race is settled by whoever stores first.
	ct := make(Tuple, len(t))
	for i, v := range t {
		ct[i] = in.Value(v)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if it, ok := sh.m[key]; ok {
		return it.t, it.key
	}
	sh.m[key] = internedTuple{key: key, t: ct}
	return ct, key
}

// InternStats reports the table's population.
type InternStats struct {
	Strings int
	Tuples  int
}

// Stats counts the interned strings and tuples.
func (in *Interner) Stats() InternStats {
	var st InternStats
	if in == nil {
		return st
	}
	for i := range in.strs {
		in.strs[i].mu.Lock()
		st.Strings += len(in.strs[i].m)
		in.strs[i].mu.Unlock()
	}
	for i := range in.tuples {
		in.tuples[i].mu.Lock()
		st.Tuples += len(in.tuples[i].m)
		in.tuples[i].mu.Unlock()
	}
	return st
}
