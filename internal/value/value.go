// Package value defines the typed data values that WebdamLog facts carry,
// and tuples (ordered sequences of values) as stored in relations.
//
// Values are small immutable scalars: strings, 64-bit integers, 64-bit
// floats, booleans and binary blobs (used for picture payloads in the Wepic
// application). The package provides total ordering, hashing, and a compact
// binary codec used by the wire protocol and the write-ahead log.
package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The possible kinds of a Value.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
	KindBlob
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindBlob:
		return "blob"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single immutable WebdamLog data value. The zero Value is the
// empty string. Fields are exported so values serialize through encoding/gob
// without custom codecs, but callers should treat values as immutable and
// construct them with Str, Int, Float, Bool and Blob.
type Value struct {
	K Kind
	S string // payload for KindString and KindBlob
	I int64
	F float64
	B bool
}

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// Blob returns a binary value. The bytes are copied.
func Blob(b []byte) Value { return Value{K: KindBlob, S: string(b)} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.K }

// StringVal returns the string payload (valid for KindString).
func (v Value) StringVal() string { return v.S }

// IntVal returns the integer payload (valid for KindInt).
func (v Value) IntVal() int64 { return v.I }

// FloatVal returns the float payload (valid for KindFloat).
func (v Value) FloatVal() float64 { return v.F }

// BoolVal returns the boolean payload (valid for KindBool).
func (v Value) BoolVal() bool { return v.B }

// BlobVal returns a copy of the binary payload (valid for KindBlob).
func (v Value) BlobVal() []byte { return []byte(v.S) }

// IsZero reports whether v is the zero value (the empty string).
func (v Value) IsZero() bool { return v == Value{} }

// Equal reports whether two values are identical in kind and payload.
func (v Value) Equal(w Value) bool {
	if v.K != w.K {
		return false
	}
	switch v.K {
	case KindString, KindBlob:
		return v.S == w.S
	case KindInt:
		return v.I == w.I
	case KindFloat:
		return v.F == w.F || (math.IsNaN(v.F) && math.IsNaN(w.F))
	case KindBool:
		return v.B == w.B
	}
	return false
}

// Compare imposes a total order over values: first by kind, then by payload.
// It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.K != w.K {
		if v.K < w.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindString, KindBlob:
		return strings.Compare(v.S, w.S)
	case KindInt:
		switch {
		case v.I < w.I:
			return -1
		case v.I > w.I:
			return 1
		}
		return 0
	case KindFloat:
		vf, wf := v.F, w.F
		vn, wn := math.IsNaN(vf), math.IsNaN(wf)
		switch {
		case vn && wn:
			return 0
		case vn:
			return -1
		case wn:
			return 1
		case vf < wf:
			return -1
		case vf > wf:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !v.B && w.B:
			return -1
		case v.B && !w.B:
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value for display: strings unquoted, blobs summarized.
func (v Value) String() string {
	switch v.K {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindBlob:
		if len(v.S) <= 8 {
			return fmt.Sprintf("0x%x", v.S)
		}
		return fmt.Sprintf("blob(%dB)", len(v.S))
	}
	return "?"
}

// Literal renders the value in WebdamLog concrete syntax so that parsing the
// result yields the value back (strings quoted with escapes, blobs hex).
func (v Value) Literal() string {
	switch v.K {
	case KindString:
		return strconv.Quote(v.S)
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// Force a float marker so the parser does not read it back as int.
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindBlob:
		return fmt.Sprintf("0x%x", v.S)
	}
	return "?"
}

// Hash returns a 64-bit FNV-1a hash of the value.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.K)
	switch v.K {
	case KindString, KindBlob:
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindInt:
		binary.LittleEndian.PutUint64(buf[1:], uint64(v.I))
		h.Write(buf[:])
	case KindFloat:
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		h.Write(buf[:])
	case KindBool:
		if v.B {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

// AppendKey appends a canonical, order-insensitive byte encoding of v to dst.
// Distinct values have distinct encodings, making it usable as a map key.
func (v Value) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindString, KindBlob:
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(v.S)))
		dst = append(dst, lenBuf[:]...)
		dst = append(dst, v.S...)
	case KindInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		dst = append(dst, buf[:]...)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case KindBool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Key returns the canonical byte encoding of v as a string (usable as a map key).
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// Encode appends the wire encoding of v to dst. Decode reverses it.
func (v Value) Encode(dst []byte) []byte { return v.AppendKey(dst) }

// ErrCorrupt reports a malformed value or tuple encoding.
var ErrCorrupt = errors.New("value: corrupt encoding")

// Decode reads one value from b, returning the value and the remaining bytes.
func Decode(b []byte) (Value, []byte, error) {
	if len(b) < 1 {
		return Value{}, nil, ErrCorrupt
	}
	k := Kind(b[0])
	b = b[1:]
	switch k {
	case KindString, KindBlob:
		if len(b) < 8 {
			return Value{}, nil, ErrCorrupt
		}
		n := binary.LittleEndian.Uint64(b[:8])
		b = b[8:]
		if uint64(len(b)) < n {
			return Value{}, nil, ErrCorrupt
		}
		return Value{K: k, S: string(b[:n])}, b[n:], nil
	case KindInt:
		if len(b) < 8 {
			return Value{}, nil, ErrCorrupt
		}
		return Value{K: k, I: int64(binary.LittleEndian.Uint64(b[:8]))}, b[8:], nil
	case KindFloat:
		if len(b) < 8 {
			return Value{}, nil, ErrCorrupt
		}
		return Value{K: k, F: math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))}, b[8:], nil
	case KindBool:
		if len(b) < 1 {
			return Value{}, nil, ErrCorrupt
		}
		return Value{K: k, B: b[0] != 0}, b[1:], nil
	default:
		return Value{}, nil, ErrCorrupt
	}
}

// Tuple is an ordered sequence of values — one stored fact's arguments.
type Tuple []Value

// NewTuple builds a tuple from its arguments.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Clone returns a copy of the tuple (values themselves are immutable).
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically (shorter tuples first on ties).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key returns a canonical byte-string encoding of the whole tuple, suitable
// for use as a map key. Distinct tuples have distinct keys.
func (t Tuple) Key() string {
	var dst []byte
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return string(dst)
}

// DecodeKey reverses Tuple.Key: it parses the canonical key encoding back
// into the tuple it was built from. Together with Key it makes the canonical
// encoding a full codec, so a tuple held as its compact interned key (the
// store's interned representation) can always be reconstituted.
func DecodeKey(key string) (Tuple, error) {
	b := []byte(key)
	var t Tuple
	for len(b) > 0 {
		v, rest, err := Decode(b)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		b = rest
	}
	return t, nil
}

// Hash returns a 64-bit hash of the tuple.
func (t Tuple) Hash() uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, v := range t {
		buf = v.AppendKey(buf[:0])
		h.Write(buf)
	}
	return h.Sum64()
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Encode appends the wire encoding of the tuple (length-prefixed) to dst.
func (t Tuple) Encode(dst []byte) []byte {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(t)))
	dst = append(dst, lenBuf[:]...)
	for _, v := range t {
		dst = v.Encode(dst)
	}
	return dst
}

// DecodeTuple reads one tuple from b, returning the tuple and remaining bytes.
func DecodeTuple(b []byte) (Tuple, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	if n > uint32(len(b)) { // each value takes at least 1 byte
		return nil, nil, ErrCorrupt
	}
	t := make(Tuple, 0, n)
	var v Value
	var err error
	for i := uint32(0); i < n; i++ {
		v, b, err = Decode(b)
		if err != nil {
			return nil, nil, err
		}
		t = append(t, v)
	}
	return t, b, nil
}

// SortTuples sorts a slice of tuples in place in lexicographic order.
// Useful for deterministic test output and display.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
