package value

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// sameBacking reports whether two non-empty tuples share a backing array —
// the observable form of "these are the one canonical instance".
func sameBacking(a, b Tuple) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// TestInternTupleIdentity: interning equal tuples yields the same canonical
// instance (pointer-identical backing) and the same key string, and the key
// equals the tuple's own canonical Key().
func TestInternTupleIdentity(t *testing.T) {
	in := NewInterner()
	mk := func() Tuple {
		return NewTuple(Str("alice"), Int(42), Float(3.5), Bool(true), Blob([]byte{0, 1, 2}))
	}
	t1, k1 := in.Tuple(mk())
	t2, k2 := in.Tuple(mk())
	if !sameBacking(t1, t2) {
		t.Fatal("equal tuples interned to distinct instances")
	}
	if k1 != k2 || k1 != mk().Key() {
		t.Fatalf("canonical key mismatch: %q vs %q vs %q", k1, k2, mk().Key())
	}
	if !t1.Equal(mk()) {
		t.Fatalf("canonical tuple %v != original %v", t1, mk())
	}
	// Distinct tuples must not collapse.
	t3, k3 := in.Tuple(NewTuple(Str("bob")))
	if sameBacking(t1, t3) || k3 == k1 {
		t.Fatal("distinct tuples collapsed")
	}
	st := in.Stats()
	if st.Tuples != 2 {
		t.Fatalf("Stats().Tuples = %d, want 2", st.Tuples)
	}
}

// TestInternStringIdentity: String returns one canonical backing for equal
// contents; the empty string is passed through.
func TestInternStringIdentity(t *testing.T) {
	in := NewInterner()
	a := in.String(string([]byte{'h', 'i'}))
	b := in.String(string([]byte{'h', 'i'}))
	if a != b {
		t.Fatal("contents differ")
	}
	// Same backing: interning an equal string must not grow the table.
	if got := in.Stats().Strings; got != 1 {
		t.Fatalf("Stats().Strings = %d, want 1", got)
	}
	if in.String("") != "" {
		t.Fatal("empty string changed")
	}
}

// TestInternNilSafe: a nil *Interner degrades to private copies with correct
// keys — every choke point relies on this to make interning optional.
func TestInternNilSafe(t *testing.T) {
	var in *Interner
	orig := NewTuple(Str("x"), Int(1))
	got, key := in.Tuple(orig)
	if !got.Equal(orig) || key != orig.Key() {
		t.Fatalf("nil interner returned %v/%q", got, key)
	}
	if sameBacking(got, orig) {
		t.Fatal("nil interner aliased the caller's tuple instead of cloning")
	}
	if in.String("s") != "s" || !in.Value(Str("s")).Equal(Str("s")) {
		t.Fatal("nil interner mangled values")
	}
	if st := in.Stats(); st != (InternStats{}) {
		t.Fatalf("nil interner stats = %+v", st)
	}
}

// TestInternKeyRoundTrip: DecodeKey(canonical key) reconstructs the tuple
// exactly, including float bit patterns (NaN, negative zero) that compare
// unequal or equal under ==.
func TestInternKeyRoundTrip(t *testing.T) {
	in := NewInterner()
	cases := []Tuple{
		{},
		NewTuple(Int(0)),
		NewTuple(Int(-1), Int(math.MaxInt64), Int(math.MinInt64)),
		NewTuple(Str(""), Str("a\x00b"), Blob(nil), Blob([]byte("\xff\xfe"))),
		NewTuple(Float(math.NaN()), Float(math.Copysign(0, -1)), Float(math.Inf(1))),
		NewTuple(Bool(true), Bool(false)),
	}
	for i, tc := range cases {
		ct, key := in.Tuple(tc)
		back, err := DecodeKey(key)
		if err != nil {
			t.Fatalf("case %d: DecodeKey: %v", i, err)
		}
		// Compare by re-encoding: bit-exact, unlike Equal under NaN.
		if back.Key() != key {
			t.Fatalf("case %d: round-trip key %x != %x", i, back.Key(), key)
		}
		if len(ct) != len(tc) {
			t.Fatalf("case %d: canonical arity %d != %d", i, len(ct), len(tc))
		}
	}
}

// TestInternConcurrent hammers one interner from many goroutines over a
// shared keyspace: all winners of first-sighting races must agree, so every
// observed canonical instance for a key is pointer-identical. Run with -race.
func TestInternConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, keys = 8, 100
	canon := make([][]Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			canon[w] = make([]Tuple, keys)
			for k := 0; k < keys; k++ {
				ct, _ := in.Tuple(NewTuple(Str(fmt.Sprintf("key-%03d", k)), Int(int64(k))))
				canon[w][k] = ct
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for w := 1; w < workers; w++ {
			if !sameBacking(canon[0][k], canon[w][k]) {
				t.Fatalf("key %d: workers 0 and %d hold distinct canonical tuples", k, w)
			}
		}
	}
	if got := in.Stats().Tuples; got != keys {
		t.Fatalf("Stats().Tuples = %d, want %d", got, keys)
	}
}

// FuzzTupleIntern feeds arbitrary bytes through the tuple decoder; whenever
// they parse, the interned canonical tuple must preserve the encoding
// exactly (encode → decode → intern → encode is the identity on keys) and
// interning must be idempotent.
func FuzzTupleIntern(f *testing.F) {
	seedTuples := []Tuple{
		NewTuple(Int(7), Str("seed"), Bool(true)),
		NewTuple(Float(math.NaN()), Blob([]byte{0, 255})),
		{},
	}
	for _, st := range seedTuples {
		f.Add(st.Encode(nil))
	}
	f.Add([]byte{1, 2, 3})
	in := NewInterner()
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, rest, err := DecodeTuple(data)
		if err != nil {
			return // malformed input: rejection is the correct behavior
		}
		_ = rest
		key := tup.Key()
		ct, ckey := in.Tuple(tup)
		if ckey != key {
			t.Fatalf("canonical key %x != original %x", ckey, key)
		}
		if ct.Key() != key {
			t.Fatalf("canonical tuple re-encodes to %x, want %x", ct.Key(), key)
		}
		back, err := DecodeKey(ckey)
		if err != nil {
			t.Fatalf("DecodeKey on canonical key: %v", err)
		}
		if back.Key() != key {
			t.Fatalf("decode(canonical key) re-encodes to %x, want %x", back.Key(), key)
		}
		ct2, ckey2 := in.Tuple(ct)
		if ckey2 != ckey || (len(ct) > 0 && &ct[0] != &ct2[0]) {
			t.Fatal("interning the canonical tuple is not idempotent")
		}
	})
}
