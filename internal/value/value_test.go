package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue draws a random value of a random kind.
func genValue(rnd *rand.Rand) Value {
	switch rnd.Intn(5) {
	case 0:
		b := make([]byte, rnd.Intn(12))
		rnd.Read(b)
		return Str(string(b))
	case 1:
		return Int(rnd.Int63() - rnd.Int63())
	case 2:
		return Float(rnd.NormFloat64() * 1e6)
	case 3:
		return Bool(rnd.Intn(2) == 0)
	default:
		b := make([]byte, rnd.Intn(20))
		rnd.Read(b)
		return Blob(b)
	}
}

type qv struct{ V Value }

// Generate implements quick.Generator.
func (qv) Generate(rnd *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qv{V: genValue(rnd)})
}

func TestValueCodecRoundTrip(t *testing.T) {
	f := func(x qv) bool {
		enc := x.V.Encode(nil)
		dec, rest, err := Decode(enc)
		return err == nil && len(rest) == 0 && dec.Equal(x.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueCompareIsTotalOrder(t *testing.T) {
	antisym := func(a, b qv) bool {
		return a.V.Compare(b.V) == -b.V.Compare(a.V)
	}
	if err := quick.Check(antisym, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("antisymmetry:", err)
	}
	reflexive := func(a qv) bool { return a.V.Compare(a.V) == 0 }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error("reflexivity:", err)
	}
	consistent := func(a, b qv) bool {
		// Compare == 0 exactly when Equal.
		return (a.V.Compare(b.V) == 0) == a.V.Equal(b.V)
	}
	if err := quick.Check(consistent, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("equality consistency:", err)
	}
}

func TestValueKeyInjective(t *testing.T) {
	f := func(a, b qv) bool {
		if a.V.Equal(b.V) {
			return a.V.Key() == b.V.Key()
		}
		return a.V.Key() != b.V.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestHashEqualValuesAgree(t *testing.T) {
	f := func(a qv) bool {
		cp := a.V
		return cp.Hash() == a.V.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	f := func(a, b, c qv) bool {
		tp := Tuple{a.V, b.V, c.V}
		enc := tp.Encode(nil)
		dec, rest, err := DecodeTuple(enc)
		return err == nil && len(rest) == 0 && dec.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	f := func(a, b, c, d qv) bool {
		t1 := Tuple{a.V, b.V}
		t2 := Tuple{c.V, d.V}
		if t1.Equal(t2) {
			return t1.Key() == t2.Key()
		}
		return t1.Key() != t2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestTupleKeySeparatesConcatenations(t *testing.T) {
	// ("ab","c") must differ from ("a","bc") — the length prefix prevents
	// ambiguity.
	t1 := Tuple{Str("ab"), Str("c")}
	t2 := Tuple{Str("a"), Str("bc")}
	if t1.Key() == t2.Key() {
		t.Error("tuple keys collide across element boundaries")
	}
}

func TestKindMismatchNotEqual(t *testing.T) {
	cases := []struct{ a, b Value }{
		{Str("1"), Int(1)},
		{Int(1), Float(1)},
		{Bool(true), Str("true")},
		{Str("x"), Blob([]byte("x"))},
	}
	for _, c := range cases {
		if c.a.Equal(c.b) {
			t.Errorf("%v (%v) equals %v (%v)", c.a, c.a.Kind(), c.b, c.b.Kind())
		}
		if c.a.Compare(c.b) == 0 {
			t.Errorf("%v compares equal to %v across kinds", c.a, c.b)
		}
	}
}

func TestFloatEdgeCases(t *testing.T) {
	nan := Float(math.NaN())
	if !nan.Equal(Float(math.NaN())) {
		t.Error("NaN must equal NaN for set semantics")
	}
	if nan.Compare(Float(math.NaN())) != 0 {
		t.Error("NaN must compare equal to NaN")
	}
	inf := Float(math.Inf(1))
	if inf.Compare(Float(1)) <= 0 {
		t.Error("+Inf must sort above finite values")
	}
	enc := nan.Encode(nil)
	dec, _, err := Decode(enc)
	if err != nil || !dec.Equal(nan) {
		t.Error("NaN must round-trip")
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{99},                        // unknown kind
		{byte(KindInt), 1, 2},       // short int
		{byte(KindString), 5, 0, 0}, // short length header
		append([]byte{byte(KindString)}, []byte{10, 0, 0, 0, 0, 0, 0, 0, 'a'}...), // payload shorter than length
	}
	for i, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("case %d: corrupt input decoded successfully", i)
		}
	}
	if _, _, err := DecodeTuple([]byte{1, 0}); err == nil {
		t.Error("short tuple header decoded successfully")
	}
	if _, _, err := DecodeTuple([]byte{255, 255, 255, 255}); err == nil {
		t.Error("absurd tuple length decoded successfully")
	}
}

func TestLiteralRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Str("a b"), `"a b"`},
		{Str(`quote"inside`), `"quote\"inside"`},
		{Int(-42), "-42"},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"}, // float marker preserved
		{Bool(true), "true"},
		{Blob([]byte{0xCA, 0xFE}), "0xcafe"},
	}
	for _, c := range cases {
		if got := c.v.Literal(); got != c.want {
			t.Errorf("Literal(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	if got := Str("hello").String(); got != "hello" {
		t.Errorf("Str.String() = %q", got)
	}
	if got := Blob(make([]byte, 100)).String(); got != "blob(100B)" {
		t.Errorf("large blob renders as %q", got)
	}
	if got := (Tuple{Int(1), Str("x")}).String(); got != "(1, x)" {
		t.Errorf("tuple renders as %q", got)
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		{Str("b")}, {Str("a")}, {Int(1)}, {Str("a"), Str("x")},
	}
	SortTuples(ts)
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, ts[i-1], ts[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Tuple{Str("a"), Int(1)}
	cl := orig.Clone()
	cl[0] = Str("mutated")
	if orig[0].StringVal() != "a" {
		t.Error("Clone shares backing storage")
	}
	if Tuple(nil).Clone() != nil {
		t.Error("nil tuple clone must be nil")
	}
}

func TestBlobValCopies(t *testing.T) {
	b := []byte{1, 2, 3}
	v := Blob(b)
	b[0] = 99
	if v.BlobVal()[0] != 1 {
		t.Error("Blob aliases caller's slice")
	}
	out := v.BlobVal()
	out[1] = 77
	if v.BlobVal()[1] != 2 {
		t.Error("BlobVal exposes internal storage")
	}
}
