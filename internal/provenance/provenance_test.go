package provenance

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func fct(rel string, v string) ast.Fact {
	return ast.NewFact(rel, "p", value.Str(v))
}

func rule(id string) *ast.Rule {
	return &ast.Rule{ID: id, Head: ast.NewAtom("h", "p", ast.V("x"))}
}

func TestWhyAndIsDerived(t *testing.T) {
	s := NewStore()
	head := fct("view", "a")
	base := fct("base", "a")
	s.OnDerive(head, rule("r1"), []ast.Fact{base})
	if !s.IsDerived(head) || s.IsDerived(base) {
		t.Error("IsDerived wrong")
	}
	why := s.Why(head)
	if len(why) != 1 || why[0].RuleID != "r1" || len(why[0].Supports) != 1 {
		t.Fatalf("why = %v", why)
	}
	if len(s.Why(base)) != 0 {
		t.Error("base fact has derivations")
	}
}

func TestMultipleDerivations(t *testing.T) {
	s := NewStore()
	head := fct("view", "a")
	s.OnDerive(head, rule("r1"), []ast.Fact{fct("b1", "x")})
	s.OnDerive(head, rule("r2"), []ast.Fact{fct("b2", "y")})
	if got := s.Why(head); len(got) != 2 {
		t.Fatalf("why = %v, want 2 derivations", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 distinct fact", s.Len())
	}
}

func TestBaseSupportsTransitive(t *testing.T) {
	s := NewStore()
	b1, b2, b3 := fct("base", "1"), fct("base", "2"), fct("base", "3")
	mid1, mid2 := fct("mid", "1"), fct("mid", "2")
	top := fct("top", "1")
	s.OnDerive(mid1, rule("r1"), []ast.Fact{b1, b2})
	s.OnDerive(mid2, rule("r1"), []ast.Fact{b3})
	s.OnDerive(top, rule("r2"), []ast.Fact{mid1, mid2})
	got := s.BaseSupports(top)
	if len(got) != 3 {
		t.Fatalf("base supports = %v, want 3 base facts", got)
	}
	for _, f := range got {
		if f.Rel != "base" {
			t.Errorf("non-base support %v", f)
		}
	}
	// A base fact supports itself.
	if got := s.BaseSupports(b1); len(got) != 1 || !got[0].Equal(b1) {
		t.Errorf("base self-support = %v", got)
	}
}

func TestBaseSupportsCycleSafe(t *testing.T) {
	s := NewStore()
	a, b := fct("x", "a"), fct("x", "b")
	base := fct("base", "z")
	// Mutually supporting derived facts (possible with recursion).
	s.OnDerive(a, rule("r"), []ast.Fact{b, base})
	s.OnDerive(b, rule("r"), []ast.Fact{a})
	got := s.BaseSupports(a)
	if len(got) != 1 || !got[0].Equal(base) {
		t.Errorf("cyclic supports = %v, want just the base fact", got)
	}
}

func TestResetClears(t *testing.T) {
	s := NewStore()
	s.OnDerive(fct("v", "1"), rule("r"), nil)
	s.Reset()
	if s.Len() != 0 || len(s.DerivedFacts()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestDerivedFactsSorted(t *testing.T) {
	s := NewStore()
	s.OnDerive(fct("v", "zz"), rule("r"), nil)
	s.OnDerive(fct("v", "aa"), rule("r"), nil)
	got := s.DerivedFacts()
	if len(got) != 2 || got[0].Key() > got[1].Key() {
		t.Errorf("derived facts = %v", got)
	}
}

func TestWhyReturnsCopy(t *testing.T) {
	s := NewStore()
	head := fct("v", "1")
	s.OnDerive(head, rule("r"), []ast.Fact{fct("b", "1")})
	why := s.Why(head)
	why[0].RuleID = "mutated"
	if s.Why(head)[0].RuleID != "r" {
		t.Error("Why exposes internal storage")
	}
}
