// Package provenance records why-provenance for facts derived by the
// engine: for each derived fact, the rule that produced it and the ground
// body facts that supported the derivation. The paper's access-control
// sketch (§2) derives default view policies "automatically from the
// provenance of the base relations"; the acl package consumes this store
// through its ProvenanceSource interface.
package provenance

import (
	"sort"
	"sync"

	"repro/internal/ast"
)

// Derivation is one way a fact was produced.
type Derivation struct {
	RuleID   string
	Rule     string // rendered rule text
	Supports []ast.Fact
}

// Store accumulates derivations. It implements engine.Tracer, so plugging a
// *Store into engine.Options.Tracer records provenance for every stage.
// Because intensional relations are recomputed every stage, the peer resets
// the store at each stage start.
type Store struct {
	mu      sync.RWMutex
	entries map[string][]Derivation // fact key -> derivations
	facts   map[string]ast.Fact     // fact key -> fact (for enumeration)
}

// NewStore creates an empty provenance store.
func NewStore() *Store {
	return &Store{
		entries: make(map[string][]Derivation),
		facts:   make(map[string]ast.Fact),
	}
}

// OnDerive implements engine.Tracer.
func (s *Store) OnDerive(head ast.Fact, rule *ast.Rule, supports []ast.Fact) {
	d := Derivation{RuleID: rule.ID, Rule: rule.String(), Supports: supports}
	key := head.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = append(s.entries[key], d)
	s.facts[key] = head
}

// Reset clears all recorded derivations (called at stage start).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string][]Derivation)
	s.facts = make(map[string]ast.Fact)
}

// Len returns the number of distinct derived facts recorded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Why returns the direct derivations of f (empty for base facts).
func (s *Store) Why(f ast.Fact) []Derivation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Derivation, len(s.entries[f.Key()]))
	copy(out, s.entries[f.Key()])
	return out
}

// IsDerived reports whether f has at least one recorded derivation.
func (s *Store) IsDerived(f ast.Fact) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries[f.Key()]) > 0
}

// BaseSupports returns the set of *base* facts (facts with no recorded
// derivation of their own) transitively supporting f, deduplicated and
// sorted by key. A fact with no derivations supports itself. Cycles in the
// support graph (possible with recursive rules) are handled by marking.
func (s *Store) BaseSupports(f ast.Fact) []ast.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var out []ast.Fact
	var walk func(f ast.Fact)
	walk = func(f ast.Fact) {
		key := f.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		ds := s.entries[key]
		if len(ds) == 0 {
			out = append(out, f)
			return
		}
		for _, d := range ds {
			for _, sup := range d.Supports {
				walk(sup)
			}
		}
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// DerivedFacts returns all facts with recorded derivations, sorted by key
// (for deterministic introspection output).
func (s *Store) DerivedFacts() []ast.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ast.Fact, 0, len(s.facts))
	for _, f := range s.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
