// Package core assembles the WebdamLog system of the paper: a set of
// autonomous peers, each running the rule engine over its own store,
// exchanging facts and delegations through a transport. It is the primary
// public surface of this reproduction; the root webdamlog package re-exports
// it together with the supporting types.
//
// A System hosts any number of in-process peers (the demo's "launch
// everything on one machine" mode — attendees' laptops plus the Webdam
// cloud peer are simulated as goroutine-isolated peers on one bus). For
// genuinely distributed deployments, create peers directly over the TCP
// transport; see cmd/wdl.
package core

import (
	"context"
	"fmt"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/parser"
	"repro/internal/peer"
	"repro/internal/store"
)

// System is an in-process WebdamLog deployment.
type System struct {
	net *peer.Network
}

// NewSystem creates an empty system.
func NewSystem() *System {
	return &System{net: peer.NewNetwork()}
}

// Network exposes the underlying peer network (scheduling, bus statistics).
func (s *System) Network() *peer.Network { return s.net }

// PeerOption customizes peer creation.
type PeerOption func(*peer.Config)

// WithPolicy sets the peer's delegation-control policy.
func WithPolicy(p acl.Policy) PeerOption {
	return func(c *peer.Config) { c.Policy = p }
}

// WithEngineOptions overrides evaluation options (naive mode, no indexes,
// iteration bounds) — used by the ablation benchmarks.
func WithEngineOptions(o engine.Options) PeerOption {
	return func(c *peer.Config) { c.Engine = &o }
}

// WithWAL makes the peer durable: state is logged to dir and recovered from
// it at creation. If the WAL cannot be opened, AddPeer fails with an error
// wrapping errdefs.ErrWAL — a peer configured for durability never silently
// comes up volatile.
func WithWAL(dir string) PeerOption {
	return func(c *peer.Config) {
		w, err := store.OpenWAL(dir)
		if err != nil {
			c.WALErr = fmt.Errorf("opening WAL in %s: %w", dir, err)
			return
		}
		c.WAL = w
	}
}

// WithProvenance enables why-provenance tracking on the peer.
func WithProvenance() PeerOption {
	return func(c *peer.Config) { c.Provenance = true }
}

// AddPeer creates a peer named name in the system.
func (s *System) AddPeer(name string, opts ...PeerOption) (*peer.Peer, error) {
	cfg := peer.Config{Name: name}
	for _, o := range opts {
		o(&cfg)
	}
	return s.net.NewPeer(cfg)
}

// Peer returns the peer named name, or nil.
func (s *System) Peer(name string) *peer.Peer { return s.net.Peer(name) }

// Peers returns all peers in name order.
func (s *System) Peers() []*peer.Peer { return s.net.Peers() }

// LoadSource parses a multi-peer program and applies it. Statements are
// scoped by the most recent `peer <name>;` declaration: relation
// declarations, facts and rules following it belong to that peer. Peers are
// created on first mention. Facts whose relation lives at another peer are
// still routed correctly (they are sent as updates), and rules always run
// at the peer that declares them, exactly as in the paper's model.
//
// Example:
//
//	peer emilien;
//	relation extensional pictures@emilien(id, name, owner, data);
//	pictures@emilien(1, "sea.jpg", "emilien", 0xFF);
//
//	peer jules;
//	relation intensional attendeePictures@jules(id, name, owner, data);
//	attendeePictures@jules($i,$n,$o,$d) :- selectedAttendee@jules($a), pictures@$a($i,$n,$o,$d);
func (s *System) LoadSource(src string) error {
	prog, err := parser.Parse(src)
	if err != nil {
		return err
	}
	return s.LoadProgram(prog)
}

// LoadProgram applies a parsed multi-peer program; see LoadSource.
func (s *System) LoadProgram(prog *ast.Program) error {
	var current *peer.Peer
	ensure := func(name string) (*peer.Peer, error) {
		if p := s.net.Peer(name); p != nil {
			return p, nil
		}
		return s.AddPeer(name)
	}
	for _, stmt := range prog.Statements {
		switch st := stmt.(type) {
		case ast.PeerDecl:
			p, err := ensure(st.Name)
			if err != nil {
				return err
			}
			current = p
		case ast.RelationDecl:
			owner, err := ensure(st.Peer)
			if err != nil {
				return err
			}
			if err := owner.DeclareRelation(st.Name, st.Kind, st.Cols...); err != nil {
				return err
			}
		case ast.Fact:
			target := current
			if target == nil || st.Peer != target.Name() {
				var err error
				target, err = ensure(st.Peer)
				if err != nil {
					return err
				}
			}
			if err := target.Insert(st); err != nil {
				return err
			}
		case ast.Rule:
			target := current
			if target == nil {
				// No peer context: a rule with a constant head peer runs there.
				if st.Head.Peer.IsVar() {
					return fmt.Errorf("core: rule %q needs a `peer` declaration to know where it runs", st.String())
				}
				var err error
				target, err = ensure(st.Head.Peer.Val.StringVal())
				if err != nil {
					return err
				}
			}
			if _, err := target.AddRuleAST(st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unknown statement type %T", stmt)
		}
	}
	return nil
}

// Run drives every peer until the system quiesces (no peer has work, no
// message is in flight), bounded by maxRounds (<=0 uses the default). It
// returns the number of scheduler rounds and stages executed.
//
// The context is honored between peer stages: cancellation or a deadline
// makes Run return promptly with the context's error (typically
// context.Canceled or context.DeadlineExceeded); hitting the round budget
// returns an error matching errdefs.ErrNoQuiescence.
func (s *System) Run(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	return s.net.RunToQuiescence(ctx, maxRounds)
}

// MustRun is Run for examples and tests: it panics if the system fails to
// quiesce.
func (s *System) MustRun() {
	if _, _, err := s.Run(context.Background(), 0); err != nil {
		panic(err)
	}
}

// Apply routes a batch through the owning peers: operations are grouped by
// destination and each group is applied atomically at its peer (see
// peer.Apply). Unknown local peers fail with errdefs.ErrUnknownPeer.
func (s *System) Apply(ctx context.Context, b *engine.Batch) error {
	if b == nil || b.Empty() {
		return nil
	}
	// Hand the whole batch to the first named peer; peer.Apply routes
	// remote shares itself, one message per destination.
	var origin *peer.Peer
	for _, op := range b.Ops() {
		if p := s.net.Peer(op.Fact.Peer); p != nil {
			origin = p
			break
		}
	}
	if origin == nil {
		return fmt.Errorf("core: %w: no batch destination is registered", errdefs.ErrUnknownPeer)
	}
	return origin.Apply(ctx, b)
}
