package core

import (
	"path/filepath"
	"testing"
)

func TestWithWALPersistsAcrossSystems(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "alice")

	sys1 := NewSystem()
	p1, err := sys1.AddPeer("alice", WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.LoadSource(`
		relation extensional notes@alice(text);
		notes@alice("remember the demo");
	`); err != nil {
		t.Fatal(err)
	}
	sys1.MustRun()
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := NewSystem()
	p2, err := sys2.AddPeer("alice", WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := p2.Query("notes")
	if len(got) != 1 || got[0][0].StringVal() != "remember the demo" {
		t.Fatalf("recovered notes = %v", got)
	}
}
