package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/engine"
)

func TestLoadSourceMultiPeer(t *testing.T) {
	sys := NewSystem()
	err := sys.LoadSource(`
		peer emilien;
		relation extensional pictures@emilien(id, name, owner, data);
		pictures@emilien(1, "sea.jpg", "emilien", 0xCAFE);

		peer jules;
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rounds, stages, err := sys.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 || stages == 0 {
		t.Errorf("rounds=%d stages=%d", rounds, stages)
	}
	got := sys.Peer("jules").Query("attendeePictures")
	if len(got) != 1 {
		t.Fatalf("attendeePictures = %v", got)
	}
}

func TestLoadSourceRoutesCrossPeerFacts(t *testing.T) {
	sys := NewSystem()
	// A fact for bob written inside alice's section must land at bob.
	err := sys.LoadSource(`
		peer bob;
		relation extensional inbox@bob(x);

		peer alice;
		relation extensional out@alice(x);
		inbox@bob("direct");
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	if got := sys.Peer("bob").Query("inbox"); len(got) != 1 {
		t.Errorf("bob inbox = %v", got)
	}
}

func TestLoadSourceRuleWithoutPeerContext(t *testing.T) {
	sys := NewSystem()
	// No `peer` statement: a constant-head rule runs at its head peer.
	err := sys.LoadSource(`
		relation extensional a@alice(x);
		relation intensional b@alice(x);
		a@alice("v");
		b@alice($x) :- a@alice($x);
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	if got := sys.Peer("alice").Query("b"); len(got) != 1 {
		t.Errorf("b = %v", got)
	}
}

func TestLoadSourceVariableHeadNeedsContext(t *testing.T) {
	sys := NewSystem()
	err := sys.LoadSource(`
		relation extensional a@alice(x);
		b@$p("v") :- a@alice($p);
	`)
	if err == nil || !strings.Contains(err.Error(), "peer") {
		t.Errorf("err = %v, want peer-context error", err)
	}
}

func TestAddPeerOptions(t *testing.T) {
	sys := NewSystem()
	p, err := sys.AddPeer("guarded",
		WithPolicy(acl.NewTrustPolicy("hub")),
		WithEngineOptions(engine.Options{SemiNaive: false, UseIndexes: false, MaxIterations: 10}),
		WithProvenance(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Provenance() == nil {
		t.Error("provenance not enabled")
	}
	if p.Engine().Options().SemiNaive {
		t.Error("engine options not applied")
	}
	if p.Controller().Policy().DecideDelegation("stranger") != acl.Hold {
		t.Error("policy not applied")
	}
}

func TestDuplicatePeerNamesShareBusEndpoint(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.AddPeer("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddPeer("dup"); err != nil {
		t.Fatal(err) // second registration is tolerated; first peer wins in the registry
	}
	if sys.Peer("dup") == nil {
		t.Fatal("peer lookup failed")
	}
	if got := len(sys.Peers()); got != 1 {
		t.Errorf("peers = %d, want 1", got)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	sys := NewSystem()
	if err := sys.LoadSource(`this is not webdamlog`); err == nil {
		t.Error("parse error swallowed")
	}
}
