package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/value"
)

// TestRunCanceledContext: a canceled context makes Run return promptly with
// context.Canceled instead of driving stages.
func TestRunCanceledContext(t *testing.T) {
	sys := NewSystem()
	if err := sys.LoadSource(`
		peer alice;
		relation extensional a@alice(x);
		a@alice("v");
	`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := sys.Run(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	// The work is still there: a fresh context resumes the run.
	if _, _, err := sys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.Peer("alice").Query("a"); len(got) != 1 {
		t.Errorf("a = %v after resumed run", got)
	}
}

// TestRunDeadlineExceeded: an already-expired deadline surfaces the
// context's error, not a quiescence error.
func TestRunDeadlineExceeded(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.AddPeer("alice"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := sys.Run(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWithWALErrorSurfaces: a WAL that cannot be opened fails AddPeer with
// a typed ErrWAL instead of printing to stderr and creating a volatile peer.
func TestWithWALErrorSurfaces(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The WAL directory path runs through a regular file: MkdirAll fails.
	sys := NewSystem()
	p, err := sys.AddPeer("alice", WithWAL(filepath.Join(blocker, "wal")))
	if err == nil {
		t.Fatal("AddPeer succeeded with an unopenable WAL")
	}
	if p != nil {
		t.Error("peer returned alongside the error")
	}
	if !errors.Is(err, errdefs.ErrWAL) {
		t.Errorf("err = %v, want ErrWAL", err)
	}
	// The failed peer must not be registered.
	if sys.Peer("alice") != nil {
		t.Error("failed durable peer was registered anyway")
	}
}

// TestSystemApplyRoutesBatch: a batch handed to the system lands at every
// owning peer atomically.
func TestSystemApplyRoutesBatch(t *testing.T) {
	sys := NewSystem()
	if err := sys.LoadSource(`
		peer a;
		relation extensional data@a(x);
		peer b;
		relation extensional data@b(x);
	`); err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	batch := engine.NewBatch()
	for i := 0; i < 10; i++ {
		batch.Insert(factInt("data", "a", int64(i)))
		batch.Insert(factInt("data", "b", int64(i)))
	}
	if err := sys.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	if got := len(sys.Peer("a").Query("data")); got != 10 {
		t.Errorf("data@a = %d tuples, want 10", got)
	}
	if got := len(sys.Peer("b").Query("data")); got != 10 {
		t.Errorf("data@b = %d tuples, want 10", got)
	}
}

// TestSystemApplyUnknownDestination: a batch naming only unknown peers is
// refused with the typed error.
func TestSystemApplyUnknownDestination(t *testing.T) {
	sys := NewSystem()
	batch := engine.NewBatch().Insert(factInt("data", "ghost", 1))
	if err := sys.Apply(context.Background(), batch); !errors.Is(err, errdefs.ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

// TestLoadSourceFactForOtherPeerMidBlock: facts owned by another peer may
// appear inside a peer block; they are routed to their owner and the block
// context is kept for what follows.
func TestLoadSourceFactForOtherPeerMidBlock(t *testing.T) {
	sys := NewSystem()
	err := sys.LoadSource(`
		peer bob;
		relation extensional inbox@bob(x);

		peer alice;
		relation extensional out@alice(x);
		inbox@bob("routed");
		out@alice("local");
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	if got := sys.Peer("bob").Query("inbox"); len(got) != 1 || got[0][0].StringVal() != "routed" {
		t.Errorf("inbox@bob = %v", got)
	}
	if got := sys.Peer("alice").Query("out"); len(got) != 1 || got[0][0].StringVal() != "local" {
		t.Errorf("out@alice = %v (block context lost after cross-peer fact?)", got)
	}
}

// TestLoadSourceFactCreatesOwnerPeer: a fact whose owner was never declared
// with a `peer` statement still creates and targets that peer.
func TestLoadSourceFactCreatesOwnerPeer(t *testing.T) {
	sys := NewSystem()
	err := sys.LoadSource(`
		peer alice;
		relation extensional out@alice(x);
		inbox@carol("hello");
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	if sys.Peer("carol") == nil {
		t.Fatal("owner peer not created on first mention")
	}
	// The relation was auto-declared at ingestion with generic columns.
	if got := sys.Peer("carol").Query("inbox"); len(got) != 1 {
		t.Errorf("inbox@carol = %v", got)
	}
}

// TestLoadSourceVariableHeadWithContext: a rule with a variable head peer
// is legal inside a peer block — it runs at the block's peer (which is what
// the error message for the missing-context case points users to).
func TestLoadSourceVariableHeadWithContext(t *testing.T) {
	sys := NewSystem()
	err := sys.LoadSource(`
		peer dest;
		relation extensional inbox@dest(x);

		peer router;
		relation extensional route@router(p, x);
		route@router("dest", "payload");
		inbox@$p($x) :- route@router($p, $x);
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	dest := sys.Peer("dest")
	if dest == nil {
		t.Fatal("destination peer missing")
	}
	if got := dest.Query("inbox"); len(got) != 1 || got[0][0].StringVal() != "payload" {
		t.Errorf("inbox@dest = %v", got)
	}
}

func factInt(rel, peerName string, v int64) ast.Fact {
	return ast.NewFact(rel, peerName, value.Int(v))
}
