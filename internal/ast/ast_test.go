package ast

import (
	"testing"

	"repro/internal/value"
)

func TestTermBasics(t *testing.T) {
	v := V("x")
	if !v.IsVar() || v.String() != "$x" {
		t.Errorf("V: %v", v)
	}
	c := CStr("hello")
	if c.IsVar() || c.String() != `"hello"` {
		t.Errorf("CStr: %v", c)
	}
	if !v.Equal(V("x")) || v.Equal(V("y")) || v.Equal(c) {
		t.Error("term equality broken")
	}
	if !CInt(3).Equal(C(value.Int(3))) {
		t.Error("CInt equality broken")
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{
		Neg:  true,
		Rel:  CStr("pictures"),
		Peer: V("attendee"),
		Args: []Term{V("id"), CStr("sea.jpg"), CInt(5)},
	}
	want := `not pictures@$attendee($id, "sea.jpg", 5)`
	if got := a.String(); got != want {
		t.Errorf("atom = %q, want %q", got, want)
	}
}

func TestAtomVarsAndGround(t *testing.T) {
	a := Atom{Rel: V("r"), Peer: CStr("p"), Args: []Term{V("x"), CStr("c"), V("x")}}
	vars := a.Vars(nil)
	if len(vars) != 3 || vars[0] != "r" || vars[1] != "x" || vars[2] != "x" {
		t.Errorf("vars = %v", vars)
	}
	if a.IsGround() {
		t.Error("atom with vars reported ground")
	}
	g := NewAtom("m", "p", CStr("a"))
	if !g.IsGround() {
		t.Error("ground atom reported non-ground")
	}
}

func TestRuleVarsDeduplicated(t *testing.T) {
	r := Rule{
		Head: Atom{Rel: CStr("h"), Peer: CStr("p"), Args: []Term{V("x")}},
		Body: []Atom{
			{Rel: CStr("a"), Peer: CStr("p"), Args: []Term{V("x"), V("y")}},
			{Rel: CStr("b"), Peer: V("y"), Args: []Term{V("z")}},
		},
	}
	vars := r.Vars()
	if len(vars) != 3 {
		t.Errorf("vars = %v, want [x y z]", vars)
	}
}

func TestRuleCloneIsDeep(t *testing.T) {
	r := Rule{
		Head: Atom{Rel: CStr("h"), Peer: CStr("p"), Args: []Term{V("x")}},
		Body: []Atom{{Rel: CStr("a"), Peer: CStr("p"), Args: []Term{V("x")}}},
	}
	c := r.Clone()
	c.Body[0].Args[0] = CStr("mutated")
	c.Head.Args[0] = CStr("mutated")
	if r.Body[0].Args[0].IsVar() == false || r.Head.Args[0].IsVar() == false {
		t.Error("Clone shares atom argument storage")
	}
}

func TestFactRule(t *testing.T) {
	r := Rule{Head: NewAtom("m", "p", CStr("v"), CInt(2))}
	if !r.IsFactRule() {
		t.Fatal("ground bodiless rule is a fact rule")
	}
	f := r.HeadFact()
	if f.Rel != "m" || f.Peer != "p" || !f.Args.Equal(value.Tuple{value.Str("v"), value.Int(2)}) {
		t.Errorf("fact = %v", f)
	}
	r2 := Rule{Head: Atom{Rel: CStr("m"), Peer: CStr("p"), Args: []Term{V("x")}}}
	if r2.IsFactRule() {
		t.Error("rule with head variable is not a fact rule")
	}
}

func TestHeadFactPanicsOnVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HeadFact on non-ground head must panic")
		}
	}()
	r := Rule{Head: Atom{Rel: CStr("m"), Peer: CStr("p"), Args: []Term{V("x")}}}
	r.HeadFact()
}

func TestSubstitution(t *testing.T) {
	sub := Substitution{"x": value.Str("emilien"), "y": value.Int(7)}
	r := Rule{
		Head: Atom{Rel: CStr("out"), Peer: V("x"), Args: []Term{V("y"), V("z")}},
		Body: []Atom{{Rel: V("x"), Peer: CStr("p"), Args: []Term{V("z")}}},
	}
	s := sub.ApplyRule(r)
	if s.Head.Peer.IsVar() || s.Head.Peer.Val.StringVal() != "emilien" {
		t.Errorf("head peer = %v", s.Head.Peer)
	}
	if s.Head.Args[0].IsVar() || s.Head.Args[0].Val.IntVal() != 7 {
		t.Errorf("head arg0 = %v", s.Head.Args[0])
	}
	if !s.Head.Args[1].IsVar() {
		t.Errorf("unbound var z must stay a variable: %v", s.Head.Args[1])
	}
	if s.Body[0].Rel.IsVar() {
		t.Errorf("body relation var not substituted: %v", s.Body[0].Rel)
	}
	// The original rule is untouched.
	if !r.Head.Peer.IsVar() {
		t.Error("ApplyRule mutated its input")
	}
}

func TestFactKeyDistinguishesRelPeer(t *testing.T) {
	f1 := NewFact("a", "b", value.Str("x"))
	f2 := NewFact("b", "a", value.Str("x"))
	if f1.Key() == f2.Key() {
		t.Error("fact keys collide across rel/peer swap")
	}
}

func TestFactAtomConversion(t *testing.T) {
	f := NewFact("m", "p", value.Str("v"), value.Int(1))
	a := f.Atom()
	if !a.IsGround() || a.String() != `m@p("v", 1)` {
		t.Errorf("atom = %v", a)
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{
		Peers:     []PeerDecl{{Name: "alice", Addr: "x:1"}},
		Relations: []RelationDecl{{Name: "r", Peer: "alice", Kind: Intensional, Cols: []string{"a"}}},
		Facts:     []Fact{NewFact("e", "alice", value.Int(1))},
		Rules: []Rule{{
			Head: NewAtom("r", "alice", V("x")),
			Body: []Atom{{Rel: CStr("e"), Peer: CStr("alice"), Args: []Term{V("x")}}},
		}},
	}
	s := p.String()
	for _, want := range []string{`peer alice "x:1";`, "relation intensional r@alice(a);", "e@alice(1);", "r@alice($x) :- e@alice($x);"} {
		if !contains(s, want) {
			t.Errorf("program string missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestUpdateOpAndKindStrings(t *testing.T) {
	if Extensional.String() != "extensional" || Intensional.String() != "intensional" {
		t.Error("RelKind.String broken")
	}
	r := Rule{Op: Delete, Head: NewAtom("m", "p", CStr("v"))}
	if r.String() != `-m@p("v")` {
		t.Errorf("deletion rule renders as %q", r.String())
	}
}
