// Package ast defines the abstract syntax of the WebdamLog language:
// terms, atoms, facts, rules and programs, together with printing,
// substitution and structural equality.
//
// Following the paper (§2 "Language and System"), an atom is written
// m@p(t1, …, tn) where both the relation name m and the peer name p may be
// variables; variables are written with a leading '$'. Rule bodies are
// evaluated left-to-right, and the order of atoms is significant.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Pos is a source position: 1-based line and column of the first token of
// the node that carries it. The zero Pos means "no position" — nodes built
// programmatically (rather than parsed) have none, and every consumer must
// tolerate that. Positions are carried for diagnostics only: they are
// ignored by Equal, Key and String, so two nodes differing only in Pos are
// the same fact, atom or rule everywhere else in the system.
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position was actually set (parsed input).
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the zero position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// RelKind distinguishes extensional (base, persistent, updatable) relations
// from intensional (derived, recomputed every stage) relations.
type RelKind uint8

// The two relation kinds of WebdamLog.
const (
	Extensional RelKind = iota
	Intensional
)

// String returns "extensional" or "intensional".
func (k RelKind) String() string {
	if k == Intensional {
		return "intensional"
	}
	return "extensional"
}

// Term is either a constant value or a variable. Variables are identified by
// name without the leading '$'. The zero Term is the constant empty string.
type Term struct {
	Var string      // non-empty iff the term is a variable
	Val value.Value // constant payload when Var == ""
	// Pos is the term's source position; zero when not parsed. Ignored by
	// Equal, so substituted and hand-built terms compare as usual.
	Pos Pos
}

// V returns a variable term named name (without the leading '$').
func V(name string) Term { return Term{Var: name} }

// C returns a constant term holding v.
func C(v value.Value) Term { return Term{Val: v} }

// CStr returns a constant string term.
func CStr(s string) Term { return C(value.Str(s)) }

// CInt returns a constant integer term.
func CInt(i int64) Term { return C(value.Int(i)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Equal reports structural equality of terms.
func (t Term) Equal(u Term) bool {
	if t.Var != "" || u.Var != "" {
		return t.Var == u.Var
	}
	return t.Val.Equal(u.Val)
}

// String renders the term in concrete syntax ('$' prefix for variables).
func (t Term) String() string {
	if t.IsVar() {
		return "$" + t.Var
	}
	return t.Val.Literal()
}

// nameString renders a term appearing in relation or peer position, where
// constants print as bare identifiers rather than quoted strings.
func (t Term) nameString() string {
	if t.IsVar() {
		return "$" + t.Var
	}
	if t.Val.Kind() == value.KindString {
		return t.Val.StringVal()
	}
	return t.Val.Literal()
}

// Atom is one literal of a rule: (possibly negated) relation-at-peer with an
// argument list. Rel and Peer are terms so that they can be variables, the
// distinguishing feature of WebdamLog.
type Atom struct {
	Neg  bool
	Rel  Term
	Peer Term
	Args []Term
	// Pos is the source position of the atom's first token (the `not`
	// keyword for negated atoms, the relation term otherwise); zero when the
	// atom was not parsed from source. Ignored by Equal.
	Pos Pos
}

// NewAtom builds a positive atom with constant relation and peer names.
func NewAtom(rel, peer string, args ...Term) Atom {
	return Atom{Rel: CStr(rel), Peer: CStr(peer), Args: args}
}

// String renders the atom in concrete syntax, e.g. `not pictures@$p($id)`.
func (a Atom) String() string {
	var sb strings.Builder
	if a.Neg {
		sb.WriteString("not ")
	}
	sb.WriteString(a.Rel.nameString())
	sb.WriteByte('@')
	sb.WriteString(a.Peer.nameString())
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Neg != b.Neg || !a.Rel.Equal(b.Rel) || !a.Peer.Equal(b.Peer) || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Vars appends the names of variables occurring in the atom to dst
// (duplicates included, in syntactic order) and returns it.
func (a Atom) Vars(dst []string) []string {
	if a.Rel.IsVar() {
		dst = append(dst, a.Rel.Var)
	}
	if a.Peer.IsVar() {
		dst = append(dst, a.Peer.Var)
	}
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	if a.Rel.IsVar() || a.Peer.IsVar() {
		return false
	}
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	out := a
	out.Args = make([]Term, len(a.Args))
	copy(out.Args, a.Args)
	return out
}

// UpdateOp says what a rule head does to an extensional relation.
type UpdateOp uint8

// Head operations: Derive is the default WebdamLog semantics (insertion for
// extensional heads, derivation for intensional heads); Delete is the
// deletion extension, written with a '-' before the head.
const (
	Derive UpdateOp = iota
	Delete
)

// Fact is a ground unit of data: relation m at peer p holding a tuple.
type Fact struct {
	Rel  string
	Peer string
	Args value.Tuple
	// Pos is the statement's source position; zero when not parsed.
	// Ignored by Equal and Key.
	Pos Pos
}

// NewFact builds a fact.
func NewFact(rel, peer string, args ...value.Value) Fact {
	return Fact{Rel: rel, Peer: peer, Args: value.Tuple(args)}
}

// String renders the fact in concrete syntax.
func (f Fact) String() string {
	var sb strings.Builder
	sb.WriteString(f.Rel)
	sb.WriteByte('@')
	sb.WriteString(f.Peer)
	sb.WriteByte('(')
	for i, v := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.Literal())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Equal reports structural equality of facts.
func (f Fact) Equal(g Fact) bool {
	return f.Rel == g.Rel && f.Peer == g.Peer && f.Args.Equal(g.Args)
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string {
	return f.Rel + "@" + f.Peer + "|" + f.Args.Key()
}

// Atom converts the fact to a ground positive atom.
func (f Fact) Atom() Atom {
	args := make([]Term, len(f.Args))
	for i, v := range f.Args {
		args[i] = C(v)
	}
	return Atom{Rel: CStr(f.Rel), Peer: CStr(f.Peer), Args: args}
}

// Rule is one WebdamLog rule: Head :- Body. ID identifies the rule within
// its owning peer; Origin names the peer that authored the rule (for
// delegated rules this differs from the executing peer).
type Rule struct {
	ID     string
	Origin string
	Op     UpdateOp
	Head   Atom
	Body   []Atom
	// Pos is the statement's source position (the leading '+'/'-' sign or
	// the head atom); zero when not parsed. Ignored by Equal.
	Pos Pos
}

// String renders the rule in concrete syntax (without trailing ';').
func (r Rule) String() string {
	var sb strings.Builder
	if r.Op == Delete {
		sb.WriteByte('-')
	}
	sb.WriteString(r.Head.String())
	if len(r.Body) == 0 {
		return sb.String()
	}
	sb.WriteString(" :- ")
	for i, a := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Equal reports structural equality of rules (ignoring ID and Origin).
func (r Rule) Equal(s Rule) bool {
	if r.Op != s.Op || !r.Head.Equal(s.Head) || len(r.Body) != len(s.Body) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(s.Body[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	out := r
	out.Head = r.Head.Clone()
	out.Body = make([]Atom, len(r.Body))
	for i, a := range r.Body {
		out.Body[i] = a.Clone()
	}
	return out
}

// Vars returns the names of all variables in the rule, in first-occurrence
// order, without duplicates.
func (r Rule) Vars() []string {
	var all []string
	all = r.Head.Vars(all)
	for _, a := range r.Body {
		all = a.Vars(all)
	}
	seen := make(map[string]bool, len(all))
	out := all[:0]
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// IsFactRule reports whether the rule has an empty body and a ground head,
// i.e. it asserts a fact.
func (r Rule) IsFactRule() bool {
	return len(r.Body) == 0 && r.Head.IsGround()
}

// HeadFact converts a fact-rule's head to a Fact. It panics if the head is
// not ground (callers must check IsFactRule first).
func (r Rule) HeadFact() Fact {
	if !r.Head.IsGround() {
		panic("ast: HeadFact on non-ground head " + r.Head.String())
	}
	args := make(value.Tuple, len(r.Head.Args))
	for i, t := range r.Head.Args {
		args[i] = t.Val
	}
	return Fact{
		Rel:  r.Head.Rel.Val.StringVal(),
		Peer: r.Head.Peer.Val.StringVal(),
		Args: args,
	}
}

// RelationDecl declares a relation's schema at a peer.
type RelationDecl struct {
	Name string
	Peer string
	Kind RelKind
	Cols []string // column names; len(Cols) is the arity
	// Pos is the `relation` keyword's source position; zero when not parsed.
	Pos Pos
}

// String renders the declaration in concrete syntax.
func (d RelationDecl) String() string {
	kw := "extensional"
	if d.Kind == Intensional {
		kw = "intensional"
	}
	return fmt.Sprintf("relation %s %s@%s(%s)", kw, d.Name, d.Peer, strings.Join(d.Cols, ", "))
}

// PeerDecl declares a peer and (optionally) its network address.
type PeerDecl struct {
	Name string
	Addr string
	// Pos is the `peer` keyword's source position; zero when not parsed.
	Pos Pos
}

// String renders the declaration in concrete syntax.
func (d PeerDecl) String() string {
	if d.Addr == "" {
		return "peer " + d.Name
	}
	return fmt.Sprintf("peer %s %q", d.Name, d.Addr)
}

// Statement is any top-level program statement: PeerDecl, RelationDecl,
// Fact or Rule.
type Statement interface {
	stmt()
}

func (PeerDecl) stmt()     {}
func (RelationDecl) stmt() {}
func (Fact) stmt()         {}
func (Rule) stmt()         {}

// Program is a parsed WebdamLog source unit. The categorized slices hold
// declarations, facts and rules in source order; Statements additionally
// preserves the global statement order, which multi-peer program files use
// to scope facts and rules to the most recent `peer` declaration.
type Program struct {
	Peers     []PeerDecl
	Relations []RelationDecl
	Facts     []Fact
	Rules     []Rule
	// Statements is the full program in source order.
	Statements []Statement
}

// String renders the whole program in concrete syntax.
func (p *Program) String() string {
	var sb strings.Builder
	for _, d := range p.Peers {
		sb.WriteString(d.String())
		sb.WriteString(";\n")
	}
	for _, d := range p.Relations {
		sb.WriteString(d.String())
		sb.WriteString(";\n")
	}
	for _, f := range p.Facts {
		sb.WriteString(f.String())
		sb.WriteString(";\n")
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Substitution maps variable names to values.
type Substitution map[string]value.Value

// ApplyTerm replaces the term's variable by its binding, if any.
func (s Substitution) ApplyTerm(t Term) Term {
	if t.IsVar() {
		if v, ok := s[t.Var]; ok {
			return C(v)
		}
	}
	return t
}

// ApplyAtom applies the substitution to every term of the atom.
func (s Substitution) ApplyAtom(a Atom) Atom {
	out := a
	out.Rel = s.ApplyTerm(a.Rel)
	out.Peer = s.ApplyTerm(a.Peer)
	out.Args = make([]Term, len(a.Args))
	for i, t := range a.Args {
		out.Args[i] = s.ApplyTerm(t)
	}
	return out
}

// ApplyRule applies the substitution to the head and every body atom.
func (s Substitution) ApplyRule(r Rule) Rule {
	out := r
	out.Head = s.ApplyAtom(r.Head)
	out.Body = make([]Atom, len(r.Body))
	for i, a := range r.Body {
		out.Body[i] = s.ApplyAtom(a)
	}
	return out
}
