package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

const metricsPkgPath = "repro/internal/metrics"

// MetricsInit keeps the metrics surface scrape-safe: families must be
// registered once at startup (never inside a loop), under compile-time
// constant names and label names, and label values must not be formatted
// from data (fmt.Sprint*/strconv.* arguments to With create one series per
// distinct value — unbounded cardinality).
var MetricsInit = &Analyzer{
	Name: "metricsinit",
	Doc: "metric families must be registered once, outside loops, with " +
		"constant names and labels, and With must not take formatted values",
	Run: runMetricsInit,
}

func runMetricsInit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMetricsNode(pass, fd.Body, false)
		}
	}
	return nil
}

// checkMetricsNode walks n, tracking whether the walk is inside a loop.
func checkMetricsNode(pass *Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		switch x := child.(type) {
		case *ast.ForStmt:
			if x.Init != nil {
				checkMetricsNode(pass, x.Init, inLoop)
			}
			checkMetricsNode(pass, x.Body, true)
			return false
		case *ast.RangeStmt:
			checkMetricsNode(pass, x.X, inLoop)
			checkMetricsNode(pass, x.Body, true)
			return false
		case *ast.CallExpr:
			checkMetricsCall(pass, x, inLoop)
		}
		return true
	})
}

// metricsFunc resolves a call to a function of the metrics package and
// returns it with its receiver type name ("Registry", "CounterVec", ...).
func metricsFunc(pass *Pass, call *ast.CallExpr) (fn *types.Func, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok = pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkgPath {
		return nil, ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil, ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return fn, named.Obj().Name()
}

func checkMetricsCall(pass *Pass, call *ast.CallExpr, inLoop bool) {
	fn, recv := metricsFunc(pass, call)
	if fn == nil {
		return
	}
	if recv == "Registry" {
		var labelStart int
		switch fn.Name() {
		case "Counter", "Gauge":
			labelStart = 2
		case "Histogram":
			labelStart = 3
		default:
			return
		}
		if inLoop {
			pass.Reportf(call.Pos(),
				"metric family registered inside a loop; register once at startup and reuse the vector")
		}
		if len(call.Args) > 0 {
			if _, ok := constFormat(pass, call); !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a compile-time constant string")
			}
		}
		for _, arg := range call.Args[min(labelStart, len(call.Args)):] {
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil {
				pass.Reportf(arg.Pos(),
					"metric label names must be compile-time constant strings")
			}
		}
		return
	}
	if fn.Name() == "With" && strings.HasSuffix(recv, "Vec") {
		for _, arg := range call.Args {
			if what := formattedValue(pass, arg); what != "" {
				pass.Reportf(arg.Pos(),
					"label value built with %s creates unbounded series cardinality; use a bounded label set", what)
			}
		}
	}
}

// formattedValue reports whether an expression is a call that formats data
// into a string (the classic unbounded-cardinality mistake).
func formattedValue(pass *Pass, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch pkg := fn.Pkg().Path(); {
	case pkg == "fmt" && strings.HasPrefix(fn.Name(), "Sprint"):
		return "fmt." + fn.Name()
	case pkg == "strconv" && (strings.HasPrefix(fn.Name(), "Format") || fn.Name() == "Itoa" || fn.Name() == "Quote"):
		return "strconv." + fn.Name()
	}
	return ""
}
