package vet_test

import (
	"testing"

	"repro/internal/vet"
	"repro/internal/vet/vettest"
)

func TestMutexIOFixture(t *testing.T) {
	vettest.Run(t, "testdata/mutexio", vet.MutexIO)
}

func TestErrdefsWrapFixture(t *testing.T) {
	vettest.Run(t, "testdata/errdefswrap", vet.ErrdefsWrap)
}

func TestMetricsInitFixture(t *testing.T) {
	vettest.Run(t, "testdata/metricsinit", vet.MetricsInit)
}

// TestRealTreeClean is the acceptance gate: the analyzers must report
// nothing on the repository itself.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := vet.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := vet.RunAnalyzers(pkgs, vet.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding on real tree: %s", f)
	}
}
