package vet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrdefsWrap enforces the error contract of the public surface: in the
// root webdamlog package, an exported function that returns an error must
// not mint ad-hoc errors. errors.New is always a finding, and fmt.Errorf
// must wrap (%w) an underlying error or sentinel — otherwise callers cannot
// match the failure with errors.Is against the errdefs taxonomy.
var ErrdefsWrap = &Analyzer{
	Name: "errdefswrap",
	Doc: "in package webdamlog, exported functions returning error must " +
		"wrap an errdefs sentinel or another error, not mint bare errors",
	Run: runErrdefsWrap,
}

func runErrdefsWrap(pass *Pass) error {
	if pass.Pkg.Name() != "webdamlog" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !returnsError(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calledFunc(pass, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "errors" && fn.Name() == "New":
					pass.Reportf(call.Pos(),
						"%s constructs a bare error; use an errdefs sentinel (or wrap one with %%w)",
						fd.Name.Name)
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					if format, ok := constFormat(pass, call); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"%s returns an error that wraps nothing; add %%w with an errdefs sentinel or the underlying error",
							fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// returnsError reports whether the function's results include error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// calledFunc resolves a call expression to the function object it invokes.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// constFormat extracts a constant first argument of a call, if any.
func constFormat(pass *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
