// Package vet is a small, dependency-free analogue of golang.org/x/tools'
// go/analysis framework, hosting this repository's custom static checks:
//
//   - mutexio: no blocking I/O (channel operations, dials, sends, sleeps)
//     while holding a sync.Mutex/RWMutex — the bug class behind the peer
//     outbox rework, where a dial under peer.Peer.mu stalled every stage;
//   - errdefswrap: errors constructed on the public root surface must wrap
//     an errdefs sentinel (or another error via %w), so callers can match
//     failures with errors.Is instead of string comparison;
//   - metricsinit: metric families are registered once, outside loops, with
//     compile-time-constant names and label sets of bounded cardinality.
//
// The framework loads packages with `go list -export -deps -json`, parses
// their sources with go/parser and type-checks them against the compiler's
// export data (go/importer), giving each analyzer a fully typed AST — the
// same inputs an analysis.Pass would carry, without the x/tools dependency,
// which this build deliberately avoids.
//
// cmd/wdlvet is the multichecker driver; vettest runs analyzers over
// testdata fixtures annotated with `// want "regexp"` comments, in the
// style of analysistest.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and on the command line.
	Name string
	// Doc is a one-paragraph description of what it reports.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message (analyzer)".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{MutexIO, ErrdefsWrap, MetricsInit}
}

// RunAnalyzers applies each analyzer to each package and returns the
// findings in (file, line, column) order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(f Finding) { out = append(out, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Pos.Column < b.Pos.Column
}
