// Package metricsinit is the fixture for the metricsinit analyzer:
// registration discipline and label cardinality for the metrics package.
package metricsinit

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
)

const goodName = "wdl_good_total"

func register(reg *metrics.Registry, dynamic string, ids []int) {
	good := reg.Counter(goodName, "A well-registered counter.", "peer")
	good.With("alice").Inc()

	reg.Counter("wdl_ok_total", "Literal name: fine.", "peer", "result")

	reg.Counter(dynamic, "Dynamic name.", "peer") // want `metric name must be a compile-time constant`

	label := "peer" + dynamic
	reg.Gauge("wdl_dyn_label", "Dynamic label name.", label) // want `label names must be compile-time constant`

	for _, id := range ids {
		reg.Counter("wdl_looped_total", "Registered per item.", "peer") // want `registered inside a loop`
		_ = id
	}

	good.With(fmt.Sprintf("peer-%d", len(ids))).Inc() // want `unbounded series cardinality`
	good.With(strconv.Itoa(len(ids))).Inc()           // want `unbounded series cardinality`
	good.With(dynamic).Inc()                          // a variable may be bounded: fine
}
