// Package mutexio is the fixture for the mutexio analyzer: operations
// performed while holding a sync mutex. Lines marked `want` must be
// flagged; everything else must stay silent.
package mutexio

import (
	"net"
	"sync"
	"time"
)

type sender struct{}

func (sender) Send(msg string) error { return nil }

type peerish struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	out  sender
	ch   chan int
	done chan struct{}
}

func (p *peerish) badSleepUnderLock() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while holding p.mu`
	p.mu.Unlock()
}

func (p *peerish) badDialUnderDefer() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := net.Dial("tcp", "localhost:0") // want `call to net.Dial while holding p.mu`
	if err != nil {
		return err
	}
	return conn.Close()
}

func (p *peerish) badSendUnderRLock() error {
	p.rw.RLock()
	defer p.rw.RUnlock()
	return p.out.Send("hello") // want `call to method Send while holding p.rw`
}

func (p *peerish) badChannelOps() {
	p.mu.Lock()
	p.ch <- 1 // want `channel send while holding p.mu`
	<-p.done  // want `channel receive while holding p.mu`
	select {  // want `blocking select while holding p.mu`
	case <-p.done:
	case p.ch <- 2:
	}
	p.mu.Unlock()
}

func (p *peerish) okAfterUnlock() {
	p.mu.Lock()
	n := len(p.ch)
	p.mu.Unlock()
	time.Sleep(time.Duration(n)) // unlocked: fine
	p.ch <- n                    // unlocked: fine
}

func (p *peerish) okNonBlockingSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // has a default case: never blocks
	case p.ch <- 1:
	default:
	}
}

func (p *peerish) okGoroutineAndClosure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.ch <- 1 // runs without the lock
	}()
	fn := func() { <-p.done } // runs later, without the lock
	_ = fn
}

func (p *peerish) okNoLock() error {
	time.Sleep(time.Millisecond)
	<-p.done
	return p.out.Send("bye")
}
