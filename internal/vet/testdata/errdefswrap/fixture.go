// Fixture for the errdefswrap analyzer. The package is named webdamlog
// because the analyzer targets the repository's public root surface, which
// it recognizes by package name.
package webdamlog

import (
	"errors"
	"fmt"

	"repro/internal/errdefs"
)

// Open is exported and returns error: its failures must wrap a sentinel.
func Open(name string) error {
	if name == "" {
		return errors.New("empty name") // want `constructs a bare error`
	}
	if name == "legacy" {
		return fmt.Errorf("unsupported name %q", name) // want `wraps nothing`
	}
	return fmt.Errorf("open %s: %w", name, errdefs.ErrUnknownPeer) // wraps: fine
}

// Close wraps the underlying error: fine.
func Close(err error) error {
	if err != nil {
		return fmt.Errorf("closing: %w", err)
	}
	return nil
}

// Describe returns no error, so its fmt use is not error minting.
func Describe(name string) string {
	return fmt.Sprintf("peer %s", name)
}

// helper is unexported: internal plumbing may build errors freely (the
// public caller is responsible for wrapping before returning them).
func helper() error {
	return errors.New("internal detail")
}

var _ = helper
