// Package vettest runs a vet.Analyzer over a fixture package and compares
// its findings against `// want "regexp"` comments in the fixture sources —
// the same contract as golang.org/x/tools' analysistest, implemented on the
// local framework.
//
// A fixture line expects one finding per want clause, matched by regexp:
//
//	ch <- 1 // want `channel send while holding`
//
// Multiple clauses on one line expect multiple findings. Findings with no
// matching want, and wants with no matching finding, fail the test.
package vettest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/vet"
)

// wantRe matches the trailing comment: `// want "re" "re2"` or backquoted.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

// expectation is one want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// parseWants scans a fixture file for want comments.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", path, err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, pat := range splitPatterns(t, path, i+1, strings.TrimSpace(m[1])) {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			out = append(out, &expectation{file: filepath.Base(path), line: i + 1, re: re})
		}
	}
	return out
}

// splitPatterns parses a sequence of quoted or backquoted strings.
func splitPatterns(t *testing.T, path string, line int, s string) []string {
	t.Helper()
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", path, line)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, line, err)
			}
			out = append(out, pat)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", path, line)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted or backquoted, got %q", path, line, s)
		}
	}
	return out
}

// Run loads the fixture package rooted at dir, applies the analyzer and
// diffs findings against the fixture's want comments.
func Run(t *testing.T, dir string, a *vet.Analyzer) {
	t.Helper()
	pkgs, err := vet.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := vet.RunAnalyzers(pkgs, []*vet.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			wants = append(wants, parseWants(t, filepath.Join(dir, e.Name()))...)
		}
	}

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// matchWant consumes the first unmet expectation matching the finding.
func matchWant(wants []*expectation, f vet.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, w := range wants {
		if !w.met && w.file == base && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.met = true
			return true
		}
	}
	return false
}
