package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the driver consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list` with the given extra flags and patterns in dir and
// decodes the JSON package stream.
func goList(dir string, extra []string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (relative to dir), parses their
// sources and type-checks them against the compiler's export data for their
// dependencies. Unlike `go build ./...` wildcards, explicit patterns may
// name testdata packages — which is how vettest loads its fixtures.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, nil, patterns)
	if err != nil {
		return nil, err
	}
	// A second listing with -export -deps materializes export data for the
	// whole dependency closure (building it if needed).
	deps, err := goList(dir, []string{"-export", "-deps"}, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}
