package vet

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// MutexIO reports blocking operations performed while holding a sync.Mutex
// or sync.RWMutex: channel sends and receives, selects without a default,
// time.Sleep, dialing, and calls to methods named Send or Dial*. Holding
// peer.Peer.mu across a dial once stalled every stage of a peer; this keeps
// that bug class out of the tree.
var MutexIO = &Analyzer{
	Name: "mutexio",
	Doc: "report channel operations, sleeps, dials and Send calls made " +
		"while a sync mutex is held",
	Run: runMutexIO,
}

func runMutexIO(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			m := &mutexScan{pass: pass}
			m.block(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type mutexScan struct {
	pass *Pass
}

// heldNames renders the held set for the report message.
func heldNames(held map[string]bool) string {
	var names []string
	for k := range held {
		names = append(names, k)
	}
	// Tiny sets; insertion sort keeps the message deterministic.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// mutexOp classifies e as a call to a sync mutex method. key identifies the
// locked expression ("p.mu"); kind is "Lock", "RLock", "Unlock", "RUnlock".
func (m *mutexScan) mutexOp(e ast.Expr) (key, kind string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := m.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprText(m.pass.Fset, sel.X), fn.Name(), true
	}
	return "", "", false
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	printer.Fprint(&sb, fset, e)
	return sb.String()
}

func cloneHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// block walks a statement list sequentially, updating the held set as locks
// are taken and released, and checking every other statement against it.
func (m *mutexScan) block(stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		m.stmt(st, held)
	}
}

func (m *mutexScan) stmt(st ast.Stmt, held map[string]bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if key, kind, ok := m.mutexOp(s.X); ok {
			switch kind {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		m.check(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the lock stays held for the
		// rest of this block. Other deferred calls run after that release,
		// so their bodies are not checked against the current held set.
		return
	case *ast.GoStmt:
		// The goroutine body runs on its own stack without the lock.
		return
	case *ast.BlockStmt:
		m.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			m.stmt(s.Init, held)
		}
		m.check(s.Cond, held)
		m.stmt(s.Body, cloneHeld(held))
		if s.Else != nil {
			m.stmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			m.stmt(s.Init, held)
		}
		if s.Cond != nil {
			m.check(s.Cond, held)
		}
		m.stmt(s.Body, cloneHeld(held))
	case *ast.RangeStmt:
		m.check(s.X, held)
		m.stmt(s.Body, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			m.stmt(s.Init, held)
		}
		if s.Tag != nil {
			m.check(s.Tag, held)
		}
		m.stmt(s.Body, cloneHeld(held))
	case *ast.TypeSwitchStmt:
		m.stmt(s.Body, cloneHeld(held))
	case *ast.CaseClause:
		m.block(s.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			m.pass.Reportf(s.Pos(), "blocking select while holding %s", heldNames(held))
		}
		m.stmt(s.Body, cloneHeld(held))
	case *ast.CommClause:
		m.block(s.Body, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			m.pass.Reportf(s.Pos(), "channel send while holding %s", heldNames(held))
		}
	case *ast.LabeledStmt:
		m.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			m.check(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			m.check(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						m.check(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		m.check(s.X, held)
	}
}

// check inspects an expression evaluated while held is in force, skipping
// function literals (they run later, without the lock).
func (m *mutexScan) check(e ast.Expr, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				m.pass.Reportf(x.Pos(), "channel receive while holding %s", heldNames(held))
			}
		case *ast.CallExpr:
			if what := m.blockingCall(x); what != "" {
				m.pass.Reportf(x.Pos(), "%s while holding %s", what, heldNames(held))
			}
		}
		return true
	})
}

// blockingCall classifies calls the analyzer considers blocking I/O.
func (m *mutexScan) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := m.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "time" && name == "Sleep":
			return "call to time.Sleep"
		case pkg.Path() == "net" && strings.HasPrefix(name, "Dial"):
			return "call to net." + name
		}
	}
	// Any method named Send or Dial* — the transport surface.
	if fn.Type().(*types.Signature).Recv() != nil &&
		(name == "Send" || strings.HasPrefix(name, "Dial")) {
		return "call to method " + name
	}
	return ""
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
