// Package errdefs is the leaf package holding the typed error taxonomy of
// the public API. Every layer (store, transport, acl, peer, core) wraps its
// failures around these sentinels so callers can branch with errors.Is/As
// instead of matching message strings; the root webdamlog package re-exports
// them verbatim.
//
// The sentinels deliberately carry no context of their own: sites that
// return them wrap with fmt.Errorf("...: %w", Err...) so the chain keeps
// both the taxonomy entry and the human-readable specifics.
package errdefs

import "errors"

var (
	// ErrUnknownRelation reports an operation against a relation that is not
	// declared at the peer (e.g. subscribing to a relation before its
	// `relation ...` declaration has been loaded).
	ErrUnknownRelation = errors.New("webdamlog: unknown relation")

	// ErrUnknownPeer reports a message routed to a peer the transport has no
	// address for.
	ErrUnknownPeer = errors.New("webdamlog: unknown peer")

	// ErrArity reports a fact or tuple whose width does not match the
	// relation's declared columns.
	ErrArity = errors.New("webdamlog: arity mismatch")

	// ErrPolicyDenied reports a delegation dropped by the peer's
	// access-control policy.
	ErrPolicyDenied = errors.New("webdamlog: delegation denied by policy")

	// ErrNoQuiescence reports that a run hit its round budget without the
	// network settling — usually an oscillating program.
	ErrNoQuiescence = errors.New("webdamlog: no quiescence")

	// ErrWAL reports a failure opening or writing the write-ahead log that
	// backs a durable peer.
	ErrWAL = errors.New("webdamlog: write-ahead log failure")

	// ErrClosed reports use of a peer or transport endpoint after Close.
	ErrClosed = errors.New("webdamlog: closed")

	// ErrDuplicateRule reports adding a rule whose id is already taken.
	ErrDuplicateRule = errors.New("webdamlog: duplicate rule id")

	// ErrUnknownRule reports removing or replacing a rule id that does not
	// exist at the peer.
	ErrUnknownRule = errors.New("webdamlog: unknown rule id")

	// ErrSchemaConflict reports a relation redeclaration that disagrees with
	// the existing schema on kind or arity.
	ErrSchemaConflict = errors.New("webdamlog: conflicting relation schema")

	// ErrSlowSubscriber reports a subscription channel that was closed
	// because its consumer fell further behind than its buffer allows.
	ErrSlowSubscriber = errors.New("webdamlog: subscriber too slow")

	// ErrBackpressure reports an update rejected (or abandoned) because a
	// bounded queue — a destination's outbox, or the peer's own pending-op
	// intake — is full. Under the fail-fast admission policy Apply returns
	// it immediately; under the blocking policy it surfaces only when the
	// caller's context expires while waiting for space.
	ErrBackpressure = errors.New("webdamlog: backpressure")
)
