// Package parser parses WebdamLog source text into the ast package's types.
//
// Grammar (statements end with ';'):
//
//	program   := statement*
//	statement := peerDecl | relDecl | factStmt | ruleStmt
//	peerDecl  := "peer" IDENT [ STRING ] ";"
//	relDecl   := "relation" kind IDENT "@" IDENT "(" cols ")" ";"
//	kind      := "extensional" | "ext" | "intensional" | "int"
//	factStmt  := atom ";"                       (atom must be ground)
//	ruleStmt  := [ "+" | "-" ] atom ":-" atom ("," atom)* ";"
//	atom      := [ "not" | "!" ] nameTerm "@" nameTerm "(" terms ")"
//	nameTerm  := IDENT | VARIABLE
//	term      := VARIABLE | STRING | NUMBER | HEX | "true" | "false" | IDENT
//
// Bare identifiers in argument position denote string constants, so
// `rate@$owner($id, 5)` and `communicate@jules(email)` both parse. Negated
// atoms use `not` (or `!`). A leading '-' on the head marks the deletion
// extension.
package parser

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/value"
)

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Position extracts the 1-based line/col carried by a parse or lex error
// (possibly wrapped). It reports ok=false for errors from other layers, so
// callers can fall back to printing the error as-is.
func Position(err error) (line, col int, ok bool) {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Line, pe.Col, true
	}
	var le *lexer.Error
	if errors.As(err, &le) {
		return le.Line, le.Col, true
	}
	return 0, 0, false
}

type parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a whole WebdamLog program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.atEOF() {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ParseRule parses a single rule (with or without trailing ';').
func ParseRule(src string) (ast.Rule, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return ast.Rule{}, err
	}
	p := &parser{toks: toks}
	r, err := p.rule()
	if err != nil {
		return ast.Rule{}, err
	}
	if p.peek().Kind == lexer.Semi {
		p.next()
	}
	if !p.atEOF() {
		return ast.Rule{}, p.errHere("unexpected %s after rule", p.peek())
	}
	return r, nil
}

// ParseFact parses a single ground fact (with or without trailing ';').
func ParseFact(src string) (ast.Fact, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return ast.Fact{}, err
	}
	p := &parser{toks: toks}
	a, err := p.atom()
	if err != nil {
		return ast.Fact{}, err
	}
	if p.peek().Kind == lexer.Semi {
		p.next()
	}
	if !p.atEOF() {
		return ast.Fact{}, p.errHere("unexpected %s after fact", p.peek())
	}
	f, err := atomToFact(a)
	if err != nil {
		return ast.Fact{}, err
	}
	f.Pos = a.Pos
	return f, nil
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() lexer.Token {
	if p.atEOF() {
		return lexer.Token{Kind: lexer.EOF, Line: p.lastLine(), Col: p.lastCol()}
	}
	return p.toks[p.pos]
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].Line
}

func (p *parser) lastCol() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].Col + len(p.toks[len(p.toks)-1].Text)
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// errAt anchors an error at a known node position rather than at the
// current token — used where the parser has already consumed past the
// offending construct (e.g. a non-ground fact detected after its ';').
func errAt(pos ast.Pos, format string, args ...any) error {
	return &Error{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errHere("expected %s, found %s", k, t)
	}
	return p.next(), nil
}

func (p *parser) statement(prog *ast.Program) error {
	t := p.peek()
	if t.Kind == lexer.Ident {
		switch t.Text {
		case "peer":
			return p.peerDecl(prog)
		case "relation":
			return p.relDecl(prog)
		}
	}
	// Fact or rule.
	stmtPos := ast.Pos{Line: t.Line, Col: t.Col}
	op := ast.Derive
	switch t.Kind {
	case lexer.Plus:
		p.next()
	case lexer.Minus:
		p.next()
		op = ast.Delete
	}
	head, err := p.atom()
	if err != nil {
		return err
	}
	if head.Neg {
		return errAt(head.Pos, "rule head cannot be negated")
	}
	switch p.peek().Kind {
	case lexer.Semi:
		if op == ast.Derive {
			p.next()
			f, err := atomToFact(head)
			if err != nil {
				return err
			}
			f.Pos = stmtPos
			prog.Facts = append(prog.Facts, f)
			prog.Statements = append(prog.Statements, f)
			return nil
		}
		// `-m@p(c…);` is a bodiless deletion rule.
		p.next()
		r := ast.Rule{Op: op, Head: head, Pos: stmtPos}
		prog.Rules = append(prog.Rules, r)
		prog.Statements = append(prog.Statements, r)
		return nil
	case lexer.ColonDash:
		p.next()
		body, err := p.body()
		if err != nil {
			return err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return err
		}
		r := ast.Rule{Op: op, Head: head, Body: body, Pos: stmtPos}
		prog.Rules = append(prog.Rules, r)
		prog.Statements = append(prog.Statements, r)
		return nil
	default:
		return p.errHere("expected ';' or ':-' after atom, found %s", p.peek())
	}
}

func (p *parser) rule() (ast.Rule, error) {
	t := p.peek()
	stmtPos := ast.Pos{Line: t.Line, Col: t.Col}
	op := ast.Derive
	switch t.Kind {
	case lexer.Plus:
		p.next()
	case lexer.Minus:
		p.next()
		op = ast.Delete
	}
	head, err := p.atom()
	if err != nil {
		return ast.Rule{}, err
	}
	if head.Neg {
		return ast.Rule{}, errAt(head.Pos, "rule head cannot be negated")
	}
	var body []ast.Atom
	if p.peek().Kind == lexer.ColonDash {
		p.next()
		body, err = p.body()
		if err != nil {
			return ast.Rule{}, err
		}
	}
	return ast.Rule{Op: op, Head: head, Body: body, Pos: stmtPos}, nil
}

func (p *parser) body() ([]ast.Atom, error) {
	var body []ast.Atom
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		body = append(body, a)
		if p.peek().Kind != lexer.Comma {
			return body, nil
		}
		p.next()
	}
}

func (p *parser) peerDecl(prog *ast.Program) error {
	kw := p.next() // "peer"
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	d := ast.PeerDecl{Name: name.Text, Pos: ast.Pos{Line: kw.Line, Col: kw.Col}}
	if p.peek().Kind == lexer.String {
		d.Addr = p.next().Text
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return err
	}
	prog.Peers = append(prog.Peers, d)
	prog.Statements = append(prog.Statements, d)
	return nil
}

func (p *parser) relDecl(prog *ast.Program) error {
	kw := p.next() // "relation"
	kindTok, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	var kind ast.RelKind
	switch kindTok.Text {
	case "extensional", "ext":
		kind = ast.Extensional
	case "intensional", "int":
		kind = ast.Intensional
	default:
		return &Error{Line: kindTok.Line, Col: kindTok.Col,
			Msg: fmt.Sprintf("expected 'extensional' or 'intensional', found %q", kindTok.Text)}
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	if _, err := p.expect(lexer.At); err != nil {
		return err
	}
	peerTok, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return err
	}
	var cols []string
	if p.peek().Kind != lexer.RParen {
		for {
			col, err := p.expect(lexer.Ident)
			if err != nil {
				return err
			}
			cols = append(cols, col.Text)
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return err
	}
	d := ast.RelationDecl{Name: name.Text, Peer: peerTok.Text, Kind: kind, Cols: cols,
		Pos: ast.Pos{Line: kw.Line, Col: kw.Col}}
	prog.Relations = append(prog.Relations, d)
	prog.Statements = append(prog.Statements, d)
	return nil
}

func (p *parser) atom() (ast.Atom, error) {
	var a ast.Atom
	t := p.peek()
	a.Pos = ast.Pos{Line: t.Line, Col: t.Col}
	if t.Kind == lexer.Bang || (t.Kind == lexer.Ident && t.Text == "not") {
		// "not" only negates when followed by an atom; `not@p(...)` would be
		// a relation named "not", which we disallow for clarity.
		p.next()
		a.Neg = true
	}
	rel, err := p.nameTerm("relation")
	if err != nil {
		return a, err
	}
	a.Rel = rel
	if _, err := p.expect(lexer.At); err != nil {
		return a, err
	}
	peer, err := p.nameTerm("peer")
	if err != nil {
		return a, err
	}
	a.Peer = peer
	if _, err := p.expect(lexer.LParen); err != nil {
		return a, err
	}
	if p.peek().Kind != lexer.RParen {
		for {
			term, err := p.term()
			if err != nil {
				return a, err
			}
			a.Args = append(a.Args, term)
			if p.peek().Kind != lexer.Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return a, err
	}
	return a, nil
}

func (p *parser) nameTerm(what string) (ast.Term, error) {
	t := p.peek()
	pos := ast.Pos{Line: t.Line, Col: t.Col}
	switch t.Kind {
	case lexer.Ident:
		p.next()
		return withPos(ast.CStr(t.Text), pos), nil
	case lexer.Variable:
		p.next()
		return withPos(ast.V(t.Text), pos), nil
	default:
		return ast.Term{}, p.errHere("expected %s name or variable, found %s", what, t)
	}
}

func (p *parser) term() (ast.Term, error) {
	t := p.peek()
	pos := ast.Pos{Line: t.Line, Col: t.Col}
	switch t.Kind {
	case lexer.Variable:
		p.next()
		return withPos(ast.V(t.Text), pos), nil
	case lexer.String:
		p.next()
		return withPos(ast.C(value.Str(t.Text)), pos), nil
	case lexer.Number:
		p.next()
		if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return withPos(ast.C(value.Int(i)), pos), nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return ast.Term{}, &Error{Line: t.Line, Col: t.Col, Msg: "malformed number " + t.Text}
		}
		return withPos(ast.C(value.Float(f)), pos), nil
	case lexer.Hex:
		p.next()
		b, err := hex.DecodeString(pad(t.Text))
		if err != nil {
			return ast.Term{}, &Error{Line: t.Line, Col: t.Col, Msg: "malformed hex literal"}
		}
		return withPos(ast.C(value.Blob(b)), pos), nil
	case lexer.Ident:
		p.next()
		switch t.Text {
		case "true":
			return withPos(ast.C(value.Bool(true)), pos), nil
		case "false":
			return withPos(ast.C(value.Bool(false)), pos), nil
		default:
			// Bare identifier in argument position: a string constant.
			return withPos(ast.C(value.Str(t.Text)), pos), nil
		}
	default:
		return ast.Term{}, p.errHere("expected term, found %s", t)
	}
}

func withPos(t ast.Term, pos ast.Pos) ast.Term {
	t.Pos = pos
	return t
}

func pad(h string) string {
	if len(h)%2 == 1 {
		return "0" + h
	}
	return h
}

func atomToFact(a ast.Atom) (ast.Fact, error) {
	if a.Neg {
		return ast.Fact{}, errAt(a.Pos, "a fact cannot be negated")
	}
	if !a.IsGround() {
		// Anchor at the first variable, the term that makes this not a fact.
		pos := a.Pos
		for _, t := range append([]ast.Term{a.Rel, a.Peer}, a.Args...) {
			if t.IsVar() && t.Pos.IsValid() {
				pos = t.Pos
				break
			}
		}
		return ast.Fact{}, errAt(pos, "fact contains variables: %s", a.String())
	}
	args := make(value.Tuple, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Val
	}
	return ast.Fact{
		Rel:  a.Rel.Val.StringVal(),
		Peer: a.Peer.Val.StringVal(),
		Args: args,
	}, nil
}
