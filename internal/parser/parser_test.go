package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func TestParsePaperRule(t *testing.T) {
	// Verbatim rule from §2 of the paper (modulo ASCII names).
	r, err := ParseRule(`attendeePictures@Jules($id, $name, $owner, $data) :-
		selectedAttendee@Jules($attendee),
		pictures@$attendee($id, $name, $owner, $data);`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Head.Rel.Val.StringVal() != "attendeePictures" || r.Head.Peer.Val.StringVal() != "Jules" {
		t.Errorf("head = %v", r.Head)
	}
	if len(r.Body) != 2 {
		t.Fatalf("body size = %d", len(r.Body))
	}
	if !r.Body[1].Peer.IsVar() || r.Body[1].Peer.Var != "attendee" {
		t.Errorf("second atom peer = %v, want variable $attendee", r.Body[1].Peer)
	}
}

func TestParseTransferRule(t *testing.T) {
	// The §3 transfer rule: variable relation AND peer in the head.
	r, err := ParseRule(`$protocol@$attendee($attendee, $name, $id, $owner) :-
		selectedAttendee@Jules($attendee),
		communicate@$attendee($protocol),
		selectedPictures@Jules($name, $id, $owner);`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Head.Rel.IsVar() || r.Head.Rel.Var != "protocol" {
		t.Errorf("head relation = %v", r.Head.Rel)
	}
	if !r.Head.Peer.IsVar() || r.Head.Peer.Var != "attendee" {
		t.Errorf("head peer = %v", r.Head.Peer)
	}
}

func TestParseFactWithAllValueKinds(t *testing.T) {
	f, err := ParseFact(`m@p(42, "str", 2.5, true, false, 0xBEEF, bare);`)
	if err != nil {
		t.Fatal(err)
	}
	want := value.Tuple{
		value.Int(42), value.Str("str"), value.Float(2.5),
		value.Bool(true), value.Bool(false), value.Blob([]byte{0xBE, 0xEF}), value.Str("bare"),
	}
	if !f.Args.Equal(want) {
		t.Errorf("args = %v, want %v", f.Args, want)
	}
}

func TestParseProgramStatements(t *testing.T) {
	prog, err := Parse(`
		peer alice "127.0.0.1:7001";
		peer bob;
		relation extensional edge@alice(a, b);
		relation intensional tc@alice(a, b);
		edge@alice("x", "y");
		tc@alice($a,$b) :- edge@alice($a,$b);
		-edge@alice("x", "y") :- tc@alice("x", "y");
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Peers) != 2 || prog.Peers[0].Addr != "127.0.0.1:7001" || prog.Peers[1].Addr != "" {
		t.Errorf("peers = %v", prog.Peers)
	}
	if len(prog.Relations) != 2 || prog.Relations[1].Kind != ast.Intensional {
		t.Errorf("relations = %v", prog.Relations)
	}
	if len(prog.Facts) != 1 || len(prog.Rules) != 2 {
		t.Errorf("facts=%d rules=%d", len(prog.Facts), len(prog.Rules))
	}
	if prog.Rules[1].Op != ast.Delete {
		t.Errorf("second rule op = %v, want Delete", prog.Rules[1].Op)
	}
	if len(prog.Statements) != 7 {
		t.Errorf("statements = %d, want 7", len(prog.Statements))
	}
	// Statement order must interleave correctly.
	if _, ok := prog.Statements[0].(ast.PeerDecl); !ok {
		t.Errorf("statement 0 = %T", prog.Statements[0])
	}
	if _, ok := prog.Statements[4].(ast.Fact); !ok {
		t.Errorf("statement 4 = %T", prog.Statements[4])
	}
}

func TestNegationForms(t *testing.T) {
	for _, src := range []string{
		`ok@p($x) :- a@p($x), not bad@p($x);`,
		`ok@p($x) :- a@p($x), !bad@p($x);`,
	} {
		r, err := ParseRule(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if !r.Body[1].Neg {
			t.Errorf("%q: second atom not negated", src)
		}
	}
}

func TestBodilessDeletionFact(t *testing.T) {
	prog, err := Parse(`-data@p("x");`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || prog.Rules[0].Op != ast.Delete || len(prog.Rules[0].Body) != 0 {
		t.Errorf("rules = %v", prog.Rules)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Parsing the printed form of a rule must yield the same rule.
	srcs := []string{
		`tc@local($x, $z) :- tc@local($x, $y), edge@local($y, $z)`,
		`$r@$p($x) :- names@local($r), peers@local($p), data@local($x)`,
		`ok@p($x) :- a@p($x), not bad@p($x)`,
		`-data@p($x) :- kill@p($x)`,
		`m@p(1, "s", 2.5, true, 0xff) :- q@p(1)`,
	}
	for _, src := range srcs {
		r1, err := ParseRule(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		r2, err := ParseRule(r1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r1.String(), err)
		}
		if !r1.Equal(r2) {
			t.Errorf("round trip changed rule: %q -> %q", src, r2.String())
		}
	}
}

func TestFactRoundTrip(t *testing.T) {
	f1, err := ParseFact(`m@p(42, "a b", 0xdead, -1.5, false)`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ParseFact(f1.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", f1.String(), err)
	}
	if !f1.Equal(f2) {
		t.Errorf("round trip changed fact: %v -> %v", f1, f2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`m@p($x);`,                        // fact with variable
		`not m@p("x");`,                   // negated fact
		`m@p("x")`,                        // missing semicolon in program
		`m@("x");`,                        // missing peer
		`@p("x");`,                        // missing relation
		`m@p("x") :- ;`,                   // empty body
		`relation foo m@p(a);`,            // bad kind keyword
		`relation ext m@p(a,);`,           // trailing comma
		`peer "noname";`,                  // missing peer name
		`m@p("x") :- not q@p("y") extra;`, // junk after body
		`not m@p($x) :- q@p($x);`,         // negated head
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("%q parsed without error", src)
			continue
		}
		// Every parse-error path carries a 1-based source position.
		if line, col, ok := Position(err); !ok || line < 1 || col < 1 {
			t.Errorf("%q: error %v carries no position (line=%d col=%d ok=%v)", src, err, line, col, ok)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("m@p(\n  $x);")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line 2 position: %v", err)
	}
}

// TestNodePositions pins that the parser threads 1-based positions onto every
// AST node kind: declarations, facts, rules, atoms, and terms.
func TestNodePositions(t *testing.T) {
	prog, err := Parse(`peer alice;
relation extensional track@alice(id);
track@alice(1);
seen@alice($x) :- track@alice($x),
    lt@builtin($x, 5);
`)
	if err != nil {
		t.Fatal(err)
	}
	at := func(name string, p ast.Pos, line, col int) {
		t.Helper()
		if p.Line != line || p.Col != col {
			t.Errorf("%s at %s, want %d:%d", name, p, line, col)
		}
	}
	at("peer decl", prog.Peers[0].Pos, 1, 1)
	at("relation decl", prog.Relations[0].Pos, 2, 1)
	at("fact", prog.Facts[0].Pos, 3, 1)
	r := prog.Rules[0]
	at("rule", r.Pos, 4, 1)
	at("head atom", r.Head.Pos, 4, 1)
	at("head arg", r.Head.Args[0].Pos, 4, 12)
	at("body atom 0", r.Body[0].Pos, 4, 19)
	at("body atom 1 (continuation line)", r.Body[1].Pos, 5, 5)
	at("builtin arg", r.Body[1].Args[1].Pos, 5, 20)
}

func TestSingleRuleParserRejectsTrailingJunk(t *testing.T) {
	if _, err := ParseRule(`a@p($x) :- b@p($x); extra@p();`); err == nil {
		t.Error("trailing statement accepted by ParseRule")
	}
	if _, err := ParseFact(`a@p(1); b@p(2);`); err == nil {
		t.Error("trailing statement accepted by ParseFact")
	}
}

func TestOddLengthHexPadded(t *testing.T) {
	f, err := ParseFact(`m@p(0xABC);`)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Args[0].BlobVal(); len(got) != 2 || got[0] != 0x0A || got[1] != 0xBC {
		t.Errorf("blob = %x", got)
	}
}
