package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseProgram throws arbitrary source at the full-program parser. The
// invariants: no panic on any input, and everything that parses round-trips
// — rendering the parsed program and parsing it again must succeed and
// produce the identical rendering (String is a fixpoint of Parse∘String).
func FuzzParseProgram(f *testing.F) {
	seeds, _ := filepath.Glob("../../examples/programs/*.wdl")
	for _, p := range seeds {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Add(`peer p; relation extensional e@p(a, b); e@p(1, 2);`)
	f.Add(`r@q($x) :- e@p($x, $y), not f@p($y), le@builtin($x, 3);`)
	f.Add(`-out@$p($x) :- in@local($x, $p);`)
	f.Add(`e@p("quoted \"str\"", -42);`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		rendered := prog.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered program does not re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("render not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, got)
		}
	})
}
