package parser

import "testing"

const benchProgram = `
peer emilien;
relation extensional pictures@emilien(id, name, owner, data);
pictures@emilien(1, "sea.jpg", "emilien", 0xCAFE);
pictures@emilien(2, "boat.jpg", "emilien", 0xBEEF);

peer jules;
relation extensional selectedAttendee@jules(attendee);
relation intensional attendeePictures@jules(id, name, owner, data);
selectedAttendee@jules("emilien");
attendeePictures@jules($id,$name,$owner,$data) :-
	selectedAttendee@jules($attendee),
	pictures@$attendee($id,$name,$owner,$data),
	not hidden@jules($id),
	ge@builtin($id, 0);
`

func BenchmarkParseProgram(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchProgram); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRule(b *testing.B) {
	const rule = `attendeePictures@jules($id,$name,$owner,$data) :- selectedAttendee@jules($a), pictures@$a($id,$name,$owner,$data);`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(rule); err != nil {
			b.Fatal(err)
		}
	}
}
