package engine

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// Incremental stage evaluation: materialized views maintained across stages.
//
// Bare RunStage recomputes every intensional relation from scratch, so the
// cost of a stage grows with the size of the database rather than the size
// of the change. This file carries the semi-naive deltas *across* stages
// instead: derived relations stay materialized between stages, each stage's
// base-fact batch enters the fixpoint as the initial delta, and deletions
// are handled DRed-style — over-delete everything that may depend on a
// deleted fact, then rederive what still has an alternative derivation, so
// retracting one support never kills a tuple that has another.
//
// Rules are split statically (classify):
//
//   - view rules — head is a declared local intensional relation, body fully
//     local and positive. These are the materialized views and take the
//     delta path.
//   - event rules — everything else: deletion rules, rules with remote or
//     extensional or variable heads, rules whose body can leave the peer
//     (delegation). Event rules are evaluated in full every stage, exactly
//     as RunStage would, which preserves the paper's delegation-maintenance
//     and update-emission semantics unchanged. Because all remote emissions
//     and delegations come from event rules, Result.Remote and
//     Result.Delegations stay complete per stage.
//
// Remote Derive-op emissions are additionally diffed against the engine's
// maintained remoteView, producing true insert/retract deltas
// (Result.RemoteOut) instead of re-shipping the full set every stage.

// StageInput describes the base-fact deltas of one peer stage. All tuples in
// Ins are already present in the store (the peer applied extensional updates
// and seeded intensional facts during ingestion); all tuples in Del are
// already removed. Cand holds intensional deletion candidates — tuples whose
// external support just vanished — which are still in the store: the
// evaluator deletes them unless a local derivation (or a seed in Ins) keeps
// them alive.
type StageInput struct {
	Ins  map[string][]value.Tuple // relID -> tuples inserted before the stage
	Del  map[string][]value.Tuple // relID -> extensional tuples removed before the stage
	Cand map[string][]value.Tuple // relID -> intensional tuples that lost external support
}

// Empty reports whether the input carries no deltas at all.
func (in *StageInput) Empty() bool {
	return in == nil || (len(in.Ins) == 0 && len(in.Del) == 0 && len(in.Cand) == 0)
}

// incrState carries the per-stage bookkeeping of an incremental run.
type incrState struct {
	in *StageInput
	// seeded marks the tuples of StageInput.Ins: externally present this
	// stage, so rederivation keeps them regardless of rule support.
	seeded map[string]map[string]bool
	// ghosts holds every tuple deleted during this stage (base deletions and
	// over-deletions), giving the deletion pass the pre-deletion database:
	// non-delta join positions range over relation ∪ ghosts.
	ghosts map[string]map[string]value.Tuple
	// ghostIdx lazily indexes a relation's ghost set by bound-column mask so
	// the sweep at a non-delta join position probes O(1) instead of
	// scanning every deleted tuple per binding (which made a D-fact batch
	// delete quadratic in D). An index is rebuilt when the ghost set grew;
	// a snapshot going stale mid-round is sound because every newly
	// ghosted tuple gets its own delta round in the over-delete fixpoint.
	ghostIdx map[string]map[store.ColMask]*ghostIndex
	// marked holds over-deleted view tuples not (yet) rederived. What
	// remains at the end of the stage is the net deletion set.
	marked map[string]map[string]value.Tuple
	// insNew holds tuples newly inserted into views this stage, net of
	// same-stage deletions.
	insNew map[string]map[string]value.Tuple
	// frontier accumulates the next round of the over-delete fixpoint.
	frontier deltaSet
	// pending holds deletion candidates (StageInput.Cand) marked before the
	// strata run; the first deletion phase folds them into its rederivation
	// pass so a candidate with a surviving local derivation is restored.
	pending []relTuple
	// stageIns / stageDel accumulate all insertions / deletions seen so far
	// this stage, seeding the delta passes of later strata.
	stageIns deltaSet
	stageDel deltaSet
}

func (ic *incrState) ghost(relID string, t value.Tuple) {
	g := ic.ghosts[relID]
	if g == nil {
		g = map[string]value.Tuple{}
		ic.ghosts[relID] = g
	}
	g[t.Key()] = t
}

func (ic *incrState) mark(relID string, t value.Tuple) {
	m := ic.marked[relID]
	if m == nil {
		m = map[string]value.Tuple{}
		ic.marked[relID] = m
	}
	m[t.Key()] = t
}

func (ic *incrState) isSeeded(relID, key string) bool {
	return ic.seeded[relID][key]
}

// ghostIndex is one mask's hash index over a ghost-set snapshot.
type ghostIndex struct {
	size    int // ghost-set size at build time; rebuilt when it grows
	buckets map[string][]value.Tuple
}

// sweepGhosts calls fn for every ghost of relID matching the bound columns,
// through a lazily built (and size-invalidated) per-mask index.
func (ic *incrState) sweepGhosts(relID string, mask store.ColMask, boundVals []value.Value, fn func(value.Tuple)) {
	g := ic.ghosts[relID]
	if len(g) == 0 {
		return
	}
	if mask == 0 {
		for _, t := range g {
			fn(t)
		}
		return
	}
	idx := ic.ghostIndexFor(relID, mask, g)
	var keyBuf []byte
	for _, v := range boundVals {
		keyBuf = v.AppendKey(keyBuf)
	}
	for _, t := range idx.buckets[string(keyBuf)] {
		fn(t)
	}
}

// sweepGhostsKey is sweepGhosts for callers that already hold the encoded
// probe key (compiled execution, compilefast.go): the ghost buckets are
// keyed by the AppendKey encoding of the masked columns in ascending order —
// the same convention as the store's index and probe keys.
func (ic *incrState) sweepGhostsKey(relID string, mask store.ColMask, key []byte, fn func(value.Tuple)) {
	g := ic.ghosts[relID]
	if len(g) == 0 {
		return
	}
	if mask == 0 {
		for _, t := range g {
			fn(t)
		}
		return
	}
	idx := ic.ghostIndexFor(relID, mask, g)
	for _, t := range idx.buckets[string(key)] {
		fn(t)
	}
}

// ghostIndexFor returns relID's ghost index for mask, (re)building it when
// missing or stale (the ghost set changed size since the last build). A
// snapshot going stale mid-round is sound; see ghostIdx.
func (ic *incrState) ghostIndexFor(relID string, mask store.ColMask, g map[string]value.Tuple) *ghostIndex {
	byMask := ic.ghostIdx[relID]
	if byMask == nil {
		byMask = map[store.ColMask]*ghostIndex{}
		if ic.ghostIdx == nil {
			ic.ghostIdx = map[string]map[store.ColMask]*ghostIndex{}
		}
		ic.ghostIdx[relID] = byMask
	}
	idx := byMask[mask]
	if idx == nil || idx.size != len(g) {
		idx = &ghostIndex{size: len(g), buckets: make(map[string][]value.Tuple, len(g))}
		var keyBuf []byte
		for _, t := range g {
			keyBuf = keyBuf[:0]
			for c := 0; c < len(t); c++ {
				if mask.Has(c) {
					keyBuf = t[c].AppendKey(keyBuf)
				}
			}
			idx.buckets[string(keyBuf)] = append(idx.buckets[string(keyBuf)], t)
		}
		byMask[mask] = idx
	}
	return idx
}

// classify fills the Event / MaybeView flags of every rule and decides
// whether the program as a whole is incrementally maintainable. Called after
// stratification (CompileProgram / CompileRules).
func (e *Engine) classify(prog *Program) {
	idb := e.localIntensional()
	ok := e.opts.Incremental && e.opts.Tracer == nil
	for _, cr := range prog.Rules {
		localBody := true
		hasNeg := false
		for i := range cr.Body {
			a := &cr.Body[i]
			if a.peer.isVar {
				localBody = false
				if a.neg {
					hasNeg = true
				}
				continue
			}
			pn := ""
			if a.peer.val.Kind() == value.KindString {
				pn = a.peer.val.StringVal()
			}
			if pn == BuiltinPeer {
				continue // built-ins are pure filters, negated or not
			}
			if pn != e.local {
				localBody = false
			}
			if a.neg {
				hasNeg = true
			}
		}
		headPeerLocal := !cr.Head.peer.isVar &&
			cr.Head.peer.val.Kind() == value.KindString &&
			cr.Head.peer.val.StringVal() == e.local
		headPeerMaybeLocal := cr.Head.peer.isVar || headPeerLocal
		headRelIntensional := false
		if !cr.Head.rel.isVar && cr.Head.rel.val.Kind() == value.KindString {
			headRelIntensional = idb[cr.Head.rel.val.StringVal()]
		}
		cr.MaybeView = cr.Rule.Op == ast.Derive && headPeerMaybeLocal &&
			(cr.Head.rel.isVar || headRelIntensional)
		isView := cr.Rule.Op == ast.Derive && localBody &&
			headPeerLocal && !cr.Head.rel.isVar && headRelIntensional
		cr.Event = !isView
		if cr.MaybeView && hasNeg {
			// Deleting through negation would need insert deltas to feed
			// view deletions and vice versa; fall back to recomputation.
			ok = false
		}
	}
	prog.Incremental = ok
}

// RunStageFull recomputes every view from scratch — the path for the first
// stage, program changes, and programs (or engines) that are not
// incrementally maintainable. It clears the intensional relations, re-seeds
// the externally supported and transient tuples the caller passes in, runs
// the ordinary fixpoint, and diffs the remote emission set against the
// caller's maintained remote view so that Result.RemoteOut still carries
// deltas.
func (e *Engine) RunStageFull(prog *Program, seeds map[string][]value.Tuple, rv *RemoteView) *Result {
	e.db.ClearIntensional()
	for relID, ts := range seeds {
		rel := relByID(e.db, relID)
		if rel == nil {
			continue
		}
		for _, t := range ts {
			if len(t) == rel.Schema().Arity() {
				rel.Insert(t)
			}
		}
	}
	var res *Result
	if prog != nil {
		res = e.RunStage(prog)
	} else {
		res = &Result{Remote: map[string][]FactOp{}, Delegations: map[string]map[string][]ast.Rule{}}
	}
	res.RemoteOut = rv.Diff(res.Remote)
	return res
}

// RunStageIncremental maintains the materialized views from the stage's
// base-fact deltas. Per stratum it (1) runs the over-delete/rederive pass
// for the accumulated deletions, (2) runs semi-naive delta iterations of the
// view rules over the accumulated insertions, and (3) evaluates the event
// rules in full, cascading any local derivations they add back through the
// view rules. The caller must have run a full stage for this program before
// (the views must be materialized and consistent), and passes the same
// maintained remote view it passed there.
func (e *Engine) RunStageIncremental(prog *Program, in *StageInput, rv *RemoteView) *Result {
	st := newStageState()
	st.planner = e.newPlanner()
	ic := &incrState{
		in:       in,
		seeded:   map[string]map[string]bool{},
		ghosts:   map[string]map[string]value.Tuple{},
		marked:   map[string]map[string]value.Tuple{},
		insNew:   map[string]map[string]value.Tuple{},
		stageIns: deltaSet{},
		stageDel: deltaSet{},
	}
	st.incr = ic
	if in != nil {
		for relID, ts := range in.Ins {
			ic.stageIns[relID] = append(ic.stageIns[relID], ts...)
			s := map[string]bool{}
			for _, t := range ts {
				s[t.Key()] = true
			}
			ic.seeded[relID] = s
		}
		for relID, ts := range in.Del {
			for _, t := range ts {
				ic.ghost(relID, t)
			}
			ic.stageDel[relID] = append(ic.stageDel[relID], ts...)
		}
		// Deletion candidates: remove now, mark for rederivation. A
		// candidate's external support is gone, so a same-stage maintained
		// seed must not shield it — the peer already cancels candidates
		// that were re-supported later in the stage. A candidate that was
		// also inserted this stage (coalesced maintained +/-) must leave
		// the insertion delta too, or the insert phase would derive from a
		// tuple that no longer exists.
		for relID, ts := range in.Cand {
			rel := relByID(e.db, relID)
			if rel == nil {
				continue
			}
			for _, t := range ts {
				key := t.Key()
				if s := ic.seeded[relID]; s[key] {
					delete(s, key)
					ic.stageIns[relID] = dropTuple(ic.stageIns[relID], key)
				}
				if rel.Delete(t) {
					ic.ghost(relID, t)
					ic.mark(relID, t)
					ic.stageDel[relID] = append(ic.stageDel[relID], t)
					ic.pending = append(ic.pending, relTuple{relID, t})
				}
			}
		}
	}

	for _, stratum := range prog.Strata {
		if len(stratum) == 0 {
			continue
		}
		e.deletePhase(prog, stratum, st)
		e.insertPhase(stratum, st, copyDelta(ic.stageIns))
		// Event rules run on the maintained state. Their local derivations
		// (variable-head rules) cascade back through the view rules until
		// nothing new appears; emission dedup keeps outputs exact.
		for {
			st.delta = deltaSet{}
			for _, cr := range stratum {
				if cr.Event {
					e.evalRule(cr, st, -1, nil)
				}
			}
			st.out.Iterations++
			if len(st.delta) == 0 {
				break
			}
			newly := st.delta
			for relID, ts := range newly {
				ic.stageIns[relID] = append(ic.stageIns[relID], ts...)
			}
			e.insertPhase(stratum, st, newly)
			if st.out.Iterations >= e.opts.MaxIterations {
				st.errf("engine: fixpoint exceeded %d iterations; aborting stratum", e.opts.MaxIterations)
				break
			}
		}
	}

	// Candidates not consumed by any rule stratum (rule-less programs, or
	// strata with no rules) still get their rederivation check — external
	// support added back by a later coalesced message must restore them.
	if len(ic.pending) > 0 {
		e.rederive(prog, st, ic.pending)
		ic.pending = nil
	}

	// Net view deltas.
	views := map[string]*ViewDelta{}
	for relID, m := range ic.insNew {
		if len(m) == 0 {
			continue
		}
		vd := viewDeltaFor(views, relID)
		for _, t := range m {
			vd.Ins = append(vd.Ins, t)
		}
	}
	for relID, m := range ic.marked {
		if len(m) == 0 {
			continue
		}
		vd := viewDeltaFor(views, relID)
		for _, t := range m {
			vd.Del = append(vd.Del, t)
			st.out.Retracted++
		}
	}
	for _, vd := range views {
		value.SortTuples(vd.Ins)
		value.SortTuples(vd.Del)
	}
	if len(views) > 0 {
		st.out.Views = views
	}
	st.out.RemoteOut = rv.Diff(st.out.Remote)
	return st.out
}

func viewDeltaFor(views map[string]*ViewDelta, relID string) *ViewDelta {
	vd := views[relID]
	if vd == nil {
		vd = &ViewDelta{}
		views[relID] = vd
	}
	return vd
}

// insertPhase runs the semi-naive delta iterations of the stratum's view
// rules, seeded with the given delta, accumulating every new derivation into
// the stage-wide insertion set.
func (e *Engine) insertPhase(stratum []*CompiledRule, st *stageState, seed deltaSet) {
	if len(seed) == 0 {
		return
	}
	st.delta = seed
	for len(st.delta) > 0 {
		if st.out.Iterations >= e.opts.MaxIterations {
			st.errf("engine: fixpoint exceeded %d iterations; aborting stratum", e.opts.MaxIterations)
			return
		}
		prev := st.delta
		st.delta = deltaSet{}
		for _, cr := range stratum {
			if cr.Event {
				continue
			}
			for j := range cr.Body {
				a := &cr.Body[j]
				if a.neg {
					continue
				}
				if !a.rel.isVar && !a.peer.isVar {
					id := a.rel.val.StringVal() + "@" + a.peer.val.StringVal()
					if len(prev[id]) == 0 {
						continue
					}
				}
				e.evalRule(cr, st, j, prev)
			}
		}
		for relID, ts := range st.delta {
			st.incr.stageIns[relID] = append(st.incr.stageIns[relID], ts...)
		}
		st.out.Iterations++
	}
}

// deletePhase implements DRed for one stratum: over-delete everything whose
// derivation may have used a deleted tuple (joining the delta position over
// the deletion frontier and the remaining positions over the pre-deletion
// database, i.e. relation ∪ ghosts), then rederive the over-deleted tuples
// that still have standing support.
func (e *Engine) deletePhase(prog *Program, stratum []*CompiledRule, st *stageState) {
	ic := st.incr
	frontier := copyDelta(ic.stageDel)
	// Candidates marked before the strata ran must be rederivation-checked
	// too: a tuple that lost its external support but still has a local
	// derivation stays. (Checked in the first stratum; a check against
	// not-yet-maintained later strata self-corrects — a wrongly kept tuple
	// is re-marked when its support is over-deleted, a wrongly deleted one
	// is re-derived by the insert pass.)
	newMarks := ic.pending
	ic.pending = nil
	for len(frontier) > 0 {
		if st.out.Iterations >= e.opts.MaxIterations {
			st.errf("engine: deletion pass exceeded %d iterations; aborting stratum", e.opts.MaxIterations)
			return
		}
		ic.frontier = deltaSet{}
		for _, cr := range stratum {
			if !cr.MaybeView || cr.Rule.Op != ast.Derive {
				continue
			}
			for j := range cr.Body {
				a := &cr.Body[j]
				if a.neg {
					continue
				}
				if !a.rel.isVar && !a.peer.isVar {
					id := a.rel.val.StringVal() + "@" + a.peer.val.StringVal()
					if len(frontier[id]) == 0 {
						continue
					}
				}
				if st.planner != nil {
					if ep := st.planner.compiledFor(cr, kindDRed, j); ep != nil {
						ep.runDelete(e, st, frontier)
						continue
					}
				}
				env := make([]value.Value, cr.NumSlots)
				bound := make([]bool, cr.NumSlots)
				var ord []int
				if st.planner != nil {
					ord = st.planner.orderFor(cr, j)
				}
				e.deleteFrom(cr, 0, env, bound, st, j, frontier, ord)
			}
		}
		st.out.Iterations++
		for relID, ts := range ic.frontier {
			ic.stageDel[relID] = append(ic.stageDel[relID], ts...)
			for _, t := range ts {
				newMarks = append(newMarks, relTuple{relID, t})
			}
		}
		frontier = ic.frontier
	}
	e.rederive(prog, st, newMarks)
}

// relTuple pairs a relation id with a tuple.
type relTuple struct {
	relID string
	tuple value.Tuple
}

// rederive restores over-deleted tuples that still have support: an external
// (remote-maintained) supporter, a seed from this stage's input, or a rule
// derivation from the remaining database. Restorations can support one
// another, so the pass iterates to fixpoint.
func (e *Engine) rederive(prog *Program, st *stageState, marks []relTuple) {
	ic := st.incr
	for changed := true; changed; {
		changed = false
		for i := range marks {
			m := &marks[i]
			if m.relID == "" {
				continue // already restored
			}
			if ic.marked[m.relID][m.tuple.Key()] == nil {
				m.relID = ""
				continue
			}
			rel := relByID(e.db, m.relID)
			if rel == nil {
				continue
			}
			name, peerName := store.SplitID(m.relID)
			keep := ic.isSeeded(m.relID, m.tuple.Key()) ||
				rel.HasExternalSupport(m.tuple) ||
				e.rederivable(prog, st, name, peerName, m.tuple)
			if keep {
				rel.Insert(m.tuple)
				key := m.tuple.Key()
				delete(ic.marked[m.relID], key)
				// Un-ghost: the tuple is back in the relation (the
				// pre-deletion union view still sees it there), and a later
				// stratum whose over-delete targets it again must not be
				// stopped by the "already processed" check.
				delete(ic.ghosts[m.relID], key)
				// Let the insert phase re-check derivations downstream of
				// the restoration; existing heads dedupe to no-ops.
				ic.stageIns[m.relID] = append(ic.stageIns[m.relID], m.tuple)
				m.relID = ""
				changed = true
			}
		}
	}
}

// rederivable reports whether some rule of the program derives rel@peer(t)
// from the current database. The head is unified with the target tuple first
// so the body walk is driven by bound values (indexable lookups); the
// planner supplies a body order chosen for exactly that pre-bound state.
func (e *Engine) rederivable(prog *Program, st *stageState, relName, peerName string, t value.Tuple) bool {
	for _, cr := range prog.Rules {
		if !cr.MaybeView || cr.Rule.Op != ast.Derive {
			continue
		}
		env := make([]value.Value, cr.NumSlots)
		bound := make([]bool, cr.NumSlots)
		if !unifyHead(cr, relName, peerName, t, env, bound) {
			continue
		}
		if st.planner != nil {
			if ep := st.planner.compiledFor(cr, kindMatch, -1); ep != nil {
				if ep.runMatch(e, st, env) {
					return true
				}
				continue
			}
		}
		var ord []int
		if st.planner != nil {
			ord = st.planner.rederiveOrder(cr)
		}
		if e.matchFrom(cr, 0, env, bound, ord) {
			return true
		}
	}
	return false
}

// unifyHead binds the rule's head against the target fact; false if the head
// cannot produce it.
func unifyHead(cr *CompiledRule, relName, peerName string, t value.Tuple, env []value.Value, bound []bool) bool {
	if len(cr.Head.args) != len(t) {
		return false
	}
	bindTerm := func(term termRef, v value.Value) bool {
		if term.isVar {
			if bound[term.slot] {
				return env[term.slot].Equal(v)
			}
			env[term.slot] = v
			bound[term.slot] = true
			return true
		}
		return term.val.Equal(v)
	}
	if !bindTerm(cr.Head.rel, value.Str(relName)) {
		return false
	}
	if !bindTerm(cr.Head.peer, value.Str(peerName)) {
		return false
	}
	for k, arg := range cr.Head.args {
		if !bindTerm(arg, t[k]) {
			return false
		}
	}
	return true
}

// matchFrom reports whether the rule body from plan step `step` has at
// least one satisfying local valuation under the current bindings — the
// existence check behind rederivation. Atoms that resolve to remote peers
// fail the branch: a delegated suffix is not a local derivation. ord maps
// plan steps to body positions as in evalFrom; the check is an existential
// over full valuations, so any safe order decides it identically.
func (e *Engine) matchFrom(cr *CompiledRule, step int, env []value.Value, bound []bool, ord []int) bool {
	if step == len(cr.Body) {
		return true
	}
	i := step
	if ord != nil {
		i = ord[step]
	}
	a := &cr.Body[i]
	peerName, ok := resolveName(a.peer, env)
	if !ok {
		return false
	}
	if peerName == BuiltinPeer {
		relName, ok := resolveName(a.rel, env)
		if !ok {
			return false
		}
		holds, err := evalBuiltin(relName, a, env)
		if err != nil {
			return false
		}
		return holds != a.neg && e.matchFrom(cr, step+1, env, bound, ord)
	}
	if peerName != e.local {
		return false
	}
	relName, ok := resolveName(a.rel, env)
	if !ok {
		return false
	}
	rel := e.db.Get(relName, peerName)
	if a.neg {
		t := make(value.Tuple, len(a.args))
		for k, arg := range a.args {
			if arg.isVar {
				t[k] = env[arg.slot]
			} else {
				t[k] = arg.val
			}
		}
		if rel == nil || len(a.args) != rel.Schema().Arity() || !rel.Contains(t) {
			return e.matchFrom(cr, step+1, env, bound, ord)
		}
		return false
	}
	if rel == nil {
		return false
	}
	found := false
	match := func(t value.Tuple) bool {
		okTuple, newlyBound := bindAtomArgs(a, t, env, bound)
		if okTuple {
			if e.matchFrom(cr, step+1, env, bound, ord) {
				found = true
			}
			unbind(bound, newlyBound)
		}
		return !found // stop scanning once satisfied
	}
	mask, boundVals := lookupMask(a, rel, env, bound)
	rel.Lookup(mask, boundVals, e.opts.UseIndexes, match)
	return found
}

// deleteFrom is the over-delete analogue of evalFrom: body position deltaPos
// ranges over the deletion frontier, every other positive position over the
// pre-deletion database (relation ∪ ghosts), and a fully matched body marks
// the produced head as over-deleted. ord, when non-nil, maps plan steps to
// body positions exactly as in evalFrom.
func (e *Engine) deleteFrom(cr *CompiledRule, step int, env []value.Value, bound []bool, st *stageState, deltaPos int, frontier deltaSet, ord []int) {
	if step == len(cr.Body) {
		e.produceDelete(cr, env, st)
		return
	}
	i := step
	if ord != nil {
		i = ord[step]
	}
	a := &cr.Body[i]
	peerName, ok := resolveName(a.peer, env)
	if !ok {
		return
	}
	if peerName == BuiltinPeer {
		relName, ok := resolveName(a.rel, env)
		if !ok {
			return
		}
		holds, err := evalBuiltin(relName, a, env)
		if err != nil {
			return
		}
		if holds != a.neg {
			e.deleteFrom(cr, step+1, env, bound, st, deltaPos, frontier, ord)
		}
		return
	}
	if peerName != e.local {
		return // delegated suffixes never derived locally
	}
	relName, ok := resolveName(a.rel, env)
	if !ok {
		return
	}
	relID := relName + "@" + peerName
	rel := e.db.Get(relName, peerName)
	if a.neg {
		// MaybeView rules with negation force full recomputation (classify),
		// so this is unreachable on the incremental path; keep the
		// conservative membership check for safety.
		t := make(value.Tuple, len(a.args))
		for k, arg := range a.args {
			if arg.isVar {
				t[k] = env[arg.slot]
			} else {
				t[k] = arg.val
			}
		}
		if rel == nil || len(a.args) != rel.Schema().Arity() || !rel.Contains(t) {
			e.deleteFrom(cr, step+1, env, bound, st, deltaPos, frontier, ord)
		}
		return
	}

	unify := func(t value.Tuple) bool {
		okTuple, newlyBound := bindAtomArgs(a, t, env, bound)
		if okTuple {
			e.deleteFrom(cr, step+1, env, bound, st, deltaPos, frontier, ord)
			unbind(bound, newlyBound)
		}
		return true // keep scanning
	}

	if i == deltaPos {
		for _, t := range frontier[relID] {
			unify(t)
		}
		return
	}
	var mask store.ColMask
	var boundVals []value.Value
	if rel != nil {
		mask, boundVals = lookupMask(a, rel, env, bound)
		rel.Lookup(mask, boundVals, e.opts.UseIndexes, unify)
	}
	// The pre-deletion database includes everything deleted this stage.
	st.incr.sweepGhosts(relID, mask, boundVals, func(t value.Tuple) { unify(t) })
}

// produceDelete marks the head tuple under the current bindings as
// over-deleted if it is a currently materialized local view tuple. All other
// head shapes (remote, extensional, already deleted) are ignored here: event
// rules re-emit their outputs in full and the remote view diff handles
// retraction.
func (e *Engine) produceDelete(cr *CompiledRule, env []value.Value, st *stageState) {
	ic := st.incr
	headPeer, ok := resolveName(cr.Head.peer, env)
	if !ok || headPeer != e.local {
		return
	}
	headRel, ok := resolveName(cr.Head.rel, env)
	if !ok {
		return
	}
	rel := e.db.Get(headRel, headPeer)
	if rel == nil || rel.Kind() != ast.Intensional {
		return
	}
	t := make(value.Tuple, len(cr.Head.args))
	for k, arg := range cr.Head.args {
		if arg.isVar {
			t[k] = env[arg.slot]
		} else {
			t[k] = arg.val
		}
	}
	if len(t) != rel.Schema().Arity() {
		return
	}
	relID := headRel + "@" + headPeer
	key := t.Key()
	if ic.ghosts[relID][key] != nil {
		return // already processed this stage
	}
	if !rel.Delete(t) {
		return
	}
	ic.ghost(relID, t)
	ic.mark(relID, t)
	ic.frontier[relID] = append(ic.frontier[relID], t)
}

// sortRemoteOps orders deletes first, then inserts, each sorted by fact
// key, for deterministic wire contents. Keys are precomputed: a torn-down
// remote view can put its whole contents through here at once.
func sortRemoteOps(ops []RemoteOp) {
	keys := make([]string, len(ops))
	for i, o := range ops {
		r := "1"
		if o.Op == ast.Delete {
			r = "0"
		}
		keys[i] = r + o.Fact.Key()
	}
	sort.Sort(&remoteOpSorter{ops: ops, keys: keys})
}

type remoteOpSorter struct {
	ops  []RemoteOp
	keys []string
}

func (s *remoteOpSorter) Len() int           { return len(s.ops) }
func (s *remoteOpSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *remoteOpSorter) Swap(i, j int) {
	s.ops[i], s.ops[j] = s.ops[j], s.ops[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// dropTuple removes every tuple with the given key from the slice.
func dropTuple(ts []value.Tuple, key string) []value.Tuple {
	out := ts[:0]
	for _, t := range ts {
		if t.Key() != key {
			out = append(out, t)
		}
	}
	return out
}

func copyDelta(d deltaSet) deltaSet {
	out := make(deltaSet, len(d))
	for k, v := range d {
		out[k] = append([]value.Tuple(nil), v...)
	}
	return out
}

func relByID(db *store.Store, relID string) *store.Relation {
	return db.GetID(relID)
}
