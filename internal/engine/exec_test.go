package engine

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

// TestCompiledCacheKeyedByStageKind pins the compiled-cache key: the three
// walk kinds of one rule share a plan order but compile to behaviorally
// different programs (different terminals, delta sources, ghost sweeps), so
// a DRed program must never be served for a semi-naive eval walk or vice
// versa, even at the same delta position.
func TestCompiledCacheKeyedByStageKind(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext e(a,b)", "int p(a,b)")
	insertFacts(t, db, `e@local(1, 2);`, `e@local(2, 3);`)
	prog, err := e.CompileProgram(mustRules(t,
		`p@local($x, $z) :- e@local($x, $y), e@local($y, $z);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	cr := prog.Rules[0]
	pl := e.newPlanner()
	if pl == nil || pl.compiled == nil {
		t.Fatal("default options should enable planning and compilation")
	}
	evalP := pl.compiledFor(cr, kindEval, 0)
	dredP := pl.compiledFor(cr, kindDRed, 0)
	matchP := pl.compiledFor(cr, kindMatch, -1)
	if evalP == nil || dredP == nil || matchP == nil {
		t.Fatalf("fully local positive rule should compile for every kind: eval=%v dred=%v match=%v",
			evalP != nil, dredP != nil, matchP != nil)
	}
	if evalP == dredP || evalP == matchP || dredP == matchP {
		t.Fatal("stage kinds share a compiled program: the cache key must include the kind")
	}
	if evalP.kind != kindEval || dredP.kind != kindDRed || matchP.kind != kindMatch {
		t.Fatalf("compiled programs carry wrong kinds: %d %d %d", evalP.kind, dredP.kind, matchP.kind)
	}
	// Repeat lookups hit the cache and return the identical program per kind.
	if pl.compiledFor(cr, kindEval, 0) != evalP {
		t.Fatal("eval lookup did not return the cached eval program")
	}
	if pl.compiledFor(cr, kindDRed, 0) != dredP {
		t.Fatal("DRed lookup did not return the cached DRed program")
	}
	// Delta positions cache separately too.
	if pl.compiledFor(cr, kindEval, 1) == evalP {
		t.Fatal("distinct delta positions share a compiled program")
	}
	compiles, hits, fallbacks := e.CompiledStats()
	if compiles != 4 || hits != 2 || fallbacks != 0 {
		t.Fatalf("CompiledStats() = (%d, %d, %d), want (4, 2, 0)", compiles, hits, fallbacks)
	}
}

// TestCompiledEngagesByDefault asserts that under DefaultOptions a plain
// local recursive program actually runs compiled — no silent fallback — and
// produces the same closure for repeat stage-kind lookups.
func TestCompiledEngagesByDefault(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext edge(a,b)", "int reach(a,b)")
	insertFacts(t, db, `edge@local(1, 2);`, `edge@local(2, 3);`, `edge@local(3, 4);`)
	prog, err := e.CompileProgram(mustRules(t,
		`reach@local($x, $y) :- edge@local($x, $y);`,
		`reach@local($x, $z) :- reach@local($x, $y), edge@local($y, $z);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "reach", "local"); len(got) != 6 {
		t.Fatalf("reach has %d rows, want 6: %v", len(got), got)
	}
	compiles, _, fallbacks := e.CompiledStats()
	if compiles == 0 {
		t.Fatal("no rule compiled under default options")
	}
	if fallbacks != 0 {
		t.Fatalf("%d interpreter fallbacks for a fully compilable program", fallbacks)
	}
}

// TestCompiledFallsBackOnDelegation asserts rules whose body can leave the
// peer are cached as interpreter fallbacks — delegation must keep flowing
// through the interpreted walk — and counted as such.
func TestCompiledFallsBackOnDelegation(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext e(a,b)")
	insertFacts(t, db, `e@local(1, 2);`)
	prog, err := e.CompileProgram(mustRules(t,
		`out@remote($x, $y) :- e@local($x, $y), f@remote($y, $x);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if len(res.Delegations) != 1 {
		t.Fatalf("expected 1 delegation, got %d", len(res.Delegations))
	}
	compiles, _, fallbacks := e.CompiledStats()
	if compiles != 0 || fallbacks == 0 {
		t.Fatalf("CompiledStats() = (%d compiles, %d fallbacks), want (0, >0)", compiles, fallbacks)
	}
}

// TestCompiledInertWithTracer: a tracer needs per-derivation supports, which
// compiled walks do not track; Options.Compiled must go silently inert.
func TestCompiledInertWithTracer(t *testing.T) {
	opts := DefaultOptions()
	opts.Tracer = tracerFunc(func(ast.Fact, *ast.Rule, []ast.Fact) {})
	e, db := testEnv(t, opts, "ext e(a,b)", "int p(a,b)")
	insertFacts(t, db, `e@local(1, 2);`)
	prog, err := e.CompileProgram(mustRules(t, `p@local($x, $y) :- e@local($x, $y);`))
	if err != nil {
		t.Fatal(err)
	}
	checkNoErrors(t, e.RunStage(prog))
	if compiles, hits, fallbacks := e.CompiledStats(); compiles != 0 || hits != 0 || fallbacks != 0 {
		t.Fatalf("CompiledStats() = (%d, %d, %d) with a tracer attached, want all zero", compiles, hits, fallbacks)
	}
	if got := relContents(db, "p", "local"); len(got) != 1 {
		t.Fatalf("p has %d rows, want 1", len(got))
	}
}

// TestExplainAnnotatesCompiled checks the -explain rendering distinguishes
// compiled rules, interpreter fallbacks, and globally disabled compilation.
func TestExplainAnnotatesCompiled(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext e(a,b)", "int p(a,b)")
	insertFacts(t, db, `e@local(1, 2);`)
	rules := mustRules(t,
		`p@local($x, $y) :- e@local($x, $y);`,
		`out@remote($x) :- e@local($x, $y), f@remote($y, $x);`,
	)
	prog, err := e.CompileProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Explain(prog)
	if !strings.Contains(out, "closure chains cached per stage kind") {
		t.Fatalf("explain lacks the compiled annotation:\n%s", out)
	}
	if !strings.Contains(out, "interpreter fallback") || !strings.Contains(out, "delegation boundary") {
		t.Fatalf("explain lacks the fallback annotation with its reason:\n%s", out)
	}

	off := DefaultOptions()
	off.Compiled = false
	e2 := New("local", db, off)
	prog2, err := e2.CompileProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	out2 := e2.Explain(prog2)
	if !strings.Contains(out2, "compiled execution disabled") {
		t.Fatalf("explain with Compiled off lacks the disabled notice:\n%s", out2)
	}
	if strings.Contains(out2, "closure chains cached") {
		t.Fatalf("explain with Compiled off still claims compilation:\n%s", out2)
	}
}

// TestCompiledIncrementalSequence drives inserts and deletes through a
// maintained recursive view with compilation on and off, checking identical
// contents after every stage — the compiled DRed and rederive walks against
// their interpreted twins on a known-tricky shape (diamond support: a tuple
// whose deleted derivation has a surviving alternative must be rederived).
func TestCompiledIncrementalSequence(t *testing.T) {
	type batch struct {
		ins [][2]int64
		del [][2]int64
	}
	batches := []batch{
		{ins: [][2]int64{{1, 2}, {2, 4}, {1, 3}, {3, 4}, {4, 5}}},
		{del: [][2]int64{{2, 4}}},                          // reach(1,4) survives via 1→3→4
		{del: [][2]int64{{3, 4}}},                          // now reach(1,4), reach(x,5) collapse
		{ins: [][2]int64{{2, 4}}},                          // restore one path
		{ins: [][2]int64{{5, 1}}, del: [][2]int64{{1, 2}}}, // cycle + cut
	}
	run := func(opts Options) []map[string][]string {
		e, db := testEnv(t, opts, "ext edge(a,b)", "int reach(a,b)")
		prog, err := e.CompileProgram(mustRules(t,
			`reach@local($x, $y) :- edge@local($x, $y);`,
			`reach@local($x, $z) :- reach@local($x, $y), edge@local($y, $z);`,
		))
		if err != nil {
			t.Fatal(err)
		}
		if !prog.Incremental {
			t.Fatal("positive program should be incremental")
		}
		rv := NewRemoteView()
		checkNoErrors(t, e.RunStageFull(prog, nil, rv))
		base := db.Get("edge", "local")
		var states []map[string][]string
		for _, b := range batches {
			in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
			for _, p := range b.ins {
				tup := value.Tuple{value.Int(p[0]), value.Int(p[1])}
				if base.Insert(tup) {
					in.Ins["edge@local"] = append(in.Ins["edge@local"], tup)
				}
			}
			for _, p := range b.del {
				tup := value.Tuple{value.Int(p[0]), value.Int(p[1])}
				if base.Delete(tup) {
					in.Del["edge@local"] = append(in.Del["edge@local"], tup)
				}
			}
			checkNoErrors(t, e.RunStageIncremental(prog, in, rv))
			states = append(states, map[string][]string{
				"edge":  relContents(db, "edge", "local"),
				"reach": relContents(db, "reach", "local"),
			})
		}
		compiles, _, _ := e.CompiledStats()
		if opts.Compiled && compiles == 0 {
			t.Fatal("compiled run never compiled a rule")
		}
		if !opts.Compiled && compiles != 0 {
			t.Fatal("interpreted run compiled a rule")
		}
		return states
	}
	compiled := DefaultOptions()
	interp := DefaultOptions()
	interp.Compiled = false
	got := run(compiled)
	want := run(interp)
	for step := range want {
		for rel, w := range want[step] {
			g := got[step][rel]
			if len(g) != len(w) {
				t.Fatalf("step %d: %s differs: compiled %v, interpreted %v", step, rel, g, w)
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("step %d: %s row %d differs: %s vs %s", step, rel, i, g[i], w[i])
				}
			}
		}
	}
}
