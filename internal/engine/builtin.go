package engine

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/value"
)

// BuiltinPeer is the reserved peer name for built-in predicates. Atoms whose
// peer is this constant are evaluated by the engine itself rather than by a
// relation lookup or a delegation:
//
//	top@jules($id) :- rate@jules($id, $s), ge@builtin($s, 4);
//
// Available predicates (all arity 2): lt, le, gt, ge, eq, neq. Values are
// compared with the total order of the value package; comparing values of
// different kinds follows the kind order rather than failing, which keeps
// the predicates total.
//
// This is an extension over the paper's language, motivated by its
// rule-customization scenario ("retrieving, e.g., only pictures that were
// taken by a certain sigmod attendee"); the Bud runtime underlying the
// original system offers similar predicates.
//
// The canonical definition lives in internal/analysis, so static tooling
// and the engine can never disagree about what a builtin is.
const BuiltinPeer = analysis.BuiltinPeer

// builtinArity maps predicate names to their required arity.
var builtinArity = analysis.Builtins()

// IsBuiltinAtom reports whether a (relation, peer) pair names a built-in
// predicate.
func IsBuiltinAtom(rel, peerName string) bool {
	if peerName != BuiltinPeer {
		return false
	}
	_, ok := builtinArity[rel]
	return ok
}

// evalBuiltin evaluates a built-in predicate under the current bindings.
// All argument terms must be bound (guaranteed for compiled rules by
// CheckSafety); it returns whether the predicate holds.
func evalBuiltin(rel string, a *cAtom, env []value.Value) (bool, error) {
	want, ok := builtinArity[rel]
	if !ok {
		return false, fmt.Errorf("engine: unknown builtin predicate %q", rel)
	}
	if len(a.args) != want {
		return false, fmt.Errorf("engine: builtin %s expects %d arguments, got %d", rel, want, len(a.args))
	}
	vals := make([]value.Value, len(a.args))
	for i, arg := range a.args {
		if arg.isVar {
			vals[i] = env[arg.slot]
		} else {
			vals[i] = arg.val
		}
	}
	c := vals[0].Compare(vals[1])
	switch rel {
	case "lt":
		return c < 0, nil
	case "le":
		return c <= 0, nil
	case "gt":
		return c > 0, nil
	case "ge":
		return c >= 0, nil
	case "eq":
		return c == 0, nil
	case "neq":
		return c != 0, nil
	}
	return false, fmt.Errorf("engine: unknown builtin predicate %q", rel)
}
