// Package engine implements WebdamLog rule evaluation for a single peer's
// computation stage, replacing the Bud datalog runtime used by the paper.
//
// A stage (paper §2, "WebdamLog peers, in brief") is: (1) load inputs
// received from remote peers, (2) run a fixpoint of the local program,
// (3) send facts (updates) and rules (delegations) to other peers. This
// package implements step (2) and computes the outputs of step (3); the
// peer package orchestrates the loop and the message passing.
//
// Evaluation is left-to-right per the paper ("Rule bodies in WebdamLog are
// evaluated from left to right. The order matters"). When evaluation of a
// body reaches an atom whose peer term resolves to a remote peer, the
// remainder of the body — with the prefix's bindings substituted in — is
// emitted as a residual rule delegated to that peer.
package engine

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// Options configures evaluation. The zero value is not useful; use
// DefaultOptions as a base.
type Options struct {
	// SemiNaive enables semi-naive (delta-driven) fixpoint iteration.
	// When false the engine re-evaluates all rules from scratch each
	// iteration (naive evaluation; kept for the ablation benchmarks).
	SemiNaive bool
	// UseIndexes enables hash indexes on bound column subsets during joins.
	UseIndexes bool
	// MaxIterations bounds fixpoint iterations as a safety net.
	MaxIterations int
	// Planner enables cost-based join planning: at stage time each rule's
	// positive local body atoms are reordered by estimated selectivity
	// (live relation cardinalities, the bound-argument mask each atom
	// would be probed with, index statistics), and negated atoms and
	// builtins float to the earliest position at which their variables
	// are bound. Reordering stops at the first atom whose peer term is a
	// variable or a remote constant, so delegation boundaries and the
	// paper's safety semantics are untouched; results are provably
	// unchanged (prop-tested against the written order). When false —
	// the written-order ablation of experiment P9 — bodies evaluate
	// exactly as written. See plan.go.
	Planner bool
	// Compiled enables compiled rule execution: once the stage fixes a body
	// order for a (rule, stage kind, delta position) triple, that plan is
	// compiled into a chain of specialized step closures over pre-resolved
	// relation handles, precomputed probe masks/keys, and fixed binding
	// slots — skipping the interpreter's per-tuple ord indirection, name
	// resolution, and bound-value collection on every probe. Rules the
	// compiler cannot prove equivalent (variable relation or peer terms,
	// possibly-remote atoms, unresolved relations) fall back to the
	// interpreter per rule. Compilation requires UseIndexes (the compiled
	// probes are keyed) and no Tracer (supports are not tracked); it is
	// silently inert otherwise. When false — the interpreter ablation of
	// experiment P9's compiled tier — every rule takes today's generic
	// walks. See compilefast.go and exec.go.
	Compiled bool
	// Incremental keeps derived relations materialized between stages and
	// maintains them from each stage's base-fact deltas (inserts through the
	// semi-naive machinery, deletions through an over-delete/rederive pass),
	// instead of recomputing every view from scratch per stage. When false —
	// the naive-recompute ablation — or when the program is not
	// incrementally maintainable (negation in a view rule, a Tracer
	// attached), every stage rebuilds the views. See incremental.go.
	Incremental bool
	// Tracer, when non-nil, observes every successful derivation. A tracer
	// implies per-stage recomputation (provenance is rebuilt each stage), so
	// it disables Incremental.
	Tracer Tracer
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{SemiNaive: true, UseIndexes: true, Planner: true, Compiled: true, Incremental: true, MaxIterations: 1_000_000}
}

// Tracer observes derivations for provenance tracking and debugging.
type Tracer interface {
	// OnDerive is called for each successful rule firing: the produced head
	// fact, the rule that fired, and the ground body atoms that supported it.
	OnDerive(head ast.Fact, rule *ast.Rule, supports []ast.Fact)
}

// FactOp is a produced fact together with what to do with it (derive/insert
// vs delete).
type FactOp struct {
	Op   ast.UpdateOp
	Fact ast.Fact
}

// String renders the op for logs.
func (f FactOp) String() string {
	if f.Op == ast.Delete {
		return "-" + f.Fact.String()
	}
	return "+" + f.Fact.String()
}

// Key returns a canonical dedupe key.
func (f FactOp) Key() string {
	if f.Op == ast.Delete {
		return "-" + f.Fact.Key()
	}
	return "+" + f.Fact.Key()
}

// ViewDelta is the net change one stage made to a materialized local view:
// the tuples that appeared and the tuples that vanished, with no overlap.
type ViewDelta struct {
	Ins []value.Tuple
	Del []value.Tuple
}

// RemoteOp is one fact delta bound for a remote peer. Maint distinguishes
// maintained view deltas (the sender starts/stops deriving the fact and will
// keep the receiver posted) from one-shot updates produced by explicit
// deletion rules; see protocol.FactDelta.
type RemoteOp struct {
	Op    ast.UpdateOp
	Maint bool
	Fact  ast.Fact
}

// Result collects the outputs of one stage's fixpoint.
type Result struct {
	// LocalUpdates are +/- updates to local extensional relations, to be
	// applied at the beginning of the next local stage.
	LocalUpdates []FactOp
	// Remote maps destination peer name to every fact the stage derived for
	// it — the full per-stage emission set, before delta maintenance.
	Remote map[string][]FactOp
	// RemoteOut maps destination peer name to the deltas to actually ship:
	// maintained inserts for newly derived facts, maintained deletes for
	// facts whose last derivation disappeared, and pass-through one-shot
	// deletion-rule updates. Populated by RunStageIncremental and
	// RunStageFull (which maintain the caller's RemoteView), not by bare
	// RunStage.
	RemoteOut map[string][]RemoteOp
	// Views maps "rel@peer" to the net change an incremental stage made to
	// that materialized local view. Populated only by RunStageIncremental;
	// full recomputations leave it nil (consumers diff snapshots instead).
	Views map[string]*ViewDelta
	// Delegations maps source rule ID -> target peer -> residual rules.
	// The set for a (rule, target) pair replaces whatever that pair
	// delegated in previous stages (delegation maintenance).
	Delegations map[string]map[string][]ast.Rule
	// Derived counts new intensional facts derived in this stage.
	Derived int
	// Retracted counts intensional facts deleted by this stage's deletion
	// pass (net of rederivations).
	Retracted int
	// Iterations counts fixpoint iterations across all strata.
	Iterations int
	// Errors collects non-fatal runtime semantic errors (e.g. a deletion
	// rule whose head resolved to an intensional relation).
	Errors []error
}

// RemotePeers returns the destinations with outgoing deltas, sorted — the
// emission order the peer layer uses.
func (r *Result) RemotePeers() []string {
	out := make([]string, 0, len(r.RemoteOut))
	for p := range r.RemoteOut {
		if len(r.RemoteOut[p]) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Engine evaluates compiled programs against a store on behalf of a peer.
// The maintained per-destination remote view is not engine state: the
// caller owns it (peer session layer) as a RemoteView and passes it to
// RunStageFull / RunStageIncremental.
type Engine struct {
	local string
	db    *store.Store
	opts  Options

	// Plan-cache telemetry: planFor lookups that found an existing plan vs
	// ones that computed a fresh one. The cache is per stage, so hits
	// measure intra-stage rule reuse (semi-naive iterations re-planning
	// the same rule). Atomics so monitoring can read them without a lock.
	planHits   atomic.Uint64
	planMisses atomic.Uint64

	// Compiled-execution telemetry: closure chains freshly compiled, cache
	// lookups that reused one (per stage, like the plan cache), and rule
	// invocations that fell back to the interpreter because the rule is not
	// compilable (the nil verdict is cached too, counted once per stage).
	ruleCompiles     atomic.Uint64
	compiledHits     atomic.Uint64
	compileFallbacks atomic.Uint64
}

// New creates an engine for the peer named local over db.
func New(local string, db *store.Store, opts Options) *Engine {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1_000_000
	}
	return &Engine{local: local, db: db, opts: opts}
}

// Local returns the local peer name.
func (e *Engine) Local() string { return e.local }

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.db }

// Options returns the evaluation options.
func (e *Engine) Options() Options { return e.opts }

// PlanCacheStats returns the lifetime join-plan cache counters: lookups
// that reused a stage's cached plan (hits) and lookups that computed one
// (misses). Always zero with the planner disabled.
func (e *Engine) PlanCacheStats() (hits, misses uint64) {
	return e.planHits.Load(), e.planMisses.Load()
}

// CompiledStats returns the lifetime compiled-execution counters: closure
// chains compiled, cache lookups that reused one, and (rule, stage kind,
// delta position) triples that fell back to the interpreter. All zero with
// compiled execution disabled.
func (e *Engine) CompiledStats() (compiles, hits, fallbacks uint64) {
	return e.ruleCompiles.Load(), e.compiledHits.Load(), e.compileFallbacks.Load()
}

// termRef is a compiled term: either a constant or a slot in the rule's
// variable frame.
type termRef struct {
	isVar bool
	slot  int
	val   value.Value
}

func (t termRef) String() string {
	if t.isVar {
		return fmt.Sprintf("$%d", t.slot)
	}
	return t.val.Literal()
}

// cAtom is a compiled atom.
type cAtom struct {
	neg  bool
	rel  termRef
	peer termRef
	args []termRef
}

// CompiledRule is a rule compiled against a variable frame: each distinct
// variable is assigned a slot index, and every term is resolved to either a
// constant or a slot.
type CompiledRule struct {
	Rule      *ast.Rule
	NumSlots  int
	SlotNames []string
	Head      cAtom
	Body      []cAtom
	Stratum   int

	// Event marks rules outside the incremental view-maintenance fast path:
	// deletion rules, rules whose head is (or may be) remote or extensional,
	// and rules whose body may leave the local peer (delegation). Event
	// rules are evaluated in full every stage, which preserves the paper's
	// continuous emission and delegation-maintenance semantics; non-event
	// ("view") rules are maintained from deltas. See classify in
	// incremental.go.
	Event bool
	// MaybeView marks rules whose head could land in a local intensional
	// relation (every view rule, plus event rules with a variable head
	// relation or peer). Only these participate in the deletion pass and in
	// rederivation checks.
	MaybeView bool
}

// String renders the original rule.
func (c *CompiledRule) String() string { return c.Rule.String() }

// Program is a compiled, stratified set of rules ready for RunStage.
type Program struct {
	Rules  []*CompiledRule
	Strata [][]*CompiledRule

	// Incremental reports that this program can be maintained by
	// RunStageIncremental: Options.Incremental is on, no tracer is
	// attached, and no rule that may derive into a local view uses
	// negation. Otherwise every stage must recompute (RunStageFull).
	Incremental bool
}

// RuleCount returns the number of rules in the program.
func (p *Program) RuleCount() int { return len(p.Rules) }
