package engine

import (
	"repro/internal/analysis"
	"repro/internal/ast"
)

// Stratification. The paper's language includes negation ("Although negation
// is supported by the language, it is not yet implemented in the WebdamLog
// system"); we implement it with the classic stratified semantics, applied
// to the peer's local program each stage.
//
// The dependency analysis itself lives in internal/analysis (Stratify),
// shared with the `wdl check` static analyzer; the engine supplies the live
// store's intensional relations as the graph's nodes and turns a negation
// cycle into ErrNotStratifiable.

// ErrNotStratifiable reports a program with a negation cycle. Pos locates a
// rule on the cycle when the program was parsed from source.
type ErrNotStratifiable struct {
	Detail string
	Pos    ast.Pos
}

// Error implements the error interface. When the cycle carries a source
// position, it is appended; the historical message is otherwise unchanged.
func (e *ErrNotStratifiable) Error() string {
	if e.Pos.IsValid() {
		return "program is not stratifiable: " + e.Detail + " (at " + e.Pos.String() + ")"
	}
	return "program is not stratifiable: " + e.Detail
}

// localIntensional returns the set of local intensional relation names that
// currently exist in the store.
func (e *Engine) localIntensional() map[string]bool {
	out := map[string]bool{}
	for _, r := range e.db.RelationsOf(e.local) {
		if r.Kind() == ast.Intensional {
			out[r.Name()] = true
		}
	}
	return out
}

// stratify assigns a stratum to every relation node and every rule, filling
// prog.Strata. Rules with no local intensional head (pure update / message /
// delegation rules) are placed after every stratum they depend on.
func (e *Engine) stratify(prog *Program) error {
	idb := e.localIntensional()
	rules := make([]ast.Rule, len(prog.Rules))
	for i, cr := range prog.Rules {
		rules[i] = *cr.Rule
	}
	st, v := analysis.Stratify(e.local, idb, rules)
	if v != nil {
		return &ErrNotStratifiable{Detail: v.Detail(), Pos: v.Pos}
	}
	for i, cr := range prog.Rules {
		cr.Stratum = st.RuleStrata[i]
	}
	prog.Strata = make([][]*CompiledRule, st.MaxStratum+1)
	for _, cr := range prog.Rules {
		prog.Strata[cr.Stratum] = append(prog.Strata[cr.Stratum], cr)
	}
	return nil
}
