package engine

import (
	"fmt"

	"repro/internal/ast"
)

// Stratification. The paper's language includes negation ("Although negation
// is supported by the language, it is not yet implemented in the WebdamLog
// system"); we implement it with the classic stratified semantics, applied
// to the peer's local program each stage.
//
// Nodes of the dependency graph are the peer's local *intensional* relations
// (extensional relations are frozen during a stage, so they impose no
// ordering). Because WebdamLog allows variables in relation and peer
// position, static analysis is necessarily conservative:
//
//   - a head with a variable relation or peer may derive into any local
//     intensional relation ("wildcard head");
//   - a body atom with a variable relation or peer may read any local
//     intensional relation ("wildcard dependency").
//
// A program is rejected only if these conservative dependencies contain a
// cycle through negation.

// ErrNotStratifiable reports a program with a negation cycle.
type ErrNotStratifiable struct {
	Detail string
}

// Error implements the error interface.
func (e *ErrNotStratifiable) Error() string {
	return "program is not stratifiable: " + e.Detail
}

// localIntensional returns the set of local intensional relation names that
// currently exist in the store.
func (e *Engine) localIntensional() map[string]bool {
	out := map[string]bool{}
	for _, r := range e.db.RelationsOf(e.local) {
		if r.Kind() == ast.Intensional {
			out[r.Name()] = true
		}
	}
	return out
}

// headTargets returns the local intensional relations the rule's head might
// derive into: nil for "none" and the full set for a wildcard head.
func headTargets(cr *CompiledRule, idb map[string]bool, local string) []string {
	h := cr.Head
	if !h.peer.isVar {
		if h.peer.val.StringVal() != local {
			return nil // remote head: a message, not a local derivation
		}
	}
	// Peer is local or a variable (conservatively possibly local).
	if !h.rel.isVar {
		name := h.rel.val.StringVal()
		if idb[name] {
			return []string{name}
		}
		return nil // extensional or undeclared head: an update, not a view
	}
	// Wildcard head.
	out := make([]string, 0, len(idb))
	for name := range idb {
		out = append(out, name)
	}
	return out
}

// bodyDeps returns, for each body atom that may read a local intensional
// relation, its possible relation names and whether the atom is negated.
type bodyDep struct {
	rels []string
	neg  bool
}

func bodyDeps(cr *CompiledRule, idb map[string]bool, local string) []bodyDep {
	var out []bodyDep
	for _, a := range cr.Body {
		if !a.peer.isVar && a.peer.val.StringVal() != local {
			continue // definitely remote: evaluated by delegation at the remote peer
		}
		if !a.rel.isVar {
			name := a.rel.val.StringVal()
			if idb[name] {
				out = append(out, bodyDep{rels: []string{name}, neg: a.neg})
			}
			continue
		}
		all := make([]string, 0, len(idb))
		for name := range idb {
			all = append(all, name)
		}
		if len(all) > 0 {
			out = append(out, bodyDep{rels: all, neg: a.neg})
		}
	}
	return out
}

// stratify assigns a stratum to every relation node and every rule, filling
// prog.Strata. Rules with no local intensional head (pure update / message /
// delegation rules) are placed after every stratum they depend on.
func (e *Engine) stratify(prog *Program) error {
	idb := e.localIntensional()
	strata := map[string]int{}
	for name := range idb {
		strata[name] = 0
	}
	// Iterate the usual inequalities to a fixpoint; a stratum exceeding the
	// node count certifies a negation cycle.
	limit := len(idb) + 1
	for changed := true; changed; {
		changed = false
		for _, cr := range prog.Rules {
			heads := headTargets(cr, idb, e.local)
			if len(heads) == 0 {
				continue
			}
			deps := bodyDeps(cr, idb, e.local)
			for _, h := range heads {
				for _, d := range deps {
					for _, b := range d.rels {
						need := strata[b]
						if d.neg {
							need++
						}
						if strata[h] < need {
							strata[h] = need
							changed = true
							if strata[h] > limit {
								return &ErrNotStratifiable{Detail: fmt.Sprintf(
									"relation %s@%s participates in a cycle through negation", h, e.local)}
							}
						}
					}
				}
			}
		}
	}

	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	// Place each rule: it must run no earlier than all its positive
	// dependencies and strictly after its negated dependencies; deductive
	// rules additionally run in their head's stratum.
	for _, cr := range prog.Rules {
		s := 0
		for _, d := range bodyDeps(cr, idb, e.local) {
			for _, b := range d.rels {
				need := strata[b]
				if d.neg {
					need++
				}
				if s < need {
					s = need
				}
			}
		}
		for _, h := range headTargets(cr, idb, e.local) {
			if s < strata[h] {
				s = strata[h]
			}
		}
		if s > maxStratum {
			maxStratum = s
		}
		cr.Stratum = s
	}
	prog.Strata = make([][]*CompiledRule, maxStratum+1)
	for _, cr := range prog.Rules {
		prog.Strata[cr.Stratum] = append(prog.Strata[cr.Stratum], cr)
	}
	return nil
}
