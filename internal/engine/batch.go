package engine

import "repro/internal/ast"

// Batch accumulates fact operations — inserts and deletes, possibly for
// several relations and several peers — to be applied atomically: one store
// transaction and one fixpoint stage at each destination instead of one
// kick per fact, and one wire message per destination peer instead of one
// per fact. Build it with the fluent Insert/Delete methods and hand it to
// Peer.Apply.
//
// A Batch is not safe for concurrent mutation; build it on one goroutine.
type Batch struct {
	ops []FactOp
}

// NewBatch creates an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Insert stages the insertion of f.
func (b *Batch) Insert(f ast.Fact) *Batch {
	b.ops = append(b.ops, FactOp{Op: ast.Derive, Fact: f})
	return b
}

// Delete stages the deletion of f.
func (b *Batch) Delete(f ast.Fact) *Batch {
	b.ops = append(b.ops, FactOp{Op: ast.Delete, Fact: f})
	return b
}

// Add stages an already-built op.
func (b *Batch) Add(op FactOp) *Batch {
	b.ops = append(b.ops, op)
	return b
}

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.ops) }

// Empty reports whether the batch stages nothing.
func (b *Batch) Empty() bool { return len(b.ops) == 0 }

// Ops returns the staged operations in insertion order. The slice is the
// batch's backing array; callers must not mutate it while the batch is
// still being built.
func (b *Batch) Ops() []FactOp { return b.ops }
