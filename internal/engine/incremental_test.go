package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// incrHarness drives an engine in incremental mode the way a peer would:
// one full materialization, then delta stages.
type incrHarness struct {
	t    *testing.T
	e    *Engine
	db   *store.Store
	prog *Program
	rv   *RemoteView
}

func newIncrHarness(t *testing.T, decls []string, rules []ast.Rule) *incrHarness {
	t.Helper()
	e, db := testEnv(t, DefaultOptions(), decls...)
	prog, err := e.CompileProgram(rules)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !prog.Incremental {
		t.Fatalf("program unexpectedly not incrementally maintainable")
	}
	rv := NewRemoteView()
	res := e.RunStageFull(prog, nil, rv)
	checkNoErrors(t, res)
	return &incrHarness{t: t, e: e, db: db, prog: prog, rv: rv}
}

// step applies the given extensional inserts/deletes and runs one
// incremental stage, verifying that the reported view deltas match the
// actual before/after contents of every intensional relation.
func (h *incrHarness) step(ins, del []ast.Fact) *Result {
	h.t.Helper()
	before := h.snapshotViews()
	in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
	for _, f := range ins {
		rel := h.db.Get(f.Rel, f.Peer)
		if rel.Insert(f.Args) {
			in.Ins[f.Rel+"@"+f.Peer] = append(in.Ins[f.Rel+"@"+f.Peer], f.Args)
		}
	}
	for _, f := range del {
		rel := h.db.Get(f.Rel, f.Peer)
		if rel.Delete(f.Args) {
			in.Del[f.Rel+"@"+f.Peer] = append(in.Del[f.Rel+"@"+f.Peer], f.Args)
		}
	}
	res := h.e.RunStageIncremental(h.prog, in, h.rv)
	checkNoErrors(h.t, res)
	h.checkViewDeltas(before, res)
	return res
}

func (h *incrHarness) snapshotViews() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, rel := range h.db.RelationsOf("local") {
		if rel.Kind() != ast.Intensional {
			continue
		}
		m := map[string]bool{}
		for _, t := range rel.Tuples() {
			m[t.Key()] = true
		}
		out[rel.Schema().ID()] = m
	}
	return out
}

// checkViewDeltas asserts Result.Views is exactly the symmetric difference
// of the before/after view contents.
func (h *incrHarness) checkViewDeltas(before map[string]map[string]bool, res *Result) {
	h.t.Helper()
	after := h.snapshotViews()
	for relID, b := range before {
		a := after[relID]
		var wantIns, wantDel []string
		for k := range a {
			if !b[k] {
				wantIns = append(wantIns, k)
			}
		}
		for k := range b {
			if !a[k] {
				wantDel = append(wantDel, k)
			}
		}
		var gotIns, gotDel []string
		if vd := res.Views[relID]; vd != nil {
			for _, t := range vd.Ins {
				gotIns = append(gotIns, t.Key())
			}
			for _, t := range vd.Del {
				gotDel = append(gotDel, t.Key())
			}
		}
		if !sameKeySet(wantIns, gotIns) || !sameKeySet(wantDel, gotDel) {
			h.t.Errorf("view delta mismatch for %s: got +%v -%v, want +%v -%v",
				relID, gotIns, gotDel, wantIns, wantDel)
		}
	}
}

func sameKeySet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, k := range a {
		m[k]++
	}
	for _, k := range b {
		m[k]--
		if m[k] < 0 {
			return false
		}
	}
	return true
}

func tcRules(t *testing.T) []ast.Rule {
	return mustRules(t,
		`tc@local($x,$y) :- edge@local($x,$y);`,
		`tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`,
	)
}

func edge(a, b string) ast.Fact {
	return ast.NewFact("edge", "local", value.Str(a), value.Str(b))
}

// TestIncrementalInsertMatchesRecompute: feeding inserts as deltas reaches
// the same fixpoint as recomputing from scratch.
func TestIncrementalInsertMatchesRecompute(t *testing.T) {
	h := newIncrHarness(t, []string{"ext edge(a,b)", "int tc(a,b)"}, tcRules(t))
	h.step([]ast.Fact{edge("a", "b"), edge("b", "c")}, nil)
	h.step([]ast.Fact{edge("c", "d")}, nil)
	if got := relContents(h.db, "tc", "local"); len(got) != 6 {
		t.Errorf("tc = %v, want 6 tuples", got)
	}
}

// TestIncrementalDeleteCascades: deleting a base fact retracts every derived
// fact that transitively lost its only derivation.
func TestIncrementalDeleteCascades(t *testing.T) {
	h := newIncrHarness(t, []string{"ext edge(a,b)", "int tc(a,b)"}, tcRules(t))
	h.step([]ast.Fact{edge("a", "b"), edge("b", "c"), edge("c", "d")}, nil)
	res := h.step(nil, []ast.Fact{edge("b", "c")})
	if res.Retracted != 4 { // (b,c), (a,c), (b,d), (a,d)
		t.Errorf("retracted %d, want 4", res.Retracted)
	}
	got := relContents(h.db, "tc", "local")
	if len(got) != 2 { // (a,b), (c,d)
		t.Errorf("tc after delete = %v, want [(a, b) (c, d)]", got)
	}
}

// TestIncrementalAlternativeDerivationSurvives: a tuple with two derivations
// loses one support and stays; losing the second removes it.
func TestIncrementalAlternativeDerivationSurvives(t *testing.T) {
	h := newIncrHarness(t,
		[]string{"ext a(x)", "ext b(x)", "int both(x)"},
		mustRules(t,
			`both@local($x) :- a@local($x);`,
			`both@local($x) :- b@local($x);`,
		))
	av := ast.NewFact("a", "local", value.Str("v"))
	bv := ast.NewFact("b", "local", value.Str("v"))
	h.step([]ast.Fact{av, bv}, nil)
	res := h.step(nil, []ast.Fact{av})
	if res.Retracted != 0 {
		t.Errorf("retracted %d, want 0: the b-derivation still stands", res.Retracted)
	}
	if got := relContents(h.db, "both", "local"); len(got) != 1 {
		t.Fatalf("both = %v, want [(v)]", got)
	}
	res = h.step(nil, []ast.Fact{bv})
	if res.Retracted != 1 {
		t.Errorf("retracted %d, want 1", res.Retracted)
	}
	if got := relContents(h.db, "both", "local"); len(got) != 0 {
		t.Errorf("both = %v, want empty", got)
	}
}

// TestIncrementalDeleteWithCycle: mutual recursive support (a→b→a) must not
// keep tuples alive after the base support is gone — the over-delete /
// rederive pass handles what pure counting cannot.
func TestIncrementalDeleteWithCycle(t *testing.T) {
	h := newIncrHarness(t, []string{"ext edge(a,b)", "int tc(a,b)"}, tcRules(t))
	h.step([]ast.Fact{edge("a", "b"), edge("b", "a")}, nil)
	if got := relContents(h.db, "tc", "local"); len(got) != 4 {
		t.Fatalf("tc = %v, want 4 tuples on the 2-cycle", got)
	}
	h.step(nil, []ast.Fact{edge("a", "b")})
	got := relContents(h.db, "tc", "local")
	if len(got) != 1 || got[0] != "(b, a)" {
		t.Errorf("tc after breaking the cycle = %v, want [(b, a)]", got)
	}
}

// TestIncrementalDeleteThenReinsertSameStage: a batch that deletes one
// support and inserts another nets out correctly.
func TestIncrementalDeleteThenReinsertSameStage(t *testing.T) {
	h := newIncrHarness(t, []string{"ext edge(a,b)", "int tc(a,b)"}, tcRules(t))
	h.step([]ast.Fact{edge("a", "b"), edge("b", "c")}, nil)
	// Replace b->c by a parallel path b->c (same tuple deleted and a fresh
	// edge d->c inserted): (a,c) must survive only through what remains.
	res := h.step([]ast.Fact{edge("a", "c")}, []ast.Fact{edge("b", "c")})
	_ = res
	got := relContents(h.db, "tc", "local")
	// Remaining edges: a->b, a->c. tc = {(a,b), (a,c)}.
	if len(got) != 2 || got[0] != "(a, b)" || got[1] != "(a, c)" {
		t.Errorf("tc = %v, want [(a, b) (a, c)]", got)
	}
}

// TestCandidateWithLocalDerivationSurvives: a deletion candidate (a tuple
// whose external support vanished) must be restored by the rederivation
// pass when a local rule still derives it — and must go when it does not.
func TestCandidateWithLocalDerivationSurvives(t *testing.T) {
	h := newIncrHarness(t,
		[]string{"ext base(x)", "int v(x)"},
		mustRules(t, `v@local($x) :- base@local($x);`))
	h.step([]ast.Fact{ast.NewFact("base", "local", value.Int(1))}, nil)

	// Support lost, but base(1) still derives v(1): the candidate survives.
	in := &StageInput{Cand: map[string][]value.Tuple{"v@local": {{value.Int(1)}}}}
	res := h.e.RunStageIncremental(h.prog, in, h.rv)
	checkNoErrors(t, res)
	if res.Retracted != 0 {
		t.Errorf("retracted %d, want 0: the local derivation still stands", res.Retracted)
	}
	if got := relContents(h.db, "v", "local"); len(got) != 1 {
		t.Fatalf("v = %v, want [(1)]", got)
	}

	// Without the local derivation the candidate is genuinely retracted.
	h.step(nil, []ast.Fact{ast.NewFact("base", "local", value.Int(1))})
	h.db.Get("v", "local").Insert(value.Tuple{value.Int(1)}) // simulate a lingering seeded tuple
	in = &StageInput{Cand: map[string][]value.Tuple{"v@local": {{value.Int(1)}}}}
	res = h.e.RunStageIncremental(h.prog, in, h.rv)
	checkNoErrors(t, res)
	if got := relContents(h.db, "v", "local"); len(got) != 0 {
		t.Errorf("v = %v, want empty after the last support is gone", got)
	}
}

// TestRestoredTupleReDeletedInLaterStratum: a tuple restored by an early
// stratum's rederivation (against then-stale later-stratum support) must
// still be deletable when the later stratum over-deletes that support — the
// ghost bookkeeping must not treat it as already processed.
func TestRestoredTupleReDeletedInLaterStratum(t *testing.T) {
	// The deletion rule with negation forces mid2/top into a later stratum
	// than mid without disabling incremental mode (deletion rules are not
	// view rules, so their negation is allowed).
	h := newIncrHarness(t,
		[]string{"ext e(x,y)", "ext req(q,x)", "int mid(x,y)", "int mid2(x,y)", "int top(x,y)"},
		mustRules(t,
			`mid@local($x,$y) :- e@local($x,$y);`,
			`mid2@local($x,$y) :- mid@local($x,$y);`,
			`top@local($x,$y) :- mid2@local($x,$y);`,
			`-mid2@$q($x,$x) :- req@local($q,$x), not mid@local($x,$x);`,
		))
	ea := ast.NewFact("e", "local", value.Str("a"), value.Str("b"))
	h.step([]ast.Fact{ea}, nil)
	if got := relContents(h.db, "top", "local"); len(got) != 1 {
		t.Fatalf("top = %v, want [(a, b)]", got)
	}
	// One stage: the base support vanishes AND top(a,b) is a deletion
	// candidate (its external support dropped). Stratum 0 deletes mid;
	// rederive restores top via the still-stale mid2; stratum 1 must then
	// re-delete it when mid2 goes.
	tup := value.Tuple{value.Str("a"), value.Str("b")}
	h.db.Get("e", "local").Delete(tup)
	in := &StageInput{
		Del:  map[string][]value.Tuple{"e@local": {tup}},
		Cand: map[string][]value.Tuple{"top@local": {tup}},
	}
	res := h.e.RunStageIncremental(h.prog, in, h.rv)
	checkNoErrors(t, res)
	for _, rel := range []string{"mid", "mid2", "top"} {
		if got := relContents(h.db, rel, "local"); len(got) != 0 {
			t.Errorf("%s = %v, want empty (naive recompute drops it)", rel, got)
		}
	}
}

// TestSameStageSeedAndCandidateNetsOut: a tuple that arrives and loses its
// support in the same stage (coalesced maintained +/-) must not feed the
// insert delta — nothing downstream may be derived from it.
func TestSameStageSeedAndCandidateNetsOut(t *testing.T) {
	h := newIncrHarness(t,
		[]string{"int base(x)", "int v(x)"},
		mustRules(t, `v@local($x) :- base@local($x);`))
	// Simulate the peer's coalesced ingestion: the tuple was inserted
	// (maintained seed, recorded in Ins) and its support dropped (Cand)
	// before the stage ran.
	base := h.db.Get("base", "local")
	tup := value.Tuple{value.Str("a")}
	base.Insert(tup)
	in := &StageInput{
		Ins:  map[string][]value.Tuple{"base@local": {tup}},
		Cand: map[string][]value.Tuple{"base@local": {tup}},
	}
	res := h.e.RunStageIncremental(h.prog, in, h.rv)
	checkNoErrors(t, res)
	if got := relContents(h.db, "base", "local"); len(got) != 0 {
		t.Errorf("base = %v, want empty", got)
	}
	if got := relContents(h.db, "v", "local"); len(got) != 0 {
		t.Errorf("v = %v, want empty: nothing may be derived from a retracted seed", got)
	}
}

// TestOneShotRemoteDeleteEvictsRemoteView: a deletion-rule emission undoes
// the fact at the receiver, so the maintained remote view must forget it —
// the next stage re-ships the maintained insert while it is still derived.
func TestOneShotRemoteDeleteEvictsRemoteView(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext a(x)", "ext trigger(x)")
	prog, err := e.CompileProgram(mustRules(t,
		`r@q($x) :- a@local($x);`,
		`-r@q($x) :- trigger@local($x);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	db.Get("a", "local").Insert(value.Tuple{value.Str("x")})
	rv := NewRemoteView()
	res := e.RunStageFull(prog, nil, rv)
	if got := res.RemoteOut["q"]; len(got) != 1 || got[0].Op != ast.Derive {
		t.Fatalf("stage 1 RemoteOut = %v, want one maintained insert", got)
	}

	// The deletion rule fires for one stage: the one-shot delete ships and
	// the fact leaves the maintained view.
	db.Get("trigger", "local").Insert(value.Tuple{value.Str("x")})
	res = e.RunStageIncremental(prog, &StageInput{
		Ins: map[string][]value.Tuple{"trigger@local": {{value.Str("x")}}},
	}, rv)
	sawOneShot := false
	for _, op := range res.RemoteOut["q"] {
		if op.Op == ast.Delete && !op.Maint {
			sawOneShot = true
		}
	}
	if !sawOneShot {
		t.Fatalf("RemoteOut = %v, want a one-shot delete", res.RemoteOut["q"])
	}

	// Still derived: the next stage must re-ship the maintained insert
	// (plus the still-firing one-shot delete) instead of staying silent.
	db.Get("trigger", "local").Delete(value.Tuple{value.Str("x")})
	res = e.RunStageIncremental(prog, &StageInput{
		Del: map[string][]value.Tuple{"trigger@local": {{value.Str("x")}}},
	}, rv)
	sawInsert := false
	for _, op := range res.RemoteOut["q"] {
		if op.Op == ast.Derive && op.Maint {
			sawInsert = true
		}
	}
	if !sawInsert {
		t.Fatalf("RemoteOut = %v, want the maintained insert re-shipped", res.RemoteOut["q"])
	}
}

// TestIncrementalRemoteDiff: remote emissions ship as deltas — a maintained
// insert when first derived, nothing while unchanged, a maintained delete
// when the last derivation disappears.
func TestIncrementalRemoteDiff(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)")
	prog, err := e.CompileProgram(mustRules(t, `sink@remote($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	src := db.Get("src", "local")
	src.Insert(value.Tuple{value.Str("v1")})
	rv := NewRemoteView()
	res := e.RunStageFull(prog, nil, rv)
	if got := res.RemoteOut["remote"]; len(got) != 1 || got[0].Op != ast.Derive || !got[0].Maint {
		t.Fatalf("first stage RemoteOut = %v, want one maintained insert", got)
	}

	// Unchanged stage: no remote traffic.
	res = e.RunStageIncremental(prog, &StageInput{}, rv)
	if got := res.RemoteOut["remote"]; len(got) != 0 {
		t.Fatalf("quiescent RemoteOut = %v, want empty", got)
	}

	// New fact: exactly one maintained insert.
	src.Insert(value.Tuple{value.Str("v2")})
	res = e.RunStageIncremental(prog, &StageInput{
		Ins: map[string][]value.Tuple{"src@local": {{value.Str("v2")}}},
	}, rv)
	if got := res.RemoteOut["remote"]; len(got) != 1 || got[0].Fact.Args[0].StringVal() != "v2" {
		t.Fatalf("RemoteOut after insert = %v, want one insert of v2", got)
	}

	// Lost derivation: a maintained delete.
	src.Delete(value.Tuple{value.Str("v1")})
	res = e.RunStageIncremental(prog, &StageInput{
		Del: map[string][]value.Tuple{"src@local": {{value.Str("v1")}}},
	}, rv)
	got := res.RemoteOut["remote"]
	if len(got) != 1 || got[0].Op != ast.Delete || !got[0].Maint || got[0].Fact.Args[0].StringVal() != "v1" {
		t.Fatalf("RemoteOut after delete = %v, want one maintained delete of v1", got)
	}
}

// TestIncrementalEquivalentToRecomputeOnRandomSequences is the central
// correctness property of incremental maintenance: on random positive
// programs and random insert/delete sequences, the maintained views equal a
// from-scratch recomputation after every batch.
func TestIncrementalEquivalentToRecomputeOnRandomSequences(t *testing.T) {
	rnd := rand.New(rand.NewSource(13044187)) // arXiv:1304.4187
	for trial := 0; trial < 40; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(5), 5+rnd.Intn(20), 2+rnd.Intn(5))

		// Incremental engine, materialized once.
		db := store.New()
		for _, s := range schemas {
			if _, err := db.Declare(s); err != nil {
				t.Fatal(err)
			}
		}
		base := db.Get("e", "local")
		live := map[string]value.Tuple{}
		for _, f := range facts {
			if base.Insert(f) {
				live[f.Key()] = f
			}
		}
		e := New("local", db, DefaultOptions())
		prog, err := e.CompileProgram(rules)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		rv := NewRemoteView()
		res := e.RunStageFull(prog, nil, rv)
		if len(res.Errors) > 0 {
			t.Fatalf("trial %d: %v", trial, res.Errors)
		}

		for step := 0; step < 6; step++ {
			in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
			// Random deletions of live base tuples.
			nDel := rnd.Intn(3)
			for k := range live {
				if nDel == 0 {
					break
				}
				t0 := live[k]
				if base.Delete(t0) {
					in.Del["e@local"] = append(in.Del["e@local"], t0)
				}
				delete(live, k)
				nDel--
			}
			// Random insertions.
			for n := rnd.Intn(4); n > 0; n-- {
				t0 := value.Tuple{value.Int(int64(rnd.Intn(6))), value.Int(int64(rnd.Intn(6)))}
				if base.Insert(t0) {
					in.Ins["e@local"] = append(in.Ins["e@local"], t0)
					live[t0.Key()] = t0
				}
			}
			res := e.RunStageIncremental(prog, in, rv)
			if len(res.Errors) > 0 {
				t.Fatalf("trial %d step %d: %v", trial, step, res.Errors)
			}

			// Reference: recompute from scratch over the same base facts.
			ref := runReference(t, schemas, live, rules)
			for _, s := range schemas {
				got := relContents(db, s.Name, "local")
				want := ref[s.Name]
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("trial %d step %d: relation %s differs:\nincremental: %v\nrecompute:   %v\nrules: %v",
						trial, step, s.Name, got, want, rules)
				}
			}
		}
	}
}

func runReference(t *testing.T, schemas []store.Schema, base map[string]value.Tuple, rules []ast.Rule) map[string][]string {
	t.Helper()
	db := store.New()
	for _, s := range schemas {
		if _, err := db.Declare(s); err != nil {
			t.Fatal(err)
		}
	}
	rel := db.Get("e", "local")
	for _, f := range base {
		rel.Insert(f)
	}
	opts := DefaultOptions()
	opts.Incremental = false
	e := New("local", db, opts)
	prog, err := e.CompileProgram(rules)
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	res := e.RunStage(prog)
	for _, err := range res.Errors {
		t.Fatalf("reference stage error: %v", err)
	}
	out := map[string][]string{}
	for _, s := range schemas {
		out[s.Name] = relContents(db, s.Name, "local")
	}
	return out
}
