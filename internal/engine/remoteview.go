package engine

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/store"
)

// RemoteView is the maintained per-destination image of every fact a peer's
// program currently derives for remote peers (Derive-op heads only). It used
// to be a private field of the Engine; it is now owned by the peer's
// outbound session layer — it is per-(sender, receiver) stream state, the
// thing a resync snapshot replays — and passed into RunStageFull /
// RunStageIncremental, which diff each stage's emission set against it to
// produce Result.RemoteOut.
//
// Alongside the facts, the view keeps per-destination, per-relation digests
// (store.Digest) of the maintained sets, rebuilt only for destinations whose
// view actually changed in a stage, so advertising a digest at resync time
// walks no tuples.
//
// A RemoteView is not safe for concurrent use; the peer accesses it under
// its own lock (stages and resync handling are both serialized there).
type RemoteView struct {
	views   map[string]map[string]ast.Fact     // dst -> fact key -> fact
	digests map[string]map[string]store.Digest // dst -> relID at dst -> digest
}

// NewRemoteView returns an empty maintained view.
func NewRemoteView() *RemoteView {
	return &RemoteView{
		views:   map[string]map[string]ast.Fact{},
		digests: map[string]map[string]store.Digest{},
	}
}

// Digests returns a copy of the per-relation digests of the facts maintained
// at dst, empty when nothing is maintained there. O(#relations): the digests
// themselves are maintained as the view changes.
func (v *RemoteView) Digests(dst string) map[string]store.Digest {
	src := v.digests[dst]
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]store.Digest, len(src))
	for relID, d := range src {
		out[relID] = d
	}
	return out
}

// SnapshotFacts returns every fact maintained at dst, sorted by key — the
// consistent content of a resync snapshot. The slice is the caller's.
func (v *RemoteView) SnapshotFacts(dst string) []ast.Fact {
	m := v.views[dst]
	out := make([]ast.Fact, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Diff diffs one stage's full Derive-op emission set against the maintained
// view: newly derived facts ship as maintained inserts, facts no longer
// derived as maintained deletes, and explicit deletion-rule emissions pass
// through unchanged. The view (and its digests) are updated in place.
func (v *RemoteView) Diff(remote map[string][]FactOp) map[string][]RemoteOp {
	out := map[string][]RemoteOp{}
	cur := map[string]map[string]ast.Fact{}
	oneShotDel := map[string]map[string]bool{}
	for dst, ops := range remote {
		for _, op := range ops {
			if op.Op == ast.Delete {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Delete, Fact: op.Fact})
				if oneShotDel[dst] == nil {
					oneShotDel[dst] = map[string]bool{}
				}
				oneShotDel[dst][op.Fact.Key()] = true
				continue
			}
			m := cur[dst]
			if m == nil {
				m = map[string]ast.Fact{}
				cur[dst] = m
			}
			key := op.Fact.Key()
			m[key] = op.Fact
			if _, had := v.views[dst][key]; !had {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Derive, Maint: true, Fact: op.Fact})
			}
		}
	}
	// A one-shot deletion-rule emission undoes the fact at the receiver, so
	// it must leave the maintained view too: if the fact is still derived,
	// the next stage re-ships it as a maintained insert (the paper's
	// continuous-update semantics, one stage later), instead of the view
	// silently claiming the receiver still has it.
	for dst, keys := range oneShotDel {
		for key := range keys {
			delete(cur[dst], key)
		}
	}
	for dst, facts := range v.views {
		for key, f := range facts {
			if _, still := cur[dst][key]; !still {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Delete, Maint: true, Fact: f})
			}
		}
	}
	for dst := range v.views {
		if len(cur[dst]) == 0 {
			delete(v.views, dst)
			delete(v.digests, dst)
		}
	}
	for dst, m := range cur {
		if len(m) == 0 {
			continue // don't re-install emptied destinations
		}
		v.views[dst] = m
		d := make(map[string]store.Digest, 1)
		for _, f := range m {
			relID := f.Rel + "@" + f.Peer
			rd := d[relID]
			rd.Add(f.Args.Key())
			d[relID] = rd
		}
		v.digests[dst] = d
	}
	for _, ops := range out {
		sortRemoteOps(ops)
	}
	return out
}
