package engine

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// RemoteView is the maintained per-destination image of every fact a peer's
// program currently derives for remote peers (Derive-op heads only). It used
// to be a private field of the Engine; it is now owned by the peer's
// outbound session layer — it is per-(sender, receiver) stream state, the
// thing a resync snapshot replays — and passed into RunStageFull /
// RunStageIncremental, which diff each stage's emission set against it to
// produce Result.RemoteOut.
//
// Alongside the facts, the view keeps one Merkle summary tree
// (store.MerkleTree) per destination and relation, maintained incrementally
// from the stage's own maintained deltas — never rebuilt by walking the
// view. The tree roots are the O(1) digests an anti-entropy advert carries,
// and the trees answer the bisection dialogue's range-digest and range-fact
// queries in O(log n).
//
// A RemoteView is not safe for concurrent use; the peer accesses it under
// its own lock (stages and resync handling are both serialized there).
type RemoteView struct {
	views map[string]map[string]ast.Fact          // dst -> fact key -> fact
	trees map[string]map[string]*store.MerkleTree // dst -> relID at dst -> summary tree
	// intern, when set, canonicalizes the tuples the view retains: a fact
	// maintained at many destinations (a post pushed to every follower)
	// keeps one tuple backing for all its ledger entries instead of one
	// copy per destination. Aliasing-only, like store.Relation's interner.
	intern *value.Interner
}

// NewRemoteView returns an empty maintained view.
func NewRemoteView() *RemoteView {
	return &RemoteView{
		views: map[string]map[string]ast.Fact{},
		trees: map[string]map[string]*store.MerkleTree{},
	}
}

// SetInterner routes the view's retained tuples through the given intern
// table (see the intern field). Call before the first Diff.
func (v *RemoteView) SetInterner(in *value.Interner) { v.intern = in }

// Digests returns the per-relation digests of the facts maintained at dst,
// empty when nothing is maintained there. O(#relations): each digest is a
// tree root read.
func (v *RemoteView) Digests(dst string) map[string]store.Digest {
	src := v.trees[dst]
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]store.Digest, len(src))
	for relID, tr := range src {
		out[relID] = tr.Root()
	}
	return out
}

// Tree returns the live summary tree of relID's maintained facts at dst, or
// nil when nothing is maintained. The tree belongs to the view — callers
// read it under the same lock that serializes Diff.
func (v *RemoteView) Tree(dst, relID string) *store.MerkleTree {
	return v.trees[dst][relID]
}

// RangeFacts returns the maintained facts of relID at dst whose canonical
// key hash falls in the inclusive range [lo, hi], in canonical (hash, key)
// order — the content of one ranged repair. The slice is the caller's.
func (v *RemoteView) RangeFacts(dst, relID string, lo, hi uint64) []ast.Fact {
	tr := v.trees[dst][relID]
	if tr == nil {
		return nil
	}
	keys := tr.RangeKeys(lo, hi)
	out := make([]ast.Fact, 0, len(keys))
	for _, key := range keys {
		if f, ok := v.views[dst][relID+"|"+key]; ok {
			out = append(out, f)
		}
	}
	return out
}

// SnapshotFacts returns every fact maintained at dst, sorted by key — the
// consistent content of a resync snapshot. The slice is the caller's.
func (v *RemoteView) SnapshotFacts(dst string) []ast.Fact {
	m := v.views[dst]
	out := make([]ast.Fact, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Diff diffs one stage's full Derive-op emission set against the maintained
// view: newly derived facts ship as maintained inserts, facts no longer
// derived as maintained deletes, and explicit deletion-rule emissions pass
// through unchanged. The view (and its summary trees) are updated in place;
// the trees advance by exactly the maintained deltas this stage emits, so
// their cost is O(δ log n), not O(view).
func (v *RemoteView) Diff(remote map[string][]FactOp) map[string][]RemoteOp {
	out := map[string][]RemoteOp{}
	cur := map[string]map[string]ast.Fact{}
	oneShotDel := map[string]map[string]bool{}
	for dst, ops := range remote {
		for _, op := range ops {
			if op.Op == ast.Delete {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Delete, Fact: op.Fact})
				if oneShotDel[dst] == nil {
					oneShotDel[dst] = map[string]bool{}
				}
				oneShotDel[dst][op.Fact.Key()] = true
				continue
			}
			m := cur[dst]
			if m == nil {
				m = map[string]ast.Fact{}
				cur[dst] = m
			}
			if v.intern != nil {
				op.Fact.Args, _ = v.intern.Tuple(op.Fact.Args)
			}
			key := op.Fact.Key()
			m[key] = op.Fact
			if _, had := v.views[dst][key]; !had {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Derive, Maint: true, Fact: op.Fact})
			}
		}
	}
	// A one-shot deletion-rule emission undoes the fact at the receiver, so
	// it must leave the maintained view too: if the fact is still derived,
	// the next stage re-ships it as a maintained insert (the paper's
	// continuous-update semantics, one stage later), instead of the view
	// silently claiming the receiver still has it.
	for dst, keys := range oneShotDel {
		for key := range keys {
			delete(cur[dst], key)
		}
	}
	for dst, facts := range v.views {
		for key, f := range facts {
			if _, still := cur[dst][key]; !still {
				out[dst] = append(out[dst], RemoteOp{Op: ast.Delete, Maint: true, Fact: f})
			}
		}
	}
	// Advance the summary trees by the maintained deltas just computed —
	// they are exactly the view's membership changes (an insert cancelled by
	// a same-stage one-shot delete never joins the view, so it is skipped).
	for dst, ops := range out {
		for _, op := range ops {
			if !op.Maint {
				continue
			}
			relID := op.Fact.Rel + "@" + op.Fact.Peer
			key := op.Fact.Args.Key()
			if op.Op == ast.Delete {
				if tr := v.trees[dst][relID]; tr != nil {
					tr.Remove(key)
					if tr.Len() == 0 {
						delete(v.trees[dst], relID)
					}
				}
				continue
			}
			if _, installed := cur[dst][op.Fact.Key()]; !installed {
				continue
			}
			tm := v.trees[dst]
			if tm == nil {
				tm = map[string]*store.MerkleTree{}
				v.trees[dst] = tm
			}
			tr := tm[relID]
			if tr == nil {
				tr = store.NewMerkleTree()
				tm[relID] = tr
			}
			tr.Add(key)
		}
		if len(v.trees[dst]) == 0 {
			delete(v.trees, dst)
		}
	}
	for dst := range v.views {
		if len(cur[dst]) == 0 {
			delete(v.views, dst)
		}
	}
	for dst, m := range cur {
		if len(m) == 0 {
			continue // don't re-install emptied destinations
		}
		v.views[dst] = m
	}
	for _, ops := range out {
		sortRemoteOps(ops)
	}
	return out
}
