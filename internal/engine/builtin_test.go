package engine

import (
	"testing"

	"repro/internal/parser"
)

func TestBuiltinComparisons(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext rate(id,stars)", "int good(id)", "int bad(id)", "int exact(id)")
	insertFacts(t, db, `rate@local("p1",5);`, `rate@local("p2",3);`, `rate@local("p3",4);`)
	prog, err := e.CompileProgram(mustRules(t,
		`good@local($id) :- rate@local($id,$s), ge@builtin($s,4);`,
		`bad@local($id) :- rate@local($id,$s), lt@builtin($s,4);`,
		`exact@local($id) :- rate@local($id,$s), eq@builtin($s,5);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "good", "local"); len(got) != 2 {
		t.Errorf("good = %v, want p1 and p3", got)
	}
	if got := relContents(db, "bad", "local"); len(got) != 1 || got[0] != "(p2)" {
		t.Errorf("bad = %v, want [(p2)]", got)
	}
	if got := relContents(db, "exact", "local"); len(got) != 1 || got[0] != "(p1)" {
		t.Errorf("exact = %v, want [(p1)]", got)
	}
}

func TestBuiltinNegated(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext rate(id,stars)", "int notFive(id)")
	insertFacts(t, db, `rate@local("p1",5);`, `rate@local("p2",3);`)
	prog, err := e.CompileProgram(mustRules(t,
		`notFive@local($id) :- rate@local($id,$s), not eq@builtin($s,5);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "notFive", "local"); len(got) != 1 || got[0] != "(p2)" {
		t.Errorf("notFive = %v", got)
	}
}

func TestBuiltinStringComparison(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext names(n)", "int early(n)")
	insertFacts(t, db, `names@local("alice");`, `names@local("zoe");`)
	prog, err := e.CompileProgram(mustRules(t,
		`early@local($n) :- names@local($n), lt@builtin($n, "m");`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "early", "local"); len(got) != 1 || got[0] != "(alice)" {
		t.Errorf("early = %v", got)
	}
}

func TestBuiltinInequalityJoin(t *testing.T) {
	// Self-join with neq: distinct pairs.
	e, db := testEnv(t, DefaultOptions(), "ext item(x)", "int pair(a,b)")
	insertFacts(t, db, `item@local("a");`, `item@local("b");`, `item@local("c");`)
	prog, err := e.CompileProgram(mustRules(t,
		`pair@local($x,$y) :- item@local($x), item@local($y), neq@builtin($x,$y);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := db.Get("pair", "local").Len(); got != 6 {
		t.Errorf("pairs = %d, want 6", got)
	}
}

func TestBuiltinSafetyChecks(t *testing.T) {
	cases := []string{
		`out@local($x) :- lt@builtin($x, 5), in@local($x);`, // unbound var in builtin
		`out@local($x) :- in@local($x), frob@builtin($x);`,  // unknown predicate
		`out@local($x) :- in@local($x), $p@builtin($x, 1);`, // variable predicate name
		`lt@builtin($x, 1) :- in@local($x);`,                // builtin head
	}
	for _, src := range cases {
		r, err := parser.ParseRule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := CheckSafety(r); err == nil {
			t.Errorf("rule %q accepted, want safety error", src)
		}
	}
}

func TestBuiltinWrongArityRuntimeError(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext in(x)", "int out(x)")
	insertFacts(t, db, `in@local("v");`)
	// Arity is validated at run time (the compiled form allows any arity).
	prog, err := e.CompileProgram(mustRules(t,
		`out@local($x) :- in@local($x), lt@builtin($x, $x, $x);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	if len(res.Errors) == 0 {
		t.Error("expected arity error from builtin")
	}
}

func TestBuiltinInDelegatedResidual(t *testing.T) {
	// A builtin after a remote atom travels inside the residual rule and is
	// evaluated at the delegate.
	e, db := testEnv(t, DefaultOptions(), "ext sel(p)")
	insertFacts(t, db, `sel@local("remote");`)
	prog, err := e.CompileProgram(mustRules(t,
		`view@local($id) :- sel@local($p), rate@$p($id,$s), ge@builtin($s,4);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	rules := res.Delegations["r1"]["remote"]
	if len(rules) != 1 {
		t.Fatalf("delegations = %v", res.Delegations)
	}
	want := `view@local($id) :- rate@remote($id, $s), ge@builtin($s, 4)`
	if got := rules[0].String(); got != want {
		t.Errorf("residual = %q, want %q", got, want)
	}
}
