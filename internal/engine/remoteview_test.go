package engine

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// TestRemoteViewTreesTrackDiff drives random full emission sets through
// Diff and checks the incrementally maintained summary trees against a
// model: per (dst, relation) the tree root must equal the digest of the
// facts actually maintained, RangeFacts must enumerate exactly the members
// of a hash range, and emptied destinations must drop their trees.
func TestRemoteViewTreesTrackDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewRemoteView()
	mk := func(rel, dst string, k int) ast.Fact {
		return ast.NewFact(rel, dst, value.Int(int64(k)))
	}

	// model: dst -> relID -> tuple key -> fact
	model := map[string]map[string]map[string]ast.Fact{}
	for round := 0; round < 60; round++ {
		remote := map[string][]FactOp{}
		want := map[string]map[string]map[string]ast.Fact{}
		for _, dst := range []string{"b", "c"} {
			if rng.Intn(8) == 0 {
				continue // this destination derives nothing this round
			}
			for _, rel := range []string{"u", "w"} {
				for k := 0; k < 40; k++ {
					if rng.Intn(2) == 0 {
						continue
					}
					f := mk(rel, dst, k)
					remote[dst] = append(remote[dst], FactOp{Op: ast.Derive, Fact: f})
					relID := rel + "@" + dst
					if want[dst] == nil {
						want[dst] = map[string]map[string]ast.Fact{}
					}
					if want[dst][relID] == nil {
						want[dst][relID] = map[string]ast.Fact{}
					}
					want[dst][relID][f.Args.Key()] = f
				}
			}
		}
		v.Diff(remote)
		model = want

		for dst, rels := range model {
			for relID, facts := range rels {
				var wantDig store.Digest
				for key := range facts {
					wantDig.Add(key)
				}
				tr := v.Tree(dst, relID)
				if tr == nil {
					t.Fatalf("round %d: no tree for %s at %s", round, relID, dst)
				}
				if got := tr.Root(); got != wantDig {
					t.Fatalf("round %d: tree root %+v, want %+v for %s at %s", round, got, wantDig, relID, dst)
				}
				if d := v.Digests(dst)[relID]; d != wantDig {
					t.Fatalf("round %d: Digests %+v, want %+v", round, d, wantDig)
				}
				got := v.RangeFacts(dst, relID, 0, ^uint64(0))
				if len(got) != len(facts) {
					t.Fatalf("round %d: RangeFacts full range returned %d facts, want %d", round, len(got), len(facts))
				}
				lo, hi := rng.Uint64(), rng.Uint64()
				if lo > hi {
					lo, hi = hi, lo
				}
				n := 0
				for key := range facts {
					if h := store.KeyHash(key); lo <= h && h <= hi {
						n++
					}
				}
				if got := v.RangeFacts(dst, relID, lo, hi); len(got) != n {
					t.Fatalf("round %d: RangeFacts[%x,%x] returned %d facts, want %d", round, lo, hi, len(got), n)
				}
			}
		}
		for _, dst := range []string{"b", "c"} {
			if model[dst] == nil && v.Digests(dst) != nil {
				t.Fatalf("round %d: emptied destination %s still digests %v", round, dst, v.Digests(dst))
			}
		}
	}
}

// TestRemoteViewOneShotDeleteSkipsTree: an insert cancelled by a same-stage
// one-shot delete never joins the view, so the tree must not count it.
func TestRemoteViewOneShotDeleteSkipsTree(t *testing.T) {
	v := NewRemoteView()
	f := ast.NewFact("u", "b", value.Int(1))
	v.Diff(map[string][]FactOp{"b": {
		{Op: ast.Derive, Fact: f},
		{Op: ast.Delete, Fact: f},
	}})
	if tr := v.Tree("b", "u@b"); tr != nil && tr.Len() != 0 {
		t.Fatalf("cancelled insert joined the tree: %d members", tr.Len())
	}
	if len(v.SnapshotFacts("b")) != 0 {
		t.Fatalf("cancelled insert joined the view: %v", v.SnapshotFacts("b"))
	}
}

func init() {
	// Surface tree bookkeeping bugs (double-remove, remove-of-absent) as
	// panics throughout this package's tests.
	store.DebugAsserts = true
}
