package engine

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// Compiled rule execution, compiler half (the runtime types live in
// exec.go).
//
// compileExec analyzes one (rule, stage kind, delta position) triple under
// the plan order the stage chose and emits the closure chain, or nil when
// the rule must stay on the interpreter. The analysis simulates the walk's
// binding state: with the order fixed, which slots are bound when each atom
// runs is known statically, so every argument term compiles to exactly one
// action — a probe-key part (constants and bound slots, guaranteed by the
// index bucket), a slot binding (free first occurrence), or an equality
// check (a repeat within the atom) — and the interpreter's per-tuple
// bound[] bookkeeping disappears.
//
// Rules fall back to the interpreter (cached nil) when any body atom could
// leave the local peer — a variable peer or relation term, a remote
// constant peer (delegation), a non-string name constant — or when a
// builtin is unknown or mis-used (the interpreter owns the error
// reporting). Relations unresolved at compile time stay compilable: an
// undeclared local relation is empty for the whole stage (intensional heads
// must be pre-declared, and auto-declared extensional heads only buffer
// updates for the next stage), so those atoms compile to constant dead or
// pass steps.

// compileBlocker reports why a rule cannot be compiled, or "" when it can.
// It is the quick structural half of the analysis (shared with Explain);
// compileExec can still fall back on deeper per-order checks.
func (e *Engine) compileBlocker(cr *CompiledRule) string {
	for i := range cr.Body {
		a := &cr.Body[i]
		if a.peer.isVar {
			return fmt.Sprintf("body atom %d: variable peer term (may delegate)", i+1)
		}
		if a.peer.val.Kind() != value.KindString {
			return fmt.Sprintf("body atom %d: non-string peer term", i+1)
		}
		pn := a.peer.val.StringVal()
		if pn == BuiltinPeer {
			if a.rel.isVar || a.rel.val.Kind() != value.KindString {
				return fmt.Sprintf("body atom %d: builtin predicate is not a constant", i+1)
			}
			rn := a.rel.val.StringVal()
			if want, ok := builtinArity[rn]; !ok || want != len(a.args) {
				return fmt.Sprintf("body atom %d: unknown or mis-used builtin %q", i+1, rn)
			}
			continue
		}
		if pn != e.local {
			return fmt.Sprintf("body atom %d: remote peer %q (delegation boundary)", i+1, pn)
		}
		if a.rel.isVar {
			return fmt.Sprintf("body atom %d: variable relation term", i+1)
		}
		if a.rel.val.Kind() != value.KindString {
			return fmt.Sprintf("body atom %d: non-string relation term", i+1)
		}
	}
	return ""
}

// Builtin comparison op codes (see builtin.go for the predicate semantics).
const (
	biLt uint8 = iota
	biLe
	biGt
	biGe
	biEq
	biNeq
)

func builtinOpCodeFor(name string) (uint8, bool) {
	switch name {
	case "lt":
		return biLt, true
	case "le":
		return biLe, true
	case "gt":
		return biGt, true
	case "ge":
		return biGe, true
	case "eq":
		return biEq, true
	case "neq":
		return biNeq, true
	}
	return 0, false
}

// stepSpec shapes (stepSpec.sKind).
const (
	specProbe   uint8 = iota // positive atom: keyed probe of a relation
	specDelta                // positive atom at the delta position
	specBuiltin              // builtin comparison filter
	specNeg                  // negated atom: keyed membership test
	specDead                 // positive atom that can never match (nil/mis-arity relation)
	specPass                 // negated atom that always passes (nil/mis-arity relation)
)

// stepSpec is the compile-time analysis of one plan step.
type stepSpec struct {
	pos   int
	sKind uint8

	rel   *store.Relation
	relID string
	arity int // relation arity for probes, len(args) for delta steps
	mask  store.ColMask
	// member marks a probe with every column bound: a membership test on
	// the primary tuple map, no index needed.
	member bool
	parts  []keyPart
	// probeActs run against tuples an index bucket (or ghost bucket)
	// yields: binds and repeat checks only — masked columns are key-equal
	// by construction. scanActs additionally re-check constants and bound
	// slots, for tuples from unkeyed sources (the delta).
	probeActs []argAct
	scanActs  []argAct
	binds     []argAct // the actBind subset, for fused-batch rebinding

	// builtin fields
	biOp     uint8
	biNegate bool
	biL, biR termRef
}

// buildActs fills mask/parts/acts from the atom's argument terms under the
// compile-time binding state.
func (sp *stepSpec) buildActs(a *cAtom, bound []bool) {
	seen := map[int]bool{}
	for k, arg := range a.args {
		switch {
		case !arg.isVar:
			sp.mask |= 1 << uint(k)
			sp.parts = append(sp.parts, keyPart{val: arg.val})
			sp.scanActs = append(sp.scanActs, argAct{op: actCheckConst, col: k, val: arg.val})
		case bound[arg.slot]:
			sp.mask |= 1 << uint(k)
			sp.parts = append(sp.parts, keyPart{isVar: true, slot: arg.slot})
			sp.scanActs = append(sp.scanActs, argAct{op: actCheckSlot, slot: arg.slot, col: k})
		case seen[arg.slot]:
			act := argAct{op: actCheckSlot, slot: arg.slot, col: k}
			sp.probeActs = append(sp.probeActs, act)
			sp.scanActs = append(sp.scanActs, act)
		default:
			seen[arg.slot] = true
			act := argAct{op: actBind, slot: arg.slot, col: k}
			sp.probeActs = append(sp.probeActs, act)
			sp.scanActs = append(sp.scanActs, act)
			sp.binds = append(sp.binds, act)
		}
	}
}

// analyzeStep classifies body position pos under the current binding state.
// The bool result is false when the step cannot be compiled (fall back to
// the interpreter for the whole rule).
func (e *Engine) analyzeStep(cr *CompiledRule, pos int, kind stageKind, deltaPos int, bound []bool) (stepSpec, bool) {
	a := &cr.Body[pos]
	sp := stepSpec{pos: pos}
	pn := a.peer.val.StringVal() // constant strings guaranteed by compileBlocker
	rn := a.rel.val.StringVal()
	if pn == BuiltinPeer {
		code, ok := builtinOpCodeFor(rn)
		if !ok || len(a.args) != 2 {
			return sp, false
		}
		for _, t := range a.args {
			if t.isVar && !bound[t.slot] {
				return sp, false // unsafe placement; interpreter reports it
			}
		}
		sp.sKind = specBuiltin
		sp.biOp = code
		sp.biNegate = a.neg
		sp.biL, sp.biR = a.args[0], a.args[1]
		return sp, true
	}
	sp.relID = rn + "@" + pn
	rel := e.db.Get(rn, pn)
	if a.neg {
		if rel == nil || rel.Schema().Arity() != len(a.args) {
			sp.sKind = specPass
			return sp, true
		}
		for _, arg := range a.args {
			if arg.isVar && !bound[arg.slot] {
				return sp, false // unsafe negation; interpreter's problem
			}
		}
		sp.sKind = specNeg
		sp.rel = rel
		for _, arg := range a.args {
			if arg.isVar {
				sp.parts = append(sp.parts, keyPart{isVar: true, slot: arg.slot})
			} else {
				sp.parts = append(sp.parts, keyPart{val: arg.val})
			}
		}
		return sp, true
	}
	if pos == deltaPos && kind != kindMatch {
		sp.sKind = specDelta
		sp.arity = len(a.args)
		sp.buildActs(a, bound)
		return sp, true
	}
	if rel == nil || rel.Schema().Arity() != len(a.args) {
		sp.sKind = specDead
		return sp, true
	}
	sp.sKind = specProbe
	sp.rel = rel
	sp.arity = rel.Schema().Arity()
	sp.buildActs(a, bound)
	sp.member = sp.arity > 0 && sp.mask == (store.ColMask(1)<<uint(sp.arity))-1
	return sp, true
}

// compileExec compiles one (rule, stage kind, delta position) walk under
// the given plan order (nil = written order) into a closure-chain program,
// or nil when the rule must interpret. Called through the stage's
// compiledFor cache.
func (e *Engine) compileExec(cr *CompiledRule, kind stageKind, deltaPos int, ord []int) *execProg {
	if e.compileBlocker(cr) != "" {
		return nil
	}
	order := ord
	if order == nil {
		order = make([]int, len(cr.Body))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(cr.Body) {
		return nil
	}
	// Forward pass: simulate the binding state the fixed order produces and
	// analyze every step against it.
	bound := make([]bool, cr.NumSlots)
	if kind == kindMatch {
		markAtomSlots(&cr.Head, bound)
	}
	specs := make([]stepSpec, len(order))
	for s, i := range order {
		sp, ok := e.analyzeStep(cr, i, kind, deltaPos, bound)
		if !ok {
			return nil
		}
		specs[s] = sp
		if sp.sKind == specProbe || sp.sKind == specDelta || sp.sKind == specDead {
			for _, arg := range cr.Body[i].args {
				if arg.isVar {
					bound[arg.slot] = true
				}
			}
		}
	}
	// Backward pass: link the chain terminal-first so each step closure
	// captures its continuation.
	p := &execProg{kind: kind, deltaPos: deltaPos}
	if kind != kindMatch {
		p.ctx.env = make([]value.Value, cr.NumSlots)
	}
	next := e.compileTerminal(cr, kind, p)
	// Fuse the delta scan with an immediately following keyed probe into a
	// batch step: one lock acquisition and index resolve for the whole
	// frontier instead of one per frontier tuple.
	fuse := kind != kindMatch && len(specs) >= 2 &&
		specs[0].sKind == specDelta &&
		specs[1].sKind == specProbe && specs[1].mask != 0 && !specs[1].member
	lo := 0
	if fuse {
		lo = 2
	}
	for s := len(specs) - 1; s >= lo; s-- {
		next = compileStep(&specs[s], kind, p, next)
	}
	if fuse {
		next = compileFusedDelta(&specs[0], &specs[1], kind, p, next)
	}
	p.entry = next
	return p
}

// compileTerminal builds the full-match action: produce (with a fast path
// for statically local intensional heads), over-delete, or found.
func (e *Engine) compileTerminal(cr *CompiledRule, kind stageKind, p *execProg) stepFn {
	x := &p.ctx
	switch kind {
	case kindMatch:
		return func() { x.found = true }
	case kindDRed:
		return func() { x.e.produceDelete(cr, x.env, x.st) }
	}
	h := &cr.Head
	if cr.Rule.Op == ast.Derive && !h.rel.isVar && !h.peer.isVar &&
		h.rel.val.Kind() == value.KindString && h.peer.val.Kind() == value.KindString &&
		h.peer.val.StringVal() == e.local {
		rn := h.rel.val.StringVal()
		if rel := e.db.Get(rn, e.local); rel != nil && rel.Kind() == ast.Intensional &&
			rel.Schema().Arity() == len(h.args) {
			relID := rn + "@" + e.local
			args := h.args
			return func() {
				t := make(value.Tuple, len(args))
				for k, arg := range args {
					if arg.isVar {
						t[k] = x.env[arg.slot]
					} else {
						t[k] = arg.val
					}
				}
				x.e.deriveLocal(x.st, rel, relID, t)
			}
		}
	}
	return func() { x.e.produce(cr, x.env, x.st) }
}

// compileStep builds one body step's closure around its continuation.
func compileStep(sp *stepSpec, kind stageKind, p *execProg, next stepFn) stepFn {
	x := &p.ctx
	switch sp.sKind {
	case specDead:
		return func() {}
	case specPass:
		return next
	case specBuiltin:
		l, r := sp.biL, sp.biR
		opc, negate := sp.biOp, sp.biNegate
		return func() {
			lv := l.val
			if l.isVar {
				lv = x.env[l.slot]
			}
			rv := r.val
			if r.isVar {
				rv = x.env[r.slot]
			}
			c := lv.Compare(rv)
			var holds bool
			switch opc {
			case biLt:
				holds = c < 0
			case biLe:
				holds = c <= 0
			case biGt:
				holds = c > 0
			case biGe:
				holds = c >= 0
			case biEq:
				holds = c == 0
			default:
				holds = c != 0
			}
			if holds != negate {
				next()
			}
		}
	case specNeg:
		rel, parts := sp.rel, sp.parts
		return func() {
			base := len(x.key)
			x.key = appendKeyParts(x, x.key, parts)
			contains := rel.ContainsKey(x.key[base:])
			x.key = x.key[:base]
			if !contains {
				next()
			}
		}
	case specDelta:
		relID, arity := sp.relID, sp.arity
		unify := compileActs(sp.scanActs)
		return func() {
			for _, t := range x.delta[relID] {
				if len(t) == arity && unify(x, t) {
					next()
				}
			}
		}
	}
	// specProbe.
	rel, relID, arity := sp.rel, sp.relID, sp.arity
	mask, parts := sp.mask, sp.parts
	unify := compileActs(sp.probeActs)
	var cb func(value.Tuple) bool
	if kind == kindMatch {
		cb = func(t value.Tuple) bool {
			if len(t) == arity && unify(x, t) {
				next()
			}
			return !x.found // stop the bucket walk once satisfied
		}
	} else {
		cb = func(t value.Tuple) bool {
			if len(t) == arity && unify(x, t) {
				next()
			}
			return true
		}
	}
	if sp.member {
		if kind == kindDRed {
			return func() {
				base := len(x.key)
				x.key = appendKeyParts(x, x.key, parts)
				key := x.key[base:]
				if rel.ContainsKey(key) {
					next()
				}
				// The pre-deletion database includes this stage's ghosts.
				x.st.incr.sweepGhostsKey(relID, mask, key, func(t value.Tuple) { cb(t) })
				x.key = x.key[:base]
			}
		}
		return func() {
			base := len(x.key)
			x.key = appendKeyParts(x, x.key, parts)
			contains := rel.ContainsKey(x.key[base:])
			x.key = x.key[:base]
			if contains {
				next()
			}
		}
	}
	if kind == kindDRed {
		gcb := func(t value.Tuple) { cb(t) }
		return func() {
			base := len(x.key)
			x.key = appendKeyParts(x, x.key, parts)
			key := x.key[base:]
			rel.Probe(mask, key, cb)
			x.st.incr.sweepGhostsKey(relID, mask, key, gcb)
			x.key = x.key[:base]
		}
	}
	return func() {
		base := len(x.key)
		x.key = appendKeyParts(x, x.key, parts)
		rel.Probe(mask, x.key[base:], cb)
		x.key = x.key[:base]
	}
}

// compileFusedDelta builds the batch (vector-at-a-time) delta step: pass 1
// unifies every frontier tuple against the delta atom and encodes the
// following probe's key into a shared arena; pass 2 resolves every key's
// bucket under one lock (store.ProbeBatch) and continues the chain per
// match, rebinding the delta atom's slots from the owning frontier tuple.
// For DRed walks the probe's ghost buckets are swept per frontier tuple
// afterwards — order against the relation matches is irrelevant, both
// produce and produceDelete deduplicate.
func compileFusedDelta(da, pb *stepSpec, kind stageKind, p *execProg, next stepFn) stepFn {
	x := &p.ctx
	deltaID, arityA, rebinds := da.relID, da.arity, da.binds
	relB, relIDB, maskB, partsB, arityB := pb.rel, pb.relID, pb.mask, pb.parts, pb.arity
	unifyA, runB := compileActs(da.scanActs), compileActs(pb.probeActs)
	dred := kind == kindDRed
	var (
		arena   []byte
		offs    []int
		src     []int
		keys    [][]byte
		scratch [][]value.Tuple
		ts      []value.Tuple
	)
	unifyB := func(t value.Tuple) {
		if len(t) == arityB && runB(x, t) {
			next()
		}
	}
	cb := func(j int, t value.Tuple) bool {
		ta := ts[src[j]]
		for _, b := range rebinds {
			x.env[b.slot] = ta[b.col]
		}
		unifyB(t)
		return true
	}
	return func() {
		ts = x.delta[deltaID]
		if len(ts) == 0 {
			return
		}
		arena, offs, src = arena[:0], offs[:0], src[:0]
		for i, t := range ts {
			if len(t) != arityA || !unifyA(x, t) {
				continue
			}
			start := len(arena)
			arena = appendKeyParts(x, arena, partsB)
			offs = append(offs, start, len(arena))
			src = append(src, i)
		}
		if len(src) > 0 {
			keys = keys[:0]
			for j := range src {
				keys = append(keys, arena[offs[2*j]:offs[2*j+1]])
			}
			scratch = relB.ProbeBatch(maskB, keys, scratch, cb)
			if dred {
				ic := x.st.incr
				for j := range src {
					ta := ts[src[j]]
					for _, b := range rebinds {
						x.env[b.slot] = ta[b.col]
					}
					ic.sweepGhostsKey(relIDB, maskB, keys[j], unifyB)
				}
			}
		}
		ts = nil
	}
}
