package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// randomProgram generates a random positive datalog program over nRels
// intensional relations and one extensional relation, all binary, plus a
// random base instance. The generated rules are safe by construction.
func randomProgram(rnd *rand.Rand, nRels, nRules, nFacts, domain int) (schemas []store.Schema, facts []value.Tuple, rules []ast.Rule) {
	schemas = append(schemas, store.Schema{Name: "e", Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}})
	relNames := []string{"e"}
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("i%d", i)
		schemas = append(schemas, store.Schema{Name: name, Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}})
		relNames = append(relNames, name)
	}
	for i := 0; i < nFacts; i++ {
		facts = append(facts, value.Tuple{
			value.Int(int64(rnd.Intn(domain))), value.Int(int64(rnd.Intn(domain))),
		})
	}
	vars := []string{"x", "y", "z", "w"}
	for i := 0; i < nRules; i++ {
		head := relNames[1+rnd.Intn(nRels)] // intensional head
		bodyLen := 1 + rnd.Intn(3)
		var body []ast.Atom
		// Chain variables so every rule is safe and joins are non-trivial.
		for j := 0; j < bodyLen; j++ {
			rel := relNames[rnd.Intn(len(relNames))]
			v1 := vars[j%len(vars)]
			v2 := vars[(j+1)%len(vars)]
			body = append(body, ast.Atom{
				Rel:  ast.CStr(rel),
				Peer: ast.CStr("local"),
				Args: []ast.Term{ast.V(v1), ast.V(v2)},
			})
		}
		headArgs := []ast.Term{ast.V(vars[0]), ast.V(vars[bodyLen%len(vars)])}
		rules = append(rules, ast.Rule{
			ID:   fmt.Sprintf("r%d", i),
			Head: ast.Atom{Rel: ast.CStr(head), Peer: ast.CStr("local"), Args: headArgs},
			Body: body,
		})
	}
	return schemas, facts, rules
}

func runRandom(t *testing.T, schemas []store.Schema, facts []value.Tuple, rules []ast.Rule, opts Options) map[string][]string {
	t.Helper()
	db := store.New()
	for _, s := range schemas {
		if _, err := db.Declare(s); err != nil {
			t.Fatal(err)
		}
	}
	base := db.Get("e", "local")
	for _, f := range facts {
		base.Insert(f)
	}
	e := New("local", db, opts)
	prog, err := e.CompileProgram(rules)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := e.RunStage(prog)
	for _, err := range res.Errors {
		t.Fatalf("stage error: %v", err)
	}
	out := map[string][]string{}
	for _, s := range schemas {
		out[s.Name] = relContents(db, s.Name, "local")
	}
	return out
}

// TestSemiNaiveEquivalentToNaiveOnRandomPrograms is the central correctness
// property of the engine: on random positive programs, the optimized
// semi-naive evaluation computes exactly the model that naive evaluation
// computes.
func TestSemiNaiveEquivalentToNaiveOnRandomPrograms(t *testing.T) {
	rnd := rand.New(rand.NewSource(20130523)) // SIGMOD'13 demo week
	for trial := 0; trial < 60; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(5), 5+rnd.Intn(30), 2+rnd.Intn(6))
		semi := DefaultOptions()
		naive := DefaultOptions()
		naive.SemiNaive = false
		gotSemi := runRandom(t, schemas, facts, rules, semi)
		gotNaive := runRandom(t, schemas, facts, rules, naive)
		for rel, semiRows := range gotSemi {
			naiveRows := gotNaive[rel]
			if len(semiRows) != len(naiveRows) {
				t.Fatalf("trial %d: relation %s differs: semi-naive %d rows, naive %d rows\nrules: %v",
					trial, rel, len(semiRows), len(naiveRows), rules)
			}
			for i := range semiRows {
				if semiRows[i] != naiveRows[i] {
					t.Fatalf("trial %d: relation %s row %d differs: %s vs %s",
						trial, rel, i, semiRows[i], naiveRows[i])
				}
			}
		}
	}
}

// TestIndexedEquivalentToScanOnRandomPrograms checks that hash indexes do
// not change results.
func TestIndexedEquivalentToScanOnRandomPrograms(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(5), 5+rnd.Intn(30), 2+rnd.Intn(6))
		idx := DefaultOptions()
		scan := DefaultOptions()
		scan.UseIndexes = false
		gotIdx := runRandom(t, schemas, facts, rules, idx)
		gotScan := runRandom(t, schemas, facts, rules, scan)
		for rel, a := range gotIdx {
			b := gotScan[rel]
			if len(a) != len(b) {
				t.Fatalf("trial %d: relation %s differs with/without indexes (%d vs %d rows)", trial, rel, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: relation %s row %d differs: %s vs %s", trial, rel, i, a[i], b[i])
				}
			}
		}
	}
}

// withRandomFilters appends, to some rules, a builtin comparison and/or a
// negated atom over the extensional base — always at the *end* of the body,
// where safety is guaranteed (every variable is bound) and where the
// planner will want to float them forward. This makes the random programs
// adversarial for filter placement, not just join order.
func withRandomFilters(rnd *rand.Rand, rules []ast.Rule) []ast.Rule {
	for i := range rules {
		var bodyVars []string
		seen := map[string]bool{}
		for _, a := range rules[i].Body {
			for _, t := range a.Args {
				if t.IsVar() && !seen[t.Var] {
					seen[t.Var] = true
					bodyVars = append(bodyVars, t.Var)
				}
			}
		}
		if len(bodyVars) < 2 {
			continue
		}
		if rnd.Intn(2) == 0 {
			rules[i].Body = append(rules[i].Body, ast.Atom{
				Rel:  ast.CStr("le"),
				Peer: ast.CStr(BuiltinPeer),
				Args: []ast.Term{ast.V(bodyVars[rnd.Intn(len(bodyVars))]), ast.V(bodyVars[rnd.Intn(len(bodyVars))])},
			})
		}
		if rnd.Intn(2) == 0 {
			rules[i].Body = append(rules[i].Body, ast.Atom{
				Neg:  true,
				Rel:  ast.CStr("e"),
				Peer: ast.CStr("local"),
				Args: []ast.Term{ast.V(bodyVars[rnd.Intn(len(bodyVars))]), ast.V(bodyVars[rnd.Intn(len(bodyVars))])},
			})
		}
	}
	return rules
}

// TestPlannerEquivalentToWrittenOrderOnRandomPrograms asserts the planner's
// central invariant: on random programs — multi-way joins plus trailing
// builtin and negated filters the planner reorders aggressively — the
// cost-based join order computes exactly the model written-order evaluation
// computes.
func TestPlannerEquivalentToWrittenOrderOnRandomPrograms(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 60; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(5), 5+rnd.Intn(30), 2+rnd.Intn(6))
		rules = withRandomFilters(rnd, rules)
		planned := DefaultOptions()
		written := DefaultOptions()
		written.Planner = false
		gotPlanned := runRandom(t, schemas, facts, rules, planned)
		gotWritten := runRandom(t, schemas, facts, rules, written)
		for rel, plannedRows := range gotPlanned {
			writtenRows := gotWritten[rel]
			if len(plannedRows) != len(writtenRows) {
				t.Fatalf("trial %d: relation %s differs: planner %d rows, written order %d rows\nrules: %v",
					trial, rel, len(plannedRows), len(writtenRows), rules)
			}
			for i := range plannedRows {
				if plannedRows[i] != writtenRows[i] {
					t.Fatalf("trial %d: relation %s row %d differs: %s vs %s",
						trial, rel, i, plannedRows[i], writtenRows[i])
				}
			}
		}
	}
}

// TestPlannerEquivalentOnRandomIncrementalSequences drives the same random
// insert/delete batches through two incrementally maintained engines —
// planner on and planner off — checking every view identical after every
// batch. This covers the planned delta passes and the planned DRed
// over-delete/rederive walks, not just one-shot full evaluation.
func TestPlannerEquivalentOnRandomIncrementalSequences(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(4), 5+rnd.Intn(20), 2+rnd.Intn(5))
		// Pre-generate the batch schedule so both modes replay it verbatim.
		type op struct {
			del bool
			t   value.Tuple
		}
		domain := int64(2 + rnd.Intn(6))
		var batches [][]op
		for s := 0; s < 10; s++ {
			var b []op
			for k := 0; k < 1+rnd.Intn(4); k++ {
				b = append(b, op{
					del: rnd.Intn(3) == 0,
					t:   value.Tuple{value.Int(rnd.Int63n(domain)), value.Int(rnd.Int63n(domain))},
				})
			}
			batches = append(batches, b)
		}

		run := func(opts Options) []map[string][]string {
			db := store.New()
			for _, s := range schemas {
				if _, err := db.Declare(s); err != nil {
					t.Fatal(err)
				}
			}
			base := db.Get("e", "local")
			for _, f := range facts {
				base.Insert(f)
			}
			e := New("local", db, opts)
			prog, err := e.CompileProgram(rules)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !prog.Incremental {
				t.Fatalf("random positive program unexpectedly not incremental")
			}
			rv := NewRemoteView()
			res := e.RunStageFull(prog, nil, rv)
			checkNoErrors(t, res)
			var states []map[string][]string
			for _, b := range batches {
				in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
				for _, o := range b {
					if o.del {
						if base.Delete(o.t) {
							in.Del["e@local"] = append(in.Del["e@local"], o.t)
						}
					} else if base.Insert(o.t) {
						in.Ins["e@local"] = append(in.Ins["e@local"], o.t)
					}
				}
				res := e.RunStageIncremental(prog, in, rv)
				checkNoErrors(t, res)
				state := map[string][]string{}
				for _, s := range schemas {
					state[s.Name] = relContents(db, s.Name, "local")
				}
				states = append(states, state)
			}
			return states
		}

		planned := DefaultOptions()
		written := DefaultOptions()
		written.Planner = false
		gotPlanned := run(planned)
		gotWritten := run(written)
		for step := range gotPlanned {
			p, w := gotPlanned[step], gotWritten[step]
			for rel, pRows := range p {
				wRows := w[rel]
				if len(pRows) != len(wRows) {
					t.Fatalf("trial %d step %d: relation %s differs: planner %d rows, written %d rows\nrules: %v",
						trial, step, rel, len(pRows), len(wRows), rules)
				}
				for i := range pRows {
					if pRows[i] != wRows[i] {
						t.Fatalf("trial %d step %d: relation %s row %d differs: %s vs %s",
							trial, step, rel, i, pRows[i], wRows[i])
					}
				}
			}
		}
	}
}

// randomStratifiedProgram extends randomProgram with the constructs the
// compiled/interpreted differential grid must cover: recursive view rules
// (positive body atoms may use the head's own relation), negation across
// strata (negated atoms only over strictly lower-numbered relations, so the
// program is stratified by construction), and builtin filters spliced into
// *random* interior body positions where their variables are already bound —
// not just appended at the end like withRandomFilters.
func randomStratifiedProgram(rnd *rand.Rand, nRels, nRules, nFacts, domain int) (schemas []store.Schema, facts []value.Tuple, rules []ast.Rule) {
	schemas = append(schemas, store.Schema{Name: "e", Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}})
	relNames := []string{"e"}
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("i%d", i)
		schemas = append(schemas, store.Schema{Name: name, Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}})
		relNames = append(relNames, name)
	}
	for i := 0; i < nFacts; i++ {
		facts = append(facts, value.Tuple{
			value.Int(int64(rnd.Intn(domain))), value.Int(int64(rnd.Intn(domain))),
		})
	}
	vars := []string{"x", "y", "z", "w"}
	for i := 0; i < nRules; i++ {
		hi := 1 + rnd.Intn(nRels) // head index into relNames
		bodyLen := 1 + rnd.Intn(3)
		// Positive chain: relations up to and including the head's own (so
		// recursion through any stratum member is possible), chained variables
		// vars[j] → vars[j+1] so after j atoms vars[0..j] are bound.
		chain := make([]ast.Atom, bodyLen)
		for j := 0; j < bodyLen; j++ {
			chain[j] = ast.Atom{
				Rel:  ast.CStr(relNames[rnd.Intn(hi+1)]),
				Peer: ast.CStr("local"),
				Args: []ast.Term{ast.V(vars[j]), ast.V(vars[j+1])},
			}
		}
		// Optional builtin filter and negated atom at random chain positions
		// (after p chain atoms, vars[0..p] are bound). The negated atom only
		// uses relations strictly below the head, keeping strata acyclic.
		pf, pn := 0, 0
		var filter, negAtom ast.Atom
		if rnd.Intn(2) == 0 {
			pf = 1 + rnd.Intn(bodyLen)
			filter = ast.Atom{
				Rel:  ast.CStr([]string{"le", "lt", "neq"}[rnd.Intn(3)]),
				Peer: ast.CStr(BuiltinPeer),
				Args: []ast.Term{ast.V(vars[rnd.Intn(pf+1)]), ast.V(vars[rnd.Intn(pf+1)])},
			}
		}
		if rnd.Intn(2) == 0 {
			pn = 1 + rnd.Intn(bodyLen)
			negAtom = ast.Atom{
				Neg:  true,
				Rel:  ast.CStr(relNames[rnd.Intn(hi)]),
				Peer: ast.CStr("local"),
				Args: []ast.Term{ast.V(vars[rnd.Intn(pn+1)]), ast.V(vars[rnd.Intn(pn+1)])},
			}
		}
		var body []ast.Atom
		for j := 0; j < bodyLen; j++ {
			body = append(body, chain[j])
			if pf == j+1 {
				body = append(body, filter)
			}
			if pn == j+1 {
				body = append(body, negAtom)
			}
		}
		rules = append(rules, ast.Rule{
			ID:   fmt.Sprintf("r%d", i),
			Head: ast.Atom{Rel: ast.CStr(relNames[hi]), Peer: ast.CStr("local"), Args: []ast.Term{ast.V(vars[0]), ast.V(vars[bodyLen])}},
			Body: body,
		})
	}
	return schemas, facts, rules
}

// compiledGrid is the 2×2 {Planner} × {Compiled} differential matrix; every
// cell must compute the same model. Cell 0 (everything on) is the reference.
func compiledGrid() []Options {
	var grid []Options
	for _, planner := range []bool{true, false} {
		for _, compiled := range []bool{true, false} {
			o := DefaultOptions()
			o.Planner = planner
			o.Compiled = compiled
			grid = append(grid, o)
		}
	}
	return grid
}

func diffStates(t *testing.T, label string, want, got map[string][]string) {
	t.Helper()
	for rel, w := range want {
		g := got[rel]
		if len(g) != len(w) {
			t.Fatalf("%s: relation %s differs: want %d rows, got %d\nwant: %v\ngot:  %v",
				label, rel, len(w), len(g), w, g)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: relation %s row %d differs: want %s, got %s", label, rel, i, w[i], g[i])
			}
		}
	}
}

// TestCompiledGridEquivalentOnRandomPrograms runs random stratified programs
// — recursion, cross-stratum negation, interior builtin filters — through
// every cell of the {Planner} × {Compiled} grid and demands the identical
// model from each: the compiled closure chains against the interpreter, with
// and without cost-based orders.
func TestCompiledGridEquivalentOnRandomPrograms(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260808))
	grid := compiledGrid()
	for trial := 0; trial < 50; trial++ {
		schemas, facts, rules := randomStratifiedProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(5), 5+rnd.Intn(30), 2+rnd.Intn(6))
		ref := runRandom(t, schemas, facts, rules, grid[0])
		for gi := 1; gi < len(grid); gi++ {
			got := runRandom(t, schemas, facts, rules, grid[gi])
			diffStates(t, fmt.Sprintf("trial %d grid{planner:%v,compiled:%v} rules %v",
				trial, grid[gi].Planner, grid[gi].Compiled, rules), ref, got)
		}
	}
}

// TestCompiledGridEquivalentOnRandomIncrementalSequences drives 10 random
// insert/delete batches through incrementally maintained engines in every
// grid cell AND through a from-scratch recompute reference, checking every
// view identical after every batch: compiled ≡ interpreted ≡ recompute on
// the maintained DRed/rederive path, not just one-shot evaluation.
func TestCompiledGridEquivalentOnRandomIncrementalSequences(t *testing.T) {
	rnd := rand.New(rand.NewSource(20130524))
	grid := compiledGrid()
	for trial := 0; trial < 10; trial++ {
		schemas, facts, rules := randomProgram(rnd, 1+rnd.Intn(3), 1+rnd.Intn(4), 5+rnd.Intn(20), 2+rnd.Intn(5))
		type op struct {
			del bool
			t   value.Tuple
		}
		domain := int64(2 + rnd.Intn(6))
		var batches [][]op
		for s := 0; s < 10; s++ {
			var b []op
			for k := 0; k < 1+rnd.Intn(4); k++ {
				b = append(b, op{
					del: rnd.Intn(3) == 0,
					t:   value.Tuple{value.Int(rnd.Int63n(domain)), value.Int(rnd.Int63n(domain))},
				})
			}
			batches = append(batches, b)
		}

		// run replays the batch schedule: incrementally maintained when
		// incremental is true, full recomputation per batch otherwise (the
		// reference semantics), returning the state after every batch.
		run := func(opts Options, incremental bool) []map[string][]string {
			db := store.New()
			for _, s := range schemas {
				if _, err := db.Declare(s); err != nil {
					t.Fatal(err)
				}
			}
			base := db.Get("e", "local")
			for _, f := range facts {
				base.Insert(f)
			}
			e := New("local", db, opts)
			prog, err := e.CompileProgram(rules)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !prog.Incremental {
				t.Fatalf("random positive program unexpectedly not incremental")
			}
			rv := NewRemoteView()
			res := e.RunStageFull(prog, nil, rv)
			checkNoErrors(t, res)
			var states []map[string][]string
			for _, b := range batches {
				// Apply the batch and report its *net* effect, as the peer
				// layer does: StageInput's contract says Ins tuples are
				// present and Del tuples absent after ingestion, so a tuple
				// inserted and deleted within one batch must appear in
				// neither.
				in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
				touched := map[string]value.Tuple{}
				wasPresent := map[string]bool{}
				var order []string
				for _, o := range b {
					k := o.t.Key()
					if _, seen := touched[k]; !seen {
						touched[k] = o.t
						wasPresent[k] = base.Contains(o.t)
						order = append(order, k)
					}
					if o.del {
						base.Delete(o.t)
					} else {
						base.Insert(o.t)
					}
				}
				for _, k := range order {
					tup := touched[k]
					switch now := base.Contains(tup); {
					case now && !wasPresent[k]:
						in.Ins["e@local"] = append(in.Ins["e@local"], tup)
					case !now && wasPresent[k]:
						in.Del["e@local"] = append(in.Del["e@local"], tup)
					}
				}
				if incremental {
					checkNoErrors(t, e.RunStageIncremental(prog, in, rv))
				} else {
					checkNoErrors(t, e.RunStageFull(prog, nil, rv))
				}
				state := map[string][]string{}
				for _, s := range schemas {
					state[s.Name] = relContents(db, s.Name, "local")
				}
				states = append(states, state)
			}
			return states
		}

		recompute := run(grid[0], false)
		for _, opts := range grid {
			got := run(opts, true)
			for step := range recompute {
				diffStates(t, fmt.Sprintf("trial %d step %d grid{planner:%v,compiled:%v} rules %v",
					trial, step, opts.Planner, opts.Compiled, rules), recompute[step], got[step])
			}
		}
	}
}

// TestMaxIterationsGuard verifies the runaway-fixpoint safety net.
func TestMaxIterationsGuard(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIterations = 3
	e, db := testEnv(t, opts, "ext seed(x)", "int grow(x)")
	insertFacts(t, db, `seed@local(0);`)
	// grow is genuinely infinite only with function symbols, which the
	// language lacks; emulate pressure with a long chain instead.
	base := db.Get("seed", "local")
	for i := 1; i < 50; i++ {
		base.Insert(value.Tuple{value.Int(int64(i))})
	}
	prog, err := e.CompileProgram(mustRules(t,
		`grow@local($x) :- seed@local($x);`,
		`grow@local($y) :- grow@local($x), seed@local($y);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	if res.Iterations > 3 {
		t.Errorf("iterations = %d despite MaxIterations=3", res.Iterations)
	}
}
