package engine

import (
	"fmt"
	"strings"

	"repro/internal/store"
	"repro/internal/value"
)

// Join planning.
//
// The paper fixes body-atom order for *safety* ("atoms are evaluated from
// left to right. The order matters"), and bare evaluation inherits it for
// performance too: evalFrom joins positive atoms exactly as written, so a
// badly ordered multi-way join scans its largest relation before the
// selective atoms bind anything. This file reorders each rule's body at
// stage time by estimated selectivity — live relation cardinalities, the
// bound-argument mask each atom would be probed with under the order
// chosen so far (sideways information passing: later atoms see earlier
// atoms' bindings through the ordinary lookupMask machinery), and index
// statistics (store.Relation.FanEstimate) — so the most selective atoms
// bind first and the big relations are probed, not scanned.
//
// Reordering is restricted to what is provably model-invariant:
//
//   - only the *local region* is reordered — the maximal body prefix whose
//     atoms name the local peer or the builtin peer with a constant. The
//     first atom past the region may resolve to a remote peer at run time,
//     and the delegated residual must be exactly the written suffix with
//     the prefix's bindings substituted in (paper §2), so everything from
//     there on keeps its written order. Since the region is a prefix, the
//     set of atoms evaluated before the delegation point — and therefore
//     the bindings the residual is built from — is unchanged.
//   - positive atoms commute freely: a join is a set intersection, and the
//     stratified semantics freezes every relation a stratum's negated
//     atoms read, so moving a positive atom never changes the model.
//   - negated atoms and builtin predicates bind nothing and only prune;
//     they float to the earliest position at which all their variables are
//     bound, which preserves the paper's safety conditions by
//     construction.
//
// The delta-position choice of semi-naive passes is part of the plan: when
// one body position ranges over the previous iteration's delta (or the
// deletion frontier of the DRed pass), that atom is placed as early as its
// binding prerequisites allow — the delta is almost always the smallest
// input — and the rest of the body is ordered around the variables it
// binds. Rederivation checks get their own order, planned with every head
// variable pre-bound (matchFrom runs head-unified).
//
// Plans are computed lazily, once per rule (and per delta position) per
// stage, against the store cardinalities current at that moment; the
// orders are deterministic given the store state. Options.Planner (default
// on) gates everything; off is the written-order ablation of experiment P9.

// plannerUnknownCost ranks atoms whose relation cannot be resolved at plan
// time (a variable in relation position): after anything that estimates
// cheaper from real statistics, before full scans of larger relations.
const plannerUnknownCost = 1 << 20

// rulePlan caches one rule's chosen evaluation orders for the current
// stage. Each order is a permutation of body indices: the first `region`
// entries permute the local region, the rest are the written suffix.
type rulePlan struct {
	region   int
	full     []int   // deltaPos < 0 (and any deltaPos outside the region)
	delta    [][]int // per in-region delta position, built on first use
	rederive []int   // head slots pre-bound (rederivation existence checks)
}

// compiledKey identifies one compiled closure chain. The three walk kinds
// (semi-naive eval, DRed over-delete, rederive match) compile the same rule
// into behaviorally different programs — different terminals, different
// delta sources, ghost sweeps or not — so the stage kind is part of the
// cache key: a DRed chain must never be served for a semi-naive walk (see
// TestCompiledCacheDistinguishesStageKinds).
type compiledKey struct {
	cr       *CompiledRule
	kind     stageKind
	deltaPos int
}

// stagePlanner owns the per-stage plan and compiled-chain caches. A nil
// *stagePlanner everywhere means "written order, interpreted". planning is
// false when only compilation is on (Options.Compiled without
// Options.Planner): the caches exist but every order is the written one.
type stagePlanner struct {
	e        *Engine
	planning bool
	plans    map[*CompiledRule]*rulePlan
	// compiled caches closure chains (nil = the rule is not compilable and
	// interprets); nil map = compilation off.
	compiled map[compiledKey]*execProg
}

// newPlanner returns the stage's planner, or nil when both the planner and
// compiled execution are off. Compilation additionally requires indexes
// (compiled probes are keyed) and no tracer (supports are not tracked).
func (e *Engine) newPlanner() *stagePlanner {
	planning := e.opts.Planner
	compiling := e.opts.Compiled && e.opts.UseIndexes && e.opts.Tracer == nil
	if !planning && !compiling {
		return nil
	}
	pl := &stagePlanner{e: e, planning: planning, plans: map[*CompiledRule]*rulePlan{}}
	if compiling {
		pl.compiled = map[compiledKey]*execProg{}
	}
	return pl
}

// compiledFor returns the cached closure chain for one (rule, stage kind,
// delta position) triple, compiling it on first use against the stage's
// plan order for that triple. nil means interpret: compilation is off, or
// the rule is not compilable (the verdict is cached so the analysis runs
// once per stage).
func (pl *stagePlanner) compiledFor(cr *CompiledRule, kind stageKind, deltaPos int) *execProg {
	if pl.compiled == nil {
		return nil
	}
	k := compiledKey{cr: cr, kind: kind, deltaPos: deltaPos}
	if ep, ok := pl.compiled[k]; ok {
		if ep != nil {
			pl.e.compiledHits.Add(1)
		}
		return ep
	}
	var ord []int
	if kind == kindMatch {
		ord = pl.rederiveOrder(cr)
	} else {
		ord = pl.orderFor(cr, deltaPos)
	}
	ep := pl.e.compileExec(cr, kind, deltaPos, ord)
	pl.compiled[k] = ep
	if ep != nil {
		pl.e.ruleCompiles.Add(1)
	} else {
		pl.e.compileFallbacks.Add(1)
	}
	return ep
}

// planRegion returns the length of the rule's reorderable prefix: atoms
// whose peer term is a constant naming the local peer or the builtin
// peer. Everything from the first possibly-remote atom on keeps written
// order (see the file comment).
func planRegion(cr *CompiledRule, local string) int {
	for i := range cr.Body {
		a := &cr.Body[i]
		if a.peer.isVar || a.peer.val.Kind() != value.KindString {
			return i
		}
		if pn := a.peer.val.StringVal(); pn != local && pn != BuiltinPeer {
			return i
		}
	}
	return len(cr.Body)
}

// planFor returns the rule's cached plan, creating it on first use. Rules
// with fewer than two reorderable atoms plan to nil — written order.
func (pl *stagePlanner) planFor(cr *CompiledRule) *rulePlan {
	if rp, ok := pl.plans[cr]; ok {
		pl.e.planHits.Add(1)
		return rp
	}
	pl.e.planMisses.Add(1)
	var rp *rulePlan
	if region := planRegion(cr, pl.e.local); region >= 2 {
		rp = &rulePlan{region: region}
		rp.full = pl.order(cr, region, -1, nil)
	}
	pl.plans[cr] = rp
	return rp
}

// orderFor returns the evaluation order for one rule invocation: body
// position deltaPos ranges over the delta (-1 for a full evaluation). A
// nil result means written order (always, when planning is off).
func (pl *stagePlanner) orderFor(cr *CompiledRule, deltaPos int) []int {
	if !pl.planning {
		return nil
	}
	rp := pl.planFor(cr)
	if rp == nil {
		return nil
	}
	if deltaPos < 0 || deltaPos >= rp.region {
		// A delta atom in the written suffix is reached in written order
		// anyway; the region still evaluates under the full plan.
		return rp.full
	}
	if rp.delta == nil {
		rp.delta = make([][]int, rp.region)
	}
	if rp.delta[deltaPos] == nil {
		rp.delta[deltaPos] = pl.order(cr, rp.region, deltaPos, nil)
	}
	return rp.delta[deltaPos]
}

// rederiveOrder returns the order for head-unified existence checks
// (matchFrom): every head variable is already bound, which usually makes
// a very different atom the cheapest entry point.
func (pl *stagePlanner) rederiveOrder(cr *CompiledRule) []int {
	if !pl.planning {
		return nil
	}
	rp := pl.planFor(cr)
	if rp == nil {
		return nil
	}
	if rp.rederive == nil {
		pre := make([]bool, cr.NumSlots)
		markAtomSlots(&cr.Head, pre)
		rp.rederive = pl.order(cr, rp.region, -1, pre)
	}
	return rp.rederive
}

// markAtomSlots marks every variable slot the atom mentions as bound.
func markAtomSlots(a *cAtom, bound []bool) {
	if a.rel.isVar {
		bound[a.rel.slot] = true
	}
	if a.peer.isVar {
		bound[a.peer.slot] = true
	}
	for _, arg := range a.args {
		if arg.isVar {
			bound[arg.slot] = true
		}
	}
}

// isFilter reports whether body atom i binds nothing and only prunes: a
// negated atom or a builtin predicate.
func isFilter(cr *CompiledRule, i int) bool {
	a := &cr.Body[i]
	return a.neg || (!a.peer.isVar && a.peer.val.Kind() == value.KindString &&
		a.peer.val.StringVal() == BuiltinPeer)
}

// order runs the greedy placement over the rule's local region: at each
// step every filter whose variables are bound floats in (written order,
// earliest position), then the cheapest eligible positive atom is placed
// and its argument variables become bound. The delta atom, when in the
// region, is taken as soon as it is eligible regardless of cost — delta
// inputs are small by construction. preBound marks slots bound before the
// body runs (rederivation's head unification). Ties break toward written
// order, so the chosen order is deterministic.
func (pl *stagePlanner) order(cr *CompiledRule, region, deltaPos int, preBound []bool) []int {
	bound := make([]bool, cr.NumSlots)
	copy(bound, preBound)
	placed := make([]bool, region)
	order := make([]int, 0, len(cr.Body))

	ready := func(i int, needArgs bool) bool {
		a := &cr.Body[i]
		if a.rel.isVar && !bound[a.rel.slot] {
			return false
		}
		if a.peer.isVar && !bound[a.peer.slot] {
			return false
		}
		if needArgs {
			for _, arg := range a.args {
				if arg.isVar && !bound[arg.slot] {
					return false
				}
			}
		}
		return true
	}
	place := func(i int) {
		placed[i] = true
		order = append(order, i)
		if !isFilter(cr, i) {
			for _, arg := range cr.Body[i].args {
				if arg.isVar {
					bound[arg.slot] = true
				}
			}
		}
	}

	for {
		for again := true; again; {
			again = false
			for i := 0; i < region; i++ {
				if !placed[i] && isFilter(cr, i) && ready(i, true) {
					place(i)
					again = true
				}
			}
		}
		best, bestCost := -1, 0.0
		for i := 0; i < region; i++ {
			if placed[i] || isFilter(cr, i) || !ready(i, false) {
				continue
			}
			if i == deltaPos {
				best = i
				break
			}
			if c := pl.atomCost(cr, i, bound); best == -1 || c < bestCost {
				best, bestCost = i, c
			}
		}
		if best == -1 {
			break
		}
		place(best)
	}
	// Safety guarantees the greedy loop placed everything (the earliest
	// unplaced positive atom is always eligible, and filters follow once
	// their written-earlier positives are in); sweep defensively anyway so
	// a malformed compiled rule still evaluates every atom.
	for i := 0; i < region; i++ {
		if !placed[i] {
			order = append(order, i)
		}
	}
	for i := region; i < len(cr.Body); i++ {
		order = append(order, i)
	}
	return order
}

// atomCost estimates the number of tuples body atom i yields when probed
// with the given slots bound — the branching factor the greedy order
// minimizes at each step.
func (pl *stagePlanner) atomCost(cr *CompiledRule, i int, bound []bool) float64 {
	a := &cr.Body[i]
	if a.rel.isVar || a.peer.isVar {
		return plannerUnknownCost
	}
	if a.rel.val.Kind() != value.KindString || a.peer.val.Kind() != value.KindString {
		return 0 // resolveName rejects it immediately: nothing is scanned
	}
	rel := pl.e.db.Get(a.rel.val.StringVal(), a.peer.val.StringVal())
	if rel == nil {
		return 0 // undeclared local relation: the atom joins nothing
	}
	if len(a.args) != rel.Schema().Arity() {
		return 0 // arity mismatch: no tuple can match
	}
	var mask store.ColMask
	allBound := true
	for k, arg := range a.args {
		if arg.isVar && !bound[arg.slot] {
			allBound = false
			continue
		}
		mask |= 1 << uint(k)
	}
	if allBound && len(a.args) > 0 {
		return 0.5 // pure membership probe: strictly better than any scan
	}
	if mask == 0 {
		return float64(rel.Len())
	}
	return rel.FanEstimate(mask)
}

// Explain renders, per rule of prog, the join order the planner chooses
// against the store's *current* contents, with per-step cardinality and
// selectivity estimates — the surface behind `wdl run -explain`. With
// Options.Planner off it renders the written order (the ablation), noting
// the gate.
func (e *Engine) Explain(prog *Program) string {
	var sb strings.Builder
	pl := &stagePlanner{e: e, planning: e.opts.Planner, plans: map[*CompiledRule]*rulePlan{}}
	if !e.opts.Planner {
		sb.WriteString("planner disabled (Options.Planner=false): bodies evaluate in written order\n")
	}
	compiling := e.opts.Compiled && e.opts.UseIndexes && e.opts.Tracer == nil
	if !compiling {
		sb.WriteString("compiled execution disabled (Options.Compiled off, indexes off, or tracer attached): the interpreter walks every rule\n")
	}
	for _, cr := range prog.Rules {
		kind := "event"
		if !cr.Event {
			kind = "view"
		}
		fmt.Fprintf(&sb, "rule %s (stratum %d, %s): %s;\n", cr.Rule.ID, cr.Stratum, kind, cr.Rule.String())
		region := planRegion(cr, e.local)
		var ord []int
		if e.opts.Planner {
			ord = pl.orderFor(cr, -1)
		}
		if ord == nil {
			ord = make([]int, len(cr.Body))
			for i := range ord {
				ord[i] = i
			}
			if e.opts.Planner && len(cr.Body) > 1 {
				sb.WriteString("  written order (fewer than two reorderable atoms)\n")
			}
		}
		bound := make([]bool, cr.NumSlots)
		for step, i := range ord {
			a := &cr.Body[i]
			note := e.explainAtom(cr, i, bound)
			fmt.Fprintf(&sb, "  %d. body atom %d: %s%s\n", step+1, i+1, cr.Rule.Body[i].String(), note)
			if !isFilter(cr, i) {
				for _, arg := range a.args {
					if arg.isVar {
						bound[arg.slot] = true
					}
				}
			}
		}
		if region < len(cr.Body) {
			fmt.Fprintf(&sb, "  atoms %d.. keep written order: the peer term may resolve remote (delegation boundary)\n", region+1)
		}
		if compiling {
			if reason := e.compileBlocker(cr); reason != "" {
				fmt.Fprintf(&sb, "  compiled: interpreter fallback (%s)\n", reason)
			} else {
				sb.WriteString("  compiled: closure chains cached per stage kind — eval, over-delete (DRed), and rederive walks compile and cache separately per delta position\n")
			}
		}
	}
	return sb.String()
}

// explainAtom renders one planned step's annotation: filters as such,
// positive atoms with live cardinality and the estimated fan under the
// bindings accumulated so far.
func (e *Engine) explainAtom(cr *CompiledRule, i int, bound []bool) string {
	a := &cr.Body[i]
	if !a.peer.isVar && a.peer.val.Kind() == value.KindString && a.peer.val.StringVal() == BuiltinPeer {
		return "  [builtin filter]"
	}
	if a.neg {
		return "  [negated: membership test]"
	}
	if a.rel.isVar || a.peer.isVar {
		return "  [relation resolved at run time]"
	}
	rel := e.db.Get(a.rel.val.StringVal(), a.peer.val.StringVal())
	if rel == nil {
		return "  [rows=0 (undeclared)]"
	}
	var boundCols []string
	var mask store.ColMask
	for k, arg := range a.args {
		if arg.isVar && !bound[arg.slot] {
			continue
		}
		mask |= 1 << uint(k)
		if k < len(rel.Schema().Cols) {
			boundCols = append(boundCols, rel.Schema().Cols[k])
		}
	}
	est := rel.FanEstimate(mask)
	if mask == 0 {
		return fmt.Sprintf("  [rows=%d, full scan]", rel.Len())
	}
	return fmt.Sprintf("  [rows=%d, probe(%s), est≈%.4g]", rel.Len(), strings.Join(boundCols, ","), est)
}
