package engine

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// deltaSet holds, per relation id ("name@peer"), the tuples newly derived
// in the previous fixpoint iteration.
type deltaSet map[string][]value.Tuple

// maxCollectedErrors bounds Result.Errors so a pathological program cannot
// exhaust memory with repeated runtime complaints.
const maxCollectedErrors = 100

type stageState struct {
	out         *Result
	updatesSeen map[string]bool
	remoteSeen  map[string]bool
	delegSeen   map[string]bool
	delta       deltaSet
	supports    []ast.Fact // ground body atoms on the current evaluation path
	errCount    int
	// planner holds the stage's join-plan cache (plan.go); nil means
	// written-order evaluation (Options.Planner off).
	planner *stagePlanner
	// incr is non-nil during RunStageIncremental: produce() additionally
	// maintains the net view-delta bookkeeping (incremental.go).
	incr *incrState
}

func newStageState() *stageState {
	return &stageState{
		out: &Result{
			Remote:      map[string][]FactOp{},
			Delegations: map[string]map[string][]ast.Rule{},
		},
		updatesSeen: map[string]bool{},
		remoteSeen:  map[string]bool{},
		delegSeen:   map[string]bool{},
		delta:       deltaSet{},
	}
}

func (st *stageState) errf(format string, args ...any) {
	st.errCount++
	if st.errCount == maxCollectedErrors {
		st.out.Errors = append(st.out.Errors, fmt.Errorf("engine: too many runtime errors; suppressing the rest"))
		return
	}
	if st.errCount > maxCollectedErrors {
		return
	}
	st.out.Errors = append(st.out.Errors, fmt.Errorf(format, args...))
}

// RunStage evaluates the program to fixpoint against the current store
// contents and returns the stage outputs. Local intensional relations are
// mutated (facts derived into them); everything else is returned in Result
// for the peer to apply or transmit.
func (e *Engine) RunStage(prog *Program) *Result {
	st := newStageState()
	st.planner = e.newPlanner()
	for _, stratum := range prog.Strata {
		if len(stratum) == 0 {
			continue
		}
		if e.opts.SemiNaive {
			e.runStratumSemiNaive(stratum, st)
		} else {
			e.runStratumNaive(stratum, st)
		}
	}
	return st.out
}

func (e *Engine) runStratumSemiNaive(stratum []*CompiledRule, st *stageState) {
	// Iteration 0: full evaluation of every rule in the stratum.
	st.delta = deltaSet{}
	for _, cr := range stratum {
		e.evalRule(cr, st, -1, nil)
	}
	st.out.Iterations++
	// Delta iterations: re-evaluate each rule once per positive body
	// position, restricting that position to the previous iteration's new
	// facts. Any derivation that uses at least one new fact is found at the
	// position of (one of) its new supports.
	for iter := 0; len(st.delta) > 0; iter++ {
		if st.out.Iterations >= e.opts.MaxIterations {
			st.errf("engine: fixpoint exceeded %d iterations; aborting stratum", e.opts.MaxIterations)
			return
		}
		prev := st.delta
		st.delta = deltaSet{}
		for _, cr := range stratum {
			for j := range cr.Body {
				a := &cr.Body[j]
				if a.neg {
					continue
				}
				// Skip the pass when atom j's relation is statically known
				// and received no new facts last iteration: the pass could
				// only rediscover derivations already found, at the price of
				// fully scanning every atom before j.
				if !a.rel.isVar && !a.peer.isVar {
					id := a.rel.val.StringVal() + "@" + a.peer.val.StringVal()
					if len(prev[id]) == 0 {
						continue
					}
				}
				e.evalRule(cr, st, j, prev)
			}
		}
		st.out.Iterations++
	}
}

func (e *Engine) runStratumNaive(stratum []*CompiledRule, st *stageState) {
	for {
		if st.out.Iterations >= e.opts.MaxIterations {
			st.errf("engine: fixpoint exceeded %d iterations; aborting stratum", e.opts.MaxIterations)
			return
		}
		before := st.out.Derived
		st.delta = deltaSet{} // unused by naive joins but keeps produce() uniform
		for _, cr := range stratum {
			e.evalRule(cr, st, -1, nil)
		}
		st.out.Iterations++
		if st.out.Derived == before {
			return
		}
	}
}

// evalRule evaluates one rule. deltaPos < 0 requests a full evaluation;
// otherwise body position deltaPos ranges over prevDelta instead of the
// full relation. When the stage has a planner, the body is walked in the
// plan's order instead of written order.
func (e *Engine) evalRule(cr *CompiledRule, st *stageState, deltaPos int, prevDelta deltaSet) {
	if st.planner != nil {
		if ep := st.planner.compiledFor(cr, kindEval, deltaPos); ep != nil {
			ep.runEval(e, st, prevDelta)
			return
		}
	}
	env := make([]value.Value, cr.NumSlots)
	bound := make([]bool, cr.NumSlots)
	var ord []int
	if st.planner != nil {
		ord = st.planner.orderFor(cr, deltaPos)
	}
	e.evalFrom(cr, 0, env, bound, st, deltaPos, prevDelta, ord)
}

// bindAtomArgs unifies t against the atom's argument terms, binding free
// variable slots. On a match it returns true plus the slots newly bound —
// the caller must clear them (unbind) after its continuation returns. On a
// mismatch (including arity) every partial binding is already undone.
func bindAtomArgs(a *cAtom, t value.Tuple, env []value.Value, bound []bool) (bool, []int) {
	if len(t) != len(a.args) {
		return false, nil
	}
	var newlyBound []int
	for k, arg := range a.args {
		if arg.isVar {
			if bound[arg.slot] {
				if !env[arg.slot].Equal(t[k]) {
					unbind(bound, newlyBound)
					return false, nil
				}
			} else {
				env[arg.slot] = t[k]
				bound[arg.slot] = true
				newlyBound = append(newlyBound, arg.slot)
			}
		} else if !arg.val.Equal(t[k]) {
			unbind(bound, newlyBound)
			return false, nil
		}
	}
	return true, newlyBound
}

// unbind clears the given slots.
func unbind(bound []bool, slots []int) {
	for _, s := range slots {
		bound[s] = false
	}
}

// lookupMask computes the bound-column mask and values for an indexed
// lookup of atom a against rel under the current bindings. A zero mask
// (atom arity mismatch, or nothing bound) means "scan".
func lookupMask(a *cAtom, rel *store.Relation, env []value.Value, bound []bool) (store.ColMask, []value.Value) {
	var mask store.ColMask
	var boundVals []value.Value
	if len(a.args) != rel.Schema().Arity() {
		return 0, nil
	}
	for k, arg := range a.args {
		if arg.isVar {
			if bound[arg.slot] {
				mask |= 1 << uint(k)
				boundVals = append(boundVals, env[arg.slot])
			}
		} else {
			mask |= 1 << uint(k)
			boundVals = append(boundVals, arg.val)
		}
	}
	return mask, boundVals
}

// resolveName resolves a compiled relation/peer term to its string name.
func resolveName(t termRef, env []value.Value) (string, bool) {
	var v value.Value
	if t.isVar {
		v = env[t.slot]
	} else {
		v = t.val
	}
	if v.Kind() != value.KindString {
		return "", false
	}
	return v.StringVal(), true
}

// evalFrom evaluates the rule body from plan step `step` on. ord, when
// non-nil, maps plan steps to body positions (written order otherwise);
// all diagnostics and the deltaPos comparison use the *written* position,
// so planned and unplanned evaluation report identically.
func (e *Engine) evalFrom(cr *CompiledRule, step int, env []value.Value, bound []bool, st *stageState, deltaPos int, prevDelta deltaSet, ord []int) {
	if step == len(cr.Body) {
		e.produce(cr, env, st)
		return
	}
	i := step
	if ord != nil {
		i = ord[step]
	}
	a := &cr.Body[i]
	peerName, ok := resolveName(a.peer, env)
	if !ok {
		st.errf("engine: rule %s: peer term of body atom %d is not a string", cr.Rule.ID, i+1)
		return
	}
	if peerName == BuiltinPeer {
		relName, ok := resolveName(a.rel, env)
		if !ok {
			st.errf("engine: rule %s: relation term of body atom %d is not a string", cr.Rule.ID, i+1)
			return
		}
		holds, err := evalBuiltin(relName, a, env)
		if err != nil {
			st.errf("engine: rule %s: %v", cr.Rule.ID, err)
			return
		}
		if holds != a.neg {
			e.evalFrom(cr, step+1, env, bound, st, deltaPos, prevDelta, ord)
		}
		return
	}
	if peerName != e.local {
		e.addDelegation(cr, i, env, bound, peerName, st)
		return
	}
	relName, ok := resolveName(a.rel, env)
	if !ok {
		st.errf("engine: rule %s: relation term of body atom %d is not a string", cr.Rule.ID, i+1)
		return
	}
	rel := e.db.Get(relName, peerName)

	if a.neg {
		// Safety guarantees all argument terms are bound: membership test.
		t := make(value.Tuple, len(a.args))
		for k, arg := range a.args {
			if arg.isVar {
				t[k] = env[arg.slot]
			} else {
				t[k] = arg.val
			}
		}
		if rel == nil || len(a.args) != rel.Schema().Arity() || !rel.Contains(t) {
			e.evalFrom(cr, step+1, env, bound, st, deltaPos, prevDelta, ord)
		}
		return
	}

	// Positive atom: join against the relation (or the delta at deltaPos).
	unifyAndRecurse := func(t value.Tuple) bool {
		okTuple, newlyBound := bindAtomArgs(a, t, env, bound)
		if okTuple {
			if e.opts.Tracer != nil {
				st.supports = append(st.supports, ast.Fact{Rel: relName, Peer: peerName, Args: t})
				e.evalFrom(cr, step+1, env, bound, st, deltaPos, prevDelta, ord)
				st.supports = st.supports[:len(st.supports)-1]
			} else {
				e.evalFrom(cr, step+1, env, bound, st, deltaPos, prevDelta, ord)
			}
			unbind(bound, newlyBound)
		}
		return true // keep scanning
	}

	if i == deltaPos {
		for _, t := range prevDelta[relName+"@"+peerName] {
			unifyAndRecurse(t)
		}
		return
	}
	if rel == nil {
		return // unknown local relation: empty
	}
	mask, boundVals := lookupMask(a, rel, env, bound)
	rel.Lookup(mask, boundVals, e.opts.UseIndexes, unifyAndRecurse)
}

// produce materializes the head under the current bindings and routes it:
// local intensional -> derive now (feeding the fixpoint); local extensional
// -> buffered update for the next stage; remote -> outgoing message.
func (e *Engine) produce(cr *CompiledRule, env []value.Value, st *stageState) {
	headPeer, ok := resolveName(cr.Head.peer, env)
	if !ok {
		st.errf("engine: rule %s: head peer term is not a string", cr.Rule.ID)
		return
	}
	headRel, ok := resolveName(cr.Head.rel, env)
	if !ok {
		st.errf("engine: rule %s: head relation term is not a string", cr.Rule.ID)
		return
	}
	t := make(value.Tuple, len(cr.Head.args))
	for k, arg := range cr.Head.args {
		if arg.isVar {
			t[k] = env[arg.slot]
		} else {
			t[k] = arg.val
		}
	}
	fact := ast.Fact{Rel: headRel, Peer: headPeer, Args: t}
	op := cr.Rule.Op

	if headPeer != e.local {
		fo := FactOp{Op: op, Fact: fact}
		key := headPeer + "\x00" + fo.Key()
		if !st.remoteSeen[key] {
			st.remoteSeen[key] = true
			st.out.Remote[headPeer] = append(st.out.Remote[headPeer], fo)
			e.trace(st, fact, cr)
		}
		return
	}

	rel := e.db.Get(headRel, headPeer)
	if rel == nil {
		// The paper: "peers may discover new peers and new relations".
		// Unknown local head relations are auto-declared extensional.
		var err error
		rel, err = e.db.Declare(store.Schema{
			Name: headRel, Peer: headPeer, Kind: ast.Extensional, Cols: genericCols(len(t)),
		})
		if err != nil {
			st.errf("engine: rule %s: %v", cr.Rule.ID, err)
			return
		}
	}
	if rel.Schema().Arity() != len(t) {
		st.errf("engine: rule %s: head %s has arity %d but relation expects %d",
			cr.Rule.ID, fact.String(), len(t), rel.Schema().Arity())
		return
	}

	if rel.Kind() == ast.Intensional {
		if op == ast.Delete {
			st.errf("engine: rule %s: cannot delete from intensional relation %s@%s",
				cr.Rule.ID, headRel, headPeer)
			return
		}
		if e.deriveLocal(st, rel, headRel+"@"+headPeer, t) {
			e.trace(st, fact, cr)
		}
		return
	}

	// Local extensional head: buffered +/- update, visible next stage.
	fo := FactOp{Op: op, Fact: fact}
	key := fo.Key()
	if !st.updatesSeen[key] {
		st.updatesSeen[key] = true
		st.out.LocalUpdates = append(st.out.LocalUpdates, fo)
		e.trace(st, fact, cr)
	}
}

// deriveLocal inserts a derived tuple into a local intensional relation and
// does the fixpoint and incremental-maintenance bookkeeping: the semi-naive
// delta, the derivation counter, and (under RunStageIncremental) the net
// view-delta sets. Returns whether the tuple was new. Shared by produce and
// the compiled terminal fast path (compilefast.go), which resolves the head
// statically and skips produce's name resolution per derivation.
func (e *Engine) deriveLocal(st *stageState, rel *store.Relation, relID string, t value.Tuple) bool {
	if !rel.Insert(t) {
		return false
	}
	st.out.Derived++
	st.delta[relID] = append(st.delta[relID], t)
	if ic := st.incr; ic != nil {
		key := t.Key()
		if m := ic.marked[relID]; m[key] != nil {
			delete(m, key) // deleted then rederived this stage: net zero
			// Un-ghost so a later deletion round can re-target it.
			delete(ic.ghosts[relID], key)
		} else if !ic.isSeeded(relID, key) {
			in := ic.insNew[relID]
			if in == nil {
				in = map[string]value.Tuple{}
				ic.insNew[relID] = in
			}
			in[key] = t
		}
	}
	return true
}

func (e *Engine) trace(st *stageState, head ast.Fact, cr *CompiledRule) {
	if e.opts.Tracer == nil {
		return
	}
	supports := make([]ast.Fact, len(st.supports))
	copy(supports, st.supports)
	e.opts.Tracer.OnDerive(head, cr.Rule, supports)
}

// addDelegation emits the residual rule for the suffix starting at body
// position i, with the prefix's bindings substituted in, targeted at peer
// target. Residuals are deduplicated; the peer layer handles replacing the
// previous stage's set (delegation maintenance).
func (e *Engine) addDelegation(cr *CompiledRule, i int, env []value.Value, bound []bool, target string, st *stageState) {
	sub := ast.Substitution{}
	for slot, name := range cr.SlotNames {
		if bound[slot] {
			sub[name] = env[slot]
		}
	}
	residual := sub.ApplyRule(ast.Rule{
		ID:     cr.Rule.ID,
		Origin: e.local,
		Op:     cr.Rule.Op,
		Head:   cr.Rule.Head,
		Body:   cr.Rule.Body[i:],
	})
	key := cr.Rule.ID + "\x00" + target + "\x00" + residual.String()
	if st.delegSeen[key] {
		return
	}
	st.delegSeen[key] = true
	byTarget := st.out.Delegations[cr.Rule.ID]
	if byTarget == nil {
		byTarget = map[string][]ast.Rule{}
		st.out.Delegations[cr.Rule.ID] = byTarget
	}
	byTarget[target] = append(byTarget[target], residual)
}

// genericCols returns placeholder column names c0..c(n-1) for relations
// discovered at run time.
func genericCols(n int) []string {
	cols := make([]string, n)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	return cols
}
