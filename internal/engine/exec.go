package engine

import (
	"repro/internal/value"
)

// Compiled rule execution, runtime half (the compiler lives in
// compilefast.go).
//
// The interpreter (evalFrom / deleteFrom / matchFrom) re-derives everything
// about an atom on every visit: the ord indirection, relation and peer name
// resolution, the bound-column mask, a []value.Value of bound values, and a
// fresh continuation closure per binding. Once a stage has fixed a body
// order for a (rule, stage kind, delta position) triple, all of that is
// static. compileExec turns the plan into a chain of step closures — one
// per body atom, linked back to front — over pre-resolved
// *store.Relation handles, precomputed ColMask probe masks, and fixed
// binding slots, with probe keys appended into one reused buffer. The three
// walk kinds compile separately: their terminals, delta sources, and ghost
// sweeps differ (see stageKind).
//
// Every closure captures the program's own *execCtx, allocated once at
// compile time, so a walk allocates nothing per tuple. That makes a
// compiled program single-flight: the engine never re-enters the same
// (rule, kind, delta position) walk while it is running — step chains are
// linear, produce/produceDelete do not evaluate rules — and the engine runs
// its fixpoint on one goroutine, so the shared ctx is safe.

// stageKind distinguishes the three body walks a rule compiles for. The
// kinds share a rule and often a plan order but compile to behaviorally
// different programs, so the kind is part of the compiled-cache key
// (compiledKey in plan.go).
type stageKind uint8

const (
	// kindEval: full and semi-naive evaluation (the evalFrom walk); the
	// delta position ranges over the previous iteration's new facts and a
	// full body match produces the head.
	kindEval stageKind = iota
	// kindDRed: the DRed over-delete walk (deleteFrom); the delta position
	// ranges over the deletion frontier, every other positive position over
	// the pre-deletion database (relation ∪ ghosts), and a match marks the
	// head as over-deleted.
	kindDRed
	// kindMatch: the rederivation existence check (matchFrom); head slots
	// are pre-bound by unifyHead, the walk stops at the first full match.
	kindMatch
)

// stepFn is one compiled body step. Steps take no arguments: each closure
// captured its program's execCtx at compile time.
type stepFn func()

// execCtx is the mutable state one compiled walk threads through its steps.
type execCtx struct {
	e  *Engine
	st *stageState
	// env is the rule's variable frame. For eval/DRed programs it is owned
	// by the program (allocated at compile time); for match programs it is
	// the caller's head-unified frame. No bound []bool runs beside it: with
	// the order fixed, which slots are bound at each step is decided at
	// compile time.
	env []value.Value
	// key is the shared probe-key scratch buffer. Each probe step appends
	// its key parts and truncates back after its loop, so nested probes
	// stack their keys in one allocation.
	key []byte
	// delta is the per-invocation delta source: the previous iteration's
	// new facts (kindEval) or the deletion frontier (kindDRed).
	delta deltaSet
	// found flags a complete match; kindMatch terminals set it and every
	// loop in a match walk stops on it.
	found bool
}

// execProg is one compiled (rule, stage kind, delta position) walk.
type execProg struct {
	kind     stageKind
	deltaPos int
	entry    stepFn
	ctx      execCtx
}

// runEval runs a compiled kindEval walk: the compiled equivalent of
// evalRule's interpreted evalFrom call.
func (p *execProg) runEval(e *Engine, st *stageState, prevDelta deltaSet) {
	x := &p.ctx
	x.e, x.st, x.delta = e, st, prevDelta
	x.key = x.key[:0]
	p.entry()
	x.st, x.delta = nil, nil
}

// runDelete runs a compiled kindDRed walk over the deletion frontier.
func (p *execProg) runDelete(e *Engine, st *stageState, frontier deltaSet) {
	x := &p.ctx
	x.e, x.st, x.delta = e, st, frontier
	x.key = x.key[:0]
	p.entry()
	x.st, x.delta = nil, nil
}

// runMatch runs a compiled kindMatch walk under the caller's head-unified
// frame and reports whether the body has a satisfying local valuation.
func (p *execProg) runMatch(e *Engine, st *stageState, env []value.Value) bool {
	x := &p.ctx
	x.e, x.st, x.env = e, st, env
	x.found = false
	x.key = x.key[:0]
	p.entry()
	found := x.found
	x.st, x.env = nil, nil
	return found
}

// argAct is one compiled unification action against a visited tuple:
// bind a free slot from a column, or check a column against an
// already-bound slot or a constant.
type argAct struct {
	op   uint8
	slot int
	col  int
	val  value.Value
}

const (
	actBind uint8 = iota
	actCheckSlot
	actCheckConst
)

// compileActs specializes a step's unification actions. Bind-only
// sequences of up to two actions — the shape of almost every scan and
// delta step over fresh variables — run as straight-line slot writes;
// everything else falls back to the generic applyActs loop.
func compileActs(acts []argAct) func(*execCtx, value.Tuple) bool {
	for _, a := range acts {
		if a.op != actBind {
			return func(x *execCtx, t value.Tuple) bool { return applyActs(x, acts, t) }
		}
	}
	switch len(acts) {
	case 0:
		return func(*execCtx, value.Tuple) bool { return true }
	case 1:
		s0, c0 := acts[0].slot, acts[0].col
		return func(x *execCtx, t value.Tuple) bool {
			x.env[s0] = t[c0]
			return true
		}
	case 2:
		s0, c0 := acts[0].slot, acts[0].col
		s1, c1 := acts[1].slot, acts[1].col
		return func(x *execCtx, t value.Tuple) bool {
			x.env[s0] = t[c0]
			x.env[s1] = t[c1]
			return true
		}
	}
	return func(x *execCtx, t value.Tuple) bool { return applyActs(x, acts, t) }
}

// applyActs unifies tuple t against the step's compiled actions. It
// returns false on the first failing check; bindings need no undo — the
// next tuple (or the next invocation) overwrites them, and reads of a slot
// only ever happen after the step that binds it.
func applyActs(x *execCtx, acts []argAct, t value.Tuple) bool {
	for _, a := range acts {
		switch a.op {
		case actBind:
			x.env[a.slot] = t[a.col]
		case actCheckSlot:
			if !x.env[a.slot].Equal(t[a.col]) {
				return false
			}
		default: // actCheckConst
			if !a.val.Equal(t[a.col]) {
				return false
			}
		}
	}
	return true
}

// keyPart is one component of a probe key: a constant or a bound slot,
// appended in ascending column order — the store's index-key convention.
type keyPart struct {
	isVar bool
	slot  int
	val   value.Value
}

// appendKeyParts appends the encoded parts to dst under the current frame.
func appendKeyParts(x *execCtx, dst []byte, parts []keyPart) []byte {
	for _, p := range parts {
		if p.isVar {
			dst = x.env[p.slot].AppendKey(dst)
		} else {
			dst = p.val.AppendKey(dst)
		}
	}
	return dst
}
