package engine

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// SafetyError reports a rule that violates WebdamLog's safety conditions.
// Pos locates the offending term when the rule was parsed from source.
type SafetyError struct {
	Rule ast.Rule
	Msg  string
	Pos  ast.Pos
}

// Error implements the error interface. When the rule carries a source
// position, it is appended; the historical message is otherwise unchanged.
func (e *SafetyError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("unsafe rule %q: %s (at %s)", e.Rule.String(), e.Msg, e.Pos)
	}
	return fmt.Sprintf("unsafe rule %q: %s", e.Rule.String(), e.Msg)
}

// CheckSafety validates the paper's safety conditions for a rule:
//
//   - every variable in relation or peer position must be a constant or
//     bound by an earlier (left-to-right) positive atom;
//   - every variable of a negated atom must be bound by an earlier positive
//     atom;
//   - every head variable must be bound by some positive body atom.
//
// The check itself lives in internal/analysis (RuleSafety), shared with the
// `wdl check` static analyzer; this wraps its verdict in a SafetyError.
func CheckSafety(r ast.Rule) error {
	if v := analysis.RuleSafety(r); v != nil {
		return &SafetyError{Rule: r, Msg: v.Msg, Pos: v.Pos}
	}
	return nil
}

// slotAllocator assigns frame slots to variable names.
type slotAllocator struct {
	slots map[string]int
	names []string
}

func (s *slotAllocator) slot(name string) int {
	if i, ok := s.slots[name]; ok {
		return i
	}
	i := len(s.names)
	s.slots[name] = i
	s.names = append(s.names, name)
	return i
}

func (s *slotAllocator) compileTerm(t ast.Term) termRef {
	if t.IsVar() {
		return termRef{isVar: true, slot: s.slot(t.Var)}
	}
	return termRef{val: t.Val}
}

func (s *slotAllocator) compileAtom(a ast.Atom) cAtom {
	out := cAtom{
		neg:  a.Neg,
		rel:  s.compileTerm(a.Rel),
		peer: s.compileTerm(a.Peer),
		args: make([]termRef, len(a.Args)),
	}
	for i, t := range a.Args {
		out.args[i] = s.compileTerm(t)
	}
	return out
}

// CompileRule checks safety and compiles a single rule. The rule is cloned;
// the engine never aliases caller-owned memory.
func (e *Engine) CompileRule(r ast.Rule) (*CompiledRule, error) {
	if err := CheckSafety(r); err != nil {
		return nil, err
	}
	r = r.Clone()
	alloc := &slotAllocator{slots: map[string]int{}}
	cr := &CompiledRule{Rule: &r}
	// Compile body first so slot order follows binding order; the safety
	// check guarantees the head only uses already-allocated slots.
	cr.Body = make([]cAtom, len(r.Body))
	for i, a := range r.Body {
		cr.Body[i] = alloc.compileAtom(a)
	}
	cr.Head = alloc.compileAtom(r.Head)
	cr.NumSlots = len(alloc.names)
	cr.SlotNames = alloc.names
	return cr, nil
}

// CompileProgram compiles and stratifies a rule set. Errors from individual
// rules are joined; a stratification failure is reported for the whole set.
func (e *Engine) CompileProgram(rules []ast.Rule) (*Program, error) {
	prog := &Program{}
	var errs []error
	for _, r := range rules {
		cr, err := e.CompileRule(r)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		prog.Rules = append(prog.Rules, cr)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if err := e.stratify(prog); err != nil {
		return nil, err
	}
	e.classify(prog)
	return prog, nil
}

// CompileRules is the tolerant variant used by the peer runtime: rules that
// fail safety checks are skipped (with their errors reported) and the rest
// of the program still compiles. A stratification failure, which concerns
// the rule set as a whole, returns a nil program.
func (e *Engine) CompileRules(rules []ast.Rule) (*Program, []error) {
	prog := &Program{}
	var errs []error
	for _, r := range rules {
		cr, err := e.CompileRule(r)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		prog.Rules = append(prog.Rules, cr)
	}
	if err := e.stratify(prog); err != nil {
		errs = append(errs, err)
		return nil, errs
	}
	e.classify(prog)
	return prog, errs
}
