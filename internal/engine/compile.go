package engine

import (
	"errors"
	"fmt"

	"repro/internal/ast"
)

// SafetyError reports a rule that violates WebdamLog's safety conditions.
type SafetyError struct {
	Rule ast.Rule
	Msg  string
}

// Error implements the error interface.
func (e *SafetyError) Error() string {
	return fmt.Sprintf("unsafe rule %q: %s", e.Rule.String(), e.Msg)
}

// CheckSafety validates the paper's safety conditions for a rule:
//
//   - every variable in relation or peer position must be a constant or
//     bound by an earlier (left-to-right) positive atom;
//   - every variable of a negated atom must be bound by an earlier positive
//     atom;
//   - every head variable must be bound by some positive body atom.
func CheckSafety(r ast.Rule) error {
	bound := map[string]bool{}
	for i, a := range r.Body {
		if a.Rel.IsVar() && !bound[a.Rel.Var] {
			return &SafetyError{Rule: r, Msg: fmt.Sprintf(
				"relation variable $%s of body atom %d is not bound by an earlier positive atom", a.Rel.Var, i+1)}
		}
		if a.Peer.IsVar() && !bound[a.Peer.Var] {
			return &SafetyError{Rule: r, Msg: fmt.Sprintf(
				"peer variable $%s of body atom %d is not bound by an earlier positive atom", a.Peer.Var, i+1)}
		}
		if !a.Peer.IsVar() && a.Peer.Val.StringVal() == BuiltinPeer {
			// Built-in predicates test bindings; they bind nothing, so all
			// their variables must already be bound.
			if a.Rel.IsVar() {
				return &SafetyError{Rule: r, Msg: fmt.Sprintf(
					"body atom %d: builtin predicates cannot have a variable name", i+1)}
			}
			if _, known := builtinArity[a.Rel.Val.StringVal()]; !known {
				return &SafetyError{Rule: r, Msg: fmt.Sprintf(
					"body atom %d: unknown builtin predicate %q", i+1, a.Rel.Val.StringVal())}
			}
			for _, t := range a.Args {
				if t.IsVar() && !bound[t.Var] {
					return &SafetyError{Rule: r, Msg: fmt.Sprintf(
						"variable $%s of builtin atom %d is not bound by an earlier positive atom", t.Var, i+1)}
				}
			}
			continue
		}
		if a.Neg {
			for _, t := range a.Args {
				if t.IsVar() && !bound[t.Var] {
					return &SafetyError{Rule: r, Msg: fmt.Sprintf(
						"variable $%s of negated atom %d is not bound by an earlier positive atom", t.Var, i+1)}
				}
			}
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	if r.Head.Rel.IsVar() && !bound[r.Head.Rel.Var] {
		return &SafetyError{Rule: r, Msg: fmt.Sprintf("head relation variable $%s is not bound", r.Head.Rel.Var)}
	}
	if r.Head.Peer.IsVar() && !bound[r.Head.Peer.Var] {
		return &SafetyError{Rule: r, Msg: fmt.Sprintf("head peer variable $%s is not bound", r.Head.Peer.Var)}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() && !bound[t.Var] {
			return &SafetyError{Rule: r, Msg: fmt.Sprintf("head variable $%s is not bound", t.Var)}
		}
	}
	if r.Head.Neg {
		return &SafetyError{Rule: r, Msg: "head cannot be negated"}
	}
	if !r.Head.Peer.IsVar() && r.Head.Peer.Val.StringVal() == BuiltinPeer {
		return &SafetyError{Rule: r, Msg: "head cannot target the builtin peer"}
	}
	return nil
}

// slotAllocator assigns frame slots to variable names.
type slotAllocator struct {
	slots map[string]int
	names []string
}

func (s *slotAllocator) slot(name string) int {
	if i, ok := s.slots[name]; ok {
		return i
	}
	i := len(s.names)
	s.slots[name] = i
	s.names = append(s.names, name)
	return i
}

func (s *slotAllocator) compileTerm(t ast.Term) termRef {
	if t.IsVar() {
		return termRef{isVar: true, slot: s.slot(t.Var)}
	}
	return termRef{val: t.Val}
}

func (s *slotAllocator) compileAtom(a ast.Atom) cAtom {
	out := cAtom{
		neg:  a.Neg,
		rel:  s.compileTerm(a.Rel),
		peer: s.compileTerm(a.Peer),
		args: make([]termRef, len(a.Args)),
	}
	for i, t := range a.Args {
		out.args[i] = s.compileTerm(t)
	}
	return out
}

// CompileRule checks safety and compiles a single rule. The rule is cloned;
// the engine never aliases caller-owned memory.
func (e *Engine) CompileRule(r ast.Rule) (*CompiledRule, error) {
	if err := CheckSafety(r); err != nil {
		return nil, err
	}
	r = r.Clone()
	alloc := &slotAllocator{slots: map[string]int{}}
	cr := &CompiledRule{Rule: &r}
	// Compile body first so slot order follows binding order; the safety
	// check guarantees the head only uses already-allocated slots.
	cr.Body = make([]cAtom, len(r.Body))
	for i, a := range r.Body {
		cr.Body[i] = alloc.compileAtom(a)
	}
	cr.Head = alloc.compileAtom(r.Head)
	cr.NumSlots = len(alloc.names)
	cr.SlotNames = alloc.names
	return cr, nil
}

// CompileProgram compiles and stratifies a rule set. Errors from individual
// rules are joined; a stratification failure is reported for the whole set.
func (e *Engine) CompileProgram(rules []ast.Rule) (*Program, error) {
	prog := &Program{}
	var errs []error
	for _, r := range rules {
		cr, err := e.CompileRule(r)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		prog.Rules = append(prog.Rules, cr)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if err := e.stratify(prog); err != nil {
		return nil, err
	}
	e.classify(prog)
	return prog, nil
}

// CompileRules is the tolerant variant used by the peer runtime: rules that
// fail safety checks are skipped (with their errors reported) and the rest
// of the program still compiles. A stratification failure, which concerns
// the rule set as a whole, returns a nil program.
func (e *Engine) CompileRules(rules []ast.Rule) (*Program, []error) {
	prog := &Program{}
	var errs []error
	for _, r := range rules {
		cr, err := e.CompileRule(r)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		prog.Rules = append(prog.Rules, cr)
	}
	if err := e.stratify(prog); err != nil {
		errs = append(errs, err)
		return nil, errs
	}
	e.classify(prog)
	return prog, errs
}
