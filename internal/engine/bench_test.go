package engine

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/store"
	"repro/internal/value"
)

func benchEnv(b *testing.B, opts Options) (*Engine, *store.Store) {
	b.Helper()
	db := store.New()
	for _, s := range []store.Schema{
		{Name: "edge", Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}},
		{Name: "tc", Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}},
		{Name: "left", Peer: "local", Kind: ast.Extensional, Cols: []string{"k", "v"}},
		{Name: "right", Peer: "local", Kind: ast.Extensional, Cols: []string{"k", "w"}},
		{Name: "out", Peer: "local", Kind: ast.Intensional, Cols: []string{"v", "w"}},
	} {
		if _, err := db.Declare(s); err != nil {
			b.Fatal(err)
		}
	}
	return New("local", db, opts), db
}

func benchRules(b *testing.B, e *Engine, srcs ...string) *Program {
	b.Helper()
	rules := make([]ast.Rule, len(srcs))
	for i, src := range srcs {
		r, err := parseRuleForBench(src)
		if err != nil {
			b.Fatal(err)
		}
		r.ID = fmt.Sprintf("r%d", i)
		rules[i] = r
	}
	prog, err := e.CompileProgram(rules)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkCompileRule(b *testing.B) {
	e, _ := benchEnv(b, DefaultOptions())
	r, err := parseRuleForBench(`tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CompileRule(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinStage(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			e, db := benchEnv(b, DefaultOptions())
			l, r := db.MustGet("left", "local"), db.MustGet("right", "local")
			for i := 0; i < n; i++ {
				l.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i * 3))})
				r.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i * 5))})
			}
			prog := benchRules(b, e, `out@local($v,$w) :- left@local($k,$v), right@local($k,$w);`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.ClearIntensional()
				res := e.RunStage(prog)
				if res.Derived != n {
					b.Fatalf("derived %d, want %d", res.Derived, n)
				}
			}
		})
	}
}

func BenchmarkTCStage(b *testing.B) {
	e, db := benchEnv(b, DefaultOptions())
	edge := db.MustGet("edge", "local")
	for i := 0; i < 200; i++ {
		edge.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i + 1))})
	}
	prog := benchRules(b, e,
		`tc@local($x,$y) :- edge@local($x,$y);`,
		`tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ClearIntensional()
		e.RunStage(prog)
	}
}

func BenchmarkDelegationSplitStage(b *testing.B) {
	e, db := benchEnv(b, DefaultOptions())
	edge := db.MustGet("edge", "local")
	for i := 0; i < 1_000; i++ {
		edge.Insert(value.Tuple{value.Str(fmt.Sprintf("peer%d", i%50)), value.Int(int64(i))})
	}
	prog := benchRules(b, e, `sink@local($x) :- edge@local($p,$i), data@$p($x);`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ClearIntensional()
		res := e.RunStage(prog)
		if len(res.Delegations["r0"]) != 50 {
			b.Fatalf("delegation targets = %d, want 50", len(res.Delegations["r0"]))
		}
	}
}

func parseRuleForBench(src string) (ast.Rule, error) {
	return parser.ParseRule(src)
}
