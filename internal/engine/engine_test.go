package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/store"
	"repro/internal/value"
)

// testEnv builds a store + engine for peer "local" with the given
// declarations ("ext name(cols…)" / "int name(cols…)") applied at local.
func testEnv(t *testing.T, opts Options, decls ...string) (*Engine, *store.Store) {
	t.Helper()
	db := store.New()
	for _, d := range decls {
		parts := strings.Fields(d)
		if len(parts) != 2 {
			t.Fatalf("bad decl %q", d)
		}
		kind := ast.Extensional
		if parts[0] == "int" {
			kind = ast.Intensional
		}
		open := strings.Index(parts[1], "(")
		name := parts[1][:open]
		colsStr := strings.TrimSuffix(parts[1][open+1:], ")")
		var cols []string
		if colsStr != "" {
			cols = strings.Split(colsStr, ",")
		}
		if _, err := db.Declare(store.Schema{Name: name, Peer: "local", Kind: kind, Cols: cols}); err != nil {
			t.Fatalf("declare %s: %v", d, err)
		}
	}
	return New("local", db, opts), db
}

func mustRules(t *testing.T, srcs ...string) []ast.Rule {
	t.Helper()
	out := make([]ast.Rule, len(srcs))
	for i, src := range srcs {
		r, err := parser.ParseRule(src)
		if err != nil {
			t.Fatalf("parse rule %q: %v", src, err)
		}
		r.ID = fmt.Sprintf("r%d", i+1)
		out[i] = r
	}
	return out
}

func insertFacts(t *testing.T, db *store.Store, facts ...string) {
	t.Helper()
	for _, src := range facts {
		f, err := parser.ParseFact(src)
		if err != nil {
			t.Fatalf("parse fact %q: %v", src, err)
		}
		rel := db.Get(f.Rel, f.Peer)
		if rel == nil {
			t.Fatalf("fact %q: relation not declared", src)
		}
		rel.Insert(f.Args)
	}
}

func relContents(db *store.Store, name, peer string) []string {
	rel := db.Get(name, peer)
	if rel == nil {
		return nil
	}
	var out []string
	for _, tp := range rel.Tuples() {
		out = append(out, tp.String())
	}
	return out
}

func checkNoErrors(t *testing.T, res *Result) {
	t.Helper()
	for _, err := range res.Errors {
		t.Errorf("stage error: %v", err)
	}
}

func TestTransitiveClosure(t *testing.T) {
	for _, semi := range []bool{true, false} {
		name := "naive"
		if semi {
			name = "seminaive"
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.SemiNaive = semi
			e, db := testEnv(t, opts, "ext edge(a,b)", "int tc(a,b)")
			insertFacts(t, db,
				`edge@local("a","b");`, `edge@local("b","c");`,
				`edge@local("c","d");`, `edge@local("d","e");`)
			prog, err := e.CompileProgram(mustRules(t,
				`tc@local($x,$y) :- edge@local($x,$y);`,
				`tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`,
			))
			if err != nil {
				t.Fatal(err)
			}
			res := e.RunStage(prog)
			checkNoErrors(t, res)
			if got, want := res.Derived, 10; got != want {
				t.Errorf("derived %d tc facts, want %d", got, want)
			}
			if db.Get("tc", "local").Len() != 10 {
				t.Errorf("tc has %d tuples, want 10", db.Get("tc", "local").Len())
			}
			if !db.Get("tc", "local").Contains(value.Tuple{value.Str("a"), value.Str("e")}) {
				t.Errorf("tc missing (a,e)")
			}
		})
	}
}

func TestSemiNaiveFewerIterationsNotMoreFacts(t *testing.T) {
	// Long chain: naive and semi-naive must agree on the result set.
	build := func(semi bool) (*Result, *store.Store) {
		opts := DefaultOptions()
		opts.SemiNaive = semi
		e, db := testEnv(t, opts, "ext edge(a,b)", "int tc(a,b)")
		for i := 0; i < 30; i++ {
			db.Get("edge", "local").Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i + 1))})
		}
		prog, err := e.CompileProgram(mustRules(t,
			`tc@local($x,$y) :- edge@local($x,$y);`,
			`tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`,
		))
		if err != nil {
			t.Fatal(err)
		}
		return e.RunStage(prog), db
	}
	resS, dbS := build(true)
	resN, dbN := build(false)
	if resS.Derived != resN.Derived {
		t.Errorf("semi-naive derived %d, naive derived %d", resS.Derived, resN.Derived)
	}
	if got, want := dbS.Get("tc", "local").Len(), 30*31/2; got != want {
		t.Errorf("tc size %d, want %d", got, want)
	}
	if dbS.Get("tc", "local").Len() != dbN.Get("tc", "local").Len() {
		t.Errorf("result sets differ")
	}
}

func TestLocalExtensionalHeadIsBufferedUpdate(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)", "ext dst(x)")
	insertFacts(t, db, `src@local("v");`)
	prog, err := e.CompileProgram(mustRules(t, `dst@local($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if db.Get("dst", "local").Len() != 0 {
		t.Errorf("dst must not be updated within the stage")
	}
	if len(res.LocalUpdates) != 1 || res.LocalUpdates[0].Op != ast.Derive {
		t.Fatalf("LocalUpdates = %v, want one insert", res.LocalUpdates)
	}
	if got := res.LocalUpdates[0].Fact.String(); got != `dst@local("v")` {
		t.Errorf("update fact = %s", got)
	}
}

func TestDeletionRule(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext kill(x)", "ext data(x)")
	insertFacts(t, db, `kill@local("a");`, `data@local("a");`, `data@local("b");`)
	prog, err := e.CompileProgram(mustRules(t, `-data@local($x) :- kill@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if len(res.LocalUpdates) != 1 || res.LocalUpdates[0].Op != ast.Delete {
		t.Fatalf("LocalUpdates = %v, want one delete", res.LocalUpdates)
	}
}

func TestRemoteHeadBecomesMessage(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)")
	insertFacts(t, db, `src@local("v1");`, `src@local("v2");`)
	prog, err := e.CompileProgram(mustRules(t, `sink@remote($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := len(res.Remote["remote"]); got != 2 {
		t.Fatalf("remote facts = %d, want 2", got)
	}
}

func TestVariablePeerHeadRoutesPerTuple(t *testing.T) {
	// The paper's transfer rule shape: the head peer comes from the data.
	e, db := testEnv(t, DefaultOptions(), "ext target(p)", "ext item(x)")
	insertFacts(t, db, `target@local("alice");`, `target@local("bob");`, `item@local("photo");`)
	prog, err := e.CompileProgram(mustRules(t,
		`inbox@$p($x) :- target@local($p), item@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if len(res.Remote["alice"]) != 1 || len(res.Remote["bob"]) != 1 {
		t.Fatalf("Remote = %v, want 1 fact each to alice and bob", res.Remote)
	}
}

func TestVariableRelationInBody(t *testing.T) {
	// Variable relation name bound by data, as in the paper's
	// $protocol@$attendee(...) pattern.
	e, db := testEnv(t, DefaultOptions(), "ext which(r)", "ext email(x)", "ext wepic(x)", "int got(x)")
	insertFacts(t, db, `which@local("email");`, `email@local("m1");`, `wepic@local("w1");`)
	prog, err := e.CompileProgram(mustRules(t,
		`got@local($x) :- which@local($r), $r@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "got", "local"); len(got) != 1 || got[0] != "(m1)" {
		t.Errorf("got = %v, want [(m1)]", got)
	}
}

func TestDelegationSplit(t *testing.T) {
	// Exactly the paper's §2 example: with selectedAttendee@local("emilien"),
	// the rule delegates `attendeePictures@local(...) :- pictures@emilien(...)`
	// to emilien.
	e, db := testEnv(t, DefaultOptions(), "ext selectedAttendee(a)", "int attendeePictures(id,name,owner,data)")
	insertFacts(t, db, `selectedAttendee@local("emilien");`)
	prog, err := e.CompileProgram(mustRules(t,
		`attendeePictures@local($id,$name,$owner,$data) :- selectedAttendee@local($attendee), pictures@$attendee($id,$name,$owner,$data);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	byTarget := res.Delegations["r1"]
	if byTarget == nil {
		t.Fatal("no delegations for r1")
	}
	rules := byTarget["emilien"]
	if len(rules) != 1 {
		t.Fatalf("delegated %d rules to emilien, want 1", len(rules))
	}
	want := `attendeePictures@local($id, $name, $owner, $data) :- pictures@emilien($id, $name, $owner, $data)`
	if got := rules[0].String(); got != want {
		t.Errorf("residual = %q, want %q", got, want)
	}
	if rules[0].Origin != "local" {
		t.Errorf("residual origin = %q, want local", rules[0].Origin)
	}

	// Retract the support: the delegation set for (r1, emilien) must be
	// recomputed as empty (the peer layer turns this into a withdrawal).
	db.Get("selectedAttendee", "local").Delete(value.Tuple{value.Str("emilien")})
	db.ClearIntensional()
	res = e.RunStage(prog)
	checkNoErrors(t, res)
	if len(res.Delegations["r1"]["emilien"]) != 0 {
		t.Errorf("delegations persist after support retracted: %v", res.Delegations)
	}
}

func TestDelegationPerValuation(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext selectedAttendee(a)", "int attendeePictures(id)")
	insertFacts(t, db, `selectedAttendee@local("emilien");`, `selectedAttendee@local("jules");`)
	prog, err := e.CompileProgram(mustRules(t,
		`attendeePictures@local($id) :- selectedAttendee@local($a), pictures@$a($id);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if len(res.Delegations["r1"]) != 2 {
		t.Fatalf("delegation targets = %v, want emilien and jules", res.Delegations["r1"])
	}
}

func TestStratifiedNegation(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext all(x)", "ext bad(x)", "int good(x)")
	insertFacts(t, db, `all@local("a");`, `all@local("b");`, `bad@local("b");`)
	prog, err := e.CompileProgram(mustRules(t,
		`good@local($x) :- all@local($x), not bad@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "good", "local"); len(got) != 1 || got[0] != "(a)" {
		t.Errorf("good = %v, want [(a)]", got)
	}
}

func TestNegationOverDerivedRelation(t *testing.T) {
	// Two strata: reachable must be complete before unreachable is computed.
	e, db := testEnv(t, DefaultOptions(), "ext edge(a,b)", "ext node(x)", "int reach(x)", "int unreach(x)")
	insertFacts(t, db,
		`node@local("a");`, `node@local("b");`, `node@local("c");`, `node@local("z");`,
		`edge@local("a","b");`, `edge@local("b","c");`)
	prog, err := e.CompileProgram(mustRules(t,
		`reach@local("a") :- node@local("a");`,
		`reach@local($y) :- reach@local($x), edge@local($x,$y);`,
		`unreach@local($x) :- node@local($x), not reach@local($x);`,
	))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "unreach", "local"); len(got) != 1 || got[0] != "(z)" {
		t.Errorf("unreach = %v, want [(z)]", got)
	}
	if prog.Rules[2].Stratum <= prog.Rules[1].Stratum {
		t.Errorf("negation rule stratum %d must exceed recursion stratum %d",
			prog.Rules[2].Stratum, prog.Rules[1].Stratum)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	e, _ := testEnv(t, DefaultOptions(), "int p(x)", "int q(x)", "ext base(x)")
	_, err := e.CompileProgram(mustRules(t,
		`p@local($x) :- base@local($x), not q@local($x);`,
		`q@local($x) :- base@local($x), not p@local($x);`,
	))
	if err == nil {
		t.Fatal("expected stratification error")
	}
	var stratErr *ErrNotStratifiable
	if !asErr(err, &stratErr) {
		t.Errorf("error %v is not ErrNotStratifiable", err)
	}
}

func TestUnsafeRulesRejected(t *testing.T) {
	cases := []string{
		`out@local($x,$y) :- in@local($x);`,                  // unbound head var
		`out@local($x) :- $r@local($x);`,                     // unbound relation var
		`out@local($x) :- in@$p($x);`,                        // unbound peer var
		`out@local($x) :- in@local($x), not miss@local($y);`, // unbound var in negation
		`out@local($x) :- not in@local($x), all@local($x);`,  // negation before binding
		`$r@local("x") :- in@local("y");`,                    // unbound head relation var
		`out@$p("x") :- in@local("y");`,                      // unbound head peer var
	}
	for _, src := range cases {
		r, err := parser.ParseRule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := CheckSafety(r); err == nil {
			t.Errorf("rule %q accepted, want safety error", src)
		}
	}
}

func TestIntensionalSeedsParticipate(t *testing.T) {
	// Facts pushed into an intensional relation before the stage (transient
	// facts received from remote peers) must feed the fixpoint.
	e, db := testEnv(t, DefaultOptions(), "int seed(x)", "int out(x)")
	db.Get("seed", "local").Insert(value.Tuple{value.Str("s")})
	prog, err := e.CompileProgram(mustRules(t, `out@local($x) :- seed@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	if got := relContents(db, "out", "local"); len(got) != 1 {
		t.Errorf("out = %v, want [(s)]", got)
	}
}

func TestAutoDeclareUnknownHead(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)")
	insertFacts(t, db, `src@local("v");`)
	prog, err := e.CompileProgram(mustRules(t, `fresh@local($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	rel := db.Get("fresh", "local")
	if rel == nil {
		t.Fatal("fresh not auto-declared")
	}
	if rel.Kind() != ast.Extensional {
		t.Errorf("auto-declared kind = %v, want extensional", rel.Kind())
	}
	if len(res.LocalUpdates) != 1 {
		t.Errorf("expected buffered update into auto-declared relation, got %v", res.LocalUpdates)
	}
}

func TestDeleteIntoIntensionalIsError(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)", "int view(x)")
	insertFacts(t, db, `src@local("v");`)
	prog, err := e.CompileProgram(mustRules(t, `-view@local($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	if len(res.Errors) == 0 {
		t.Error("expected a runtime error for deletion into intensional relation")
	}
}

func TestArityMismatchCollected(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext src(x)", "int view(a,b)")
	insertFacts(t, db, `src@local("v");`)
	prog, err := e.CompileProgram(mustRules(t, `view@local($x) :- src@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	if len(res.Errors) == 0 {
		t.Error("expected arity mismatch error")
	}
}

func TestJoinWithConstants(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext rate(id,score)", "int top(id)")
	insertFacts(t, db, `rate@local("p1",5);`, `rate@local("p2",3);`, `rate@local("p3",5);`)
	prog, err := e.CompileProgram(mustRules(t, `top@local($id) :- rate@local($id,5);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	got := relContents(db, "top", "local")
	if len(got) != 2 {
		t.Errorf("top = %v, want p1 and p3", got)
	}
}

func TestSelfJoin(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext edge(a,b)", "int twohop(a,c)")
	insertFacts(t, db, `edge@local("a","b");`, `edge@local("b","c");`, `edge@local("c","d");`)
	prog, err := e.CompileProgram(mustRules(t,
		`twohop@local($x,$z) :- edge@local($x,$y), edge@local($y,$z);`))
	if err != nil {
		t.Fatal(err)
	}
	res := e.RunStage(prog)
	checkNoErrors(t, res)
	got := relContents(db, "twohop", "local")
	if len(got) != 2 || got[0] != "(a, c)" || got[1] != "(b, d)" {
		t.Errorf("twohop = %v, want [(a, c) (b, d)]", got)
	}
}

func TestTracerSeesSupports(t *testing.T) {
	var traced []string
	opts := DefaultOptions()
	opts.Tracer = tracerFunc(func(head ast.Fact, rule *ast.Rule, supports []ast.Fact) {
		traced = append(traced, fmt.Sprintf("%s<=%d", head.String(), len(supports)))
	})
	e, db := testEnv(t, opts, "ext a(x)", "ext b(x)", "int both(x)")
	insertFacts(t, db, `a@local("v");`, `b@local("v");`)
	prog, err := e.CompileProgram(mustRules(t, `both@local($x) :- a@local($x), b@local($x);`))
	if err != nil {
		t.Fatal(err)
	}
	e.RunStage(prog)
	if len(traced) != 1 || traced[0] != `both@local("v")<=2` {
		t.Errorf("traced = %v", traced)
	}
}

type tracerFunc func(ast.Fact, *ast.Rule, []ast.Fact)

func (f tracerFunc) OnDerive(h ast.Fact, r *ast.Rule, s []ast.Fact) { f(h, r, s) }

func asErr[T error](err error, target *T) bool {
	for err != nil {
		if e, ok := err.(T); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		type unwrapperMulti interface{ Unwrap() []error }
		switch u := err.(type) {
		case unwrapper:
			err = u.Unwrap()
		case unwrapperMulti:
			for _, sub := range u.Unwrap() {
				if asErr(sub, target) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
