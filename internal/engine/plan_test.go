package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/value"
)

// planOrder compiles one rule against the engine and returns the planner's
// chosen full-evaluation order.
func planOrder(t *testing.T, e *Engine, src string, deltaPos int) []int {
	t.Helper()
	cr, err := e.CompileRule(mustRules(t, src)[0])
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	pl := e.newPlanner()
	if pl == nil {
		t.Fatalf("planner disabled under DefaultOptions")
	}
	ord := pl.orderFor(cr, deltaPos)
	if ord == nil {
		// Written order: materialize the identity for easy assertions.
		ord = make([]int, len(cr.Body))
		for i := range ord {
			ord[i] = i
		}
	}
	return ord
}

func fill(t *testing.T, db *store.Store, rel string, n int) {
	t.Helper()
	r := db.Get(rel, "local")
	if r == nil {
		t.Fatalf("relation %s undeclared", rel)
	}
	for i := 0; i < n; i++ {
		switch r.Schema().Arity() {
		case 1:
			r.Insert(value.Tuple{value.Int(int64(i))})
		case 2:
			r.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i))})
		default:
			t.Fatalf("fill: unsupported arity %d", r.Schema().Arity())
		}
	}
}

// TestPlannerStartsFromTheSelectiveAtom checks the core reordering: a chain
// join written largest-first is planned smallest-first, probing backwards.
func TestPlannerStartsFromTheSelectiveAtom(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext big(a,b)", "ext mid(b,c)", "ext small(c)", "int out(a)")
	fill(t, db, "big", 1000)
	fill(t, db, "mid", 1000)
	fill(t, db, "small", 3)
	ord := planOrder(t, e, `out@local($a) :- big@local($a,$b), mid@local($b,$c), small@local($c);`, -1)
	if want := []int{2, 1, 0}; !reflect.DeepEqual(ord, want) {
		t.Fatalf("plan order = %v, want %v (selective atom first, chain probed backwards)", ord, want)
	}
}

// TestPlannerFloatsFiltersEarliest checks that negated atoms and builtins
// move to the first position where their variables are bound, ahead of
// further joins they can prune.
func TestPlannerFloatsFiltersEarliest(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext a(x)", "ext b(x,y)", "ext c(x)", "int out(y)")
	fill(t, db, "a", 2)
	fill(t, db, "b", 500)
	fill(t, db, "c", 10)
	ord := planOrder(t, e,
		`out@local($y) :- a@local($x), b@local($x,$y), not c@local($x), lt@builtin($x, 100);`, -1)
	// a binds $x; both filters depend only on $x and must run before the
	// 500-row b is probed.
	if want := []int{0, 2, 3, 1}; !reflect.DeepEqual(ord, want) {
		t.Fatalf("plan order = %v, want %v (filters float ahead of the big join)", ord, want)
	}
}

// TestPlannerDeltaAtomGoesFirst checks the delta-position choice: the atom
// carrying the semi-naive delta leads as soon as it is eligible, whatever
// its relation's cardinality.
func TestPlannerDeltaAtomGoesFirst(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext big(a,b)", "ext mid(b,c)", "ext small(c)", "int out(a)")
	fill(t, db, "big", 1000)
	fill(t, db, "mid", 1000)
	fill(t, db, "small", 3)
	ord := planOrder(t, e, `out@local($a) :- big@local($a,$b), mid@local($b,$c), small@local($c);`, 0)
	if ord[0] != 0 {
		t.Fatalf("plan order = %v: delta position 0 must evaluate first", ord)
	}
}

// TestPlannerKeepsDelegationSuffix checks the region boundary: atoms from
// the first possibly-remote atom on keep written order, so the delegated
// residual is exactly the paper's written suffix.
func TestPlannerKeepsDelegationSuffix(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext big(a,b)", "ext small(b)", "int out(a)")
	fill(t, db, "big", 1000)
	fill(t, db, "small", 3)
	ord := planOrder(t, e,
		`out@local($a) :- big@local($a,$b), small@local($b), q@remote($b,$c), r@local($c);`, -1)
	if want := []int{1, 0, 2, 3}; !reflect.DeepEqual(ord, want) {
		t.Fatalf("plan order = %v, want %v (local prefix reordered, suffix fixed)", ord, want)
	}
}

// TestPlannerDelegationsUnchanged evaluates a delegating rule with the
// planner on and off and checks the residual rule sets are identical —
// reordering the local prefix must not change what is delegated or the
// bindings substituted into it.
func TestPlannerDelegationsUnchanged(t *testing.T) {
	run := func(opts Options) map[string]map[string][]string {
		e, db := testEnv(t, opts, "ext big(a,b)", "ext small(b)")
		fill(t, db, "big", 50)
		fill(t, db, "small", 3)
		prog, err := e.CompileProgram(mustRules(t,
			`out@local($a,$c) :- big@local($a,$b), small@local($b), pics@remote($b,$c);`))
		if err != nil {
			t.Fatal(err)
		}
		res := e.RunStage(prog)
		checkNoErrors(t, res)
		out := map[string]map[string][]string{}
		for ruleID, byTarget := range res.Delegations {
			out[ruleID] = map[string][]string{}
			for target, rules := range byTarget {
				var texts []string
				for _, r := range rules {
					texts = append(texts, r.String())
				}
				out[ruleID][target] = texts
			}
		}
		return out
	}
	planned := DefaultOptions()
	written := DefaultOptions()
	written.Planner = false
	got := run(planned)
	want := run(written)
	for ruleID, byTarget := range want {
		for target, rules := range byTarget {
			gotRules := got[ruleID][target]
			if len(gotRules) != len(rules) {
				t.Fatalf("delegations differ for %s->%s: planner %d residuals, written %d", ruleID, target, len(gotRules), len(rules))
			}
			gotSet := map[string]bool{}
			for _, r := range gotRules {
				gotSet[r] = true
			}
			for _, r := range rules {
				if !gotSet[r] {
					t.Fatalf("residual %q delegated by written order but not by the planner", r)
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("delegated rule sets differ: planner %d rules, written %d", len(got), len(want))
	}
}

// TestExplainRendersPlans smoke-tests the explain surface: every rule shows
// up with a numbered join order and live statistics.
func TestExplainRendersPlans(t *testing.T) {
	e, db := testEnv(t, DefaultOptions(), "ext big(a,b)", "ext mid(b,c)", "ext small(c)", "int out(a)")
	fill(t, db, "big", 100)
	fill(t, db, "mid", 100)
	fill(t, db, "small", 3)
	prog, err := e.CompileProgram(mustRules(t,
		`out@local($a) :- big@local($a,$b), mid@local($b,$c), small@local($c);`))
	if err != nil {
		t.Fatal(err)
	}
	got := e.Explain(prog)
	for _, want := range []string{"rule r1", "1. body atom 3: small@local($c)", "rows=100", "probe("} {
		if !strings.Contains(got, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, got)
		}
	}

	off := DefaultOptions()
	off.Planner = false
	e2, db2 := testEnv(t, off, "ext big(a,b)", "ext small(b)", "int out(a)")
	fill(t, db2, "big", 10)
	fill(t, db2, "small", 2)
	prog2, err := e2.CompileProgram(mustRules(t,
		`out@local($a) :- big@local($a,$b), small@local($b);`))
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Explain(prog2); !strings.Contains(got, "planner disabled") ||
		!strings.Contains(got, "1. body atom 1: big@local($a, $b)") {
		t.Fatalf("disabled-planner Explain should render written order with a note:\n%s", got)
	}
}
