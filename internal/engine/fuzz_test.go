package engine

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/value"
)

// FuzzEngineStage decodes the fuzz input into batches of base-fact inserts
// and deletes, drives them through a fixed recursive program (transitive
// closure plus a builtin-filtered projection) on two incrementally
// maintained engines — compiled+planner against the bare interpreter — and
// on a from-scratch recompute reference, and requires all three to agree on
// every relation after every batch. This fuzzes exactly the surface the
// compiled layer replaces: semi-naive delta walks, DRed over-deletion,
// rederivation, across arbitrary insert/delete interleavings.
func FuzzEngineStage(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x80, 0x12})
	f.Add([]byte{0x01, 0x12, 0x01, 0x21, 0x81, 0x12, 0x01, 0x13, 0x01, 0x32})
	f.Add([]byte{0xff, 0x00, 0x55, 0xaa, 0x0f, 0xf0, 0x33, 0xcc})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 120 {
			data = data[:120] // bound fixpoint sizes, keep iterations fast
		}
		// Decode: 2 bytes per op. High bit of the first byte selects delete;
		// the second byte packs the two attributes into a small domain so
		// joins and collisions actually happen. Batch boundary every 4 ops.
		type op struct {
			del  bool
			a, b int64
		}
		var batches [][]op
		var cur []op
		for i := 0; i+1 < len(data); i += 2 {
			cur = append(cur, op{
				del: data[i]&0x80 != 0,
				a:   int64(data[i+1] >> 4 & 0x7),
				b:   int64(data[i+1] & 0x7),
			})
			if len(cur) == 4 {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			batches = append(batches, cur)
		}
		if len(batches) == 0 {
			return
		}

		schemas := []store.Schema{
			{Name: "edge", Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}},
			{Name: "reach", Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}},
			{Name: "asc", Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}},
		}
		rules := mustRules(t,
			`reach@local($x, $y) :- edge@local($x, $y);`,
			`reach@local($x, $z) :- reach@local($x, $y), edge@local($y, $z);`,
			`asc@local($x, $y) :- reach@local($x, $y), lt@builtin($x, $y);`,
		)

		run := func(opts Options, incremental bool) []map[string][]string {
			db := store.New()
			for _, s := range schemas {
				if _, err := db.Declare(s); err != nil {
					t.Fatal(err)
				}
			}
			base := db.Get("edge", "local")
			e := New("local", db, opts)
			prog, err := e.CompileProgram(rules)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rv := NewRemoteView()
			checkNoErrors(t, e.RunStageFull(prog, nil, rv))
			var states []map[string][]string
			for _, b := range batches {
				// Net batch effect, per the StageInput contract (see the
				// incremental grid test).
				in := &StageInput{Ins: map[string][]value.Tuple{}, Del: map[string][]value.Tuple{}}
				touched := map[string]value.Tuple{}
				wasPresent := map[string]bool{}
				var order []string
				for _, o := range b {
					tup := value.Tuple{value.Int(o.a), value.Int(o.b)}
					k := tup.Key()
					if _, seen := touched[k]; !seen {
						touched[k] = tup
						wasPresent[k] = base.Contains(tup)
						order = append(order, k)
					}
					if o.del {
						base.Delete(tup)
					} else {
						base.Insert(tup)
					}
				}
				for _, k := range order {
					tup := touched[k]
					switch now := base.Contains(tup); {
					case now && !wasPresent[k]:
						in.Ins["edge@local"] = append(in.Ins["edge@local"], tup)
					case !now && wasPresent[k]:
						in.Del["edge@local"] = append(in.Del["edge@local"], tup)
					}
				}
				if incremental {
					checkNoErrors(t, e.RunStageIncremental(prog, in, rv))
				} else {
					checkNoErrors(t, e.RunStageFull(prog, nil, rv))
				}
				states = append(states, map[string][]string{
					"edge":  relContents(db, "edge", "local"),
					"reach": relContents(db, "reach", "local"),
					"asc":   relContents(db, "asc", "local"),
				})
			}
			return states
		}

		compiled := DefaultOptions()
		interp := DefaultOptions()
		interp.Compiled = false
		interp.Planner = false
		ref := run(compiled, false)
		for _, cfg := range []struct {
			name string
			opts Options
		}{{"compiled", compiled}, {"interpreted", interp}} {
			got := run(cfg.opts, true)
			for step := range ref {
				for rel, w := range ref[step] {
					g := got[step][rel]
					if len(g) != len(w) {
						t.Fatalf("%s step %d: relation %s differs: recompute %v, incremental %v", cfg.name, step, rel, w, g)
					}
					for i := range w {
						if g[i] != w[i] {
							t.Fatalf("%s step %d: relation %s row %d: %s vs %s", cfg.name, step, rel, i, w[i], g[i])
						}
					}
				}
			}
		}
	})
}
