package analysis

// BuiltinPeer is the reserved peer name hosting comparison predicates.
// This is the canonical definition; internal/engine re-exports it.
const BuiltinPeer = "builtin"

// builtinArity fixes the arity of every builtin predicate.
var builtinArity = map[string]int{
	"lt": 2, "le": 2, "gt": 2, "ge": 2, "eq": 2, "neq": 2,
}

// BuiltinArity returns the fixed arity of a builtin predicate and whether
// the name is a known builtin.
func BuiltinArity(name string) (int, bool) {
	n, ok := builtinArity[name]
	return n, ok
}

// Builtins returns a copy of the predicate→arity table.
func Builtins() map[string]int {
	out := make(map[string]int, len(builtinArity))
	for k, v := range builtinArity {
		out[k] = v
	}
	return out
}
