package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/parser"
)

func mustCheck(t *testing.T, src string, opts analysis.Options) []analysis.Diagnostic {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.Check(prog, opts)
}

// findCode returns the first diagnostic with the given code, failing the
// test if absent.
func findCode(t *testing.T, diags []analysis.Diagnostic, code string) analysis.Diagnostic {
	t.Helper()
	for _, d := range diags {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic; got %v", code, diags)
	return analysis.Diagnostic{}
}

func wantDiag(t *testing.T, d analysis.Diagnostic, sev analysis.Severity, line, col int, msgPart string) {
	t.Helper()
	if d.Severity != sev {
		t.Errorf("%s: severity = %v, want %v", d.Code, d.Severity, sev)
	}
	if d.Pos.Line != line || d.Pos.Col != col {
		t.Errorf("%s: position = %s, want %d:%d", d.Code, d.Pos, line, col)
	}
	if !strings.Contains(d.Message, msgPart) {
		t.Errorf("%s: message %q does not contain %q", d.Code, d.Message, msgPart)
	}
}

// One pinned example per diagnostic code, with exact positions.

func TestWDL001UnsafeRule(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
relation intensional v@p(x, y);
v@p($x, $y) :- e@p($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeUnsafeRule)
	wantDiag(t, d, analysis.Error, 4, 9, "head variable $y is not bound")
	if d.Peer != "p" {
		t.Errorf("peer = %q, want p", d.Peer)
	}
}

func TestWDL002NotStratifiable(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
relation intensional v@p(x);
v@p($x) :- e@p($x), not v@p($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeNotStratifiable)
	wantDiag(t, d, analysis.Error, 4, 21, "relation v@p participates in a cycle through negation")
}

func TestWDL003ArityMismatch(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x, y);
e@p(1);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeArityMismatch)
	wantDiag(t, d, analysis.Error, 3, 1, "has 1 arguments but is declared with 2 columns")
}

func TestWDL003BuiltinArity(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
relation intensional v@p(x);
v@p($x) :- e@p($x), lt@builtin($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeArityMismatch)
	wantDiag(t, d, analysis.Error, 4, 21, `builtin predicate "lt" expects 2 arguments, got 1`)
}

func TestWDL004SchemaConflict(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
relation intensional e@p(x, y);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeSchemaConflict)
	wantDiag(t, d, analysis.Error, 3, 1, "redeclared as intensional with 2 columns")
}

func TestWDL005NoPeerContext(t *testing.T) {
	diags := mustCheck(t, `v@$x($a) :- e@q($a, $x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeNoPeerContext)
	wantDiag(t, d, analysis.Error, 1, 3, "needs a `peer` declaration")

	// The same program under a default peer context is placeable.
	for _, d := range mustCheck(t, `v@$x($a) :- e@q($a, $x);
`, analysis.Options{DefaultPeer: "q"}) {
		if d.Code == analysis.CodeNoPeerContext {
			t.Errorf("unexpected WDL005 with DefaultPeer set: %v", d)
		}
	}
}

func TestWDL006UndeclaredRelation(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
v@p($x) :- e@p($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeUndeclaredRelation)
	wantDiag(t, d, analysis.Warning, 3, 1, "relation v@p is never declared")
}

func TestWDL007NeverDerivable(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation intensional v@p(x);
v@p($x) :- ghost@p($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeNeverDerivable)
	wantDiag(t, d, analysis.Warning, 3, 12, "nothing can derive ghost@p")
	// WDL007 suppresses the weaker WDL006 for the same relation.
	for _, d := range diags {
		if d.Code == analysis.CodeUndeclaredRelation && strings.Contains(d.Message, "ghost") {
			t.Errorf("WDL006 not suppressed by WDL007: %v", d)
		}
	}
}

func TestWDL008UnusedRelation(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional unused@p(x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeUnusedRelation)
	wantDiag(t, d, analysis.Warning, 2, 1, "relation unused@p is declared but never used")
}

func TestWDL009UndeclaredPeer(t *testing.T) {
	diags := mustCheck(t, `peer p;
relation extensional e@p(x);
relation intensional v@p(x);
v@p($x) :- e@stranger($x);
`, analysis.Options{})
	d := findCode(t, diags, analysis.CodeUndeclaredPeer)
	wantDiag(t, d, analysis.Warning, 4, 14, `peer "stranger"`)
}

func TestWDL010ACLWiden(t *testing.T) {
	src := `peer alice;
relation extensional secret@alice(x);
relation intensional leak@alice(x);
leak@alice($x) :- secret@alice($x);
`
	g := acl.NewGrants("alice")
	g.Grant("leak", "bob", acl.ReadPriv)
	opts := analysis.Options{Grants: map[string]analysis.GrantSource{"alice": g}}
	d := findCode(t, mustCheck(t, src, opts), analysis.CodeACLWiden)
	wantDiag(t, d, analysis.Warning, 4, 1, `readable by peer "bob", which cannot read body relation secret@alice`)

	// Granting bob the body relation too resolves the finding.
	g.Grant("secret", "bob", acl.ReadPriv)
	for _, d := range mustCheck(t, src, opts) {
		if d.Code == analysis.CodeACLWiden {
			t.Errorf("unexpected WDL010 after matching grant: %v", d)
		}
	}

	// A wildcard body grant covers any head reader.
	g2 := acl.NewGrants("alice")
	g2.Grant("leak", "bob", acl.ReadPriv)
	g2.Grant("secret", "*", acl.ReadPriv)
	for _, d := range mustCheck(t, src, analysis.Options{Grants: map[string]analysis.GrantSource{"alice": g2}}) {
		if d.Code == analysis.CodeACLWiden {
			t.Errorf("unexpected WDL010 with wildcard body grant: %v", d)
		}
	}

	// A wildcard head grant over a narrow body is the widest leak.
	g3 := acl.NewGrants("alice")
	g3.Grant("leak", "*", acl.ReadPriv)
	d = findCode(t, mustCheck(t, src, analysis.Options{Grants: map[string]analysis.GrantSource{"alice": g3}}), analysis.CodeACLWiden)
	if !strings.Contains(d.Message, `everyone ("*")`) {
		t.Errorf("wildcard head message = %q", d.Message)
	}

	// Without grant tables the check stays silent (unknown, not empty).
	for _, d := range mustCheck(t, src, analysis.Options{}) {
		if d.Code == analysis.CodeACLWiden {
			t.Errorf("unexpected WDL010 without grants: %v", d)
		}
	}
}

func TestHasErrors(t *testing.T) {
	if analysis.HasErrors(nil) {
		t.Error("HasErrors(nil) = true")
	}
	warn := []analysis.Diagnostic{{Severity: analysis.Warning}}
	if analysis.HasErrors(warn) {
		t.Error("HasErrors(warnings) = true")
	}
	if !analysis.HasErrors(append(warn, analysis.Diagnostic{Severity: analysis.Error})) {
		t.Error("HasErrors(error) = false")
	}
	if analysis.Warning.String() != "warning" || analysis.Error.String() != "error" {
		t.Errorf("severity strings: %q %q", analysis.Warning, analysis.Error)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := analysis.Diagnostic{
		Pos: ast.Pos{Line: 3, Col: 7}, Severity: analysis.Error,
		Code: analysis.CodeArityMismatch, Message: "boom",
	}
	if got, want := d.String(), "3:7: error: [WDL003] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestExamplesClean pins the acceptance criterion that the shipped example
// programs are warning-free.
func TestExamplesClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.wdl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range mustCheck(t, string(src), analysis.Options{}) {
			t.Errorf("%s: %s", filepath.Base(f), d)
		}
	}
}

func TestBuiltins(t *testing.T) {
	if n, ok := analysis.BuiltinArity("lt"); !ok || n != 2 {
		t.Errorf("BuiltinArity(lt) = %d, %v", n, ok)
	}
	if _, ok := analysis.BuiltinArity("nope"); ok {
		t.Error("BuiltinArity(nope) reported known")
	}
	m := analysis.Builtins()
	m["lt"] = 99 // the returned table is a copy
	if n, _ := analysis.BuiltinArity("lt"); n != 2 {
		t.Error("Builtins() aliases the canonical table")
	}
}
