package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// Stratification of a peer's local program under the classic stratified
// semantics. Nodes of the dependency graph are the peer's local intensional
// relations (extensional relations are frozen during a stage, so they impose
// no ordering). Because WebdamLog allows variables in relation and peer
// position, the analysis is necessarily conservative:
//
//   - a head with a variable relation or peer may derive into any local
//     intensional relation ("wildcard head");
//   - a body atom with a variable relation or peer may read any local
//     intensional relation ("wildcard dependency").
//
// A program is rejected only if these conservative dependencies contain a
// cycle through negation. This is the single implementation; the engine's
// stratify calls it with the live store's intensional relations as idb.

// Stratification is the result of a successful Stratify.
type Stratification struct {
	// RelStrata assigns each intensional relation its stratum.
	RelStrata map[string]int
	// RuleStrata assigns each input rule (by index) its stratum: no earlier
	// than all its positive dependencies, strictly after its negated ones,
	// and at least its head's stratum.
	RuleStrata []int
	// MaxStratum is the highest stratum used by any relation or rule.
	MaxStratum int
}

// CycleViolation reports a negation cycle found by Stratify.
type CycleViolation struct {
	Rel  string // a relation on the cycle
	Peer string // the local peer
	Pos  ast.Pos
}

// Detail renders the engine's historical error text for the cycle.
func (v *CycleViolation) Detail() string {
	return fmt.Sprintf("relation %s@%s participates in a cycle through negation", v.Rel, v.Peer)
}

// headTargets returns the local intensional relations the rule's head might
// derive into: nil for "none" and the full set for a wildcard head.
func headTargets(r ast.Rule, idb map[string]bool, local string, all []string) []string {
	h := r.Head
	if !h.Peer.IsVar() && h.Peer.Val.StringVal() != local {
		return nil // remote head: a message, not a local derivation
	}
	// Peer is local or a variable (conservatively possibly local).
	if !h.Rel.IsVar() {
		name := h.Rel.Val.StringVal()
		if idb[name] {
			return []string{name}
		}
		return nil // extensional or undeclared head: an update, not a view
	}
	return all // wildcard head
}

// bodyDep is one body atom's possible reads of local intensional relations.
type bodyDep struct {
	rels []string
	neg  bool
	pos  ast.Pos
}

func bodyDeps(r ast.Rule, idb map[string]bool, local string, all []string) []bodyDep {
	var out []bodyDep
	for _, a := range r.Body {
		if !a.Peer.IsVar() && a.Peer.Val.StringVal() != local {
			continue // definitely remote: evaluated by delegation at the remote peer
		}
		if !a.Rel.IsVar() {
			name := a.Rel.Val.StringVal()
			if idb[name] {
				out = append(out, bodyDep{rels: []string{name}, neg: a.Neg, pos: a.Pos})
			}
			continue
		}
		if len(all) > 0 {
			out = append(out, bodyDep{rels: all, neg: a.Neg, pos: a.Pos})
		}
	}
	return out
}

// Stratify assigns a stratum to every relation in idb and every rule, for
// the program running at peer local whose intensional relations are idb.
// Rules with no local intensional head (pure update / message / delegation
// rules) are placed after every stratum they depend on. A negation cycle
// returns a nil Stratification and a non-nil violation.
func Stratify(local string, idb map[string]bool, rules []ast.Rule) (*Stratification, *CycleViolation) {
	all := make([]string, 0, len(idb))
	for name := range idb {
		all = append(all, name)
	}
	sort.Strings(all)

	strata := make(map[string]int, len(idb))
	for name := range idb {
		strata[name] = 0
	}
	// Iterate the usual inequalities to a fixpoint; a stratum exceeding the
	// node count certifies a negation cycle.
	limit := len(idb) + 1
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			heads := headTargets(r, idb, local, all)
			if len(heads) == 0 {
				continue
			}
			deps := bodyDeps(r, idb, local, all)
			for _, h := range heads {
				for _, d := range deps {
					for _, b := range d.rels {
						need := strata[b]
						if d.neg {
							need++
						}
						if strata[h] < need {
							strata[h] = need
							changed = true
							if strata[h] > limit {
								return nil, &CycleViolation{Rel: h, Peer: local, Pos: at(d.pos, r.Pos)}
							}
						}
					}
				}
			}
		}
	}

	out := &Stratification{RelStrata: strata, RuleStrata: make([]int, len(rules))}
	for _, s := range strata {
		if s > out.MaxStratum {
			out.MaxStratum = s
		}
	}
	// Place each rule: it must run no earlier than all its positive
	// dependencies and strictly after its negated dependencies; deductive
	// rules additionally run in their head's stratum.
	for i, r := range rules {
		s := 0
		for _, d := range bodyDeps(r, idb, local, all) {
			for _, b := range d.rels {
				need := strata[b]
				if d.neg {
					need++
				}
				if s < need {
					s = need
				}
			}
		}
		for _, h := range headTargets(r, idb, local, all) {
			if s < strata[h] {
				s = strata[h]
			}
		}
		if s > out.MaxStratum {
			out.MaxStratum = s
		}
		out.RuleStrata[i] = s
	}
	return out, nil
}
