// Package analysis is the static-analysis layer for WebdamLog programs: a
// position-aware diagnostics engine over the parsed AST, shared between the
// `wdl check` subcommand, daemon config loading, and the engine's own
// compile-time checks.
//
// The engine's safety and stratification validation lives here as reusable,
// non-fatal analyses (RuleSafety, Stratify); internal/engine calls them from
// CompileRule/CompileProgram, so compiled behavior is unchanged while tools
// get the same verdicts with source positions attached.
//
// Check runs the whole catalog over a parsed program and returns diagnostics
// with stable WDLxxx codes. Every code is documented, with a minimal
// triggering program, in docs/diagnostics.md; a sync gate
// (TestDiagnosticCodesDocumented) fails the build if the catalog and the doc
// drift.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// Severity classifies a diagnostic. Errors mean the program cannot compile
// or run as written (the engine would reject it, or a statement would fail
// at load); warnings flag suspicious constructs that still run.
type Severity uint8

// The two severities.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes. Stable: codes are never renumbered or reused, only
// retired. Each has a catalog entry in docs/diagnostics.md.
const (
	// CodeUnsafeRule (error): a rule violates the paper's safety
	// conditions; the message is the engine's own safety verdict.
	CodeUnsafeRule = "WDL001"
	// CodeNotStratifiable (error): a peer's rules contain a cycle through
	// negation.
	CodeNotStratifiable = "WDL002"
	// CodeArityMismatch (error): an atom or fact's argument count differs
	// from the relation's declared columns (or a builtin's fixed arity).
	CodeArityMismatch = "WDL003"
	// CodeSchemaConflict (error): a relation is redeclared with a different
	// kind or arity.
	CodeSchemaConflict = "WDL004"
	// CodeNoPeerContext (error): a rule with a variable head peer appears
	// outside any `peer` block, so there is no peer to run it at.
	CodeNoPeerContext = "WDL005"
	// CodeUndeclaredRelation (warning): an atom or fact references a
	// relation with no `relation` declaration; it will be auto-declared
	// with a generic schema at runtime, hiding typos from the schema gate.
	CodeUndeclaredRelation = "WDL006"
	// CodeNeverDerivable (warning): a positive body atom reads a relation
	// that no fact, declaration, or rule head in the program can ever
	// feed — the body can never match.
	CodeNeverDerivable = "WDL007"
	// CodeUnusedRelation (warning): a declared relation is never read or
	// written by any fact or rule in the program.
	CodeUnusedRelation = "WDL008"
	// CodeUndeclaredPeer (warning): an atom names a constant peer that the
	// program never declares and never gives a relation or fact — a
	// delegation or update aimed at a peer nothing binds.
	CodeUndeclaredPeer = "WDL009"
	// CodeACLWiden (warning): a derived relation's read grants are wider
	// than those of a relation in its defining rule's body — the view
	// leaks data to peers that cannot read its sources.
	CodeACLWiden = "WDL010"
)

// Diagnostic is one finding: a position, a severity, a stable code and a
// human-readable message. Peer names the executing peer the finding
// concerns, when one is attributable.
type Diagnostic struct {
	Pos      ast.Pos
	Severity Severity
	Code     string
	Peer     string
	Message  string
}

// String renders "line:col: severity: [code] message" (the `wdl check`
// output format, minus the file prefix).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", d.Pos, d.Severity, d.Code, d.Message)
}

// GrantSource is the slice of internal/acl the ACL-leak check needs: the
// peers holding read privilege on a relation. *acl.Grants implements it.
type GrantSource interface {
	// Readers returns the grantees holding read privilege on rel, sorted;
	// "*" means everyone. The owner is implicit and not listed.
	Readers(rel string) []string
}

// Options configures Check.
type Options struct {
	// Grants supplies each peer's discretionary grant table, keyed by owner
	// peer name, enabling the WDL010 ACL-leak check. Peers with no entry
	// are skipped (their grants are unknown, not empty).
	Grants map[string]GrantSource
	// DefaultPeer, when non-empty, is the peer context in force at the top
	// of the program, as if it opened with `peer <DefaultPeer>;`. Peer
	// runtimes that load a whole program into one peer (peer.LoadProgram,
	// the daemon) set this to the hosting peer, which also disables WDL005
	// for rules above the first explicit `peer` declaration.
	DefaultPeer string
}

// Check runs every analysis over a parsed program and returns the findings
// sorted by position (then code). It never fails: an unparseable program
// cannot reach Check, and every verdict on a parsed one is a Diagnostic.
func Check(prog *ast.Program, opts Options) []Diagnostic {
	c := &checker{prog: prog, opts: opts}
	c.attribute()
	c.indexDeclarations()
	c.checkSafety()
	c.checkStratification()
	c.checkArityAndDeclarations()
	c.checkFeeds()
	c.checkPeers()
	c.checkACL()
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return c.diags
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
