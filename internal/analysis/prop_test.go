package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
)

// propCorpus gathers the example programs plus the per-code fixtures used
// throughout this package's tests.
func propCorpus(t testing.TB) []string {
	corpus := []string{
		`peer p;
relation extensional e@p(x);
relation intensional v@p(x, y);
v@p($x, $y) :- e@p($x);
`,
		`peer p;
relation extensional e@p(x);
relation intensional v@p(x);
v@p($x) :- e@p($x), not v@p($x);
`,
		`peer p;
relation extensional e@p(x, y);
e@p(1);
v@p($x) :- e@p($x, $y), lt@builtin($x, 3);
`,
		`v@$x($a) :- e@q($a, $x);
`,
		`peer p;
relation extensional unused@p(x);
relation intensional v@p(x);
v@p($x) :- ghost@stranger($x);
`,
	}
	files, _ := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.wdl"))
	for _, f := range files {
		if src, err := os.ReadFile(f); err == nil {
			corpus = append(corpus, string(src))
		}
	}
	if len(corpus) < 6 {
		t.Fatal("example programs missing from corpus")
	}
	return corpus
}

// TestDiagnosticsRenderStable is the position-threading property: once a
// program has been rendered to canonical layout, further parse→render
// round-trips must preserve every diagnostic — including its position.
// (The first render canonicalizes layout, so positions may legitimately
// differ between the original source and round one; from then on they are
// pinned.)
func TestDiagnosticsRenderStable(t *testing.T) {
	for i, src := range propCorpus(t) {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("corpus %d does not parse: %v", i, err)
		}
		render1 := prog.String()
		prog1, err := parser.Parse(render1)
		if err != nil {
			t.Fatalf("corpus %d render does not re-parse: %v", i, err)
		}
		d1 := analysis.Check(prog1, analysis.Options{})

		render2 := prog1.String()
		if render2 != render1 {
			t.Fatalf("corpus %d: render is not a fixpoint:\nfirst:  %q\nsecond: %q", i, render1, render2)
		}
		prog2, err := parser.Parse(render2)
		if err != nil {
			t.Fatalf("corpus %d second render does not re-parse: %v", i, err)
		}
		d2 := analysis.Check(prog2, analysis.Options{})

		if !reflect.DeepEqual(d1, d2) {
			t.Errorf("corpus %d: diagnostics drifted across render round-trip:\nfirst:  %v\nsecond: %v", i, d1, d2)
		}
	}
}
