package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// checker carries the state of one Check run.
type checker struct {
	prog  *ast.Program
	opts  Options
	diags []Diagnostic

	// rules, after attribution: the executing peer of rules[i] is
	// rulePeers[i] ("" when WDL005 made attribution impossible).
	rules     []ast.Rule
	rulePeers []string

	// decls indexes the first declaration of each relation by "rel@peer".
	decls map[string]ast.RelationDecl
}

func (c *checker) report(pos ast.Pos, sev Severity, code, peer, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos: pos, Severity: sev, Code: code, Peer: peer,
		Message: fmt.Sprintf(format, args...),
	})
}

func relKey(rel, peer string) string { return rel + "@" + peer }

// constName returns the string value of a constant relation/peer term and
// whether the term is constant.
func constName(t ast.Term) (string, bool) {
	if t.IsVar() {
		return "", false
	}
	return t.Val.StringVal(), true
}

// Attribute returns the program's rules together with the peer each runs
// at, following core.LoadProgram's scoping: statements are processed in
// order, a `peer` declaration sets the current context (defaultPeer is the
// context in force at the top of the program), and a rule runs at the
// current peer — or, with no context, at its constant head peer. A rule
// with a variable head peer and no context gets peer "" (see WDL005).
func Attribute(prog *ast.Program, defaultPeer string) (rules []ast.Rule, peers []string) {
	current := defaultPeer
	for _, stmt := range prog.Statements {
		switch st := stmt.(type) {
		case ast.PeerDecl:
			current = st.Name
		case ast.Rule:
			peer := current
			if peer == "" && !st.Head.Peer.IsVar() {
				peer = st.Head.Peer.Val.StringVal()
			}
			rules = append(rules, st)
			peers = append(peers, peer)
		}
	}
	return rules, peers
}

// attribute places every rule at its executing peer and emits WDL005 for
// the unplaceable ones.
func (c *checker) attribute() {
	c.rules, c.rulePeers = Attribute(c.prog, c.opts.DefaultPeer)
	for i, r := range c.rules {
		if c.rulePeers[i] == "" {
			c.report(at(r.Head.Peer.Pos, r.Pos), Error, CodeNoPeerContext, "",
				"rule %q needs a `peer` declaration to know where it runs", r.String())
		}
	}
}

func (c *checker) indexDeclarations() {
	c.decls = make(map[string]ast.RelationDecl, len(c.prog.Relations))
	for _, d := range c.prog.Relations {
		key := relKey(d.Name, d.Peer)
		first, seen := c.decls[key]
		if !seen {
			c.decls[key] = d
			continue
		}
		if first.Kind != d.Kind || len(first.Cols) != len(d.Cols) {
			c.report(d.Pos, Error, CodeSchemaConflict, d.Peer,
				"relation %s@%s redeclared as %s with %d columns; first declared as %s with %d columns",
				d.Name, d.Peer, d.Kind, len(d.Cols), first.Kind, len(first.Cols))
		}
	}
}

// checkSafety emits WDL001 with the engine's exact safety verdict.
func (c *checker) checkSafety() {
	for i, r := range c.rules {
		if v := RuleSafety(r); v != nil {
			c.report(at(v.Pos, r.Pos), Error, CodeUnsafeRule, c.rulePeers[i],
				"unsafe rule %q: %s", r.String(), v.Msg)
		}
	}
}

// checkStratification runs the shared stratification per executing peer,
// over the peer's declared intensional relations, and emits WDL002 with the
// engine's exact verdict for a negation cycle.
func (c *checker) checkStratification() {
	byPeer := map[string][]ast.Rule{}
	for i, r := range c.rules {
		if p := c.rulePeers[i]; p != "" {
			byPeer[p] = append(byPeer[p], r)
		}
	}
	peers := make([]string, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		// First-wins declarations, matching what a store built from this
		// program would hold (redeclarations are WDL004's business).
		idb := map[string]bool{}
		for _, d := range c.decls {
			if d.Peer == p && d.Kind == ast.Intensional {
				idb[d.Name] = true
			}
		}
		if _, v := Stratify(p, idb, byPeer[p]); v != nil {
			c.report(v.Pos, Error, CodeNotStratifiable, p,
				"program is not stratifiable: %s", v.Detail())
		}
	}
}

// atomSite is one concrete relation reference (fact, head or body atom).
type atomSite struct {
	rel, peer string
	arity     int
	pos       ast.Pos
	owner     string // executing peer context, for Diagnostic.Peer
}

// sites lists every reference with constant relation and peer names.
func (c *checker) sites() []atomSite {
	var out []atomSite
	add := func(a ast.Atom, owner string) {
		rel, okR := constName(a.Rel)
		peer, okP := constName(a.Peer)
		if okR && okP {
			out = append(out, atomSite{rel: rel, peer: peer, arity: len(a.Args), pos: at(a.Pos), owner: owner})
		}
	}
	for _, f := range c.prog.Facts {
		out = append(out, atomSite{rel: f.Rel, peer: f.Peer, arity: len(f.Args), pos: f.Pos, owner: f.Peer})
	}
	for i, r := range c.rules {
		add(r.Head, c.rulePeers[i])
		for _, a := range r.Body {
			add(a, c.rulePeers[i])
		}
	}
	return out
}

// checkArityAndDeclarations emits WDL003 (arity vs declaration or builtin)
// and WDL006 (reference to an undeclared relation; first occurrence only,
// suppressed when WDL007 already flags the relation as never derivable).
func (c *checker) checkArityAndDeclarations() {
	neverDerivable := c.neverDerivableRels()
	flagged := map[string]bool{}
	for _, s := range c.sites() {
		key := relKey(s.rel, s.peer)
		if s.peer == BuiltinPeer {
			if want, known := BuiltinArity(s.rel); known && s.arity != want {
				c.report(s.pos, Error, CodeArityMismatch, s.owner,
					"builtin predicate %q expects %d arguments, got %d", s.rel, want, s.arity)
			}
			// Unknown builtin predicates are already safety errors (WDL001).
			continue
		}
		d, declared := c.decls[key]
		if declared {
			if s.arity != len(d.Cols) {
				c.report(s.pos, Error, CodeArityMismatch, s.owner,
					"%s@%s has %d arguments but is declared with %d columns", s.rel, s.peer, s.arity, len(d.Cols))
			}
			continue
		}
		if flagged[key] || neverDerivable[key] {
			continue
		}
		flagged[key] = true
		c.report(s.pos, Warning, CodeUndeclaredRelation, s.owner,
			"relation %s@%s is never declared; it will be auto-declared with a generic schema", s.rel, s.peer)
	}
}

// feeds returns what the program can ever write: every relation named by a
// fact or declaration, every constant rule head, plus wildcard feeds from
// variable head terms. relWild[rel] means some head derives rel at an
// unknown peer; peerWild[peer] means some head derives an unknown relation
// at peer; anyWild means a head with both terms variable.
type feedSet struct {
	exact    map[string]bool
	relWild  map[string]bool
	peerWild map[string]bool
	anyWild  bool
}

func (f *feedSet) fed(rel, peer string) bool {
	return f.anyWild || f.exact[relKey(rel, peer)] || f.relWild[rel] || f.peerWild[peer]
}

func (c *checker) feeds() *feedSet {
	f := &feedSet{exact: map[string]bool{}, relWild: map[string]bool{}, peerWild: map[string]bool{}}
	for _, fact := range c.prog.Facts {
		f.exact[relKey(fact.Rel, fact.Peer)] = true
	}
	for _, d := range c.prog.Relations {
		f.exact[relKey(d.Name, d.Peer)] = true
	}
	for _, r := range c.rules {
		rel, okR := constName(r.Head.Rel)
		peer, okP := constName(r.Head.Peer)
		switch {
		case okR && okP:
			f.exact[relKey(rel, peer)] = true
		case okR:
			f.relWild[rel] = true
		case okP:
			f.peerWild[peer] = true
		default:
			f.anyWild = true
		}
	}
	return f
}

// neverDerivableRels is the WDL007 relation set: positive non-builtin body
// atoms whose relation nothing in the program can feed.
func (c *checker) neverDerivableRels() map[string]bool {
	f := c.feeds()
	out := map[string]bool{}
	for _, r := range c.rules {
		for _, a := range r.Body {
			if a.Neg {
				continue
			}
			rel, okR := constName(a.Rel)
			peer, okP := constName(a.Peer)
			if !okR || !okP || peer == BuiltinPeer {
				continue
			}
			if !f.fed(rel, peer) {
				out[relKey(rel, peer)] = true
			}
		}
	}
	return out
}

// checkFeeds emits WDL007 (never-derivable body atom, one per relation) and
// WDL008 (declared relation never used by any fact or rule).
func (c *checker) checkFeeds() {
	f := c.feeds()
	flagged := map[string]bool{}
	for _, r := range c.rules {
		for _, a := range r.Body {
			if a.Neg {
				continue
			}
			rel, okR := constName(a.Rel)
			peer, okP := constName(a.Peer)
			if !okR || !okP || peer == BuiltinPeer {
				continue
			}
			key := relKey(rel, peer)
			if f.fed(rel, peer) || flagged[key] {
				continue
			}
			flagged[key] = true
			c.report(at(a.Pos, r.Pos), Warning, CodeNeverDerivable, peer,
				"nothing can derive %s@%s: no fact, declaration, or rule head feeds it", rel, peer)
		}
	}

	// WDL008: collect every relation any fact or rule touches; variable
	// terms make the reference conservative (a variable relation may read
	// or write anything, a variable peer matches the name at any peer).
	used := map[string]bool{}
	usedRelAnywhere := map[string]bool{}
	anyRelVar := false
	touch := func(a ast.Atom) {
		rel, okR := constName(a.Rel)
		peer, okP := constName(a.Peer)
		switch {
		case okR && okP:
			used[relKey(rel, peer)] = true
		case okR:
			usedRelAnywhere[rel] = true
		default:
			anyRelVar = true
		}
	}
	for _, fact := range c.prog.Facts {
		used[relKey(fact.Rel, fact.Peer)] = true
	}
	for _, r := range c.rules {
		touch(r.Head)
		for _, a := range r.Body {
			touch(a)
		}
	}
	if anyRelVar {
		return // a wildcard reference may use any declared relation
	}
	for _, d := range c.prog.Relations {
		if used[relKey(d.Name, d.Peer)] || usedRelAnywhere[d.Name] {
			continue
		}
		if first := c.decls[relKey(d.Name, d.Peer)]; first.Pos != d.Pos {
			continue // only report the first declaration once
		}
		c.report(d.Pos, Warning, CodeUnusedRelation, d.Peer,
			"relation %s@%s is declared but never used", d.Name, d.Peer)
	}
}

// checkPeers emits WDL009: a rule atom naming a constant peer that nothing
// else in the program establishes — no `peer` declaration, no relation
// declared at it, no fact stored at it. Such a delegation or update targets
// a peer the deployment has no way to know about.
func (c *checker) checkPeers() {
	known := map[string]bool{BuiltinPeer: true}
	for _, d := range c.prog.Peers {
		known[d.Name] = true
	}
	for _, d := range c.prog.Relations {
		known[d.Peer] = true
	}
	for _, f := range c.prog.Facts {
		known[f.Peer] = true
	}
	flagged := map[string]bool{}
	check := func(a ast.Atom, owner string) {
		peer, ok := constName(a.Peer)
		if !ok || known[peer] || flagged[peer] {
			return
		}
		flagged[peer] = true
		c.report(at(a.Peer.Pos, a.Pos), Warning, CodeUndeclaredPeer, owner,
			"atom targets peer %q, which is never declared and holds no relation or fact", peer)
	}
	for i, r := range c.rules {
		check(r.Head, c.rulePeers[i])
		for _, a := range r.Body {
			check(a, c.rulePeers[i])
		}
	}
}

// checkACL emits WDL010: a rule derives into an intensional relation whose
// read grants are wider than a body relation's — the view shows data to
// peers that cannot read its sources. Peers without a grant table in
// Options.Grants are skipped (unknown, not empty).
func (c *checker) checkACL() {
	if len(c.opts.Grants) == 0 {
		return
	}
	readable := func(readers []string, peer string) bool {
		for _, r := range readers {
			if r == "*" || r == peer {
				return true
			}
		}
		return false
	}
	for _, r := range c.rules {
		headRel, okR := constName(r.Head.Rel)
		headPeer, okP := constName(r.Head.Peer)
		if !okR || !okP {
			continue
		}
		d, declared := c.decls[relKey(headRel, headPeer)]
		if !declared || d.Kind != ast.Intensional {
			continue
		}
		headGrants := c.opts.Grants[headPeer]
		if headGrants == nil {
			continue
		}
		headReaders := headGrants.Readers(headRel)
		if len(headReaders) == 0 {
			continue
		}
		for _, a := range r.Body {
			rel, okR := constName(a.Rel)
			peer, okP := constName(a.Peer)
			if !okR || !okP || peer == BuiltinPeer {
				continue
			}
			bodyGrants := c.opts.Grants[peer]
			if bodyGrants == nil {
				continue
			}
			bodyReaders := bodyGrants.Readers(rel)
			for _, g := range headReaders {
				if g == peer || readable(bodyReaders, g) {
					continue
				}
				who := fmt.Sprintf("peer %q", g)
				if g == "*" {
					who = `everyone ("*")`
				}
				c.report(at(r.Head.Pos, r.Pos), Warning, CodeACLWiden, headPeer,
					"derived relation %s@%s is readable by %s, which cannot read body relation %s@%s",
					headRel, headPeer, who, rel, peer)
				break // one diagnostic per body atom is enough
			}
		}
	}
}
