package analysis

import (
	"fmt"

	"repro/internal/ast"
)

// SafetyViolation is one failed safety condition. Msg is exactly the text
// the engine's SafetyError has always carried; Pos points at the offending
// term or atom when the rule was parsed from source (zero otherwise).
type SafetyViolation struct {
	Msg string
	Pos ast.Pos
}

// at picks the most precise valid position from the candidates, first wins.
func at(candidates ...ast.Pos) ast.Pos {
	for _, p := range candidates {
		if p.IsValid() {
			return p
		}
	}
	return ast.Pos{}
}

// RuleSafety validates the paper's safety conditions for a rule:
//
//   - every variable in relation or peer position must be a constant or
//     bound by an earlier (left-to-right) positive atom;
//   - every variable of a negated or builtin atom must be bound by an
//     earlier positive atom;
//   - every head variable must be bound by some positive body atom;
//   - the head must be positive and must not target the builtin peer.
//
// It returns nil for a safe rule. This is the single implementation of the
// check: engine.CheckSafety wraps its verdict in a SafetyError.
func RuleSafety(r ast.Rule) *SafetyViolation {
	bound := map[string]bool{}
	for i, a := range r.Body {
		if a.Rel.IsVar() && !bound[a.Rel.Var] {
			return &SafetyViolation{Pos: at(a.Rel.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
				"relation variable $%s of body atom %d is not bound by an earlier positive atom", a.Rel.Var, i+1)}
		}
		if a.Peer.IsVar() && !bound[a.Peer.Var] {
			return &SafetyViolation{Pos: at(a.Peer.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
				"peer variable $%s of body atom %d is not bound by an earlier positive atom", a.Peer.Var, i+1)}
		}
		if !a.Peer.IsVar() && a.Peer.Val.StringVal() == BuiltinPeer {
			// Built-in predicates test bindings; they bind nothing, so all
			// their variables must already be bound.
			if a.Rel.IsVar() {
				return &SafetyViolation{Pos: at(a.Rel.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
					"body atom %d: builtin predicates cannot have a variable name", i+1)}
			}
			if _, known := BuiltinArity(a.Rel.Val.StringVal()); !known {
				return &SafetyViolation{Pos: at(a.Rel.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
					"body atom %d: unknown builtin predicate %q", i+1, a.Rel.Val.StringVal())}
			}
			for _, t := range a.Args {
				if t.IsVar() && !bound[t.Var] {
					return &SafetyViolation{Pos: at(t.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
						"variable $%s of builtin atom %d is not bound by an earlier positive atom", t.Var, i+1)}
				}
			}
			continue
		}
		if a.Neg {
			for _, t := range a.Args {
				if t.IsVar() && !bound[t.Var] {
					return &SafetyViolation{Pos: at(t.Pos, a.Pos, r.Pos), Msg: fmt.Sprintf(
						"variable $%s of negated atom %d is not bound by an earlier positive atom", t.Var, i+1)}
				}
			}
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	h := r.Head
	if h.Rel.IsVar() && !bound[h.Rel.Var] {
		return &SafetyViolation{Pos: at(h.Rel.Pos, h.Pos, r.Pos),
			Msg: fmt.Sprintf("head relation variable $%s is not bound", h.Rel.Var)}
	}
	if h.Peer.IsVar() && !bound[h.Peer.Var] {
		return &SafetyViolation{Pos: at(h.Peer.Pos, h.Pos, r.Pos),
			Msg: fmt.Sprintf("head peer variable $%s is not bound", h.Peer.Var)}
	}
	for _, t := range h.Args {
		if t.IsVar() && !bound[t.Var] {
			return &SafetyViolation{Pos: at(t.Pos, h.Pos, r.Pos),
				Msg: fmt.Sprintf("head variable $%s is not bound", t.Var)}
		}
	}
	if h.Neg {
		return &SafetyViolation{Pos: at(h.Pos, r.Pos), Msg: "head cannot be negated"}
	}
	if !h.Peer.IsVar() && h.Peer.Val.StringVal() == BuiltinPeer {
		return &SafetyViolation{Pos: at(h.Peer.Pos, h.Pos, r.Pos), Msg: "head cannot target the builtin peer"}
	}
	return nil
}
