package analysis_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/store"
)

// FuzzCheck throws arbitrary source at the static analyzer. The invariants:
//
//   - Check never panics on anything the parser accepts;
//   - per executing peer, the analyzer and the compiler agree both ways:
//     WDL001 is reported iff CompileProgram returns a SafetyError, and
//     (absent safety errors, which short-circuit stratification in the
//     engine) WDL002 is reported iff it returns ErrNotStratifiable.
//
// The engine's store is built the way a runtime would build it from the same
// program: every declaration applied in order, first one wins.
func FuzzCheck(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.wdl"))
	for _, p := range seeds {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Add(`peer p; relation extensional e@p(a, b); e@p(1, 2);`)
	f.Add(`peer p; relation intensional v@p(x); v@p($x) :- e@p($x), not v@p($x);`)
	f.Add(`v@p($x, $y) :- e@p($x);`)
	f.Add(`r@q($x) :- e@p($x, $y), not f@p($y), le@builtin($x, 3);`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		diags := analysis.Check(prog, analysis.Options{}) // must not panic

		hasCode := func(peer, code string) bool {
			for _, d := range diags {
				if d.Code == code && d.Peer == peer {
					return true
				}
			}
			return false
		}

		rules, rulePeers := analysis.Attribute(prog, "")
		byPeer := map[string][]ast.Rule{}
		for i, r := range rules {
			if p := rulePeers[i]; p != "" {
				byPeer[p] = append(byPeer[p], r)
			}
		}
		peers := make([]string, 0, len(byPeer))
		for p := range byPeer {
			peers = append(peers, p)
		}
		sort.Strings(peers)

		for _, p := range peers {
			db := store.New()
			for _, d := range prog.Relations {
				// First declaration wins; conflicts are WDL004's business.
				db.Declare(store.Schema{Name: d.Name, Peer: d.Peer, Kind: d.Kind, Cols: d.Cols})
			}
			e := engine.New(p, db, engine.DefaultOptions())
			_, err := e.CompileProgram(byPeer[p])

			var se *engine.SafetyError
			gotSafety := errors.As(err, &se)
			if want := hasCode(p, analysis.CodeUnsafeRule); gotSafety != want {
				t.Fatalf("peer %s: analyzer WDL001=%v but compiler SafetyError=%v (err=%v)\nsource: %q", p, want, gotSafety, err, src)
			}
			if gotSafety {
				continue // the engine skips stratification on safety errors
			}
			var ns *engine.ErrNotStratifiable
			gotStrat := errors.As(err, &ns)
			if want := hasCode(p, analysis.CodeNotStratifiable); gotStrat != want {
				t.Fatalf("peer %s: analyzer WDL002=%v but compiler ErrNotStratifiable=%v (err=%v)\nsource: %q", p, want, gotStrat, err, src)
			}
		}
	})
}
