// Package daemon hosts WebdamLog peers as a long-lived service: many peers
// in one process, each listening on its own TCP address (the paper's
// deployment shape — laptops plus the Webdam cloud — collapsed onto one
// box when convenient), plus an HTTP admin surface for health, Prometheus
// metrics, live peer/relation inspection, and remote updates.
//
// The daemon is the library behind cmd/wdld; tests drive it in-process.
// Lifecycle: New validates the config, Start binds every listener and
// launches the peer loops, Drain stops admitting writes and waits for the
// outboxes to empty, Close tears everything down. See docs/operations.md.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/acl"
	"repro/internal/analysis"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/peer"
	"repro/internal/store"
	"repro/internal/transport"
)

// ProgramDiagnostics is the structured startup error for a peer whose
// configured program fails static analysis: the daemon refuses to come up
// and reports every error-severity finding with its position, instead of
// surfacing whichever one the load path happens to hit first at runtime.
type ProgramDiagnostics struct {
	Peer  string
	File  string // the program file, or "<config>" for inline programs
	Diags []analysis.Diagnostic
}

// Error implements the error interface, one finding per line.
func (e *ProgramDiagnostics) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "daemon: peer %s: program fails static analysis (%d error(s))", e.Peer, len(e.Diags))
	for _, d := range e.Diags {
		fmt.Fprintf(&sb, "\n  %s:%s", e.File, d.String())
	}
	return sb.String()
}

// checkProgram parses and statically checks a peer's startup program.
// Warnings are tolerated; error-severity diagnostics abort startup. A
// program that does not even parse is left to the peer's own load path,
// which reports the parse error with its position.
func checkProgram(pc *PeerConfig, src string) error {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil
	}
	var errs []analysis.Diagnostic
	for _, d := range analysis.Check(prog, analysis.Options{DefaultPeer: pc.Name}) {
		if d.Severity == analysis.Error {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	file := "<config>"
	if pc.Program == "" && pc.ProgramFile != "" {
		file = pc.ProgramFile
	}
	return &ProgramDiagnostics{Peer: pc.Name, File: file, Diags: errs}
}

// PeerConfig describes one hosted peer.
type PeerConfig struct {
	// Name is the peer's WebdamLog principal (required, unique).
	Name string `json:"name"`
	// Listen is the peer's TCP address; default "127.0.0.1:0" (an
	// ephemeral port, advertised to the sibling peers automatically).
	Listen string `json:"listen,omitempty"`
	// Program is an inline WebdamLog program loaded at startup.
	Program string `json:"program,omitempty"`
	// ProgramFile is a path to a program file loaded at startup (after
	// Program, if both are set).
	ProgramFile string `json:"program_file,omitempty"`
	// WAL is a directory for durable state; empty means in-memory only.
	WAL string `json:"wal,omitempty"`
	// Trust lists peers whose delegations are auto-accepted.
	Trust []string `json:"trust,omitempty"`
}

// Config is the daemon's JSON-file configuration.
type Config struct {
	// Admin is the HTTP admin listen address; default "127.0.0.1:0".
	Admin string `json:"admin,omitempty"`
	// Peers are the hosted peers (at least one).
	Peers []PeerConfig `json:"peers"`
	// Remotes maps peer names hosted elsewhere to their dial addresses.
	Remotes map[string]string `json:"remotes,omitempty"`
	// OutboxLimit bounds each hosted peer's per-destination outbox queue;
	// 0 leaves queues unbounded (see peer.Config.OutboxLimit).
	OutboxLimit int `json:"outbox_limit,omitempty"`
	// MaxPendingOps bounds each hosted peer's staged-local-update queue.
	MaxPendingOps int `json:"max_pending_ops,omitempty"`
	// Admission is "block" (default) or "fail-fast" — what a full queue
	// does to an apply (see peer.AdmissionPolicy).
	Admission string `json:"admission,omitempty"`
	// ShedAfter arms slow-peer shedding, as a Go duration string ("30s"):
	// a destination making no ack progress for this long has its stream
	// reset and its backlog dropped, leaving repair to anti-entropy.
	ShedAfter string `json:"shed_after,omitempty"`
}

// admission parses Config.Admission.
func (c *Config) admission() (peer.AdmissionPolicy, error) {
	switch c.Admission {
	case "", "block":
		return peer.AdmitBlock, nil
	case "fail-fast":
		return peer.AdmitFailFast, nil
	}
	return 0, fmt.Errorf("daemon: admission %q (want \"block\" or \"fail-fast\")", c.Admission)
}

// shedAfter parses Config.ShedAfter.
func (c *Config) shedAfter() (time.Duration, error) {
	if c.ShedAfter == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(c.ShedAfter)
	if err != nil {
		return 0, fmt.Errorf("daemon: shed_after: %w", err)
	}
	return d, nil
}

// ParseConfig decodes and validates a JSON config.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("daemon: config: %w", err)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("daemon: config: no peers")
	}
	seen := map[string]bool{}
	for i := range cfg.Peers {
		pc := &cfg.Peers[i]
		if pc.Name == "" {
			return nil, fmt.Errorf("daemon: config: peer %d has no name", i)
		}
		if seen[pc.Name] {
			return nil, fmt.Errorf("daemon: config: duplicate peer %q", pc.Name)
		}
		seen[pc.Name] = true
		if _, remote := cfg.Remotes[pc.Name]; remote {
			return nil, fmt.Errorf("daemon: config: peer %q is also a remote", pc.Name)
		}
	}
	if _, err := cfg.admission(); err != nil {
		return nil, err
	}
	if _, err := cfg.shedAfter(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// LoadConfig reads and parses a JSON config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(data)
}

// hostedPeer is one peer plus its transport endpoint.
type hostedPeer struct {
	p  *peer.Peer
	ep *transport.TCPEndpoint
}

// Daemon hosts the configured peers and the admin HTTP server.
type Daemon struct {
	cfg *Config
	reg *metrics.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	peers    map[string]*hostedPeer
	order    []string // config order, for stable listings
	draining bool

	admin *http.Server
	admLn net.Listener
}

// New validates cfg and prepares a daemon. Nothing is bound until Start.
func New(cfg *Config) (*Daemon, error) {
	if cfg == nil || len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("daemon: empty config")
	}
	if _, err := cfg.admission(); err != nil {
		return nil, err
	}
	if _, err := cfg.shedAfter(); err != nil {
		return nil, err
	}
	return &Daemon{cfg: cfg, reg: metrics.NewRegistry(), peers: map[string]*hostedPeer{}}, nil
}

// Metrics returns the daemon's shared registry (every hosted peer's series,
// labeled by peer name).
func (d *Daemon) Metrics() *metrics.Registry { return d.reg }

// Peer returns a hosted peer by name, or nil.
func (d *Daemon) Peer(name string) *peer.Peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	if hp := d.peers[name]; hp != nil {
		return hp.p
	}
	return nil
}

// PeerAddr returns the bound TCP address of a hosted peer ("" if unknown).
func (d *Daemon) PeerAddr(name string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if hp := d.peers[name]; hp != nil {
		return hp.ep.Addr()
	}
	return ""
}

// AdminAddr returns the bound admin HTTP address ("" before Start).
func (d *Daemon) AdminAddr() string {
	if d.admLn == nil {
		return ""
	}
	return d.admLn.Addr().String()
}

// Start binds every peer listener and the admin server, then launches the
// peer loops. ctx bounds the daemon's lifetime: cancelling it is equivalent
// to Close (without the drain).
func (d *Daemon) Start(ctx context.Context) error {
	d.ctx, d.cancel = context.WithCancel(ctx)
	admit, _ := d.cfg.admission()
	shed, _ := d.cfg.shedAfter()

	// Bind every listener first (ephemeral ports resolve here), then tell
	// each endpoint about its siblings, then construct the peers — so by
	// the time any peer loop runs, every hosted destination is routable.
	eps := make([]*transport.TCPEndpoint, len(d.cfg.Peers))
	for i, pc := range d.cfg.Peers {
		listen := pc.Listen
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		ep, err := transport.ListenTCP(d.ctx, pc.Name, listen, d.cfg.Remotes)
		if err != nil {
			d.teardown()
			return err
		}
		eps[i] = ep
	}
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].AddPeer(eps[j].Name(), eps[j].Addr())
			}
		}
	}
	for i, pc := range d.cfg.Peers {
		cfg := peer.Config{
			Name:            pc.Name,
			Metrics:         d.reg,
			OutboxLimit:     d.cfg.OutboxLimit,
			MaxPendingOps:   d.cfg.MaxPendingOps,
			Admission:       admit,
			OutboxShedAfter: shed,
		}
		if len(pc.Trust) > 0 {
			cfg.Policy = acl.NewTrustPolicy(pc.Trust...)
		}
		if pc.WAL != "" {
			w, err := store.OpenWAL(pc.WAL)
			if err != nil {
				d.teardown()
				return err
			}
			cfg.WAL = w
		}
		p, err := peer.New(cfg, eps[i])
		if err != nil {
			d.teardown()
			return fmt.Errorf("daemon: peer %s: %w", pc.Name, err)
		}
		src := pc.Program
		if pc.ProgramFile != "" {
			data, err := os.ReadFile(pc.ProgramFile)
			if err != nil {
				p.Close()
				d.teardown()
				return err
			}
			src += "\n" + string(data)
		}
		if strings.TrimSpace(src) != "" {
			if err := checkProgram(&pc, src); err != nil {
				p.Close()
				d.teardown()
				return err
			}
			if err := p.LoadSource(src); err != nil {
				p.Close()
				d.teardown()
				return fmt.Errorf("daemon: peer %s: %w", pc.Name, err)
			}
		}
		d.mu.Lock()
		d.peers[pc.Name] = &hostedPeer{p: p, ep: eps[i]}
		d.order = append(d.order, pc.Name)
		d.mu.Unlock()
		d.wg.Add(1)
		go func(p *peer.Peer) {
			defer d.wg.Done()
			p.Run(d.ctx)
		}(p)
	}

	adminAddr := d.cfg.Admin
	if adminAddr == "" {
		adminAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", adminAddr)
	if err != nil {
		d.teardown()
		return err
	}
	d.admLn = ln
	srv := &http.Server{Handler: d.handler()}
	d.admin = srv
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		// srv, not d.admin: teardown nils the field, possibly before
		// this goroutine is scheduled.
		srv.Serve(ln)
	}()
	return nil
}

// Drain stops admitting new writes (the admin /apply returns 503) and
// waits until every hosted peer's outbox is empty or ctx expires. It does
// not stop the peer loops — call Close after.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	d.draining = true
	hps := make([]*hostedPeer, 0, len(d.peers))
	for _, hp := range d.peers {
		hps = append(hps, hp)
	}
	d.mu.Unlock()
	for {
		pending := 0
		for _, hp := range hps {
			n, _ := hp.p.OutboxPending()
			pending += n
		}
		if pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("daemon: drain: %d entries still pending: %w", pending, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops the admin server and every hosted peer.
func (d *Daemon) Close() error {
	if d.cancel != nil {
		d.cancel()
	}
	d.teardown()
	d.wg.Wait()
	return nil
}

// teardown closes whatever Start managed to bind, in reverse order.
func (d *Daemon) teardown() {
	if d.admin != nil {
		d.admin.Close()
		d.admin = nil
	}
	d.mu.Lock()
	hps := make([]*hostedPeer, 0, len(d.peers))
	for _, hp := range d.peers {
		hps = append(hps, hp)
	}
	d.peers = map[string]*hostedPeer{}
	d.order = nil
	d.mu.Unlock()
	for _, hp := range hps {
		hp.p.Close()
	}
	if d.cancel != nil {
		d.cancel()
	}
}

// peerNames returns the hosted peer names in config order.
func (d *Daemon) peerNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	sort.Strings(out)
	return out
}
