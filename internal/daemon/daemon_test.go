package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testConfig hosts a hub peer shipping a derived view to a watcher peer
// over real TCP — the smallest two-peer daemon.
func testConfig() *Config {
	return &Config{
		Peers: []PeerConfig{
			{
				Name: "hub",
				Program: `
					relation extensional data@hub(x);
					relation extensional mirror@watcher(x);
					mirror@watcher($x) :- data@hub($x);
				`,
			},
			{
				Name:    "watcher",
				Program: `relation extensional mirror@watcher(x);`,
			},
		},
	}
}

// startDaemon runs a daemon for the test's duration and returns it plus
// the admin base URL.
func startDaemon(t *testing.T, cfg *Config) (*Daemon, string) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, "http://" + d.AdminAddr()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func httpApply(t *testing.T, base string, req applyRequest) (int, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /apply: %v", err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

// TestDaemonApplyFlowsToRemotePeer: an update POSTed to the admin surface
// reaches the hub, derives the view, and the maintained delta crosses TCP
// to the watcher peer.
func TestDaemonApplyFlowsToRemotePeer(t *testing.T) {
	_, base := startDaemon(t, testConfig())

	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := httpApply(t, base, applyRequest{
		Peer:   "hub",
		Insert: []string{`data@hub("a")`, `data@hub("b")`},
	})
	if code != http.StatusOK {
		t.Fatalf("/apply = %d %q", code, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := httpGet(t, base+"/peers/watcher/relations/mirror")
		var got struct {
			Tuples []string `json:"tuples"`
		}
		if code == http.StatusOK && json.Unmarshal([]byte(body), &got) == nil && len(got.Tuples) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never reached the watcher: %d %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /peers lists both peers with their bound addresses.
	code, body = httpGet(t, base+"/peers")
	if code != http.StatusOK {
		t.Fatalf("/peers = %d", code)
	}
	var peers []peerSummary
	if err := json.Unmarshal([]byte(body), &peers); err != nil {
		t.Fatalf("/peers not JSON: %v\n%s", err, body)
	}
	if len(peers) != 2 || peers[0].Name != "hub" || peers[1].Name != "watcher" {
		t.Fatalf("/peers = %+v", peers)
	}
	for _, p := range peers {
		if p.Addr == "" {
			t.Errorf("peer %s has no bound address", p.Name)
		}
	}

	// Bad input answers 4xx, not 5xx.
	if code, _ := httpApply(t, base, applyRequest{Peer: "nobody", Insert: []string{`x@hub("a")`}}); code != http.StatusNotFound {
		t.Errorf("unknown peer = %d, want 404", code)
	}
	if code, _ := httpApply(t, base, applyRequest{Peer: "hub", Insert: []string{`not a fact`}}); code != http.StatusBadRequest {
		t.Errorf("parse error = %d, want 400", code)
	}
	if code, _ := httpGet(t, base+"/peers/hub/relations/nope"); code != http.StatusNotFound {
		t.Errorf("unknown relation = %d, want 404", code)
	}
}

// TestDaemonMetricsScrape: /metrics on a live daemon serves parseable
// Prometheus text exposition covering both hosted peers.
func TestDaemonMetricsScrape(t *testing.T) {
	_, base := startDaemon(t, testConfig())
	if code, body := httpApply(t, base, applyRequest{Peer: "hub", Insert: []string{`data@hub("a")`}}); code != http.StatusOK {
		t.Fatalf("/apply = %d %q", code, body)
	}
	// Wait for at least one hub stage so the histograms have samples.
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		var code int
		code, body = httpGet(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		if strings.Contains(body, `wdl_stages_total{peer="hub",result="ran"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ran stage ever surfaced in /metrics:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkPrometheusText(t, body)
	for _, want := range []string{
		`wdl_outbox_depth{peer="hub"}`,
		`wdl_outbox_enqueued_total{peer="hub"}`,
		`wdl_updates_applied_total{peer="hub"}`,
		`wdl_stage_seconds_bucket{peer="hub",le="+Inf"}`,
		`wdl_subscriptions{peer="watcher"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

// checkPrometheusText validates the text exposition format line by line:
// every sample belongs to a family announced by HELP/TYPE, and every
// sample line is "name{labels} value" with a parseable float value.
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			if !strings.Contains(line, "} ") {
				t.Fatalf("unterminated label set: %q", line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && typed[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q has no TYPE line", line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("sample %q: bad value %q", line, val)
		}
	}
	if len(typed) == 0 {
		t.Fatal("scrape contained no TYPE lines")
	}
}

// TestDaemonDrain: draining flips /healthz and /apply to 503 and returns
// once the outboxes are empty.
func TestDaemonDrain(t *testing.T) {
	d, base := startDaemon(t, testConfig())
	if code, body := httpApply(t, base, applyRequest{Peer: "hub", Insert: []string{`data@hub("a")`}}); code != http.StatusOK {
		t.Fatalf("/apply = %d %q", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining = %d, want 503", code)
	}
	if code, _ := httpApply(t, base, applyRequest{Peer: "hub", Insert: []string{`data@hub("z")`}}); code != http.StatusServiceUnavailable {
		t.Errorf("/apply while draining = %d, want 503", code)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestParseConfig covers the validation errors operators actually hit.
func TestParseConfig(t *testing.T) {
	good := `{"peers": [{"name": "a"}], "admission": "fail-fast", "shed_after": "30s", "outbox_limit": 64}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if cfg.OutboxLimit != 64 {
		t.Errorf("OutboxLimit = %d", cfg.OutboxLimit)
	}
	for _, bad := range []string{
		`{}`,
		`{"peers": []}`,
		`{"peers": [{"name": ""}]}`,
		`{"peers": [{"name": "a"}, {"name": "a"}]}`,
		`{"peers": [{"name": "a"}], "remotes": {"a": "x:1"}}`,
		`{"peers": [{"name": "a"}], "admission": "maybe"}`,
		`{"peers": [{"name": "a"}], "shed_after": "soon"}`,
		`{"peers": [{"name": "a"}], "typo_field": 1}`,
	} {
		if _, err := ParseConfig([]byte(bad)); err == nil {
			t.Errorf("config %s accepted, want error", bad)
		}
	}
}

// TestDaemonBackpressure503: a fail-fast daemon with a tiny outbox bound
// answers 503 once the queue to a dead remote fills.
func TestDaemonBackpressure503(t *testing.T) {
	cfg := testConfig()
	cfg.OutboxLimit = 1
	cfg.Admission = "fail-fast"
	// Point the hub's view at a remote that is configured but not running:
	// nothing ever acks, so one apply fills the queue for good.
	cfg.Peers = cfg.Peers[:1]
	cfg.Remotes = map[string]string{"watcher": "127.0.0.1:1"}
	_, base := startDaemon(t, cfg)

	if code, body := httpApply(t, base, applyRequest{Peer: "hub", Insert: []string{`data@hub("a")`}}); code != http.StatusOK {
		t.Fatalf("first apply = %d %q", code, body)
	}
	// The first apply commits locally; its stage emission fills the bounded
	// queue. Later applies that need queue space are rejected.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		code, body := httpApply(t, base, applyRequest{
			Peer:   "hub",
			Insert: []string{fmt.Sprintf(`mirror@watcher(%q)`, fmt.Sprint("x", i))},
		})
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "backpressure") {
				t.Fatalf("503 body %q does not mention backpressure", body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("apply never hit backpressure: last %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonRejectsUnsafeProgram: a config whose program fails static
// analysis is refused at startup with a structured, positioned diagnostic
// instead of whichever runtime error the load path would hit first.
func TestDaemonRejectsUnsafeProgram(t *testing.T) {
	cfg := &Config{Peers: []PeerConfig{{
		Name: "hub",
		Program: `relation extensional data@hub(x);
relation intensional view@hub(x, y);
view@hub($x, $y) :- data@hub($x);
`,
	}}}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Start(context.Background())
	if err == nil {
		d.Close()
		t.Fatal("daemon started with an unsafe program")
	}
	var pd *ProgramDiagnostics
	if !errors.As(err, &pd) {
		t.Fatalf("error is %T, want *ProgramDiagnostics: %v", err, err)
	}
	if pd.Peer != "hub" || pd.File != "<config>" {
		t.Errorf("diagnostics for %s in %s, want hub in <config>", pd.Peer, pd.File)
	}
	msg := err.Error()
	for _, want := range []string{"[WDL001]", "3:14:", "head variable $y is not bound"} {
		if !strings.Contains(msg, want) {
			t.Errorf("startup error %q lacks %q", msg, want)
		}
	}
}

// TestDaemonToleratesWarnings: warning-severity findings (here an undeclared
// relation) do not block startup.
func TestDaemonToleratesWarnings(t *testing.T) {
	cfg := &Config{Peers: []PeerConfig{{
		Name:    "hub",
		Program: `view@hub($x) :- data@hub($x);` + "\n" + `relation extensional data@hub(x);`,
	}}}
	startDaemon(t, cfg)
}
