package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/parser"
)

// The admin surface. Read endpoints are JSON; /metrics is Prometheus text.
//
//	GET  /healthz                      liveness (503 while draining)
//	GET  /metrics                      Prometheus text exposition
//	GET  /peers                        hosted peers, addresses, queue depths
//	GET  /peers/{name}                 one peer: stats, relations, outbox
//	GET  /peers/{name}/relations/{rel} a relation's tuples
//	POST /apply                        {"peer","insert":[...],"delete":[...]}
//
// /apply parses each fact ("rel@peer(args...)"), builds one atomic batch
// and runs it through Peer.Apply with the request's context — so admission
// control applies: a full bounded queue under fail-fast (or a draining
// daemon) answers 503, and under blocking admission the request simply
// waits its turn until the client gives up.
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.serveHealthz)
	mux.Handle("GET /metrics", d.reg.Handler())
	mux.HandleFunc("GET /peers", d.servePeers)
	mux.HandleFunc("GET /peers/{name}", d.servePeer)
	mux.HandleFunc("GET /peers/{name}/relations/{rel}", d.serveRelation)
	mux.HandleFunc("POST /apply", d.serveApply)
	return mux
}

func (d *Daemon) serveHealthz(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	draining := d.draining
	d.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// peerSummary is one row of GET /peers.
type peerSummary struct {
	Name          string `json:"name"`
	Addr          string `json:"addr"`
	Stages        uint64 `json:"stages"`
	OutboxPending int    `json:"outbox_pending"`
	OutboxStalled int    `json:"outbox_stalled"`
	Subscriptions int    `json:"subscriptions"`
}

func (d *Daemon) servePeers(w http.ResponseWriter, r *http.Request) {
	var out []peerSummary
	for _, name := range d.peerNames() {
		d.mu.Lock()
		hp := d.peers[name]
		d.mu.Unlock()
		if hp == nil {
			continue
		}
		total, stalled := hp.p.OutboxPending()
		out = append(out, peerSummary{
			Name:          name,
			Addr:          hp.ep.Addr(),
			Stages:        hp.p.Stats().Stages,
			OutboxPending: total,
			OutboxStalled: stalled,
			Subscriptions: hp.p.Subscribers(),
		})
	}
	writeJSON(w, out)
}

// relationSummary is one relation row of GET /peers/{name}.
type relationSummary struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tuples int    `json:"tuples"`
}

func (d *Daemon) servePeer(w http.ResponseWriter, r *http.Request) {
	p := d.Peer(r.PathValue("name"))
	if p == nil {
		http.Error(w, "unknown peer", http.StatusNotFound)
		return
	}
	var rels []relationSummary
	for _, rel := range p.Store().RelationsOf(p.Name()) {
		rels = append(rels, relationSummary{
			ID:     rel.Schema().ID(),
			Kind:   fmt.Sprint(rel.Kind()),
			Tuples: rel.Len(),
		})
	}
	total, stalled := p.OutboxPending()
	writeJSON(w, map[string]any{
		"name":           p.Name(),
		"addr":           d.PeerAddr(p.Name()),
		"stats":          p.Stats(),
		"relations":      rels,
		"outbox_pending": total,
		"outbox_stalled": stalled,
		"subscriptions":  p.Subscribers(),
		"program":        p.ProgramText(),
	})
}

func (d *Daemon) serveRelation(w http.ResponseWriter, r *http.Request) {
	p := d.Peer(r.PathValue("name"))
	if p == nil {
		http.Error(w, "unknown peer", http.StatusNotFound)
		return
	}
	rel := r.PathValue("rel")
	if p.Store().Get(rel, p.Name()) == nil {
		http.Error(w, "unknown relation", http.StatusNotFound)
		return
	}
	tuples := []string{}
	for _, t := range p.Query(rel) {
		tuples = append(tuples, t.String())
	}
	writeJSON(w, map[string]any{"relation": rel, "tuples": tuples})
}

// applyRequest is the POST /apply body.
type applyRequest struct {
	Peer   string   `json:"peer"`
	Insert []string `json:"insert,omitempty"`
	Delete []string `json:"delete,omitempty"`
}

func (d *Daemon) serveApply(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	draining := d.draining
	d.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p := d.Peer(req.Peer)
	if p == nil {
		http.Error(w, "unknown peer", http.StatusNotFound)
		return
	}
	b := engine.NewBatch()
	for _, src := range req.Insert {
		f, err := parser.ParseFact(src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.Insert(f)
	}
	for _, src := range req.Delete {
		f, err := parser.ParseFact(src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.Delete(f)
	}
	if err := p.Apply(r.Context(), b); err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errdefs.ErrBackpressure):
			code = http.StatusServiceUnavailable
		case errors.Is(err, errdefs.ErrUnknownRelation), errors.Is(err, errdefs.ErrArity):
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, map[string]any{"applied": b.Len()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
