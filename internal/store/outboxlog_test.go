package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOutboxLogRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.LogEnqueue("bob", 1, []byte("m1")))
	must(l.LogEnqueue("bob", 2, []byte("m2")))
	must(l.LogEnqueue("carol", 1, []byte("c1")))
	must(l.LogAck("bob", 1))
	must(l.LogApplied("dave", 5, 7))
	must(l.Sync())
	must(l.Close())

	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Pending["bob"]; len(got) != 1 || got[0].Seq != 2 || string(got[0].Payload) != "m2" {
		t.Errorf("bob pending = %v, want just seq 2", got)
	}
	if got := st.Pending["carol"]; len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("carol pending = %v, want seq 1", got)
	}
	if st.NextSeq["bob"] != 2 || st.Acked["bob"] != 1 {
		t.Errorf("bob nextSeq/acked = %d/%d, want 2/1", st.NextSeq["bob"], st.Acked["bob"])
	}
	if st.Applied["dave"] != (AppliedMark{Epoch: 5, Seq: 7}) {
		t.Errorf("dave applied = %+v, want epoch 5 seq 7", st.Applied["dave"])
	}
}

func TestOutboxLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.LogEnqueue("bob", i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i < 100 {
			if err := l.LogAck("bob", i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.LogApplied("dave", 5, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch(99); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(st); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Errorf("records after compaction = %d, want 0", l.Records())
	}
	// Compaction must shrink the file to the live state.
	fi, err := os.Stat(filepath.Join(dir, outboxLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 512 {
		t.Errorf("compacted log is %d bytes; expected just the live state", fi.Size())
	}
	// The log keeps working and recovery sees the same state.
	if err := l.LogEnqueue("bob", 101, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Pending["bob"]; len(got) != 2 || got[0].Seq != 100 || got[1].Seq != 101 {
		t.Errorf("bob pending after compact+append = %v, want seqs 100,101", got)
	}
	if st2.NextSeq["bob"] != 101 || st2.Acked["bob"] != 99 {
		t.Errorf("bob nextSeq/acked = %d/%d, want 101/99", st2.NextSeq["bob"], st2.Acked["bob"])
	}
	if st2.Applied["dave"] != (AppliedMark{Epoch: 5, Seq: 3}) {
		t.Errorf("dave applied = %+v, want epoch 5 seq 3", st2.Applied["dave"])
	}
	if st2.Epoch != 99 {
		t.Errorf("epoch = %d, want 99 preserved across compaction", st2.Epoch)
	}
}

func TestOutboxLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEnqueue("bob", 1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn trailing record.
	f, err := os.OpenFile(filepath.Join(dir, outboxLogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"enq","peer":"bob","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st, err := l2.Recover()
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if got := st.Pending["bob"]; len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("bob pending = %v, want the intact record only", got)
	}
}
