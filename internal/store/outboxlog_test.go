package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOutboxLogRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.LogEnqueue("bob", 1, []byte("m1")))
	must(l.LogEnqueue("bob", 2, []byte("m2")))
	must(l.LogEnqueue("carol", 1, []byte("c1")))
	must(l.LogAck("bob", 1))
	must(l.LogApplied("dave", 5, 7))
	must(l.Sync())
	must(l.Close())

	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Pending["bob"]; len(got) != 1 || got[0].Seq != 2 || string(got[0].Payload) != "m2" {
		t.Errorf("bob pending = %v, want just seq 2", got)
	}
	if got := st.Pending["carol"]; len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("carol pending = %v, want seq 1", got)
	}
	if st.NextSeq["bob"] != 2 || st.Acked["bob"] != 1 {
		t.Errorf("bob nextSeq/acked = %d/%d, want 2/1", st.NextSeq["bob"], st.Acked["bob"])
	}
	if st.Applied["dave"] != (AppliedMark{Epoch: 5, Seq: 7}) {
		t.Errorf("dave applied = %+v, want epoch 5 seq 7", st.Applied["dave"])
	}
}

func TestOutboxLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.LogEnqueue("bob", i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i < 100 {
			if err := l.LogAck("bob", i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.LogApplied("dave", 5, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch(99); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(st); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Errorf("records after compaction = %d, want 0", l.Records())
	}
	// Compaction must shrink the file to the live state.
	fi, err := os.Stat(filepath.Join(dir, outboxLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 512 {
		t.Errorf("compacted log is %d bytes; expected just the live state", fi.Size())
	}
	// The log keeps working and recovery sees the same state.
	if err := l.LogEnqueue("bob", 101, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Pending["bob"]; len(got) != 2 || got[0].Seq != 100 || got[1].Seq != 101 {
		t.Errorf("bob pending after compact+append = %v, want seqs 100,101", got)
	}
	if st2.NextSeq["bob"] != 101 || st2.Acked["bob"] != 99 {
		t.Errorf("bob nextSeq/acked = %d/%d, want 101/99", st2.NextSeq["bob"], st2.Acked["bob"])
	}
	if st2.Applied["dave"] != (AppliedMark{Epoch: 5, Seq: 3}) {
		t.Errorf("dave applied = %+v, want epoch 5 seq 3", st2.Applied["dave"])
	}
	if st2.Epoch != 99 {
		t.Errorf("epoch = %d, want 99 preserved across compaction", st2.Epoch)
	}
}

// TestOutboxLogCompactionRoundTripInterleaved: appends before and after a
// mid-stream compaction — including a per-stream reset — must recover to
// exactly the live state: the compaction snapshot plus everything appended
// after it, with nothing from the superseded history resurrected.
func TestOutboxLogCompactionRoundTripInterleaved(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: interleaved traffic to two destinations plus applied marks,
	// with stream c reset mid-way (c1/c2 superseded, c1' re-logged at a
	// renumbered sequence under the per-stream epoch).
	must(l.LogEpoch(77))
	must(l.LogEnqueue("b", 1, []byte("b1")))
	must(l.LogEnqueue("c", 1, []byte("c1")))
	must(l.LogApplied("d", 77, 4))
	must(l.LogEnqueue("b", 2, []byte("b2")))
	must(l.LogAck("b", 1))
	must(l.LogEnqueue("c", 2, []byte("c2")))
	must(l.LogReset("c", 99))
	must(l.LogEnqueue("c", 1, []byte("c1'")))
	must(l.Sync())

	// Mid-stream compaction of the state as a caller would snapshot it.
	must(l.Compact(&OutboxState{
		Epoch:   77,
		Epochs:  map[string]uint64{"b": 77, "c": 99},
		Pending: map[string][]OutboxEntry{"b": {{Seq: 2, Payload: []byte("b2")}}, "c": {{Seq: 1, Payload: []byte("c1'")}}},
		NextSeq: map[string]uint64{"b": 2, "c": 1},
		Acked:   map[string]uint64{"b": 1},
		Applied: map[string]AppliedMark{"d": {Epoch: 77, Seq: 4}},
	}))

	// Phase 2: more appends interleave after the rewrite.
	must(l.LogEnqueue("b", 3, []byte("b3")))
	must(l.LogAck("b", 2))
	must(l.LogApplied("d", 77, 9))
	must(l.LogEnqueue("c", 2, []byte("c2'")))
	must(l.Sync())
	must(l.Close())

	// Recovery must see the snapshot plus phase 2, nothing else.
	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 77 {
		t.Errorf("Epoch = %d, want 77", st.Epoch)
	}
	if st.Epochs["c"] != 99 {
		t.Errorf("Epochs[c] = %d, want the reset epoch 99", st.Epochs["c"])
	}
	if got := st.Pending["b"]; len(got) != 1 || got[0].Seq != 3 || string(got[0].Payload) != "b3" {
		t.Errorf("b pending = %v, want just b3 at seq 3", got)
	}
	if got := st.Pending["c"]; len(got) != 2 || got[0].Seq != 1 || string(got[0].Payload) != "c1'" ||
		got[1].Seq != 2 || string(got[1].Payload) != "c2'" {
		t.Errorf("c pending = %v, want the renumbered c1' and c2' only", got)
	}
	if st.NextSeq["b"] != 3 || st.Acked["b"] != 2 {
		t.Errorf("b nextSeq/acked = %d/%d, want 3/2", st.NextSeq["b"], st.Acked["b"])
	}
	if st.NextSeq["c"] != 2 || st.Acked["c"] != 0 {
		t.Errorf("c nextSeq/acked = %d/%d, want 2/0", st.NextSeq["c"], st.Acked["c"])
	}
	if st.Applied["d"] != (AppliedMark{Epoch: 77, Seq: 9}) {
		t.Errorf("d applied = %+v, want epoch 77 seq 9", st.Applied["d"])
	}
}

func TestOutboxLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEnqueue("bob", 1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn trailing record.
	f, err := os.OpenFile(filepath.Join(dir, outboxLogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"enq","peer":"bob","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenOutboxLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st, err := l2.Recover()
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if got := st.Pending["bob"]; len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("bob pending = %v, want the intact record only", got)
	}
}
