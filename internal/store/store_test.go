package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/value"
)

func schema2(name string) Schema {
	return Schema{Name: name, Peer: "p", Kind: ast.Extensional, Cols: []string{"a", "b"}}
}

func tup(vals ...string) value.Tuple {
	out := make(value.Tuple, len(vals))
	for i, v := range vals {
		out[i] = value.Str(v)
	}
	return out
}

func TestInsertDeleteContains(t *testing.T) {
	r := NewRelation(schema2("r"))
	if !r.Insert(tup("a", "b")) {
		t.Error("first insert must report new")
	}
	if r.Insert(tup("a", "b")) {
		t.Error("duplicate insert must report existing")
	}
	if !r.Contains(tup("a", "b")) || r.Len() != 1 {
		t.Error("contents wrong after insert")
	}
	if !r.Delete(tup("a", "b")) {
		t.Error("delete of present tuple must report true")
	}
	if r.Delete(tup("a", "b")) {
		t.Error("delete of absent tuple must report false")
	}
	if r.Len() != 0 {
		t.Error("relation not empty after delete")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(schema2("r"))
	tp := tup("a", "b")
	r.Insert(tp)
	tp[0] = value.Str("mutated")
	if !r.Contains(tup("a", "b")) {
		t.Error("relation aliases caller's tuple")
	}
}

func TestArityMismatchPanics(t *testing.T) {
	r := NewRelation(schema2("r"))
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic (programming error)")
		}
	}()
	r.Insert(tup("only-one"))
}

func TestVersionBumps(t *testing.T) {
	r := NewRelation(schema2("r"))
	v0 := r.Version()
	r.Insert(tup("a", "b"))
	v1 := r.Version()
	if v1 == v0 {
		t.Error("version must change on insert")
	}
	r.Insert(tup("a", "b")) // no-op
	if r.Version() != v1 {
		t.Error("version must not change on no-op insert")
	}
	r.Delete(tup("a", "b"))
	if r.Version() == v1 {
		t.Error("version must change on delete")
	}
}

func TestIndexedLookupMatchesScan(t *testing.T) {
	r := NewRelation(schema2("r"))
	rnd := rand.New(rand.NewSource(7))
	letters := []string{"x", "y", "z", "w"}
	for i := 0; i < 500; i++ {
		r.Insert(tup(letters[rnd.Intn(4)], letters[rnd.Intn(4)]))
	}
	for _, mask := range []ColMask{MaskOf(0), MaskOf(1), MaskOf(0, 1)} {
		for _, a := range letters {
			for _, b := range letters {
				var bound []value.Value
				if mask.Has(0) {
					bound = append(bound, value.Str(a))
				}
				if mask.Has(1) {
					bound = append(bound, value.Str(b))
				}
				var viaIndex, viaScan int
				r.Lookup(mask, bound, true, func(value.Tuple) bool { viaIndex++; return true })
				r.Lookup(mask, bound, false, func(value.Tuple) bool { viaScan++; return true })
				if viaIndex != viaScan {
					t.Fatalf("mask %b bound %v: index %d != scan %d", mask, bound, viaIndex, viaScan)
				}
			}
		}
	}
	if r.IndexCount() == 0 {
		t.Error("indexed lookups built no indexes")
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	r := NewRelation(schema2("r"))
	r.EnsureIndex(MaskOf(0))
	r.Insert(tup("a", "1"))
	r.Insert(tup("a", "2"))
	r.Insert(tup("b", "3"))
	count := func(k string) int {
		n := 0
		r.Lookup(MaskOf(0), []value.Value{value.Str(k)}, true, func(value.Tuple) bool { n++; return true })
		return n
	}
	if count("a") != 2 || count("b") != 1 {
		t.Fatalf("index counts wrong: a=%d b=%d", count("a"), count("b"))
	}
	r.Delete(tup("a", "1"))
	if count("a") != 1 {
		t.Errorf("index stale after delete: a=%d", count("a"))
	}
	r.Clear()
	if count("a") != 0 || count("b") != 0 {
		t.Error("index stale after clear")
	}
}

func TestLookupEarlyStop(t *testing.T) {
	r := NewRelation(schema2("r"))
	for i := 0; i < 10; i++ {
		r.Insert(tup("k", string(rune('a'+i))))
	}
	n := 0
	r.Lookup(MaskOf(0), []value.Value{value.Str("k")}, true, func(value.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("iteration did not stop: n=%d", n)
	}
}

func TestMutateDuringIteration(t *testing.T) {
	// Recursive rules insert into the relation being scanned; the snapshot
	// semantics must neither deadlock nor crash.
	r := NewRelation(schema2("r"))
	r.Insert(tup("seed", "x"))
	r.Iterate(func(tp value.Tuple) bool {
		r.Insert(tup("derived", tp[1].StringVal()))
		return true
	})
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2", r.Len())
	}
}

func TestStoreDeclareIdempotentAndConflicts(t *testing.T) {
	s := New()
	if _, err := s.Declare(schema2("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Declare(schema2("r")); err != nil {
		t.Errorf("re-declare with same schema: %v", err)
	}
	_, err := s.Declare(Schema{Name: "r", Peer: "p", Kind: ast.Intensional, Cols: []string{"a", "b"}})
	if err == nil {
		t.Error("kind conflict not detected")
	}
	_, err = s.Declare(Schema{Name: "r", Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}})
	if err == nil {
		t.Error("arity conflict not detected")
	}
}

func TestStoreClearIntensional(t *testing.T) {
	s := New()
	ext, _ := s.Declare(Schema{Name: "e", Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}})
	idb, _ := s.Declare(Schema{Name: "i", Peer: "p", Kind: ast.Intensional, Cols: []string{"a"}})
	ext.Insert(tup("x"))
	idb.Insert(tup("y"))
	s.ClearIntensional()
	if ext.Len() != 1 || idb.Len() != 0 {
		t.Errorf("ext=%d idb=%d after ClearIntensional", ext.Len(), idb.Len())
	}
}

func TestStoreRelationsSorted(t *testing.T) {
	s := New()
	for _, n := range []string{"zz", "aa", "mm"} {
		if _, err := s.Declare(Schema{Name: n, Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}}); err != nil {
			t.Fatal(err)
		}
	}
	rels := s.Relations()
	for i := 1; i < len(rels); i++ {
		if rels[i-1].Schema().ID() > rels[i].Schema().ID() {
			t.Fatal("relations not sorted")
		}
	}
}

func TestStoreFacts(t *testing.T) {
	s := New()
	r, _ := s.Declare(schema2("r"))
	r.Insert(tup("a", "b"))
	facts := s.Facts("p")
	if len(facts) != 1 || facts[0].String() != `r@p("a", "b")` {
		t.Errorf("facts = %v", facts)
	}
}

// Property: a random interleaving of inserts and deletes leaves the relation
// equal to a reference map implementation.
func TestRelationMatchesReferenceModel(t *testing.T) {
	type op struct {
		Del bool
		A   uint8
		B   uint8
	}
	f := func(ops []op) bool {
		r := NewRelation(schema2("r"))
		ref := map[string]bool{}
		for _, o := range ops {
			tp := tup(string(rune('a'+o.A%5)), string(rune('a'+o.B%5)))
			key := tp.Key()
			if o.Del {
				changed := r.Delete(tp)
				if changed != ref[key] {
					return false
				}
				delete(ref, key)
			} else {
				changed := r.Insert(tp)
				if changed == ref[key] {
					return false
				}
				ref[key] = true
			}
		}
		if r.Len() != len(ref) {
			return false
		}
		ok := true
		r.Iterate(func(tp value.Tuple) bool {
			if !ref[tp.Key()] {
				ok = false
			}
			return true
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, rnd *rand.Rand) {
		n := rnd.Intn(60)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{Del: rnd.Intn(3) == 0, A: uint8(rnd.Intn(5)), B: uint8(rnd.Intn(5))}
		}
		vs[0] = reflect.ValueOf(ops)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDegradedIndexReevaluatedOnGrowth: an index dropped as degenerate
// during a transiently skewed prefix (a load grouped by the indexed column)
// is re-evaluated once the relation changes size substantially, instead of
// forcing scans forever.
func TestDegradedIndexReevaluatedOnGrowth(t *testing.T) {
	r := NewRelation(Schema{Name: "t", Peer: "p", Kind: ast.Extensional, Cols: []string{"k", "v"}})
	// Build an index, then bulk-load grouped by k: the first group's bucket
	// exceeds the threshold while it is most of the relation.
	r.EnsureIndex(MaskOf(0))
	for i := 0; i < 1500; i++ {
		r.Insert(value.Tuple{value.Int(0), value.Int(int64(i))})
	}
	if r.IndexCount() != 0 {
		t.Fatalf("index not dropped during skewed prefix (count=%d)", r.IndexCount())
	}
	// The rest of the load is perfectly selective.
	for i := 0; i < 20000; i++ {
		r.Insert(value.Tuple{value.Int(int64(i + 1)), value.Int(int64(i))})
	}
	// A lookup after 2x growth re-evaluates the verdict and rebuilds.
	n := 0
	r.Lookup(MaskOf(0), []value.Value{value.Int(5)}, true, func(value.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("lookup found %d tuples, want 1", n)
	}
	if r.IndexCount() != 1 {
		t.Errorf("index not rebuilt after growth (count=%d)", r.IndexCount())
	}
}
