package store

// Order-insensitive set digests.
//
// A Digest summarizes a set of tuples as (XOR-folded FNV-64a hash, count).
// XOR folding makes it order-insensitive and incrementally maintainable:
// adding or removing one member is one hash and one XOR, so a set that is
// kept digested as it changes can answer "what is your digest?" in O(1) —
// the property the anti-entropy resync protocol relies on (a sender
// advertises digests of the view it maintains at each receiver; the
// receiver compares them against digests of its per-sender supported sets
// without walking either side's tuples).
//
// Two digests being equal does not prove the sets equal — that would need
// an XOR collision across 64-bit FNV hashes plus an equal count — but the
// users here are change *detectors* feeding a repair path that is itself
// idempotent, exactly like Relation.Fingerprint.

// Digest is an order-insensitive summary of a set of keyed elements.
// The zero value is the digest of the empty set.
type Digest struct {
	Hash  uint64
	Count uint64
}

// Add folds one member (by its canonical key) into the digest.
func (d *Digest) Add(key string) {
	d.Hash ^= KeyHash(key)
	d.Count++
}

// Remove folds one member out of the digest. The caller must only remove
// members previously added (set semantics are the caller's ledger): a
// digest has no membership of its own, so the one violation it *can* catch
// — removing from the empty set, which would otherwise underflow Count and
// silently corrupt every later comparison — is refused, and panics under
// DebugAsserts so tests surface the offending call site.
func (d *Digest) Remove(key string) {
	if d.Count == 0 {
		if DebugAsserts {
			panic("store: Digest.Remove on an empty digest: " + key)
		}
		return
	}
	d.Hash ^= KeyHash(key)
	d.Count--
}

// DebugAsserts upgrades internal invariant violations (Digest underflow,
// MerkleTree removal of an absent key) from silent no-ops to panics. Tests
// enable it; production code paths leave it off and treat the violations
// as refused operations.
var DebugAsserts = false

// Zero reports whether the digest summarizes the empty set.
func (d Digest) Zero() bool { return d.Count == 0 && d.Hash == 0 }

// KeyHash is the FNV-64a hash of a canonical key — the single hash both
// ends of a digest comparison must use (it is the same function the
// relation fingerprint folds).
func KeyHash(key string) uint64 { return tupleHash(key) }

// Digest returns the relation's content digest: the incrementally
// maintained member-hash fold plus the member count. O(1) — both parts are
// kept current by Insert/Delete/Clear — and equal for equal contents
// regardless of mutation history.
func (r *Relation) Digest() Digest {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Digest{Hash: r.fp, Count: uint64(len(r.tuples))}
}

// Merkle returns the relation's Merkle summary tree over the canonical
// tuple-key order. The first call builds it from the current contents
// (O(n log n)); every mutation thereafter keeps it current, so later calls
// are O(1). The returned tree is live — read it only under the discipline
// that guards the relation itself (the peer's stage lock), never while a
// concurrent mutator runs.
func (r *Relation) Merkle() *MerkleTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.merkle == nil {
		t := NewMerkleTree()
		for key := range r.tuples {
			t.Add(key)
		}
		r.merkle = t
	}
	return r.merkle
}
