package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func TestWALRecoverEmptyDir(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := New()
	if err := w.Recover(s); err != nil {
		t.Fatal(err)
	}
	if len(s.Relations()) != 0 {
		t.Error("fresh recovery produced relations")
	}
}

func TestWALLogAndRecover(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	sch := Schema{Name: "pics", Peer: "alice", Kind: ast.Extensional, Cols: []string{"id", "name"}}
	if err := w.LogDeclare(sch); err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert("pics", "alice", value.Tuple{value.Int(1), value.Str("a.jpg")}); err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert("pics", "alice", value.Tuple{value.Int(2), value.Str("b.jpg")}); err != nil {
		t.Fatal(err)
	}
	if err := w.LogDelete("pics", "alice", value.Tuple{value.Int(1), value.Str("a.jpg")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s := New()
	if err := w2.Recover(s); err != nil {
		t.Fatal(err)
	}
	rel := s.Get("pics", "alice")
	if rel == nil {
		t.Fatal("relation not recovered")
	}
	if rel.Len() != 1 || !rel.Contains(value.Tuple{value.Int(2), value.Str("b.jpg")}) {
		t.Errorf("recovered contents: %v", rel.Tuples())
	}
	if rel.Kind() != ast.Extensional || rel.Schema().Arity() != 2 {
		t.Errorf("recovered schema: %v", rel.Schema())
	}
}

func TestWALSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	sch := Schema{Name: "r", Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}}
	rel, _ := s.Declare(sch)
	if err := w.LogDeclare(sch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tp := value.Tuple{value.Int(int64(i))}
		rel.Insert(tp)
		if err := w.LogInsert("r", "p", tp); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 11 {
		t.Errorf("records = %d, want 11", w.Records())
	}
	if err := w.Snapshot(s, "p"); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Errorf("records after snapshot = %d, want 0", w.Records())
	}
	// A post-snapshot mutation must still recover on top of the snapshot.
	tp := value.Tuple{value.Int(100)}
	rel.Insert(tp)
	if err := w.LogInsert("r", "p", tp); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := New()
	if err := w2.Recover(s2); err != nil {
		t.Fatal(err)
	}
	if got := s2.Get("r", "p").Len(); got != 11 {
		t.Errorf("recovered %d tuples, want 11", got)
	}
}

func TestWALTornFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	sch := Schema{Name: "r", Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}}
	if err := w.LogDeclare(sch); err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert("r", "p", value.Tuple{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a truncated JSON line at the end.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"ins","rel":"r","pe`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s := New()
	if err := w2.Recover(s); err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if got := s.Get("r", "p").Len(); got != 1 {
		t.Errorf("recovered %d tuples, want 1", got)
	}
}

func TestWALInsertIntoUndeclaredFails(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert("ghost", "p", value.Tuple{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Recover(New()); err == nil {
		t.Error("recovery of insert into undeclared relation must fail")
	}
}

func TestWALClosedRejectsAppends(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.LogInsert("r", "p", value.Tuple{value.Int(1)}); err == nil {
		t.Error("append after close must fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close must be a no-op: %v", err)
	}
}

func TestWALSnapshotOnlyExtensional(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := New()
	ext, _ := s.Declare(Schema{Name: "e", Peer: "p", Kind: ast.Extensional, Cols: []string{"a"}})
	idb, _ := s.Declare(Schema{Name: "i", Peer: "p", Kind: ast.Intensional, Cols: []string{"a"}})
	ext.Insert(value.Tuple{value.Int(1)})
	idb.Insert(value.Tuple{value.Int(2)})
	if err := w.Snapshot(s, "p"); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Recover(s2); err != nil {
		t.Fatal(err)
	}
	if s2.Get("i", "p") != nil {
		t.Error("intensional relation leaked into snapshot")
	}
	if got := s2.Get("e", "p"); got == nil || got.Len() != 1 {
		t.Error("extensional relation missing from snapshot")
	}
}
