package store

import "testing"

// TestRelationDigestOrderInsensitive: equal contents yield equal digests
// regardless of insertion order and mutation history, and the incremental
// Add/Remove fold agrees with the relation's own maintained digest — the
// property that lets both ends of a resync compare sets without walking
// them.
func TestRelationDigestOrderInsensitive(t *testing.T) {
	mk := func() *Relation {
		return NewRelation(Schema{Name: "r", Peer: "p", Cols: []string{"x"}})
	}
	a, b := mk(), mk()
	keys := []string{"1", "2", "3", "4"}
	for _, k := range keys {
		a.Insert(tup(k))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(tup(keys[i]))
	}
	b.Insert(tup("5"))
	b.Delete(tup("5"))
	if a.Digest() != b.Digest() {
		t.Fatalf("equal contents, different digests: %+v vs %+v", a.Digest(), b.Digest())
	}
	if a.Digest() == mk().Digest() {
		t.Fatal("non-empty relation digests like the empty one")
	}
	if !mk().Digest().Zero() {
		t.Fatal("empty relation's digest is not Zero")
	}

	var d Digest
	for _, k := range keys {
		d.Add(tup(k).Key())
	}
	if got := a.Digest(); got != d {
		t.Fatalf("incremental fold %+v disagrees with relation digest %+v", d, got)
	}
	d.Remove(tup("2").Key())
	a.Delete(tup("2"))
	if got := a.Digest(); got != d {
		t.Fatalf("after removal, fold %+v disagrees with relation digest %+v", d, got)
	}
}
