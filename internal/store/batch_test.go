package store

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func declTest(t *testing.T, s *Store, name string, cols ...string) *Relation {
	t.Helper()
	r, err := s.Declare(Schema{Name: name, Peer: "p", Kind: ast.Extensional, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInsertManyDedupAndOrder(t *testing.T) {
	s := New()
	r := declTest(t, s, "data", "x")
	r.Insert(value.Tuple{value.Int(1)})

	added := r.InsertMany([]value.Tuple{
		{value.Int(1)}, // already present
		{value.Int(2)},
		{value.Int(3)},
		{value.Int(2)}, // duplicate within the batch
	})
	if len(added) != 2 || added[0][0].IntVal() != 2 || added[1][0].IntVal() != 3 {
		t.Fatalf("added = %v, want [(2) (3)]", added)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
}

func TestInsertManyMaintainsIndexes(t *testing.T) {
	s := New()
	r := declTest(t, s, "data", "k", "v")
	mask := MaskOf(0)
	r.EnsureIndex(mask)
	r.InsertMany([]value.Tuple{
		{value.Int(1), value.Str("a")},
		{value.Int(1), value.Str("b")},
		{value.Int(2), value.Str("c")},
	})
	var hits int
	r.Lookup(mask, []value.Value{value.Int(1)}, true, func(value.Tuple) bool {
		hits++
		return true
	})
	if hits != 2 {
		t.Errorf("indexed lookup found %d tuples for k=1, want 2", hits)
	}
}

func TestDeleteManyReportsRemoved(t *testing.T) {
	s := New()
	r := declTest(t, s, "data", "x")
	r.InsertMany([]value.Tuple{{value.Int(1)}, {value.Int(2)}, {value.Int(3)}})
	v := r.Version()

	removed := r.DeleteMany([]value.Tuple{{value.Int(2)}, {value.Int(9)}})
	if len(removed) != 1 || removed[0][0].IntVal() != 2 {
		t.Fatalf("removed = %v, want [(2)]", removed)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2", r.Len())
	}
	if r.Version() == v {
		t.Error("version not bumped by effective DeleteMany")
	}
	// A fully no-op batch does not bump the version.
	v = r.Version()
	if got := r.DeleteMany([]value.Tuple{{value.Int(42)}}); len(got) != 0 {
		t.Fatalf("removed = %v, want none", got)
	}
	if r.Version() != v {
		t.Error("version bumped by no-op DeleteMany")
	}
}

func TestWALLogMany(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	declTest(t, s, "data", "x")
	if err := w.LogDeclare(Schema{Name: "data", Peer: "p", Kind: ast.Extensional, Cols: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	tuples := []value.Tuple{{value.Int(1)}, {value.Int(2)}, {value.Int(3)}}
	if err := w.LogMany(false, "data", "p", tuples); err != nil {
		t.Fatal(err)
	}
	if err := w.LogMany(true, "data", "p", tuples[:1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	s2 := New()
	if err := w2.Recover(s2); err != nil {
		t.Fatal(err)
	}
	rel := s2.Get("data", "p")
	if rel == nil || rel.Len() != 2 {
		t.Fatalf("recovered relation = %v", rel)
	}
	if rel.Contains(value.Tuple{value.Int(1)}) {
		t.Error("deleted tuple survived recovery")
	}
}
