package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/errdefs"
)

// OutboxLog persists a peer's delivery state alongside its WAL: outgoing
// sequenced messages until their destination acknowledges them, and the
// per-sender watermark of applied incoming messages. A durable peer that
// crashes with deltas in flight recovers the pending entries and re-sends
// them, and recovers the watermark so retransmissions that were already
// applied before the crash are deduplicated — at-least-once delivery across
// restarts, with replays suppressed.
//
// The log lives in its own append-only file (outbox.log) in the WAL
// directory, with its own compaction: acknowledged entries make the log
// garbage-heavy over time, so Compact rewrites it to just the live state.
// Payloads are opaque bytes (the peer encodes them with protocol's codec),
// keeping this package free of protocol types.
type OutboxLog struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	records int  // appended since open/compaction
	dirty   bool // appended since the last Sync
	closed  bool
}

const outboxLogName = "outbox.log"

// outboxRecord is one log line.
type outboxRecord struct {
	Op      string `json:"op"` // "enq", "ack", "app", "epoch", "reset"
	Peer    string `json:"peer,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload,omitempty"`
}

// OutboxEntry is one recovered pending message.
type OutboxEntry struct {
	Seq     uint64
	Payload []byte
}

// AppliedMark is a receiver-side dedup watermark: the highest applied
// sequence within the sender's stream epoch.
type AppliedMark struct {
	Epoch uint64
	Seq   uint64
}

// OutboxState is the live delivery state recovered from the log.
type OutboxState struct {
	// Epoch is this peer's default stream epoch (0 if never logged): the
	// epoch every outgoing stream starts in.
	Epoch uint64
	// Epochs maps destinations whose stream was reset to the per-stream
	// epoch that replaced the default (see LogReset).
	Epochs map[string]uint64
	// Pending maps destination to unacknowledged entries in sequence order.
	Pending map[string][]OutboxEntry
	// NextSeq maps destination to the highest sequence number ever assigned.
	NextSeq map[string]uint64
	// Acked maps destination to the highest acknowledged sequence number.
	Acked map[string]uint64
	// Applied maps sender to its applied watermark.
	Applied map[string]AppliedMark
}

// OpenOutboxLog opens (creating if needed) the outbox log in dir. Failures
// wrap errdefs.ErrWAL, like the WAL proper.
func OpenOutboxLog(dir string) (*OutboxLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w: opening outbox log dir: %w", errdefs.ErrWAL, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, outboxLogName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w: opening outbox log: %w", errdefs.ErrWAL, err)
	}
	return &OutboxLog{dir: dir, f: f, w: bufio.NewWriter(f)}, nil
}

// Records returns the number of records appended since open or the last
// compaction — the peer's cue to compact.
func (l *OutboxLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

func (l *OutboxLog) append(rec outboxRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: %w: outbox log is closed", errdefs.ErrWAL)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w: encoding outbox record: %w", errdefs.ErrWAL, err)
	}
	if _, err := l.w.Write(b); err != nil {
		return fmt.Errorf("store: %w: appending outbox record: %w", errdefs.ErrWAL, err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w: appending outbox record: %w", errdefs.ErrWAL, err)
	}
	l.records++
	l.dirty = true
	return nil
}

// LogEnqueue records a sequenced message committed for dst.
func (l *OutboxLog) LogEnqueue(dst string, seq uint64, payload []byte) error {
	return l.append(outboxRecord{Op: "enq", Peer: dst, Seq: seq, Payload: payload})
}

// LogAck records dst's cumulative acknowledgment of sequences <= seq.
func (l *OutboxLog) LogAck(dst string, seq uint64) error {
	return l.append(outboxRecord{Op: "ack", Peer: dst, Seq: seq})
}

// LogApplied records that the incoming message from sender with the given
// stream epoch and sequence number has been applied (the receiver-side
// dedup watermark).
func (l *OutboxLog) LogApplied(from string, epoch, seq uint64) error {
	return l.append(outboxRecord{Op: "app", Peer: from, Epoch: epoch, Seq: seq})
}

// LogEpoch records this peer's default stream epoch, once, so it stays
// stable across restarts.
func (l *OutboxLog) LogEpoch(epoch uint64) error {
	return l.append(outboxRecord{Op: "epoch", Epoch: epoch})
}

// LogReset records that the stream to dst was torn down and restarted under
// a fresh per-stream epoch: everything previously logged for dst (pending
// entries, its ack floor) is superseded. The caller re-logs the entries
// that survived the reset, renumbered, after this record.
func (l *OutboxLog) LogReset(dst string, epoch uint64) error {
	return l.append(outboxRecord{Op: "reset", Peer: dst, Epoch: epoch})
}

// Sync flushes buffered records and fsyncs the log file. A no-op when
// nothing was appended since the last Sync, so callers can invoke it
// liberally (the outbox flushers do, before every transmit cycle).
func (l *OutboxLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: %w: outbox log is closed", errdefs.ErrWAL)
	}
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("store: %w: flushing outbox log: %w", errdefs.ErrWAL, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: %w: syncing outbox log: %w", errdefs.ErrWAL, err)
	}
	l.dirty = false
	return nil
}

// Recover replays the log into its live state. Meant to be called once,
// right after OpenOutboxLog, before new records are appended. A torn final
// record (crash mid-append) is tolerated; corruption elsewhere is an error.
func (l *OutboxLog) Recover() (*OutboxState, error) {
	st := &OutboxState{
		Epochs:  map[string]uint64{},
		Pending: map[string][]OutboxEntry{},
		NextSeq: map[string]uint64{},
		Acked:   map[string]uint64{},
		Applied: map[string]AppliedMark{},
	}
	f, err := os.Open(filepath.Join(l.dir, outboxLogName))
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading outbox log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec outboxRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if isLastLine(sc) {
				break // torn final record after a crash
			}
			return nil, fmt.Errorf("store: corrupt outbox record at line %d: %w", line, err)
		}
		switch rec.Op {
		case "enq":
			st.Pending[rec.Peer] = append(st.Pending[rec.Peer], OutboxEntry{Seq: rec.Seq, Payload: rec.Payload})
			if rec.Seq > st.NextSeq[rec.Peer] {
				st.NextSeq[rec.Peer] = rec.Seq
			}
		case "ack":
			if rec.Seq > st.Acked[rec.Peer] {
				st.Acked[rec.Peer] = rec.Seq
			}
			kept := st.Pending[rec.Peer][:0]
			for _, e := range st.Pending[rec.Peer] {
				if e.Seq > rec.Seq {
					kept = append(kept, e)
				}
			}
			st.Pending[rec.Peer] = kept
		case "app":
			mark := st.Applied[rec.Peer]
			if rec.Epoch != mark.Epoch || rec.Seq > mark.Seq {
				st.Applied[rec.Peer] = AppliedMark{Epoch: rec.Epoch, Seq: rec.Seq}
			}
		case "epoch":
			st.Epoch = rec.Epoch
		case "reset":
			st.Epochs[rec.Peer] = rec.Epoch
			delete(st.Pending, rec.Peer)
			st.NextSeq[rec.Peer] = 0
			st.Acked[rec.Peer] = 0
		default:
			return nil, fmt.Errorf("store: unknown outbox op %q at line %d", rec.Op, line)
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("store: scanning outbox log: %w", err)
	}
	for dst, pending := range st.Pending {
		if len(pending) == 0 {
			delete(st.Pending, dst)
		}
	}
	return st, nil
}

// Compact atomically rewrites the log to contain exactly the given live
// state, discarding acknowledged history.
func (l *OutboxLog) Compact(st *OutboxState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: %w: outbox log is closed", errdefs.ErrWAL)
	}
	tmp := filepath.Join(l.dir, outboxLogName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w: compacting outbox log: %w", errdefs.ErrWAL, err)
	}
	w := bufio.NewWriter(f)
	write := func(rec outboxRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	var werr error
	if st.Epoch != 0 {
		if err := write(outboxRecord{Op: "epoch", Epoch: st.Epoch}); err != nil {
			werr = err
		}
	}
	// Per-stream epochs (streams reset away from the default) come before
	// the per-destination records they scope — a reset record clears the
	// destination's recovered state, so nothing may precede it.
	for dst, epoch := range st.Epochs {
		if epoch != 0 && epoch != st.Epoch {
			if err := write(outboxRecord{Op: "reset", Peer: dst, Epoch: epoch}); err != nil {
				werr = err
			}
		}
	}
	for dst, acked := range st.Acked {
		if acked > 0 {
			// One synthetic enqueue+ack pair preserves the sequence floor.
			if err := write(outboxRecord{Op: "enq", Peer: dst, Seq: acked}); err != nil {
				werr = err
			}
			if err := write(outboxRecord{Op: "ack", Peer: dst, Seq: acked}); err != nil {
				werr = err
			}
		}
	}
	for dst, pending := range st.Pending {
		for _, e := range pending {
			if err := write(outboxRecord{Op: "enq", Peer: dst, Seq: e.Seq, Payload: e.Payload}); err != nil {
				werr = err
			}
		}
	}
	for from, mark := range st.Applied {
		if err := write(outboxRecord{Op: "app", Peer: from, Epoch: mark.Epoch, Seq: mark.Seq}); err != nil {
			werr = err
		}
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w: compacting outbox log: %w", errdefs.ErrWAL, werr)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, outboxLogName)); err != nil {
		return fmt.Errorf("store: %w: installing compacted outbox log: %w", errdefs.ErrWAL, err)
	}
	// Swap the append handle onto the compacted file. Records still
	// buffered for the old inode are superseded by the snapshot just
	// written (the caller excludes concurrent appenders), so the buffer is
	// simply discarded with it.
	l.f.Close()
	nf, err := os.OpenFile(filepath.Join(l.dir, outboxLogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		l.closed = true
		return fmt.Errorf("store: %w: reopening outbox log: %w", errdefs.ErrWAL, err)
	}
	l.f = nf
	l.w = bufio.NewWriter(nf)
	l.records = 0
	l.dirty = false
	return nil
}

// Close flushes and closes the log file.
func (l *OutboxLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("store: flushing outbox log on close: %w", err)
	}
	return l.f.Close()
}
