// Package store implements the tuple storage layer of a WebdamLog peer:
// named relations holding sets of tuples, lazily-built hash indexes over
// column subsets, and optional durability through a write-ahead log with
// snapshots (wal.go).
//
// A Store holds all relations known at one peer, both the peer's own
// relations and locally-materialized images of remote relations' schemas.
// Extensional relations persist across computation stages; intensional
// relations are cleared at the start of each stage and re-derived.
package store

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/errdefs"
	"repro/internal/value"
)

// Schema describes one relation: its name, owning peer, kind and columns.
type Schema struct {
	Name string
	Peer string
	Kind ast.RelKind
	Cols []string
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// ID returns the canonical "name@peer" identifier.
func (s Schema) ID() string { return s.Name + "@" + s.Peer }

// SplitID splits a canonical "name@peer" identifier back into its parts —
// the single definition of the convention Schema.ID encodes.
func SplitID(id string) (name, peer string) {
	for i := 0; i < len(id); i++ {
		if id[i] == '@' {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}

// GetID returns the relation with the canonical "name@peer" id, or nil.
func (s *Store) GetID(id string) *Relation {
	name, peer := SplitID(id)
	return s.Get(name, peer)
}

// String renders the schema as a declaration.
func (s Schema) String() string {
	return ast.RelationDecl{Name: s.Name, Peer: s.Peer, Kind: s.Kind, Cols: s.Cols}.String()
}

// ColMask is a bitmask over column positions (bit i set = column i bound).
// Relations support at most 64 columns, far beyond anything the paper uses.
type ColMask uint64

// MaskOf builds a mask with the given column positions set.
func MaskOf(cols ...int) ColMask {
	var m ColMask
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether column i is set in the mask.
func (m ColMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// maxIndexBucket is the bucket size past which an index is checked for
// degeneracy. An index one of whose buckets holds both more than this many
// tuples and more than a quarter of the whole relation (degenerateBucket)
// is barely selective — think a constant or two-valued column: lookups
// through it degenerate to scans, and every Delete pays a linear probe of
// the giant bucket. Such indexes are dropped and remembered as degraded so
// they are not rebuilt; Lookup falls back to scanning for those masks. A
// merely *hot* bucket in an otherwise selective index (skew) is kept.
const maxIndexBucket = 1024

// degenerateBucket reports whether a bucket of size n in a relation of size
// total marks its index as not worth keeping.
func degenerateBucket(n, total int) bool {
	return n > maxIndexBucket && n*4 > total
}

// Relation is a set of tuples of fixed arity with lazily-maintained hash
// indexes keyed by subsets of columns. It is safe for concurrent use; the
// engine holds it on a single goroutine but UIs may read concurrently.
type Relation struct {
	schema Schema

	mu      sync.RWMutex
	tuples  map[string]value.Tuple // key = Tuple.Key()
	indexes map[ColMask]map[string][]value.Tuple
	version uint64 // bumped on every mutation
	fp      uint64 // XOR of member-tuple hashes: content fingerprint

	// merkle, once a caller asks for it (Merkle), summarizes the tuple set
	// as a range-queryable tree and is kept current by every mutation. Nil
	// until then, so relations nobody range-compares pay one pointer check
	// per mutation.
	merkle *MerkleTree

	// extSup tracks which remote senders currently maintain each tuple
	// (support.go). Deliberately untouched by Clear: support outlives a view
	// rebuild.
	extSup map[string]*extSupport

	// degraded remembers masks whose index was dropped as degenerate
	// (degenerateBucket), mapped to the relation size at drop time, so it
	// is not rebuilt on the next Lookup. A drop during a transiently
	// skewed prefix (a bulk load arriving grouped by the indexed column)
	// must not be forever: once the relation's size changes by 2x either
	// way, the verdict is re-evaluated.
	degraded map[ColMask]int

	// intern, when non-nil, canonicalizes inserted tuples and their keys
	// through a shared table (value.Interner): the relation then stores the
	// process-wide canonical Tuple and key instead of private clones, so a
	// fact replicated at many peers costs one tuple plus a map entry per
	// replica. Purely an aliasing change — contents, digests and iteration
	// are indistinguishable from an uninterned relation.
	intern *value.Interner
}

// tupleHash is FNV-64a over a tuple's canonical key. XOR-folding these per
// member gives an order-independent, incrementally-maintainable content
// fingerprint: two relations with the same tuples have the same value no
// matter how they got there (clear + re-derivation included).
func tupleHash(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema Schema) *Relation {
	if len(schema.Cols) > 64 {
		panic(fmt.Sprintf("store: relation %s has %d columns; max 64", schema.ID(), len(schema.Cols)))
	}
	return &Relation{
		schema:  schema,
		tuples:  make(map[string]value.Tuple),
		indexes: make(map[ColMask]map[string][]value.Tuple),
	}
}

// SetInterner routes this relation's future inserts through the given
// shared intern table (nil turns interning off). Already-stored tuples are
// left as they are; mixing interned and uninterned tuples in one relation is
// harmless, the interned ones just share storage.
func (r *Relation) SetInterner(in *value.Interner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.intern = in
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Name returns the relation name (without the peer part).
func (r *Relation) Name() string { return r.schema.Name }

// Kind returns Extensional or Intensional.
func (r *Relation) Kind() ast.RelKind { return r.schema.Kind }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Version returns a counter bumped on every mutation, usable for
// cheap change detection.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Fingerprint returns the content fingerprint: equal contents yield equal
// fingerprints regardless of mutation history, so a cleared-and-rederived
// view that ends up identical is recognizably unchanged. (Distinct contents
// colliding requires an XOR collision over 64-bit FNV hashes —
// vanishingly unlikely; users are change *detectors*, not integrity checks.)
func (r *Relation) Fingerprint() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fp
}

// Insert adds t to the relation. It returns true if the tuple was new.
// The tuple must match the relation's arity.
func (r *Relation) Insert(t value.Tuple) bool {
	if len(t) != r.schema.Arity() {
		panic(fmt.Sprintf("store: arity mismatch inserting %d-tuple into %s(%d)",
			len(t), r.schema.ID(), r.schema.Arity()))
	}
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tuples[key]; dup {
		return false
	}
	if r.intern != nil {
		t, key = r.intern.Tuple(t)
	} else {
		t = t.Clone()
	}
	r.tuples[key] = t
	for mask, idx := range r.indexes {
		ik := indexKey(t, mask)
		bucket := append(idx[ik], t)
		if degenerateBucket(len(bucket), len(r.tuples)) {
			r.dropIndexLocked(mask)
			continue
		}
		idx[ik] = bucket
	}
	r.version++
	r.fp ^= tupleHash(key)
	if r.merkle != nil {
		r.merkle.Add(key)
	}
	return true
}

// dropIndexLocked removes a barely selective index and remembers not to
// rebuild it until the relation changes size substantially.
func (r *Relation) dropIndexLocked(mask ColMask) {
	delete(r.indexes, mask)
	if r.degraded == nil {
		r.degraded = make(map[ColMask]int)
	}
	r.degraded[mask] = len(r.tuples)
}

// InsertMany adds all tuples under a single lock acquisition — the store
// half of an atomic batch. It returns the tuples that were actually new (in
// input order), which is exactly what the caller must log to a WAL. Every
// tuple must match the relation's arity.
func (r *Relation) InsertMany(ts []value.Tuple) []value.Tuple {
	if len(ts) == 0 {
		return nil
	}
	var added []value.Tuple
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range ts {
		if len(t) != r.schema.Arity() {
			panic(fmt.Sprintf("store: arity mismatch inserting %d-tuple into %s(%d)",
				len(t), r.schema.ID(), r.schema.Arity()))
		}
		key := t.Key()
		if _, dup := r.tuples[key]; dup {
			continue
		}
		if r.intern != nil {
			t, key = r.intern.Tuple(t)
		} else {
			t = t.Clone()
		}
		r.tuples[key] = t
		for mask, idx := range r.indexes {
			ik := indexKey(t, mask)
			bucket := append(idx[ik], t)
			if degenerateBucket(len(bucket), len(r.tuples)) {
				r.dropIndexLocked(mask)
				continue
			}
			idx[ik] = bucket
		}
		r.fp ^= tupleHash(key)
		if r.merkle != nil {
			r.merkle.Add(key)
		}
		added = append(added, t)
	}
	if len(added) > 0 {
		r.version++
	}
	return added
}

// DeleteMany removes all tuples under a single lock acquisition, returning
// the tuples that actually existed (in input order).
func (r *Relation) DeleteMany(ts []value.Tuple) []value.Tuple {
	if len(ts) == 0 {
		return nil
	}
	var removed []value.Tuple
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range ts {
		key := t.Key()
		if _, ok := r.tuples[key]; !ok {
			continue
		}
		delete(r.tuples, key)
		for mask, idx := range r.indexes {
			ik := indexKey(t, mask)
			bucket := idx[ik]
			for i := range bucket {
				if bucket[i].Equal(t) {
					bucket[i] = bucket[len(bucket)-1]
					bucket = bucket[:len(bucket)-1]
					break
				}
			}
			if len(bucket) == 0 {
				delete(idx, ik)
			} else {
				idx[ik] = bucket
			}
		}
		r.fp ^= tupleHash(key)
		if r.merkle != nil {
			r.merkle.Remove(key)
		}
		removed = append(removed, t)
	}
	if len(removed) > 0 {
		r.version++
	}
	return removed
}

// Delete removes t from the relation. It returns true if the tuple existed.
func (r *Relation) Delete(t value.Tuple) bool {
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tuples[key]; !ok {
		return false
	}
	delete(r.tuples, key)
	for mask, idx := range r.indexes {
		ik := indexKey(t, mask)
		bucket := idx[ik]
		for i := range bucket {
			if bucket[i].Equal(t) {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(idx, ik)
		} else {
			idx[ik] = bucket
		}
	}
	r.version++
	r.fp ^= tupleHash(key)
	if r.merkle != nil {
		r.merkle.Remove(key)
	}
	return true
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t value.Tuple) bool {
	key := t.Key()
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tuples[key]
	return ok
}

// Clear removes all tuples (used for intensional relations at stage start).
func (r *Relation) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tuples) == 0 {
		return
	}
	r.tuples = make(map[string]value.Tuple)
	for mask := range r.indexes {
		r.indexes[mask] = make(map[string][]value.Tuple)
	}
	r.version++
	r.fp = 0
	if r.merkle != nil {
		r.merkle = NewMerkleTree()
	}
}

// Iterate calls fn for every tuple until fn returns false. The iteration
// order is unspecified. fn sees a snapshot of the relation taken when
// Iterate is called, so fn may insert into or delete from the relation
// (recursive rules do exactly that); such mutations are not reflected in
// the ongoing iteration.
func (r *Relation) Iterate(fn func(value.Tuple) bool) {
	r.mu.RLock()
	snap := make([]value.Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		snap = append(snap, t)
	}
	r.mu.RUnlock()
	for _, t := range snap {
		if !fn(t) {
			return
		}
	}
}

// Tuples returns all tuples, sorted lexicographically (a stable snapshot).
func (r *Relation) Tuples() []value.Tuple {
	r.mu.RLock()
	out := make([]value.Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	r.mu.RUnlock()
	value.SortTuples(out)
	return out
}

// EnsureIndex builds (if absent) a hash index over the columns in mask.
func (r *Relation) EnsureIndex(mask ColMask) {
	if mask == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureIndexLocked(mask)
}

// ensureIndexLocked builds (or returns) the index over mask, or nil when the
// mask is degraded — too unselective to be worth maintaining.
func (r *Relation) ensureIndexLocked(mask ColMask) map[string][]value.Tuple {
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	if at, deg := r.degraded[mask]; deg {
		if len(r.tuples) <= at*2 && len(r.tuples)*2 >= at {
			return nil // size unchanged since the degeneracy verdict
		}
		delete(r.degraded, mask) // 2x growth or shrinkage: re-evaluate below
	}
	idx := make(map[string][]value.Tuple, len(r.tuples))
	for _, t := range r.tuples {
		ik := indexKey(t, mask)
		bucket := append(idx[ik], t)
		if degenerateBucket(len(bucket), len(r.tuples)) {
			r.dropIndexLocked(mask) // records the degradation
			return nil
		}
		idx[ik] = bucket
	}
	r.indexes[mask] = idx
	return idx
}

// FanEstimate estimates how many tuples an equality lookup over the
// columns in mask will match — the per-probe cost estimate behind the
// engine's join planner. With a materialized index over exactly that mask
// the estimate is the true mean bucket size (tuples / distinct keys). A
// mask whose index was dropped as degenerate estimates as a full scan:
// probing it really does scan. Otherwise — no statistics yet — each bound
// column is assumed to keep one tuple in ten (System R's classic equality
// selectivity), floored at one match.
func (r *Relation) FanEstimate(mask ColMask) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := float64(len(r.tuples))
	if mask == 0 || len(r.tuples) == 0 {
		return n
	}
	if idx, ok := r.indexes[mask]; ok && len(idx) > 0 {
		return n / float64(len(idx))
	}
	if _, deg := r.degraded[mask]; deg {
		return n
	}
	est := n
	for c := 0; c < len(r.schema.Cols); c++ {
		if mask.Has(c) {
			est *= 0.1
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

// IndexCount returns the number of materialized indexes (for introspection).
func (r *Relation) IndexCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.indexes)
}

// Lookup calls fn for every tuple whose columns in mask equal the
// corresponding values in bound (bound has one entry per set bit of mask, in
// ascending column order). If useIndex is true an index over mask is built
// on first use; otherwise the relation is scanned. fn sees a snapshot taken
// at call time and may mutate the relation (inserts during recursive rule
// evaluation). Iteration stops when fn returns false.
func (r *Relation) Lookup(mask ColMask, bound []value.Value, useIndex bool, fn func(value.Tuple) bool) {
	if mask == 0 {
		r.Iterate(fn)
		return
	}
	if useIndex {
		r.mu.Lock()
		idx := r.ensureIndexLocked(mask)
		if idx != nil {
			bucket := idx[boundKey(bound)]
			// The bucket's backing array is mutated in place only by Delete's
			// swap-remove; appends during recursive insertion reallocate
			// rather than alias. The engine's insert paths never delete
			// mid-join, and its deletion pass (over-delete) may delete head
			// tuples while a Lookup is in flight but records every deletion
			// in its ghost set and re-sweeps ghosts after the Lookup, so a
			// tuple skipped by the in-place swap is still visited. Any new
			// caller that deletes during iteration must provide an
			// equivalent re-sweep.
			r.mu.Unlock()
			for _, t := range bucket {
				if !fn(t) {
					return
				}
			}
			return
		}
		// Degraded mask: fall through to the scan path.
		r.mu.Unlock()
	}
	r.mu.RLock()
	snap := make([]value.Tuple, 0, len(r.tuples))
scan:
	for _, t := range r.tuples {
		bi := 0
		for c := 0; c < len(t); c++ {
			if mask.Has(c) {
				if !t[c].Equal(bound[bi]) {
					continue scan
				}
				bi++
			}
		}
		snap = append(snap, t)
	}
	r.mu.RUnlock()
	for _, t := range snap {
		if !fn(t) {
			return
		}
	}
}

// ContainsKey reports whether the relation holds a tuple with the given
// canonical key — value.Tuple.Key's AppendKey encoding over every column.
// The engine's compiled execution layer tests memberships with keys it has
// already encoded, skipping the tuple materialization Contains would need.
func (r *Relation) ContainsKey(key []byte) bool {
	r.mu.RLock()
	_, ok := r.tuples[string(key)]
	r.mu.RUnlock()
	return ok
}

// Probe calls fn for every tuple whose columns in mask encode (AppendKey,
// ascending column order — the index-bucket key convention) to key. It is
// Lookup with the bound values pre-encoded: the compiled execution layer
// builds keys directly into a scratch buffer instead of collecting bound
// []value.Value per probe. A zero mask iterates the whole relation; a
// degraded mask falls back to a scan. fn sees a snapshot with the same
// mutation caveats as Lookup.
func (r *Relation) Probe(mask ColMask, key []byte, fn func(value.Tuple) bool) {
	if mask == 0 {
		r.Iterate(fn)
		return
	}
	r.mu.Lock()
	idx := r.ensureIndexLocked(mask)
	if idx != nil {
		bucket := idx[string(key)]
		// See Lookup for why handing the bucket out of the lock is sound.
		r.mu.Unlock()
		for _, t := range bucket {
			if !fn(t) {
				return
			}
		}
		return
	}
	r.mu.Unlock()
	r.scanKey(mask, key, fn)
}

// scanKey is Probe's degraded-mask path: snapshot every tuple whose masked
// columns encode to key (AppendKey is injective, so byte equality is value
// equality), then iterate outside the lock.
func (r *Relation) scanKey(mask ColMask, key []byte, fn func(value.Tuple) bool) {
	r.mu.RLock()
	var snap []value.Tuple
	var buf []byte
	for _, t := range r.tuples {
		buf = buf[:0]
		for c := 0; c < len(t); c++ {
			if mask.Has(c) {
				buf = t[c].AppendKey(buf)
			}
		}
		if bytes.Equal(buf, key) {
			snap = append(snap, t)
		}
	}
	r.mu.RUnlock()
	for _, t := range snap {
		if !fn(t) {
			return
		}
	}
}

// ProbeBatch is Probe amortized across a frontier: one lock acquisition and
// one index-ensure resolve the buckets for every key, then fn(i, t) runs for
// each tuple matching keys[i], in key order. scratch holds the resolved
// buckets between the locked resolve and the unlocked iteration; it is grown
// as needed and returned so callers reuse it across batches. mask must be
// non-zero; a degraded mask degenerates to one scan per key. Returning false
// from fn stops the whole batch.
func (r *Relation) ProbeBatch(mask ColMask, keys [][]byte, scratch [][]value.Tuple, fn func(i int, t value.Tuple) bool) [][]value.Tuple {
	if cap(scratch) < len(keys) {
		scratch = make([][]value.Tuple, len(keys))
	}
	scratch = scratch[:len(keys)]
	r.mu.Lock()
	idx := r.ensureIndexLocked(mask)
	if idx == nil {
		r.mu.Unlock()
		stopped := false
		for i, k := range keys {
			r.scanKey(mask, k, func(t value.Tuple) bool {
				if !fn(i, t) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				break
			}
		}
		return scratch
	}
	for i, k := range keys {
		scratch[i] = idx[string(k)]
	}
	r.mu.Unlock()
	for i, bucket := range scratch {
		for _, t := range bucket {
			if !fn(i, t) {
				return scratch
			}
		}
	}
	return scratch
}

func indexKey(t value.Tuple, mask ColMask) string {
	var dst []byte
	for c := 0; c < len(t); c++ {
		if mask.Has(c) {
			dst = t[c].AppendKey(dst)
		}
	}
	return string(dst)
}

func boundKey(bound []value.Value) string {
	var dst []byte
	for _, v := range bound {
		dst = v.AppendKey(dst)
	}
	return string(dst)
}

// Store is the catalog of relations at one peer.
type Store struct {
	mu     sync.RWMutex
	rels   map[string]*Relation // key = name@peer
	intern *value.Interner      // shared by every relation declared here
}

// New creates an empty store.
func New() *Store {
	return &Store{rels: make(map[string]*Relation)}
}

// SetInterner makes every relation of this store — existing and future —
// canonicalize inserted tuples through the given shared intern table. Peers
// of one swarm point their stores at one Interner so replicated facts are
// stored once process-wide (see Relation.SetInterner); nil turns interning
// off for future inserts.
func (s *Store) SetInterner(in *value.Interner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intern = in
	for _, r := range s.rels {
		r.SetInterner(in)
	}
}

// Declare creates the relation if it does not exist, and returns it. If a
// relation with the same id exists, its schema must agree on kind and arity.
func (s *Store) Declare(schema Schema) (*Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := schema.ID()
	if r, ok := s.rels[id]; ok {
		have := r.Schema()
		if have.Kind != schema.Kind || have.Arity() != schema.Arity() {
			return nil, fmt.Errorf("store: %w: redeclaration of %s: have %s, want %s",
				errdefs.ErrSchemaConflict, id, have, schema)
		}
		return r, nil
	}
	r := NewRelation(schema)
	if s.intern != nil {
		r.SetInterner(s.intern)
	}
	s.rels[id] = r
	return r, nil
}

// Get returns the relation called name at peer, or nil if undeclared.
func (s *Store) Get(name, peer string) *Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rels[name+"@"+peer]
}

// MustGet is Get but panics on undeclared relations (programming errors).
func (s *Store) MustGet(name, peer string) *Relation {
	r := s.Get(name, peer)
	if r == nil {
		panic("store: undeclared relation " + name + "@" + peer)
	}
	return r
}

// Relations returns all relations sorted by id (a stable snapshot).
func (s *Store) Relations() []*Relation {
	s.mu.RLock()
	out := make([]*Relation, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, r)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].schema.ID() < out[j].schema.ID() })
	return out
}

// RelationsOf returns all relations owned by the given peer, sorted by name.
func (s *Store) RelationsOf(peer string) []*Relation {
	var out []*Relation
	for _, r := range s.Relations() {
		if r.schema.Peer == peer {
			out = append(out, r)
		}
	}
	return out
}

// ClearIntensional clears every intensional relation (stage start).
func (s *Store) ClearIntensional() {
	for _, r := range s.Relations() {
		if r.Kind() == ast.Intensional {
			r.Clear()
		}
	}
}

// Facts returns every tuple in every relation owned by peer as facts,
// sorted for stable output.
func (s *Store) Facts(peer string) []ast.Fact {
	var out []ast.Fact
	for _, r := range s.RelationsOf(peer) {
		for _, t := range r.Tuples() {
			out = append(out, ast.Fact{Rel: r.Name(), Peer: peer, Args: t})
		}
	}
	return out
}
