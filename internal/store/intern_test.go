package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

// internedPair builds two relations over the same schema, one interned and
// one plain, for equivalence testing.
func internedPair(name string) (interned, plain *Relation, in *value.Interner) {
	in = value.NewInterner()
	interned = NewRelation(schema2(name))
	interned.SetInterner(in)
	plain = NewRelation(schema2(name))
	return interned, plain, in
}

// TestInternedRelationEquivalence: an interned relation is observationally
// identical to a plain one under the same mutation sequence — contents,
// digest, fingerprint, Merkle root, lookups.
func TestInternedRelationEquivalence(t *testing.T) {
	ir, pr, _ := internedPair("r")
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		tpl := tup(fmt.Sprintf("k%d", rng.Intn(40)), fmt.Sprintf("v%d", rng.Intn(10)))
		if rng.Intn(3) == 0 {
			if ir.Delete(tpl) != pr.Delete(tpl) {
				t.Fatalf("step %d: Delete(%v) disagreed", i, tpl)
			}
		} else {
			if ir.Insert(tpl) != pr.Insert(tpl) {
				t.Fatalf("step %d: Insert(%v) disagreed", i, tpl)
			}
		}
	}
	if ir.Len() != pr.Len() {
		t.Fatalf("Len %d != %d", ir.Len(), pr.Len())
	}
	if ir.Digest() != pr.Digest() {
		t.Fatalf("Digest %+v != %+v", ir.Digest(), pr.Digest())
	}
	if ir.Fingerprint() != pr.Fingerprint() {
		t.Fatalf("Fingerprint %x != %x", ir.Fingerprint(), pr.Fingerprint())
	}
	if ir.Merkle().Root() != pr.Merkle().Root() {
		t.Fatalf("Merkle root %+v != %+v", ir.Merkle().Root(), pr.Merkle().Root())
	}
	if got, want := sortedKeys(ir), sortedKeys(pr); !equalStrings(got, want) {
		t.Fatalf("contents diverged:\n%v\nvs\n%v", got, want)
	}
}

// TestInternedIndexMatchesScan: Lookup through an index over interned
// tuples returns exactly what a full scan returns — the index≡scan
// invariant must survive tuples whose backing arrays are shared.
func TestInternedIndexMatchesScan(t *testing.T) {
	ir, _, _ := internedPair("r")
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 300; i++ {
		ir.Insert(tup(fmt.Sprintf("k%d", rng.Intn(20)), fmt.Sprintf("v%d", i)))
	}
	mask := MaskOf(0)
	ir.EnsureIndex(mask)
	for k := 0; k < 20; k++ {
		bound := []value.Value{value.Str(fmt.Sprintf("k%d", k))}
		var viaIndex, viaScan []string
		ir.Lookup(mask, bound, true, func(tp value.Tuple) bool {
			viaIndex = append(viaIndex, tp.Key())
			return true
		})
		ir.Lookup(mask, bound, false, func(tp value.Tuple) bool {
			viaScan = append(viaScan, tp.Key())
			return true
		})
		sort.Strings(viaIndex)
		sort.Strings(viaScan)
		if !equalStrings(viaIndex, viaScan) {
			t.Fatalf("k%d: index returned %d tuples, scan %d", k, len(viaIndex), len(viaScan))
		}
	}
}

// TestInternedDigestHistoryIndependence: two interned relations reaching the
// same contents by different mutation histories — and sharing one intern
// table — agree on Digest, Fingerprint, and Merkle root.
func TestInternedDigestHistoryIndependence(t *testing.T) {
	in := value.NewInterner()
	a := NewRelation(schema2("r"))
	a.SetInterner(in)
	b := NewRelation(schema2("r"))
	b.SetInterner(in)

	// a: insert 0..19 ascending. b: insert 19..0 descending with detours.
	for i := 0; i < 20; i++ {
		a.Insert(tup(fmt.Sprintf("k%02d", i), "v"))
	}
	for i := 19; i >= 0; i-- {
		b.Insert(tup("detour", fmt.Sprintf("d%d", i)))
		b.Insert(tup(fmt.Sprintf("k%02d", i), "v"))
	}
	for i := 19; i >= 0; i-- {
		b.Delete(tup("detour", fmt.Sprintf("d%d", i)))
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("history-dependent digest: %+v vs %+v", a.Digest(), b.Digest())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("history-dependent fingerprint: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Merkle().Root() != b.Merkle().Root() {
		t.Fatalf("history-dependent Merkle root: %+v vs %+v", a.Merkle().Root(), b.Merkle().Root())
	}
}

// TestInternedTuplesShared: two relations attached to the same interner
// store pointer-identical tuples for equal contents — the property the
// swarm's memory scaling rests on — while a plain relation clones.
func TestInternedTuplesShared(t *testing.T) {
	in := value.NewInterner()
	a := NewRelation(schema2("a"))
	a.SetInterner(in)
	b := NewRelation(schema2("b"))
	b.SetInterner(in)
	src := tup("shared", "fact")
	a.Insert(src)
	b.Insert(src.Clone())
	ta, tb := a.Tuples()[0], b.Tuples()[0]
	if &ta[0] != &tb[0] {
		t.Fatal("equal tuples in sibling interned relations do not share backing")
	}
	if &ta[0] == &src[0] {
		t.Fatal("relation aliased the caller's tuple instead of the canonical instance")
	}

	// InsertMany goes through the same choke point.
	c := NewRelation(schema2("c"))
	c.SetInterner(in)
	c.InsertMany([]value.Tuple{tup("shared", "fact")})
	if tc := c.Tuples()[0]; &tc[0] != &ta[0] {
		t.Fatal("InsertMany bypassed the intern table")
	}

	plain := NewRelation(schema2("p"))
	plain.Insert(src)
	if tp := plain.Tuples()[0]; &tp[0] == &src[0] {
		t.Fatal("plain relation aliased the caller's tuple — clone contract broken")
	}
}

// TestStoreInternerWiring: Store.SetInterner propagates to relations
// declared both before and after the call.
func TestStoreInternerWiring(t *testing.T) {
	in := value.NewInterner()
	s := New()
	before, err := s.Declare(schema2("before"))
	if err != nil {
		t.Fatal(err)
	}
	s.SetInterner(in)
	after, err := s.Declare(schema2("after"))
	if err != nil {
		t.Fatal(err)
	}
	before.Insert(tup("x", "y"))
	after.Insert(tup("x", "y"))
	tb, ta := before.Tuples()[0], after.Tuples()[0]
	if &tb[0] != &ta[0] {
		t.Fatal("relations of one store do not share canonical tuples")
	}
	if in.Stats().Tuples == 0 {
		t.Fatal("intern table empty after interned inserts")
	}
}

func sortedKeys(r *Relation) []string {
	var keys []string
	r.Iterate(func(t value.Tuple) bool {
		keys = append(keys, t.Key())
		return true
	})
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
