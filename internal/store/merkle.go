package store

import "sort"

// Merkle summary trees over the canonical tuple-key order.
//
// A MerkleTree summarizes a keyed set so that two peers holding *almost*
// the same set can find where they differ in O(δ log n) bytes of dialogue
// instead of shipping a whole view. The canonical order is the order of
// KeyHash(key) — the same FNV-64a fold the flat Digest and the relation
// fingerprint use — so both ends of a comparison place every member at the
// same position in the 64-bit hash line without coordinating.
//
// Structure: a fanout-16 trie over the leading bits of each member's key
// hash. Leaf pages hold up to merkleLeafMax (~128) keys; a page that
// overflows splits into sixteen children on the next 4 hash bits, and a
// subtree that drains below merkleLeafMin collapses back into one page
// (hysteresis, so a set oscillating around the threshold does not thrash).
// Every node keeps the XOR fold and count of the members below it — an
// internal node's digest is exactly the fold of its children's digests —
// so:
//
//   - Root() is O(1) and always equals the flat Digest of the same set;
//   - Add/Remove update the fold and count along one root-to-leaf path,
//     O(log n) amortized (splits and collapses touch one page);
//   - RangeDigest(lo, hi) decomposes the range into O(log n) whole
//     subtrees plus at most two partially-covered leaf pages;
//   - RangeKeys(lo, hi) enumerates the members of a range in
//     O(log n + members).
//
// Because node digests are order-insensitive folds of *members* (not
// hashes of child digests), two trees summarizing the same set compare
// equal on any hash range even if their page boundaries differ — the
// bisection protocol never has to synchronize tree shapes, only ranges.
//
// A MerkleTree is not safe for concurrent use; owners guard it with the
// lock that already guards the summarized set.

const (
	// merkleFanout is the trie fanout: 4 hash bits per level.
	merkleFanout = 16
	merkleBits   = 4
	// merkleLeafMax is the page size: a leaf holding more keys splits.
	merkleLeafMax = 128
	// merkleLeafMin is the collapse threshold: an internal node whose
	// subtree drains to this many keys becomes a single page again. It is
	// well below merkleLeafMax/2 so alternating add/remove around a
	// boundary cannot split and collapse on every mutation.
	merkleLeafMin = 48
	// merkleMaxDepth caps the trie depth at the hash width: members whose
	// hashes collide on all 64 bits share a page forever.
	merkleMaxDepth = 64 / merkleBits
)

// MerkleTree is an incrementally maintained summary tree over a keyed set.
// The zero value is not usable; call NewMerkleTree.
type MerkleTree struct {
	root merkleNode
}

// merkleNode is one trie node: a leaf page (children nil, keys set) or an
// internal node (children set, keys nil). hash/count summarize the whole
// subtree in both cases.
type merkleNode struct {
	hash     uint64
	count    int
	children *[merkleFanout]*merkleNode
	keys     map[string]uint64 // key -> KeyHash(key)
}

// NewMerkleTree returns an empty tree.
func NewMerkleTree() *MerkleTree {
	return &MerkleTree{root: merkleNode{keys: map[string]uint64{}}}
}

// Root returns the digest of the whole set: O(1), and identical to folding
// every member into a flat Digest.
func (t *MerkleTree) Root() Digest {
	return Digest{Hash: t.root.hash, Count: uint64(t.root.count)}
}

// Len returns the member count.
func (t *MerkleTree) Len() int { return t.root.count }

// childIndex returns which child of a depth-d node the hash h falls under.
func childIndex(h uint64, depth int) int {
	return int(h >> (64 - merkleBits*(depth+1)) & (merkleFanout - 1))
}

// Add inserts key, reporting whether it was new.
func (t *MerkleTree) Add(key string) bool {
	h := KeyHash(key)
	n, depth := &t.root, 0
	var path [merkleMaxDepth + 1]*merkleNode
	steps := 0
	for n.children != nil {
		path[steps] = n
		steps++
		n = n.child(childIndex(h, depth))
		depth++
	}
	if _, dup := n.keys[key]; dup {
		return false
	}
	n.keys[key] = h
	n.hash ^= h
	n.count++
	for i := 0; i < steps; i++ {
		path[i].hash ^= h
		path[i].count++
	}
	if len(n.keys) > merkleLeafMax && depth < merkleMaxDepth {
		n.split(depth)
	}
	return true
}

// Remove deletes key, reporting whether it was present. Removing an absent
// key is a no-op (and panics under DebugAsserts): silently folding an
// unknown hash out would corrupt every ancestor digest.
func (t *MerkleTree) Remove(key string) bool {
	h := KeyHash(key)
	n, depth := &t.root, 0
	var path [merkleMaxDepth + 1]*merkleNode
	steps := 0
	for n.children != nil {
		path[steps] = n
		steps++
		n = n.child(childIndex(h, depth))
		depth++
	}
	if _, ok := n.keys[key]; !ok {
		if DebugAsserts {
			panic("store: MerkleTree.Remove of a key never added: " + key)
		}
		return false
	}
	delete(n.keys, key)
	n.hash ^= h
	n.count--
	for i := 0; i < steps; i++ {
		path[i].hash ^= h
		path[i].count--
	}
	// Collapse the shallowest drained ancestor (it subsumes any deeper
	// ones) back into a single page.
	for i := 0; i < steps; i++ {
		if path[i].count <= merkleLeafMin {
			path[i].collapse()
			break
		}
	}
	return true
}

// child returns (creating if needed) the i-th child of an internal node.
func (n *merkleNode) child(i int) *merkleNode {
	c := n.children[i]
	if c == nil {
		c = &merkleNode{keys: map[string]uint64{}}
		n.children[i] = c
	}
	return c
}

// split turns an overflowing leaf page at the given depth into an internal
// node, redistributing its keys on the next merkleBits hash bits.
func (n *merkleNode) split(depth int) {
	keys := n.keys
	n.keys = nil
	n.children = new([merkleFanout]*merkleNode)
	for key, h := range keys {
		c := n.child(childIndex(h, depth))
		c.keys[key] = h
		c.hash ^= h
		c.count++
	}
}

// collapse turns a drained subtree back into a single leaf page.
func (n *merkleNode) collapse() {
	if n.children == nil {
		return
	}
	keys := make(map[string]uint64, n.count)
	n.gather(keys)
	n.children = nil
	n.keys = keys
}

// gather collects every (key, hash) below n.
func (n *merkleNode) gather(into map[string]uint64) {
	if n.children == nil {
		for key, h := range n.keys {
			into[key] = h
		}
		return
	}
	for _, c := range n.children {
		if c != nil {
			c.gather(into)
		}
	}
}

// RangeDigest returns the digest of the members whose key hash falls in the
// inclusive range [lo, hi]. The full range [0, ^uint64(0)] equals Root().
func (t *MerkleTree) RangeDigest(lo, hi uint64) Digest {
	if lo > hi {
		return Digest{}
	}
	var d Digest
	t.root.rangeDigest(0, 0, lo, hi, &d)
	return d
}

// nodeSpan returns the inclusive hash interval a node at (depth, prefix)
// covers; prefix holds the node's leading depth*merkleBits bits, left
// aligned.
func nodeSpan(prefix uint64, depth int) (lo, hi uint64) {
	if depth == 0 {
		return 0, ^uint64(0)
	}
	width := uint(64 - merkleBits*depth)
	return prefix, prefix | (1<<width - 1)
}

func (n *merkleNode) rangeDigest(prefix uint64, depth int, lo, hi uint64, d *Digest) {
	nLo, nHi := nodeSpan(prefix, depth)
	if nHi < lo || nLo > hi || n.count == 0 {
		return
	}
	if lo <= nLo && nHi <= hi {
		d.Hash ^= n.hash
		d.Count += uint64(n.count)
		return
	}
	if n.children == nil {
		for _, h := range n.keys {
			if lo <= h && h <= hi {
				d.Hash ^= h
				d.Count++
			}
		}
		return
	}
	for i, c := range n.children {
		if c != nil {
			c.rangeDigest(prefix|uint64(i)<<(64-merkleBits*(depth+1)), depth+1, lo, hi, d)
		}
	}
}

// RangeKeys returns the keys whose hash falls in the inclusive range
// [lo, hi], in canonical (hash, key) order. The slice is the caller's.
func (t *MerkleTree) RangeKeys(lo, hi uint64) []string {
	if lo > hi {
		return nil
	}
	var out []rangeKey
	t.root.rangeKeys(0, 0, lo, hi, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].hash != out[j].hash {
			return out[i].hash < out[j].hash
		}
		return out[i].key < out[j].key
	})
	keys := make([]string, len(out))
	for i, rk := range out {
		keys[i] = rk.key
	}
	return keys
}

type rangeKey struct {
	hash uint64
	key  string
}

func (n *merkleNode) rangeKeys(prefix uint64, depth int, lo, hi uint64, out *[]rangeKey) {
	nLo, nHi := nodeSpan(prefix, depth)
	if nHi < lo || nLo > hi || n.count == 0 {
		return
	}
	if n.children == nil {
		for key, h := range n.keys {
			if lo <= h && h <= hi {
				*out = append(*out, rangeKey{hash: h, key: key})
			}
		}
		return
	}
	for i, c := range n.children {
		if c != nil {
			c.rangeKeys(prefix|uint64(i)<<(64-merkleBits*(depth+1)), depth+1, lo, hi, out)
		}
	}
}
