package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func invariantRel(t *testing.T, arity int) *Relation {
	t.Helper()
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	db := New()
	r, err := db.Declare(Schema{Name: "r", Peer: "local", Kind: ast.Extensional, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// scanMatches is the oracle: the tuples matching (mask, bound) by a plain
// full scan, as a multiset of keys.
func scanMatches(r *Relation, mask ColMask, bound []value.Value) map[string]int {
	out := map[string]int{}
	r.Iterate(func(t value.Tuple) bool {
		bi := 0
		for c := 0; c < len(t); c++ {
			if mask.Has(c) {
				if !bound[bi].Equal(t[c]) {
					return true
				}
				bi++
			}
		}
		out[t.Key()]++
		return true
	})
	return out
}

func probeKey(mask ColMask, bound []value.Value) []byte {
	var key []byte
	for _, v := range bound {
		key = v.AppendKey(key)
	}
	_ = mask
	return key
}

// TestIndexMatchesScanUnderRandomMutation interleaves InsertMany,
// DeleteMany, single-tuple ops, and Clear at random, and after every step
// checks that indexed Lookup, keyed Probe, and batch ProbeBatch all return
// exactly what a full scan returns, for every column mask.
func TestIndexMatchesScanUnderRandomMutation(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 20; trial++ {
		r := invariantRel(t, 2)
		domain := int64(2 + rnd.Intn(8))
		randTuple := func() value.Tuple {
			return value.Tuple{value.Int(rnd.Int63n(domain)), value.Int(rnd.Int63n(domain))}
		}
		for step := 0; step < 40; step++ {
			switch rnd.Intn(10) {
			case 0:
				r.Clear()
			case 1, 2, 3:
				var ts []value.Tuple
				for k := 0; k < rnd.Intn(6); k++ {
					ts = append(ts, randTuple())
				}
				r.DeleteMany(ts)
			case 4:
				r.Delete(randTuple())
			case 5:
				r.Insert(randTuple())
			default:
				var ts []value.Tuple
				for k := 0; k < rnd.Intn(8); k++ {
					ts = append(ts, randTuple())
				}
				r.InsertMany(ts)
			}
			for mask := ColMask(1); mask < 4; mask++ {
				r.EnsureIndex(mask)
				var bound []value.Value
				for c := 0; c < 2; c++ {
					if mask.Has(c) {
						bound = append(bound, value.Int(rnd.Int63n(domain)))
					}
				}
				want := scanMatches(r, mask, bound)

				got := map[string]int{}
				r.Lookup(mask, bound, true, func(tp value.Tuple) bool {
					got[tp.Key()]++
					return true
				})
				diffMultiset(t, fmt.Sprintf("trial %d step %d mask %d Lookup", trial, step, mask), want, got)

				got = map[string]int{}
				key := probeKey(mask, bound)
				r.Probe(mask, key, func(tp value.Tuple) bool {
					got[tp.Key()]++
					return true
				})
				diffMultiset(t, fmt.Sprintf("trial %d step %d mask %d Probe", trial, step, mask), want, got)

				got = map[string]int{}
				r.ProbeBatch(mask, [][]byte{key, key}, nil, func(i int, tp value.Tuple) bool {
					if i == 0 {
						got[tp.Key()]++
					}
					return true
				})
				diffMultiset(t, fmt.Sprintf("trial %d step %d mask %d ProbeBatch", trial, step, mask), want, got)
			}
		}
	}
}

func diffMultiset(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d distinct keys, scan has %d\nwant %v\ngot  %v", label, len(got), len(want), want, got)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: key %q seen %d times, scan says %d", label, k, got[k], n)
		}
	}
}

// TestFanEstimateConsistencyAfterDegradedRetry pins the estimator across
// the index lifecycle: selective index → true mean bucket size; degenerate
// column → index dropped, estimate collapses to a full scan (probing it
// really does scan) and stays there while the size is within the 2x retry
// band; shrinking past the band → the rebuild re-evaluates and the
// now-acceptable index restores the bucket-based estimate.
func TestFanEstimateConsistencyAfterDegradedRetry(t *testing.T) {
	r := invariantRel(t, 2)
	const n = 1100 // > maxIndexBucket so a constant column degenerates
	var ts []value.Tuple
	for i := 0; i < n; i++ {
		ts = append(ts, value.Tuple{value.Int(0), value.Int(int64(i))})
	}
	r.InsertMany(ts)

	// Column 1 is unique: the index materializes and the estimate is the
	// exact mean bucket size, 1.
	r.EnsureIndex(2)
	if got := r.FanEstimate(2); got != 1 {
		t.Fatalf("unique-column FanEstimate = %v, want 1", got)
	}
	// Column 0 is constant: one bucket of 1100 > maxIndexBucket and > 1/4 of
	// the relation → dropped as degenerate, estimate = full scan.
	r.EnsureIndex(1)
	if got := r.FanEstimate(1); got != float64(n) {
		t.Fatalf("degenerate-column FanEstimate = %v, want %v (full scan)", got, n)
	}
	if r.IndexCount() != 1 {
		t.Fatalf("IndexCount = %d after degenerate drop, want 1", r.IndexCount())
	}

	// Within the 2x band the degraded verdict is remembered: no rebuild, and
	// the estimate still reports a scan.
	r.DeleteMany(ts[:100])
	r.EnsureIndex(1)
	if got, want := r.FanEstimate(1), float64(n-100); got != want {
		t.Fatalf("degraded FanEstimate within band = %v, want %v", got, want)
	}

	// Shrink past 2x: the retry re-evaluates. 500 tuples in one bucket is
	// under maxIndexBucket, so the index comes back and the estimate with it.
	r.DeleteMany(ts[100:600])
	r.EnsureIndex(1)
	if got, want := r.FanEstimate(1), float64(500); got != want {
		t.Fatalf("FanEstimate after retry rebuild = %v, want %v (single 500-bucket)", got, want)
	}
	if r.IndexCount() != 2 {
		t.Fatalf("IndexCount = %d after retry rebuild, want 2", r.IndexCount())
	}
	// Estimate must agree with what Lookup actually visits.
	visited := 0
	r.Lookup(1, []value.Value{value.Int(0)}, true, func(value.Tuple) bool {
		visited++
		return true
	})
	if visited != 500 {
		t.Fatalf("indexed lookup visited %d tuples, estimate said 500", visited)
	}
}

// TestDigestStableAcrossRebuilds pins the content-digest invariant the
// anti-entropy resync relies on: equal contents give equal digests no
// matter the mutation history (insertion order, transient extra tuples,
// Clear-and-reload), and any content difference shows up.
func TestDigestStableAcrossRebuilds(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var ts []value.Tuple
	for i := 0; i < 200; i++ {
		ts = append(ts, value.Tuple{value.Int(int64(i)), value.Int(rnd.Int63n(50))})
	}

	a := invariantRel(t, 2)
	a.InsertMany(ts)
	want := a.Digest()
	if want.Zero() {
		t.Fatal("digest of a populated relation is zero")
	}

	// Same contents, shuffled order, built tuple-by-tuple.
	b := invariantRel(t, 2)
	perm := rnd.Perm(len(ts))
	for _, i := range perm {
		b.Insert(ts[i])
	}
	if got := b.Digest(); got != want {
		t.Fatalf("digest differs across insertion orders: %v vs %v", got, want)
	}

	// Same contents after transient inserts and deletes.
	noise := value.Tuple{value.Int(9999), value.Int(9999)}
	b.Insert(noise)
	b.Delete(noise)
	b.Delete(ts[0])
	b.Insert(ts[0])
	if got := b.Digest(); got != want {
		t.Fatalf("digest not history-independent: %v vs %v", got, want)
	}

	// Clear and rebuild.
	b.Clear()
	if got := b.Digest(); !got.Zero() {
		t.Fatalf("digest after Clear = %v, want zero", got)
	}
	b.InsertMany(ts)
	if got := b.Digest(); got != want {
		t.Fatalf("digest differs after Clear and reload: %v vs %v", got, want)
	}

	// A one-tuple difference must be visible.
	b.Delete(ts[13])
	if got := b.Digest(); got == want {
		t.Fatal("digest unchanged after removing a tuple")
	}
}

// TestContainsKeyMatchesContains pins the key-encoding contract ContainsKey
// shares with the compiled engine: the canonical AppendKey encoding of a
// tuple is exactly the membership key.
func TestContainsKeyMatchesContains(t *testing.T) {
	r := invariantRel(t, 2)
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		r.Insert(value.Tuple{value.Int(rnd.Int63n(10)), value.Int(rnd.Int63n(10))})
	}
	for a := int64(0); a < 12; a++ {
		for b := int64(0); b < 12; b++ {
			tup := value.Tuple{value.Int(a), value.Int(b)}
			var key []byte
			for _, v := range tup {
				key = v.AppendKey(key)
			}
			if got, want := r.ContainsKey(key), r.Contains(tup); got != want {
				t.Fatalf("ContainsKey(%v) = %v, Contains = %v", tup, got, want)
			}
		}
	}
}
