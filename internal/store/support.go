package store

import (
	"repro/internal/value"
)

// External support bookkeeping for derived relations.
//
// A tuple of an intensional relation can be held alive by sources other than
// the local rule program: remote peers whose (delegated) rules derive it and
// ship it here as a maintained fact. The incremental evaluator must know, when
// a tuple loses one support, whether another is still standing — retracting
// one derivation must not kill a tuple that has an alternative. The store
// records that per-sender bookkeeping here, keyed by tuple, orthogonally to
// relation membership: Clear (a view rebuild) does not forget who supports
// what, so a rebuild can re-seed exactly the externally supported tuples.

// AddExternalSupport records that src currently derives t at a remote peer
// and maintains it here. It does not insert t into the relation — membership
// and support are separate ledgers. It returns true if this is a new
// (tuple, src) support pair.
func (r *Relation) AddExternalSupport(t value.Tuple, src string) bool {
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.extSup == nil {
		r.extSup = make(map[string]*extSupport)
	}
	s := r.extSup[key]
	if s == nil {
		s = &extSupport{tuple: t.Clone(), srcs: make(map[string]struct{}, 1)}
		r.extSup[key] = s
	}
	if _, dup := s.srcs[src]; dup {
		return false
	}
	s.srcs[src] = struct{}{}
	return true
}

// DropExternalSupport removes src's support for t. It returns true if the
// support existed and the tuple is now externally unsupported — the signal
// that the tuple became a deletion candidate (it may still have local rule
// derivations; the evaluator decides).
func (r *Relation) DropExternalSupport(t value.Tuple, src string) bool {
	key := t.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.extSup[key]
	if s == nil {
		return false
	}
	if _, ok := s.srcs[src]; !ok {
		return false
	}
	delete(s.srcs, src)
	if len(s.srcs) > 0 {
		return false
	}
	delete(r.extSup, key)
	return true
}

// HasExternalSupport reports whether any remote sender currently maintains t.
func (r *Relation) HasExternalSupport(t value.Tuple) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.extSup[t.Key()]
	return s != nil && len(s.srcs) > 0
}

// ExternallySupported returns all tuples with at least one external
// supporter, sorted — the set a view rebuild must re-seed after clearing the
// relation.
func (r *Relation) ExternallySupported() []value.Tuple {
	r.mu.RLock()
	out := make([]value.Tuple, 0, len(r.extSup))
	for _, s := range r.extSup {
		if len(s.srcs) > 0 {
			out = append(out, s.tuple)
		}
	}
	r.mu.RUnlock()
	value.SortTuples(out)
	return out
}

// extSupport is the per-tuple ledger of remote senders maintaining it.
type extSupport struct {
	tuple value.Tuple
	srcs  map[string]struct{}
}
