package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/ast"
	"repro/internal/errdefs"
	"repro/internal/value"
)

// WAL provides durability for a peer's extensional relations: every
// declaration, insert and delete is appended to a log file, and Snapshot
// compacts the log into a full dump. Recover replays snapshot + log.
//
// The paper's system keeps peer state in the Bud runtime's persistent
// collections; this is our equivalent storage substrate.
type WAL struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	records int // appended since the last snapshot
	closed  bool
}

const (
	logName  = "wal.log"
	snapName = "snapshot.json"
	snapTmp  = "snapshot.json.tmp"
)

type walRecord struct {
	Op   string        `json:"op"` // "decl", "ins", "del"
	Rel  string        `json:"rel"`
	Peer string        `json:"peer"`
	Kind ast.RelKind   `json:"kind,omitempty"`
	Cols []string      `json:"cols,omitempty"`
	Args []value.Value `json:"args,omitempty"`
}

type snapshotFile struct {
	Relations []snapshotRelation `json:"relations"`
}

type snapshotRelation struct {
	Rel    string          `json:"rel"`
	Peer   string          `json:"peer"`
	Kind   ast.RelKind     `json:"kind"`
	Cols   []string        `json:"cols"`
	Tuples [][]value.Value `json:"tuples"`
}

// OpenWAL opens (creating if needed) the log in dir. Failures wrap
// errdefs.ErrWAL so callers can detect them with errors.Is.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w: opening wal dir: %w", errdefs.ErrWAL, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w: opening wal: %w", errdefs.ErrWAL, err)
	}
	return &WAL{dir: dir, f: f, w: bufio.NewWriter(f)}, nil
}

// Dir returns the directory holding the log and snapshot.
func (w *WAL) Dir() string { return w.dir }

// Records returns the number of records appended since the last snapshot.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

func (w *WAL) append(rec walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(rec)
}

func (w *WAL) appendLocked(rec walRecord) error {
	if w.closed {
		return fmt.Errorf("store: %w: wal is closed", errdefs.ErrWAL)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w: encoding wal record: %w", errdefs.ErrWAL, err)
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("store: %w: appending wal record: %w", errdefs.ErrWAL, err)
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w: appending wal record: %w", errdefs.ErrWAL, err)
	}
	w.records++
	return nil
}

// LogMany appends one insert (or delete, when del is set) record per tuple
// under a single lock acquisition — the durability half of an atomic batch.
func (w *WAL) LogMany(del bool, rel, peer string, ts []value.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	op := "ins"
	if del {
		op = "del"
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, t := range ts {
		if err := w.appendLocked(walRecord{Op: op, Rel: rel, Peer: peer, Args: t}); err != nil {
			return err
		}
	}
	return nil
}

// LogDeclare records a relation declaration.
func (w *WAL) LogDeclare(schema Schema) error {
	return w.append(walRecord{Op: "decl", Rel: schema.Name, Peer: schema.Peer, Kind: schema.Kind, Cols: schema.Cols})
}

// LogInsert records an insert into rel@peer.
func (w *WAL) LogInsert(rel, peer string, t value.Tuple) error {
	return w.append(walRecord{Op: "ins", Rel: rel, Peer: peer, Args: t})
}

// LogDelete records a delete from rel@peer.
func (w *WAL) LogDelete(rel, peer string, t value.Tuple) error {
	return w.append(walRecord{Op: "del", Rel: rel, Peer: peer, Args: t})
}

// Sync flushes buffered records and fsyncs the log file.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w: wal is closed", errdefs.ErrWAL)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: %w: flushing wal: %w", errdefs.ErrWAL, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: %w: syncing wal: %w", errdefs.ErrWAL, err)
	}
	return nil
}

// Snapshot writes a full dump of every extensional relation in s owned by
// peer, then truncates the log. On success the on-disk state equals s.
func (w *WAL) Snapshot(s *Store, peer string) error {
	var snap snapshotFile
	for _, r := range s.RelationsOf(peer) {
		if r.Kind() != ast.Extensional {
			continue
		}
		sr := snapshotRelation{
			Rel:  r.Schema().Name,
			Peer: r.Schema().Peer,
			Kind: r.Kind(),
			Cols: r.Schema().Cols,
		}
		for _, t := range r.Tuples() {
			sr.Tuples = append(sr.Tuples, t)
		}
		snap.Relations = append(snap.Relations, sr)
	}
	b, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: wal is closed")
	}
	tmp := filepath.Join(w.dir, snapTmp)
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	// Truncate the log: reopen with O_TRUNC.
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing wal before truncate: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal before truncate: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(w.dir, logName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: truncating wal: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.records = 0
	return nil
}

// Recover loads the snapshot (if any) and replays the log into s. It is
// meant to be called once, on an empty or freshly-created store, before any
// new records are appended.
func (w *WAL) Recover(s *Store) error {
	snapPath := filepath.Join(w.dir, snapName)
	if b, err := os.ReadFile(snapPath); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(b, &snap); err != nil {
			return fmt.Errorf("store: decoding snapshot: %w", err)
		}
		for _, sr := range snap.Relations {
			rel, err := s.Declare(Schema{Name: sr.Rel, Peer: sr.Peer, Kind: sr.Kind, Cols: sr.Cols})
			if err != nil {
				return err
			}
			for _, t := range sr.Tuples {
				rel.Insert(value.Tuple(t))
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}

	logPath := filepath.Join(w.dir, logName)
	f, err := os.Open(logPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading wal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn final record after a crash is expected; anything else
			// mid-file is corruption.
			if isLastLine(sc) {
				break
			}
			return fmt.Errorf("store: corrupt wal record at line %d: %w", line, err)
		}
		switch rec.Op {
		case "decl":
			if _, err := s.Declare(Schema{Name: rec.Rel, Peer: rec.Peer, Kind: rec.Kind, Cols: rec.Cols}); err != nil {
				return err
			}
		case "ins":
			rel := s.Get(rec.Rel, rec.Peer)
			if rel == nil {
				return fmt.Errorf("store: wal insert into undeclared relation %s@%s", rec.Rel, rec.Peer)
			}
			rel.Insert(value.Tuple(rec.Args))
		case "del":
			rel := s.Get(rec.Rel, rec.Peer)
			if rel == nil {
				return fmt.Errorf("store: wal delete from undeclared relation %s@%s", rec.Rel, rec.Peer)
			}
			rel.Delete(value.Tuple(rec.Args))
		default:
			return fmt.Errorf("store: unknown wal op %q at line %d", rec.Op, line)
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("store: scanning wal: %w", err)
	}
	return nil
}

// isLastLine reports whether the scanner has no further lines.
func isLastLine(sc *bufio.Scanner) bool {
	return !sc.Scan()
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: flushing wal on close: %w", err)
	}
	return w.f.Close()
}
