package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// withDebugAsserts runs fn with the invariant panics enabled.
func withDebugAsserts(t *testing.T, fn func()) {
	t.Helper()
	old := DebugAsserts
	DebugAsserts = true
	defer func() { DebugAsserts = old }()
	fn()
}

// TestMerkleTreeAgainstModel drives a seeded random add/remove stream
// through a MerkleTree and a plain model set, checking after every few
// mutations that the root equals the flat digest of the model and that
// random range digests and range enumerations agree with brute force. The
// stream is large enough to force leaf splits and subtree collapses.
func TestMerkleTreeAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := NewMerkleTree()
	model := map[string]uint64{}

	check := func(step int) {
		var want Digest
		for _, h := range model {
			want.Hash ^= h
			want.Count++
		}
		if got := tree.Root(); got != want {
			t.Fatalf("step %d: root %+v, model digest %+v", step, got, want)
		}
		if tree.Len() != len(model) {
			t.Fatalf("step %d: Len %d, model %d", step, tree.Len(), len(model))
		}
		for i := 0; i < 8; i++ {
			lo, hi := rng.Uint64(), rng.Uint64()
			if lo > hi {
				lo, hi = hi, lo
			}
			var want Digest
			n := 0
			for _, h := range model {
				if lo <= h && h <= hi {
					want.Hash ^= h
					want.Count++
					n++
				}
			}
			if got := tree.RangeDigest(lo, hi); got != want {
				t.Fatalf("step %d: RangeDigest[%x,%x] %+v, brute force %+v", step, lo, hi, got, want)
			}
			if got := len(tree.RangeKeys(lo, hi)); got != n {
				t.Fatalf("step %d: RangeKeys[%x,%x] returned %d keys, brute force %d", step, lo, hi, got, n)
			}
		}
	}

	for step := 0; step < 4000; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(1200))
		if _, in := model[key]; in && rng.Intn(3) == 0 {
			if !tree.Remove(key) {
				t.Fatalf("step %d: Remove(%s) of a present key returned false", step, key)
			}
			delete(model, key)
		} else if !in {
			if !tree.Add(key) {
				t.Fatalf("step %d: Add(%s) of an absent key returned false", step, key)
			}
			model[key] = KeyHash(key)
		} else if tree.Add(key) {
			t.Fatalf("step %d: Add(%s) of a present key returned true", step, key)
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(4000)

	// Full-range queries equal the root; empty and inverted ranges are empty.
	if got := tree.RangeDigest(0, ^uint64(0)); got != tree.Root() {
		t.Fatalf("full-range digest %+v != root %+v", got, tree.Root())
	}
	if got := tree.RangeDigest(5, 4); !got.Zero() {
		t.Fatalf("inverted range digested %+v", got)
	}

	// Drain completely: the tree must return to the zero digest.
	for key := range model {
		tree.Remove(key)
	}
	if got := tree.Root(); !got.Zero() {
		t.Fatalf("drained tree digests %+v", got)
	}
}

// TestMerkleRangeKeysCanonicalOrder: enumeration is in (hash, key) order —
// the canonical order both ends of a repair walk.
func TestMerkleRangeKeysCanonicalOrder(t *testing.T) {
	tree := NewMerkleTree()
	for i := 0; i < 500; i++ {
		tree.Add(fmt.Sprintf("k%d", i))
	}
	keys := tree.RangeKeys(0, ^uint64(0))
	if len(keys) != 500 {
		t.Fatalf("enumerated %d of 500 keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		a, b := KeyHash(keys[i-1]), KeyHash(keys[i])
		if a > b || (a == b && keys[i-1] >= keys[i]) {
			t.Fatalf("keys out of canonical order at %d: %q then %q", i, keys[i-1], keys[i])
		}
	}
}

// TestMerkleRemoveAbsentGuard: removing a key never added is refused (no
// digest corruption) and panics under DebugAsserts — the satellite guard
// against silent fold corruption.
func TestMerkleRemoveAbsentGuard(t *testing.T) {
	tree := NewMerkleTree()
	tree.Add("present")
	before := tree.Root()
	if tree.Remove("absent") {
		t.Fatal("Remove of an absent key reported true")
	}
	if got := tree.Root(); got != before {
		t.Fatalf("refused Remove still changed the digest: %+v -> %+v", before, got)
	}
	withDebugAsserts(t, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Remove of an absent key did not panic under DebugAsserts")
			}
		}()
		tree.Remove("absent")
	})
}

// TestDigestRemoveUnderflowGuard: folding a member out of the empty digest
// used to underflow Count and corrupt every later comparison; it is now
// refused, and panics under DebugAsserts.
func TestDigestRemoveUnderflowGuard(t *testing.T) {
	var d Digest
	d.Remove("ghost")
	if !d.Zero() {
		t.Fatalf("Remove on the empty digest corrupted it: %+v", d)
	}
	d.Add("x")
	d.Remove("x")
	if !d.Zero() {
		t.Fatalf("add/remove did not return to zero: %+v", d)
	}
	withDebugAsserts(t, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Remove on the empty digest did not panic under DebugAsserts")
			}
		}()
		var d Digest
		d.Remove("ghost")
	})
}

// TestRelationMerkleMaintained: the relation's tree is built on demand and
// kept current by every mutation path (Insert, InsertMany, Delete,
// DeleteMany, Clear), always agreeing with the O(1) flat digest.
func TestRelationMerkleMaintained(t *testing.T) {
	r := NewRelation(Schema{Name: "r", Peer: "p", Cols: []string{"x"}})
	r.Insert(tup("before"))
	m := r.Merkle()
	agree := func(when string) {
		t.Helper()
		if got := m.Root(); got != r.Digest() {
			t.Fatalf("%s: tree root %+v != relation digest %+v", when, got, r.Digest())
		}
	}
	agree("fresh build")
	r.Insert(tup("a"))
	agree("Insert")
	r.InsertMany([]value.Tuple{tup("b"), tup("c"), tup("d")})
	agree("InsertMany")
	r.Delete(tup("a"))
	agree("Delete")
	r.DeleteMany([]value.Tuple{tup("b"), tup("missing")})
	agree("DeleteMany")
	r.Clear()
	if got := r.Merkle().Root(); !got.Zero() {
		t.Fatalf("Clear left the tree at %+v", got)
	}
	if r.Merkle() != r.Merkle() {
		t.Fatal("Merkle rebuilt on every call")
	}
}
