package store

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func benchRelation(n int) *Relation {
	r := NewRelation(Schema{Name: "r", Peer: "p", Kind: ast.Extensional, Cols: []string{"k", "v"}})
	for i := 0; i < n; i++ {
		r.Insert(value.Tuple{value.Int(int64(i % (n / 10))), value.Int(int64(i))})
	}
	return r
}

func BenchmarkRelationInsert(b *testing.B) {
	r := NewRelation(Schema{Name: "r", Peer: "p", Kind: ast.Extensional, Cols: []string{"k", "v"}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i))})
	}
}

func BenchmarkRelationContains(b *testing.B) {
	r := benchRelation(100_000)
	probe := value.Tuple{value.Int(50), value.Int(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Contains(probe)
	}
}

func BenchmarkRelationIndexedLookup(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			r := benchRelation(n)
			r.EnsureIndex(MaskOf(0))
			bound := []value.Value{value.Int(7)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count := 0
				r.Lookup(MaskOf(0), bound, true, func(value.Tuple) bool { count++; return true })
			}
		})
	}
}

func BenchmarkRelationScanLookup(b *testing.B) {
	r := benchRelation(10_000)
	bound := []value.Value{value.Int(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		r.Lookup(MaskOf(0), bound, false, func(value.Tuple) bool { count++; return true })
	}
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := OpenWAL(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	t := value.Tuple{value.Int(1), value.Str("payload")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.LogInsert("r", "p", t); err != nil {
			b.Fatal(err)
		}
	}
}
