package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wdl_test_total", "A test counter.", "peer")
	c.With("alice").Inc()
	c.With("alice").Add(2)
	c.With("bob").Inc()
	if got := c.With("alice").Value(); got != 3 {
		t.Errorf("alice = %v, want 3", got)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP wdl_test_total A test counter.",
		"# TYPE wdl_test_total counter",
		`wdl_test_total{peer="alice"} 3`,
		`wdl_test_total{peer="bob"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeSetAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("wdl_depth", "Depth.", "dst")
	g.With("a").Set(4)
	g.With("a").Add(-1)
	if got := g.With("a").Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	// Func children read at scrape time; re-registration replaces.
	n := 7.0
	g.Func(func() float64 { return n }, "b")
	g.Func(func() float64 { return n + 1 }, "b")
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), `wdl_depth{dst="b"} 8`) {
		t.Errorf("func child not scraped:\n%s", sb.String())
	}
}

func TestFamilyIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", "l")
	b := r.Counter("x_total", "X.", "l")
	a.With("v").Inc()
	if got := b.With("v").Value(); got != 1 {
		t.Errorf("same family not shared: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different labels did not panic")
		}
	}()
	r.Counter("x_total", "X.", "other")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, "peer")
	child := h.With("p")
	for i := 0; i < 50; i++ {
		child.Observe(0.005) // first bucket
	}
	for i := 0; i < 40; i++ {
		child.Observe(0.05) // second bucket
	}
	for i := 0; i < 10; i++ {
		child.Observe(5) // +Inf bucket
	}
	if child.Count() != 100 {
		t.Fatalf("count = %d", child.Count())
	}
	// p50 falls exactly at the top of the first bucket.
	if q := child.Quantile(0.5); math.Abs(q-0.01) > 1e-9 {
		t.Errorf("p50 = %v, want 0.01", q)
	}
	// p99 lands in +Inf: clamped to the last finite bound.
	if q := child.Quantile(0.99); q != 1 {
		t.Errorf("p99 = %v, want 1", q)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{peer="p",le="0.01"} 50`,
		`lat_seconds_bucket{peer="p",le="0.1"} 90`,
		`lat_seconds_bucket{peer="p",le="1"} 90`,
		`lat_seconds_bucket{peer="p",le="+Inf"} 100`,
		`lat_seconds_count{peer="p"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `lat_seconds_sum{peer="p"}`) {
		t.Errorf("missing sum line:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "Escapes.", "v")
	c.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "Concurrency.", "w")
	h := r.Histogram("conc_seconds", "Concurrency.", nil, "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.With("x").Inc()
				h.With("x").Observe(0.001)
			}
		}()
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			r.WriteTo(&sb)
		}()
	}
	wg.Wait()
	if got := c.With("x").Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := h.With("x").Count(); got != 8000 {
		t.Errorf("histogram count = %v, want 8000", got)
	}
}
