// Package metrics is a dependency-free metrics registry exposing counters,
// gauges and histograms in the Prometheus text exposition format (version
// 0.0.4). It exists so the wdld daemon (and anything else hosting peers)
// can expose runtime visibility — stage latency, outbox depth, resync
// traffic — without pulling the Prometheus client library into a repo that
// deliberately has no dependencies.
//
// The API is a narrow subset of the prometheus client shape:
//
//	reg := metrics.NewRegistry()
//	applies := reg.Counter("wdl_applies_total", "Batches applied.", "peer")
//	applies.With("alice").Inc()
//	lat := reg.Histogram("wdl_stage_seconds", "Stage latency.", nil, "peer")
//	lat.With("alice").Observe(0.0042)
//	http.Handle("/metrics", reg.Handler())
//
// All value types are safe for concurrent use; the hot-path operations
// (Inc/Add/Set/Observe on an already-materialized child) are a few atomic
// ops and take no locks. Scrape-time collectors (Func) read a value lazily
// at exposition time, which is how pre-existing write-only atomic counters
// (the peer outbox's enqueued/delivered/retransmit counts) are surfaced
// without double-counting or hot-path changes.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Kind identifies the exposition type of a metric family.
type Kind int

// The metric family kinds, matching Prometheus TYPE annotations.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default histogram buckets: latency-shaped, in
// seconds, from 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. A nil *Registry is accepted by the peer layer
// and means "no metrics" — callers there guard with == nil rather than
// paying for no-op children.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: HELP/TYPE plus labeled children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.Mutex
	children map[string]child // keyed by joined label values
	buckets  []float64        // histograms only
}

type child interface {
	write(w io.Writer, fam *family, labelPart string) error
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]child),
		buckets:  buckets,
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns the existing) counter family. labels name
// the label dimensions; children are addressed with With.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or returns the existing) histogram family. buckets
// are upper bounds in increasing order (a +Inf bucket is implicit); nil
// means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.family(name, help, KindHistogram, buckets, labels)}
}

// labelKey joins label values into a child key. Values may contain any
// bytes; \xff is an unlikely-enough separator for a process-local map key.
func labelKey(lvs []string) string { return strings.Join(lvs, "\xff") }

func (f *family) checkCard(lvs []string) {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
}

// CounterVec is a counter family; With materializes one labeled child.
type CounterVec struct{ fam *family }

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// With returns the child for the given label values, creating it at zero
// on first use. Children are cached; the fast path after the first call is
// lock-free on the value itself.
func (v *CounterVec) With(lvs ...string) *Counter {
	v.fam.checkCard(lvs)
	key := labelKey(lvs)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if c, ok := v.fam.children[key]; ok {
		if cc, ok := c.(*counterChild); ok {
			return cc.c
		}
		panic(fmt.Sprintf("metrics: %s{%s} registered as a scrape-time func", v.fam.name, key))
	}
	cc := &counterChild{c: new(Counter), lvs: append([]string(nil), lvs...)}
	v.fam.children[key] = cc
	return cc.c
}

// Func registers a scrape-time collector for the given label values: fn is
// called at exposition and its result rendered as the counter's value.
// Re-registering the same labels replaces the function — so a restarted
// peer re-wiring its atomics simply wins. Use for values that already live
// elsewhere (an atomic.Uint64 on the outbox).
func (v *CounterVec) Func(fn func() float64, lvs ...string) {
	v.fam.checkCard(lvs)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	v.fam.children[labelKey(lvs)] = &funcChild{fn: fn, lvs: append([]string(nil), lvs...)}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, which must be non-negative for the exposition to stay
// monotone (not enforced; callers own their semantics).
func (c *Counter) Add(n float64) { atomicAddFloat(&c.bits, n) }

// Value returns the current value (tests and introspection).
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// GaugeVec is a gauge family.
type GaugeVec struct{ fam *family }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// With returns the child for the given label values, creating it at zero
// on first use.
func (v *GaugeVec) With(lvs ...string) *Gauge {
	v.fam.checkCard(lvs)
	key := labelKey(lvs)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if c, ok := v.fam.children[key]; ok {
		if gc, ok := c.(*gaugeChild); ok {
			return gc.g
		}
		panic(fmt.Sprintf("metrics: %s{%s} registered as a scrape-time func", v.fam.name, key))
	}
	gc := &gaugeChild{g: new(Gauge), lvs: append([]string(nil), lvs...)}
	v.fam.children[key] = gc
	return gc.g
}

// Func registers a scrape-time collector (see CounterVec.Func) — the
// natural shape for instantaneous depths like outbox queue length.
func (v *GaugeVec) Func(fn func() float64, lvs ...string) {
	v.fam.checkCard(lvs)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	v.fam.children[labelKey(lvs)] = &funcChild{fn: fn, lvs: append([]string(nil), lvs...)}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds n (may be negative).
func (g *Gauge) Add(n float64) { atomicAddFloat(&g.bits, n) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramVec is a histogram family.
type HistogramVec struct{ fam *family }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	buckets []float64 // upper bounds, increasing; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// With returns the child for the given label values, creating it on first
// use.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	v.fam.checkCard(lvs)
	key := labelKey(lvs)
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if c, ok := v.fam.children[key]; ok {
		return c.(*histChild).h
	}
	h := &Histogram{buckets: v.fam.buckets, counts: make([]atomic.Uint64, len(v.fam.buckets))}
	v.fam.children[key] = &histChild{h: h, lvs: append([]string(nil), lvs...)}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(val float64) {
	// Buckets are few (≤ ~20); linear scan beats binary search at this size.
	for i, ub := range h.buckets {
		if val <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, val)
}

// Count returns the number of observations (tests and introspection).
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates quantile q (in [0,1]) from the bucket counts by
// linear interpolation within the containing bucket — the same estimate
// promQL's histogram_quantile computes. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, ub := range h.buckets {
		n := h.counts[i].Load()
		if n == 0 {
			lower = ub
			continue
		}
		if float64(cum+n) >= rank {
			frac := (rank - float64(cum)) / float64(n)
			return lower + (ub-lower)*frac
		}
		cum += n
		lower = ub
	}
	// Rank lands in the +Inf bucket: the best point estimate is the last
	// finite bound.
	if len(h.buckets) > 0 {
		return h.buckets[len(h.buckets)-1]
	}
	return 0
}

// atomicAddFloat adds n to a float64 stored as bits, CAS-looping.
func atomicAddFloat(bits *atomic.Uint64, n float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + n)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ---- exposition ----

type counterChild struct {
	c   *Counter
	lvs []string
}

func (cc *counterChild) write(w io.Writer, fam *family, labelPart string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(cc.c.Value()))
	return err
}

type gaugeChild struct {
	g   *Gauge
	lvs []string
}

func (gc *gaugeChild) write(w io.Writer, fam *family, labelPart string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(gc.g.Value()))
	return err
}

type funcChild struct {
	fn  func() float64
	lvs []string
}

func (fc *funcChild) write(w io.Writer, fam *family, labelPart string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(fc.fn()))
	return err
}

type histChild struct {
	h   *Histogram
	lvs []string
}

func (hc *histChild) write(w io.Writer, fam *family, labelPart string) error {
	// Bucket lines carry an extra `le` label; merge it with the child's
	// label values.
	var cum uint64
	for i, ub := range hc.h.buckets {
		cum += hc.h.counts[i].Load()
		lp := mergeLabels(fam.labels, hc.lvs, "le", formatFloat(ub))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, lp, cum); err != nil {
			return err
		}
	}
	total := hc.h.count.Load()
	lp := mergeLabels(fam.labels, hc.lvs, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, lp, total); err != nil {
		return err
	}
	sum := math.Float64frombits(hc.h.sumBits.Load())
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPart, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPart, total)
	return err
}

func childLabels(c child) []string {
	switch cc := c.(type) {
	case *counterChild:
		return cc.lvs
	case *gaugeChild:
		return cc.lvs
	case *funcChild:
		return cc.lvs
	case *histChild:
		return cc.lvs
	}
	return nil
}

// mergeLabels renders a label set, optionally with one extra pair.
func mergeLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects: integers
// without an exponent, +Inf for the unbounded bucket.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in the text exposition format, families and
// children in deterministic (sorted) order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]child, len(keys))
		for i, k := range keys {
			kids[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return cw.n, err
			}
		}
		if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return cw.n, err
		}
		for _, c := range kids {
			lp := mergeLabels(f.labels, childLabels(c), "", "")
			if err := c.write(cw, f, lp); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Handler returns an http.Handler serving the registry at scrape time.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, sb.String())
	})
}
