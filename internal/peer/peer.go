// Package peer implements the WebdamLog peer: a named participant that owns
// relations, runs a rule program with the engine, and exchanges facts and
// delegations with other peers over a transport.
//
// Each peer executes computation *stages* exactly as the paper describes
// (§2): "First, the peer loads the inputs received from the remote peers
// since the previous stage. Second, the peer runs a fixpoint computation of
// its program. Third, the peer sends facts (updates) and rules
// (delegations) to other peers."
//
// Programs are dynamic: rules can be added and removed at run time (the
// Wepic "customize rules" scenario), and delegations install rules from
// remote peers, subject to the access-control policy (acl package).
package peer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/protocol"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/value"
)

// Config configures a peer.
type Config struct {
	// Name is the peer's globally-unique name.
	Name string
	// Engine holds evaluation options; nil means engine.DefaultOptions.
	Engine *engine.Options
	// Interner, when non-nil, deduplicates stored strings and tuples through
	// the given intern table: every relation insert stores the canonical
	// interned tuple (and its canonical key string), so a fact replicated
	// across thousands of peers sharing one interner costs one tuple plus a
	// map entry per replica instead of a full copy. Share one interner per
	// swarm (experiment P11 relies on this for sub-linear memory). The table
	// is append-only: it never evicts, so it is suited to corpus-like data,
	// not unbounded unique streams.
	Interner *value.Interner
	// WAL, when non-nil, makes the peer's extensional relations durable.
	WAL *store.WAL
	// WALErr records a failure to open the WAL this config asked for.
	// Options that open the WAL on the caller's behalf (core.WithWAL) store
	// the error here instead of swallowing it; New refuses the config with
	// an error wrapping errdefs.ErrWAL, so a peer that was meant to be
	// durable can never silently come up volatile.
	WALErr error
	// Policy controls incoming delegations; nil accepts everything.
	Policy acl.Policy
	// Provenance enables why-provenance tracking of derived facts.
	Provenance bool
	// SyncEmit disables the outbox's background flusher goroutines: outgoing
	// messages are flushed synchronously at the end of every RunStage
	// instead, which keeps in-process multi-peer tests deterministic.
	// NewSequentialNetwork sets it on the peers it creates. Sync emission
	// assumes a reliable transport (the in-process bus): failed sends stay
	// queued and retry at the next flush, but there is no retransmit timer.
	SyncEmit bool
	// OutboxAckTimeout overrides the outbox's retransmission timer: how long
	// a transmitted message may wait for its acknowledgment before the
	// flusher re-sends it (default 200ms). Zero keeps the default.
	OutboxAckTimeout time.Duration
	// OutboxBackoff overrides the outbox's base retry backoff after a
	// failed delivery attempt; it doubles per consecutive failure up to a
	// cap of 200x the base (default base 10ms). Zero keeps the default.
	OutboxBackoff time.Duration
	// ResyncInterval is the anti-entropy period: roughly this often (per
	// destination with a maintained remote view) the peer advertises
	// order-insensitive digests of what it maintains there, and receivers
	// whose own ledger digests differ request a repair snapshot. Zero keeps
	// the default (5s); a negative value disables periodic adverts (repair
	// on epoch adoption and stream wedges stays active — it is data-driven,
	// not timer-driven).
	ResyncInterval time.Duration
	// RangedRepairFloor gates Merkle-ranged repair: a digest mismatch whose
	// total divergent content is at least this many facts is repaired by a
	// bisection dialogue (range digests narrow the divergence, only
	// differing ranges are re-shipped — O(δ log n) bytes instead of
	// O(view)); anything smaller, plus every fresh-epoch and shed reset,
	// keeps the full-snapshot path. Zero keeps the default (1024); a
	// negative value disables ranged repair entirely.
	RangedRepairFloor int
	// Logf, when non-nil, receives debug log lines.
	Logf func(format string, args ...any)

	// Metrics, when non-nil, registers this peer's runtime metrics with the
	// registry (metrics.go: stage latency and fixpoint rounds, outbox
	// depth and delivery counters, backpressure and shed counters, resync
	// traffic, subscription drops, planner cache hits). Many peers may
	// share one registry; each labels its series with its name.
	Metrics *metrics.Registry
	// OutboxLimit bounds each destination's unacknowledged outbox queue
	// for admission-controlled intake (Apply): a full queue blocks or
	// rejects the caller per Admission. 0 = unbounded. Stage emissions are
	// exempt — a committed fixpoint's deltas always reach the stream — so
	// a queue can overshoot by one stage's output; the bound is on
	// API-driven intake, where unbounded growth originates.
	OutboxLimit int
	// MaxPendingOps bounds the staged-local-update queue the same way:
	// Apply blocks (or fails fast) once this many operations await the
	// next stage. 0 = unbounded. Insert/Delete and stage-produced local
	// updates are exempt for the same reason stage emissions are.
	MaxPendingOps int
	// Admission selects what Apply does when a bounded queue is full:
	// AdmitBlock (default) waits for space under the caller's context,
	// AdmitFailFast returns ErrBackpressure immediately.
	Admission AdmissionPolicy
	// OutboxShedAfter arms slow-peer shedding: a destination whose queue
	// has pending entries but no ack progress for this long has its stream
	// shed — reset under a fresh epoch with a snapshot of the maintained
	// view as sequence 1, the wedged backlog discarded. When the
	// destination recovers it adopts the new stream and anti-entropy
	// (digest adverts, repair snapshots) settles it. 0 disables shedding.
	// Only async (non-SyncEmit) peers shed.
	OutboxShedAfter time.Duration
}

// AdmissionPolicy selects Apply's behavior at a full bounded queue (see
// Config.OutboxLimit and Config.MaxPendingOps).
type AdmissionPolicy int

const (
	// AdmitBlock blocks the Apply caller until space frees or its context
	// is done (the context error arrives wrapped with ErrBackpressure).
	AdmitBlock AdmissionPolicy = iota
	// AdmitFailFast rejects immediately with ErrBackpressure.
	AdmitFailFast
)

// Hooks lets wrappers synchronize external state around each stage.
type Hooks interface {
	// BeforeStage runs after inputs are ingested, before the fixpoint.
	BeforeStage(p *Peer) error
	// AfterStage runs after outputs have been sent.
	AfterStage(p *Peer, rep *StageReport) error
}

// Stats accumulates peer-lifetime counters.
type Stats struct {
	Stages         uint64
	StagesSkipped  uint64
	FactsIn        uint64
	FactsOut       uint64
	DelegationsIn  uint64
	DelegationsOut uint64
	Withdrawals    uint64
	Derived        uint64
	UpdatesApplied uint64
	RuntimeErrors  uint64

	// Outbox delivery counters: messages enqueued for remote destinations,
	// messages acknowledged by their destination, retransmission epochs
	// (ack timeouts), and failed send attempts (each retried).
	OutboxEnqueued    uint64
	OutboxDelivered   uint64
	OutboxRetransmits uint64
	OutboxSendErrors  uint64

	// Anti-entropy counters: resync requests this peer sent (as a
	// receiver), repair snapshots it served (as a sender, including
	// sheds) and their total encoded size, and digest adverts transmitted.
	ResyncRequested     uint64
	ResyncSnapshots     uint64
	ResyncSnapshotBytes uint64
	ResyncAdverts       uint64

	// Ranged-repair counters: ranged repair messages this peer served (as
	// a sender) and their total encoded size, range-digest traffic it
	// served (requests answered, encoded reply bytes), and how many repair
	// ranges it requested (as a receiver, after bisection narrowed the
	// divergence).
	ResyncRangedRepairs     uint64
	ResyncRangedRepairBytes uint64
	ResyncRangeDigestBytes  uint64
	ResyncRangesRequested   uint64

	// Flow-control counters: stream resets (anti-entropy repairs plus
	// sheds), slow-peer sheds, and admission-control outcomes at Apply.
	OutboxResets           uint64
	OutboxSheds            uint64
	BackpressureWaits      uint64
	BackpressureRejections uint64

	// SubscriptionDrops counts subscriptions closed for falling further
	// behind than their buffer (ErrSlowSubscriber).
	SubscriptionDrops uint64
}

// StageReport describes one RunStage call.
type StageReport struct {
	Stage   uint64
	Ran     bool // false when the stage was skipped (inputs changed nothing)
	Derived int
	// Retracted counts derived facts deleted by this stage's incremental
	// deletion pass (facts that lost their last derivation).
	Retracted  int
	Iterations int
	// Applied counts extensional updates applied during ingestion.
	Applied int
	// Seeds counts transient intensional facts ingested for this stage.
	Seeds int
	// FactsSent counts facts emitted to remote peers.
	FactsSent int
	// DelegationsSent counts delegation-set messages emitted (including
	// withdrawals).
	DelegationsSent int
	// Ingest, Fixpoint and Emit decompose the stage latency (experiment P2).
	Ingest   time.Duration
	Fixpoint time.Duration
	Emit     time.Duration
	// Errors collects non-fatal problems (unsafe delegated rules, runtime
	// semantic errors from the engine, transport failures).
	Errors []error
}

// Duration returns the total stage latency.
func (r *StageReport) Duration() time.Duration { return r.Ingest + r.Fixpoint + r.Emit }

// delegationKey identifies an installed delegation group.
type delegationKey struct {
	Origin string
	RuleID string
}

// Peer is one WebdamLog peer.
type Peer struct {
	name string
	db   *store.Store
	// intern is Config.Interner (nil when interning is off): the shared
	// table the store, the remote view and the inbound session ledgers
	// canonicalize their tuples through.
	intern *value.Interner
	eng    *engine.Engine
	ep     transport.Endpoint
	wal    *store.WAL
	prov   *provenance.Store
	ctrl   *acl.Controller
	logf   func(string, ...any)

	// ctx is the peer's lifetime: Close cancels it, which stops the outbox
	// flushers and aborts any in-flight dial instead of letting it run to
	// DialTimeout.
	ctx    context.Context
	cancel context.CancelFunc
	outbox *outbox
	// oblog persists outbox state for WAL-backed peers: pending entries
	// survive a crash and are re-sent on recovery, and the applied-watermark
	// map suppresses replays of messages applied before the crash.
	oblog *store.OutboxLog

	mu         sync.Mutex
	ownRules   []ast.Rule
	delegated  map[delegationKey][]ast.Rule
	ruleSeq    int
	progDirty  bool
	prog       *engine.Program
	compileErr []error

	pendingOps []engine.FactOp // buffered updates for the next stage
	// pendingSpace, when non-nil, is closed (and cleared) when a stage
	// drains pendingOps: blocked Apply callers wait on it and re-check
	// admission against maxPendingOps.
	pendingSpace  chan struct{}
	maxPendingOps int
	admitFailFast bool
	// pm caches the hot-path metric children (nil = metrics disabled).
	pm *peerMetrics

	// needRebuild forces the next stage to recompute the materialized views
	// from scratch (first stage, program changes). Incremental maintenance
	// resumes afterwards.
	needRebuild bool
	// transient holds "rel@peer" -> key -> tuple for transient intensional
	// seeds awaiting expiry at the next stage that runs; freshTransient
	// collects the marks of the ingestion in progress.
	transient      map[string]map[string]value.Tuple
	freshTransient map[string]map[string]value.Tuple

	// inbound holds the receiver half of every (sender → this peer) stream
	// session: adopted epoch, applied watermark, staged acknowledgment,
	// per-sender support ledger and digests, resync rate limiters. See
	// session.go.
	inbound map[string]*inSession
	// rv is the maintained remote view — the sender half's content ledger:
	// every fact this peer's program currently derives at each destination,
	// with per-relation digests. The engine diffs each stage's emissions
	// against it; anti-entropy advertises its digests and snapshots it.
	rv *engine.RemoteView
	// resyncEvery is the resolved anti-entropy period (0 = disabled).
	resyncEvery time.Duration
	// rangedFloor is the resolved ranged-repair floor (-1 = disabled).
	rangedFloor int

	lastSentDeleg map[string]map[string]string // ruleID -> target -> set fingerprint
	ranOnce       bool
	poked         bool
	hooks         Hooks
	stats         Stats
	stageNo       uint64
	wake          chan struct{}
	// onReady, when set (network.go, setSchedHooks), is fired by kick() so
	// the concurrent scheduler's wake queue learns this peer has work without
	// scanning. Atomic: kick() runs outside p.mu and may race the installer.
	onReady atomic.Pointer[func()]

	subSeq int
	subs   map[int]*subscription
	closed bool
}

// New creates a peer attached to the given transport endpoint. If cfg.WAL
// is set, previously-logged state is recovered into the store first.
func New(cfg Config, ep transport.Endpoint) (*Peer, error) {
	if cfg.Name == "" {
		return nil, errors.New("peer: name must not be empty")
	}
	if ep == nil {
		return nil, errors.New("peer: endpoint must not be nil")
	}
	if ep.Name() != cfg.Name {
		return nil, fmt.Errorf("peer: endpoint is named %q, peer %q", ep.Name(), cfg.Name)
	}
	if cfg.WALErr != nil {
		err := cfg.WALErr
		if !errors.Is(err, errdefs.ErrWAL) {
			err = fmt.Errorf("%w: %v", errdefs.ErrWAL, err)
		}
		return nil, fmt.Errorf("peer %s: %w", cfg.Name, err)
	}
	db := store.New()
	if cfg.Interner != nil {
		db.SetInterner(cfg.Interner)
	}
	if cfg.WAL != nil {
		if err := cfg.WAL.Recover(db); err != nil {
			return nil, fmt.Errorf("peer %s: recovering: %w", cfg.Name, err)
		}
	}
	opts := engine.DefaultOptions()
	if cfg.Engine != nil {
		opts = *cfg.Engine
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Peer{
		name:          cfg.Name,
		db:            db,
		ep:            ep,
		wal:           cfg.WAL,
		logf:          cfg.Logf,
		ctx:           ctx,
		cancel:        cancel,
		inbound:       make(map[string]*inSession),
		rv:            engine.NewRemoteView(),
		delegated:     make(map[delegationKey][]ast.Rule),
		lastSentDeleg: make(map[string]map[string]string),
		wake:          make(chan struct{}, 1),
		subs:          make(map[int]*subscription),
		needRebuild:   true,
	}
	p.intern = cfg.Interner
	if cfg.Interner != nil {
		p.rv.SetInterner(cfg.Interner)
	}
	p.outbox = newOutbox(ep, ctx, cfg.SyncEmit, p.debugf)
	if cfg.OutboxAckTimeout > 0 {
		p.outbox.ackTimeout = cfg.OutboxAckTimeout
	}
	if cfg.OutboxBackoff > 0 {
		p.outbox.baseBackoff = cfg.OutboxBackoff
		p.outbox.maxBackoff = 200 * cfg.OutboxBackoff
	}
	p.resyncEvery = cfg.ResyncInterval
	if p.resyncEvery == 0 {
		p.resyncEvery = defaultResyncInterval
	}
	if p.resyncEvery < 0 {
		p.resyncEvery = 0
	}
	p.rangedFloor = cfg.RangedRepairFloor
	if p.rangedFloor == 0 {
		p.rangedFloor = defaultRangedRepairFloor
	}
	if p.rangedFloor < 0 {
		p.rangedFloor = -1
	}
	p.outbox.resyncEvery = p.resyncEvery
	p.outbox.onDigest = p.digestFor
	p.outbox.limit = cfg.OutboxLimit
	p.outbox.failFast = cfg.Admission == AdmitFailFast
	p.outbox.shedAfter = cfg.OutboxShedAfter
	p.outbox.onShed = p.shedStream
	p.maxPendingOps = cfg.MaxPendingOps
	p.admitFailFast = cfg.Admission == AdmitFailFast
	if cfg.WAL != nil {
		if err := p.openOutboxLog(cfg.WAL.Dir()); err != nil {
			cancel()
			return nil, fmt.Errorf("peer %s: %w", cfg.Name, err)
		}
	}
	if cfg.Provenance {
		p.prov = provenance.NewStore()
		opts.Tracer = p.prov
	}
	p.eng = engine.New(cfg.Name, db, opts)
	p.ctrl = acl.NewController(cfg.Policy, p.installDelegation)
	if cfg.Metrics != nil {
		p.registerMetrics(cfg.Metrics)
	}
	return p, nil
}

// openOutboxLog attaches durable delivery state to a WAL-backed peer:
// recover pending entries and watermarks, seed the outbox, and install the
// persistence hooks. An entry is logged and synced before a flusher can
// transmit it, so a transmitted sequence number is never reused after a
// crash.
func (p *Peer) openOutboxLog(dir string) error {
	l, err := store.OpenOutboxLog(dir)
	if err != nil {
		return err
	}
	st, err := l.Recover()
	if err != nil {
		l.Close()
		return err
	}
	for from, mark := range st.Applied {
		s := p.sessionLocked(from)
		s.known = true
		s.epoch = mark.Epoch
		s.seq = mark.Seq
	}
	epoch := st.Epoch
	if epoch == 0 {
		// First durable run: pick the default stream epoch and persist it
		// so it stays stable across restarts (receivers keep their
		// watermarks).
		epoch = newEpoch()
		if err := l.LogEpoch(epoch); err == nil {
			err = l.Sync()
		}
		if err != nil {
			l.Close()
			return err
		}
	}
	p.outbox.defaultEpoch = epoch
	// Install the persistence hooks before seeding: seeding a queue starts
	// its flusher, which reads them.
	p.oblog = l
	p.outbox.onEnqueue = func(dst string, seq uint64, msg protocol.Payload) {
		// Buffered append only: the fsync happens in onPreFlush, before the
		// first transmission of a flush cycle, keeping stage commits off
		// the disk path.
		b, err := protocol.EncodePayload(msg)
		if err == nil {
			err = l.LogEnqueue(dst, seq, b)
		}
		if err != nil {
			p.debugf("outbox log enqueue %s#%d: %v", dst, seq, err)
		}
	}
	p.outbox.onAck = func(dst string, seq uint64) {
		if err := l.LogAck(dst, seq); err != nil {
			p.debugf("outbox log ack %s#%d: %v", dst, seq, err)
		}
	}
	p.outbox.onReset = func(dst string, epoch uint64, entries []outEntry) {
		// A reset supersedes everything logged for dst; the renumbered
		// survivors are re-logged behind the reset record. Synced by
		// onPreFlush before any of them can be transmitted.
		if err := l.LogReset(dst, epoch); err != nil {
			p.debugf("outbox log reset %s: %v", dst, err)
			return
		}
		for _, e := range entries {
			b, err := protocol.EncodePayload(e.msg)
			if err == nil {
				err = l.LogEnqueue(dst, e.seq, b)
			}
			if err != nil {
				p.debugf("outbox log reset enqueue %s#%d: %v", dst, e.seq, err)
			}
		}
	}
	p.outbox.onPreFlush = l.Sync
	for dst, next := range st.NextSeq {
		var entries []outEntry
		for _, e := range st.Pending[dst] {
			msg, err := protocol.DecodePayload(e.Payload)
			if err != nil {
				l.Close()
				return fmt.Errorf("recovering outbox entry %d for %s: %w", e.Seq, dst, err)
			}
			entries = append(entries, outEntry{seq: e.Seq, msg: msg})
		}
		p.outbox.seed(dst, st.Epochs[dst], next, st.Acked[dst], entries)
	}
	return nil
}

// defaultResyncInterval is the anti-entropy advert period when the config
// does not choose one.
const defaultResyncInterval = 5 * time.Second

// sessionLocked returns (creating if needed) the inbound stream session for
// the given sender. Caller holds p.mu (or, during New, exclusive access).
func (p *Peer) sessionLocked(from string) *inSession {
	s := p.inbound[from]
	if s == nil {
		s = newInSession(from)
		s.intern = p.intern
		p.inbound[from] = s
	}
	return s
}

// digestFor builds the anti-entropy advert for dst: per-relation digests of
// everything this peer maintains there plus fingerprint hashes of the rule
// sets it currently delegates there, stamped with the stream position the
// view is current as of. Returns nil when neither exists. Called by the
// outbox's flush cycle; taking p.mu here makes the digests and the stream
// position mutually consistent (stages enqueue under p.mu).
func (p *Peer) digestFor(dst string) protocol.Payload {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	msg := p.digestMsgLocked(dst)
	if len(msg.Rels) == 0 && len(msg.Deleg) == 0 {
		return nil
	}
	return msg
}

// digestMsgLocked builds the digest advert itself, empty maps and all — an
// advert *request* (ResyncRequestMsg.Advert) is answered even when this
// peer maintains nothing at the requester, because "nothing" is exactly
// what the requester's stale ledger needs to learn.
func (p *Peer) digestMsgLocked(dst string) protocol.DigestMsg {
	digs := p.rv.Digests(dst)
	var deleg map[string]uint64
	for ruleID, targets := range p.lastSentDeleg {
		if fp, ok := targets[dst]; ok {
			if deleg == nil {
				deleg = map[string]uint64{}
			}
			deleg[ruleID] = store.KeyHash(fp)
		}
	}
	epoch, nextSeq := p.outbox.streamState(dst)
	rels := make(map[string]protocol.RelDigest, len(digs))
	for relID, d := range digs {
		rels[relID] = protocol.RelDigest{Hash: d.Hash, Count: d.Count}
	}
	return protocol.DigestMsg{Epoch: epoch, AsOfSeq: nextSeq, Rels: rels, Deleg: deleg}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Store returns the peer's relation store (read-mostly introspection; use
// Insert/Delete for mutations so they are staged and logged properly).
func (p *Peer) Store() *store.Store { return p.db }

// Engine returns the peer's evaluation engine.
func (p *Peer) Engine() *engine.Engine { return p.eng }

// Explain returns a human-readable dump of the join plans the engine
// chooses for the peer's current compiled program against the store's
// current contents (the surface behind `wdl run -explain`). The program
// compiles at stage time; before the first stage there is nothing to
// explain.
func (p *Peer) Explain() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.prog == nil {
		return "no compiled program (the peer has not run a stage yet)\n"
	}
	return p.eng.Explain(p.prog)
}

// Endpoint returns the transport endpoint.
func (p *Peer) Endpoint() transport.Endpoint { return p.ep }

// Controller returns the delegation access controller.
func (p *Peer) Controller() *acl.Controller { return p.ctrl }

// Provenance returns the provenance store, or nil if disabled.
func (p *Peer) Provenance() *provenance.Store { return p.prov }

// SetHooks installs wrapper hooks (see Hooks).
func (p *Peer) SetHooks(h Hooks) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hooks = h
}

// Stats returns a snapshot of lifetime counters.
func (p *Peer) Stats() Stats {
	p.mu.Lock()
	s := p.stats
	p.mu.Unlock()
	s.OutboxEnqueued = p.outbox.enqueued.Load()
	s.OutboxDelivered = p.outbox.delivered.Load()
	s.OutboxRetransmits = p.outbox.retransmits.Load()
	s.OutboxSendErrors = p.outbox.sendErrors.Load()
	s.OutboxResets = p.outbox.resets.Load()
	s.OutboxSheds = p.outbox.sheds.Load()
	s.BackpressureWaits = p.outbox.bpWaits.Load()
	s.BackpressureRejections = p.outbox.bpRejects.Load()
	s.ResyncAdverts = p.outbox.adverts.Load()
	return s
}

// flushIfSync flushes the outbox immediately in sync-emit mode, where no
// flusher goroutines exist. Async peers rely on their flushers.
func (p *Peer) flushIfSync() {
	if p.outbox.sync {
		p.outbox.FlushAll()
	}
}

func (p *Peer) debugf(format string, args ...any) {
	if p.logf != nil {
		p.logf("[%s] "+format, append([]any{p.name}, args...)...)
	}
}

func (p *Peer) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
	if fn := p.onReady.Load(); fn != nil {
		(*fn)()
	}
}

// setSchedHooks installs the concurrent scheduler's wake callbacks: ready
// fires whenever the peer gains stage work (every kick), outboxActive
// whenever the outbox gains pending entries. Both must be safe to call from
// any goroutine and must not acquire scheduler locks held across peer calls.
func (p *Peer) setSchedHooks(ready, outboxActive func()) {
	if ready != nil {
		p.onReady.Store(&ready)
	}
	if outboxActive != nil {
		p.outbox.onActive.Store(&outboxActive)
	}
}

// DeclareRelation declares (or re-checks) a relation owned by this peer.
func (p *Peer) DeclareRelation(name string, kind ast.RelKind, cols ...string) error {
	schema := store.Schema{Name: name, Peer: p.name, Kind: kind, Cols: cols}
	rel := p.db.Get(name, p.name)
	created := rel == nil
	if _, err := p.db.Declare(schema); err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	if created && p.wal != nil && kind == ast.Extensional {
		if err := p.wal.LogDeclare(schema); err != nil {
			return fmt.Errorf("peer %s: %w", p.name, err)
		}
	}
	if created {
		// New relations can change conservative stratification.
		p.mu.Lock()
		p.progDirty = true
		p.mu.Unlock()
		p.kick()
	}
	return nil
}

// AddRule parses src and adds it to the peer's own program, returning the
// assigned rule id.
func (p *Peer) AddRule(src string) (string, error) {
	r, err := parser.ParseRule(src)
	if err != nil {
		return "", fmt.Errorf("peer %s: %w", p.name, err)
	}
	return p.AddRuleAST(r)
}

// AddRuleAST adds an already-parsed rule, assigning it an id if it has none.
// The rule is checked for safety immediately so the caller learns about
// unusable rules synchronously.
func (p *Peer) AddRuleAST(r ast.Rule) (string, error) {
	if err := engine.CheckSafety(r); err != nil {
		return "", fmt.Errorf("peer %s: %w", p.name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.ID == "" {
		p.ruleSeq++
		r.ID = fmt.Sprintf("r%d", p.ruleSeq)
	}
	for _, have := range p.ownRules {
		if have.ID == r.ID {
			return "", fmt.Errorf("peer %s: %w: %q", p.name, errdefs.ErrDuplicateRule, r.ID)
		}
	}
	if r.Origin == "" {
		r.Origin = p.name
	}
	p.ownRules = append(p.ownRules, r)
	p.progDirty = true
	p.kick()
	return r.ID, nil
}

// RemoveRule removes an own rule by id. Any delegations this rule installed
// at other peers are withdrawn at the end of the next stage.
func (p *Peer) RemoveRule(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.ownRules {
		if r.ID == id {
			p.ownRules = append(p.ownRules[:i], p.ownRules[i+1:]...)
			p.progDirty = true
			p.kick()
			return nil
		}
	}
	return fmt.Errorf("peer %s: %w: %q", p.name, errdefs.ErrUnknownRule, id)
}

// ReplaceRule atomically swaps the rule with the given id for a new rule
// parsed from src, keeping the id (the Wepic rule-customization flow).
func (p *Peer) ReplaceRule(id, src string) error {
	r, err := parser.ParseRule(src)
	if err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	if err := engine.CheckSafety(r); err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.ownRules {
		if p.ownRules[i].ID == id {
			r.ID = id
			r.Origin = p.name
			p.ownRules[i] = r
			p.progDirty = true
			p.kick()
			return nil
		}
	}
	return fmt.Errorf("peer %s: %w: %q", p.name, errdefs.ErrUnknownRule, id)
}

// Rules returns the peer's own rules (copies), in insertion order.
func (p *Peer) Rules() []ast.Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ast.Rule, len(p.ownRules))
	for i, r := range p.ownRules {
		out[i] = r.Clone()
	}
	return out
}

// DelegatedRules returns the rules installed by remote peers, grouped by
// origin, in deterministic order.
func (p *Peer) DelegatedRules() map[string][]ast.Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := map[string][]ast.Rule{}
	keys := make([]delegationKey, 0, len(p.delegated))
	for k := range p.delegated {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Origin != keys[j].Origin {
			return keys[i].Origin < keys[j].Origin
		}
		return keys[i].RuleID < keys[j].RuleID
	})
	for _, k := range keys {
		for _, r := range p.delegated[k] {
			out[k.Origin] = append(out[k.Origin], r.Clone())
		}
	}
	return out
}

// ProgramText renders the peer's full program (own + delegated rules) the
// way the demo UI displays it.
func (p *Peer) ProgramText() string {
	var sb strings.Builder
	for _, r := range p.Rules() {
		sb.WriteString(r.String())
		sb.WriteString(";\n")
	}
	for origin, rules := range p.DelegatedRules() {
		for _, r := range rules {
			fmt.Fprintf(&sb, "%s; // delegated by %s\n", r.String(), origin)
		}
	}
	return sb.String()
}

// installDelegation is the acl.Controller callback: it replaces the rule set
// delegated by (origin, ruleID). nil rules withdraws the group.
func (p *Peer) installDelegation(origin, ruleID string, rules []ast.Rule) {
	key := delegationKey{Origin: origin, RuleID: ruleID}
	// Localize ids deterministically so that re-delegation downstream has a
	// stable identity across stages.
	sorted := make([]ast.Rule, len(rules))
	for i, r := range rules {
		sorted[i] = r.Clone()
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	for i := range sorted {
		sorted[i].ID = fmt.Sprintf("d[%s/%s]/%d", origin, ruleID, i)
		sorted[i].Origin = origin
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(sorted) == 0 {
		if _, had := p.delegated[key]; !had {
			return // withdrawal of nothing: no change
		}
		delete(p.delegated, key)
		p.progDirty = true
		p.kick()
		return
	}
	if sameRules(p.delegated[key], sorted) {
		return // maintenance resend with no change: do not re-trigger work
	}
	p.delegated[key] = sorted
	p.progDirty = true
	p.kick()
}

func sameRules(a, b []ast.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Insert stages the insertion of a fact. Facts for this peer are applied at
// the start of the next local stage; facts for other peers are sent to them
// immediately. For more than a handful of facts, build a Batch and use
// Apply: it takes the peer lock once, wakes the stage loop once, and ships
// one wire message per destination.
func (p *Peer) Insert(f ast.Fact) error { return p.update(ast.Derive, f) }

// Delete stages the deletion of a fact, with the same routing as Insert.
func (p *Peer) Delete(f ast.Fact) error { return p.update(ast.Delete, f) }

// Apply stages every operation of the batch atomically: operations on this
// peer's relations are buffered as one unit and applied in a single
// ingest+fixpoint stage (one store transaction, one WAL append run, one
// scheduler wakeup); operations on remote relations are grouped into one
// FactsMsg per destination peer, so each destination also ingests its share
// in a single stage. Remote shares are committed to the per-destination
// outbox — delivered at-least-once, out of band — so Apply never blocks on
// the network; it fails only for unroutable destinations or a closed peer.
//
// Operations keep their relative order, so an insert followed by a delete
// of the same fact inside one batch nets out to the delete.
//
// Apply is the admission-controlled intake: when Config.OutboxLimit or
// Config.MaxPendingOps bound a queue, a full queue blocks the caller under
// ctx (AdmitBlock) or fails with an error wrapping ErrBackpressure
// (AdmitFailFast) instead of growing without bound.
func (p *Peer) Apply(ctx context.Context, b *engine.Batch) error {
	if b == nil || b.Empty() {
		return nil
	}
	var local []engine.FactOp
	remote := make(map[string]*protocol.FactsMsg)
	var order []string
	for _, op := range b.Ops() {
		if op.Fact.Peer == p.name {
			local = append(local, op)
			continue
		}
		m := remote[op.Fact.Peer]
		if m == nil {
			m = &protocol.FactsMsg{}
			remote[op.Fact.Peer] = m
			order = append(order, op.Fact.Peer)
		}
		m.Append(op.Op == ast.Delete, op.Fact)
	}
	var errs []error
	if len(order) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.isClosed() {
			return fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
		}
		for _, dst := range order {
			if !p.canRoute(dst) {
				errs = append(errs, fmt.Errorf("peer %s: sending batch of %d to %s: %w",
					p.name, remote[dst].Len(), dst, errdefs.ErrUnknownPeer))
				continue
			}
			if _, err := p.outbox.EnqueueDataCtx(ctx, dst, *remote[dst]); err != nil {
				errs = append(errs, fmt.Errorf("peer %s: %w", p.name, err))
			}
		}
		p.flushIfSync()
	}
	if len(local) > 0 {
		if err := p.stageLocal(ctx, local); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// stageLocal appends ops to the pending-op queue under admission control:
// once maxPendingOps operations are staged, the caller blocks until a
// stage drains the queue (or fails fast, per the policy). A batch larger
// than the whole bound is admitted whenever the queue is empty, so
// oversized batches degrade to serialized admission instead of deadlock.
func (p *Peer) stageLocal(ctx context.Context, ops []engine.FactOp) error {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
		}
		if p.maxPendingOps <= 0 || len(p.pendingOps) == 0 ||
			len(p.pendingOps)+len(ops) <= p.maxPendingOps {
			p.pendingOps = append(p.pendingOps, ops...)
			p.mu.Unlock()
			p.kick()
			return nil
		}
		if p.admitFailFast {
			p.mu.Unlock()
			p.outbox.bpRejects.Add(1)
			return fmt.Errorf("peer %s: %d staged updates pending: %w",
				p.name, p.maxPendingOps, errdefs.ErrBackpressure)
		}
		if p.pendingSpace == nil {
			p.pendingSpace = make(chan struct{})
		}
		wait := p.pendingSpace
		p.mu.Unlock()
		p.outbox.bpWaits.Add(1)
		p.kick() // make sure a stage is coming to drain the queue
		select {
		case <-ctx.Done():
			return fmt.Errorf("peer %s: waiting to stage updates: %w: %w",
				p.name, errdefs.ErrBackpressure, ctx.Err())
		case <-p.ctx.Done():
			return fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
		case <-wait:
		}
	}
}

// shedStream is the outbox's slow-peer callback: dst has had pending
// entries with no ack progress for the whole shed window. Restart its
// stream around a fresh snapshot of the maintained view (ShedReset
// discards the wedged backlog) and forget the delegation fingerprints for
// the target, exactly as a served reset request would — when the
// destination recovers, it adopts the new epoch at sequence 1 and the
// anti-entropy machinery settles the rest.
func (p *Peer) shedStream(dst string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.debugf("shedding stream to %s", dst)
	p.outbox.ShedReset(dst, p.snapshotChunksLocked(dst)...)
	for ruleID, targets := range p.lastSentDeleg {
		if _, ok := targets[dst]; ok {
			delete(targets, dst)
			if len(targets) == 0 {
				delete(p.lastSentDeleg, ruleID)
			}
			p.progDirty = true
		}
	}
	p.kick()
}

// InsertString parses a fact in concrete syntax and stages its insertion.
func (p *Peer) InsertString(src string) error {
	f, err := parser.ParseFact(src)
	if err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	return p.Insert(f)
}

// DeleteString parses a fact in concrete syntax and stages its deletion.
func (p *Peer) DeleteString(src string) error {
	f, err := parser.ParseFact(src)
	if err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	return p.Delete(f)
}

func (p *Peer) update(op ast.UpdateOp, f ast.Fact) error {
	if f.Peer != p.name {
		if !p.canRoute(f.Peer) {
			return fmt.Errorf("peer %s: sending update for %s: %w: %q", p.name, f.String(), errdefs.ErrUnknownPeer, f.Peer)
		}
		if p.isClosed() {
			return fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
		}
		del := op == ast.Delete
		p.outbox.EnqueueData(f.Peer, protocol.FactsMsg{Ops: []protocol.FactDelta{{Delete: del, Fact: f}}})
		p.flushIfSync()
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
	}
	p.pendingOps = append(p.pendingOps, engine.FactOp{Op: op, Fact: f})
	p.mu.Unlock()
	p.kick()
	return nil
}

// LoadProgram applies a parsed program unit: relation declarations for this
// peer, staged facts, and rules. Declarations for other peers are ignored
// (they describe the remote schema for the reader's benefit).
func (p *Peer) LoadProgram(prog *ast.Program) error {
	for _, d := range prog.Relations {
		if d.Peer != p.name {
			continue
		}
		if err := p.DeclareRelation(d.Name, d.Kind, d.Cols...); err != nil {
			return err
		}
	}
	for _, f := range prog.Facts {
		if err := p.Insert(f); err != nil {
			return err
		}
	}
	for _, r := range prog.Rules {
		if _, err := p.AddRuleAST(r); err != nil {
			return err
		}
	}
	return nil
}

// LoadSource parses src and applies it with LoadProgram.
func (p *Peer) LoadSource(src string) error {
	prog, err := parser.Parse(src)
	if err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	return p.LoadProgram(prog)
}

// Query returns the current tuples of a local relation, sorted. Views are
// as of the last completed stage.
func (p *Peer) Query(relName string) []value.Tuple {
	rel := p.db.Get(relName, p.name)
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

// QueryFacts is Query but renders tuples as facts.
func (p *Peer) QueryFacts(relName string) []ast.Fact {
	var out []ast.Fact
	for _, t := range p.Query(relName) {
		out = append(out, ast.Fact{Rel: relName, Peer: p.name, Args: t})
	}
	return out
}

// HasWork reports whether a stage would make progress: unread inbox
// messages, staged updates, transient seeds, program changes, or the very
// first stage.
func (p *Peer) HasWork() bool {
	if p.ep.Pending() > 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pendingOps) > 0 || p.progDirty || !p.ranOnce || p.poked
}

// OutboxPending returns the number of outgoing messages not yet acknowledged
// by their destination, and how many of those sit in queues whose last
// delivery attempt failed (stalled, retrying under backoff).
func (p *Peer) OutboxPending() (total, stalled int) {
	return p.outbox.Pending()
}

// FlushOutbox synchronously attempts one delivery pass over every outbox
// queue, reporting whether anything was transmitted. The network scheduler
// uses it to accelerate delivery between rounds; async peers do not need it.
func (p *Peer) FlushOutbox() bool {
	return p.outbox.FlushAll()
}

func (p *Peer) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// canRoute consults the transport's Router (when implemented) so API-level
// updates to unknown peers fail synchronously instead of queueing forever.
func (p *Peer) canRoute(dst string) bool {
	if r, ok := p.ep.(transport.Router); ok {
		return r.CanRoute(dst)
	}
	return true
}

// Poke schedules a stage attempt even though no inputs are queued. Wrappers
// call it after external services change out-of-band, so the next stage's
// pull hook observes the fresh state. If the pull changes nothing, the
// stage is skipped as usual.
func (p *Peer) Poke() {
	p.mu.Lock()
	p.poked = true
	p.mu.Unlock()
	p.kick()
}

// CompileErrors returns the rule errors from the most recent compilation
// (unsafe delegated rules are skipped but reported here).
func (p *Peer) CompileErrors() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]error, len(p.compileErr))
	copy(out, p.compileErr)
	return out
}

// Close flushes durable state, closes all subscription channels and
// detaches from the transport.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	subs := p.subs
	p.subs = make(map[int]*subscription)
	p.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
	// Cancel the peer context first (aborts in-flight dials and stops the
	// flushers at their next check), then close the endpoint (unblocks any
	// write in progress), then wait for the flushers to exit.
	p.cancel()
	var errs []error
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil {
			errs = append(errs, err)
		}
		if err := p.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := p.ep.Close(); err != nil {
		errs = append(errs, err)
	}
	p.outbox.Shutdown()
	if p.oblog != nil {
		if err := p.oblog.Sync(); err != nil {
			errs = append(errs, err)
		}
		if err := p.oblog.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
