package peer

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/transport"
	"repro/internal/value"
)

// TestSchedulerMidRunAdd: a peer registered while RunToQuiescence is already
// running must be picked up by the wake queue — the run cannot settle until
// the newcomer has ingested (and acked) the traffic queued for it.
func TestSchedulerMidRunAdd(t *testing.T) {
	n := NewNetwork()
	a, err := n.NewPeer(Config{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Pre-attach b's endpoint so a's pushes route and queue before the peer
	// exists (the bus keeps the envelopes).
	bEP := n.Bus().Endpoint("b")
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := n.RunToQuiescence(context.Background(), 2_000_000)
		done <- err
	}()

	time.Sleep(20 * time.Millisecond) // let the run start and wedge on b's silence
	b, err := New(Config{Name: "b"}, bEP)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	n.Add(b)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunToQuiescence: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("RunToQuiescence never finished after the mid-run Add")
	}
	if got := len(b.Query("view")); got != 10 {
		t.Fatalf("view@b has %d tuples, want 10", got)
	}
	if total, _ := a.OutboxPending(); total != 0 {
		t.Fatalf("a's outbox still has %d pending entries after quiescence", total)
	}
}

// TestSchedulerQuiescenceRequiresDrain: an unreachable destination's queued
// entries must not be reported as converged state — RunToQuiescence returns
// (stalled-exempt), the entries stay pending, and a later run after the
// link heals drains them.
func TestSchedulerQuiescenceRequiresDrain(t *testing.T) {
	n := NewNetwork()
	a := newFaultyPeer(t, n, "a", transport.FaultConfig{Seed: 51})
	b := newFaultyPeer(t, n, "b", transport.FaultConfig{Seed: 52})
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	aEP := a.ep.(*transport.FaultyEndpoint)
	aEP.SetDown(true)
	for i := int64(0); i < 5; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
		t.Fatalf("stalled-exempt run: %v", err)
	}
	if total, _ := a.OutboxPending(); total == 0 {
		t.Fatal("outbox drained through a downed link")
	}
	if got := len(b.Query("view")); got != 0 {
		t.Fatalf("view@b has %d tuples through a downed link", got)
	}
	aEP.SetDown(false)
	deadline := time.Now().Add(20 * time.Second)
	for len(b.Query("view")) != 5 && time.Now().Before(deadline) {
		if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
			t.Fatalf("post-heal run: %v", err)
		}
		time.Sleep(5 * time.Millisecond) // let backoff gates expire
	}
	if got := len(b.Query("view")); got != 5 {
		t.Fatalf("view@b has %d tuples after heal, want 5", got)
	}
}

// TestSchedulerNoLostWakeup stresses the hooks against concurrent intake:
// API inserts racing the scheduler must never be stranded by a missed
// wake — every fact ends up in the maintained remote view. Run with -race.
func TestSchedulerNoLostWakeup(t *testing.T) {
	n := NewNetwork()
	a, err := n.NewPeer(Config{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := n.NewPeer(Config{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.LoadSource(`
		relation extensional src@a(g, x);
		view@b($g, $x) :- src@a($g, $x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRelation("view", ast.Intensional, "g", "x"); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f := ast.NewFact("src", "a", value.Int(int64(g)), value.Int(int64(i)))
				if err := a.Insert(f); err != nil {
					t.Errorf("insert g%d i%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	// Drive the network concurrently with the writers until they finish.
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		for !waitersDone(&wg) {
			if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
				t.Errorf("concurrent run: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-runDone
	if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
		t.Fatalf("final run: %v", err)
	}
	if got := len(b.Query("view")); got != goroutines*perG {
		t.Fatalf("view@b has %d tuples, want %d (lost wakeup?)", got, goroutines*perG)
	}
}

// waitersDone polls a WaitGroup without blocking forever.
func waitersDone(wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(time.Millisecond):
		return false
	}
}

// TestSequentialDeterminismPinned: the sequential scheduler's behavior is
// part of the repo's determinism contract — identical seeded runs must
// produce identical round/stage counts and identical final views, and the
// wake-queue refactor must leave it untouched (it only rewires the
// concurrent scheduler).
func TestSequentialDeterminismPinned(t *testing.T) {
	build := func() (rounds, stages int, views string) {
		n := NewSequentialNetwork()
		names := []string{"a", "b", "c", "d", "e"}
		peers := make([]*Peer, len(names))
		for i, name := range names {
			p, err := n.NewPeer(Config{Name: name})
			if err != nil {
				t.Fatal(err)
			}
			peers[i] = p
			if err := p.DeclareRelation("data", ast.Extensional, "x"); err != nil {
				t.Fatal(err)
			}
			if err := p.DeclareRelation("feed", ast.Extensional, "src", "x"); err != nil {
				t.Fatal(err)
			}
		}
		// Ring: each peer pushes its data into its successor's feed.
		for i, p := range peers {
			next := names[(i+1)%len(names)]
			rule := fmt.Sprintf(`feed@%s("%s", $x) :- data@%s($x);`, next, names[i], names[i])
			if _, err := p.AddRule(rule); err != nil {
				t.Fatal(err)
			}
		}
		for i, p := range peers {
			for k := 0; k < 4; k++ {
				f := ast.NewFact("data", names[i], value.Int(int64(i*10+k)))
				if err := p.Insert(f); err != nil {
					t.Fatal(err)
				}
			}
		}
		r, s, err := n.RunToQuiescence(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var sb string
		for _, p := range peers {
			sb += fmt.Sprint(p.Query("feed"))
		}
		for _, p := range peers {
			p.Close()
		}
		return r, s, sb
	}
	r1, s1, v1 := build()
	r2, s2, v2 := build()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("sequential runs diverged: (%d rounds, %d stages) vs (%d, %d)", r1, s1, r2, s2)
	}
	if v1 != v2 {
		t.Fatalf("sequential views diverged:\n%s\nvs\n%s", v1, v2)
	}
}

// TestSchedulerScansQuiescent pins the O(active) property at the Network
// level: RunToQuiescence on an already-quiescent concurrent network
// examines zero peers.
func TestSchedulerScansQuiescent(t *testing.T) {
	n := NewNetwork()
	for i := 0; i < 20; i++ {
		p, err := n.NewPeer(Config{Name: fmt.Sprintf("q%02d", i)})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.DeclareRelation("data", ast.Extensional, "x"); err != nil {
			t.Fatal(err)
		}
		if err := p.Insert(ast.NewFact("data", p.Name(), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	scans0 := n.SchedulerScans()
	if scans0 == 0 {
		t.Fatal("first run scanned nothing — counter not wired?")
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if delta := n.SchedulerScans() - scans0; delta != 0 {
		t.Fatalf("quiescent run examined %d peers, want 0", delta)
	}
}
