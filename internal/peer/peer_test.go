package peer

import (
	"context"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/value"
)

func newTestNetwork(t *testing.T, names ...string) (*Network, map[string]*Peer) {
	t.Helper()
	n := NewNetwork()
	peers := make(map[string]*Peer, len(names))
	for _, name := range names {
		p, err := n.NewPeer(Config{Name: name})
		if err != nil {
			t.Fatalf("NewPeer(%s): %v", name, err)
		}
		peers[name] = p
	}
	return n, peers
}

func quiesce(t *testing.T, n *Network) int {
	t.Helper()
	_, stages, err := n.RunToQuiescence(context.Background(), 200)
	if err != nil {
		t.Fatalf("RunToQuiescence: %v", err)
	}
	return stages
}

func tuples(p *Peer, rel string) []string {
	var out []string
	for _, tp := range p.Query(rel) {
		out = append(out, tp.String())
	}
	return out
}

func TestSinglePeerFixpointThroughStages(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional edge@alice(a, b);
		relation intensional tc@alice(a, b);
		edge@alice("a","b");
		edge@alice("b","c");
		tc@alice($x,$y) :- edge@alice($x,$y);
		tc@alice($x,$z) :- tc@alice($x,$y), edge@alice($y,$z);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := tuples(alice, "tc")
	if len(got) != 3 {
		t.Errorf("tc = %v, want 3 tuples", got)
	}
}

func TestRemoteFactDelivery(t *testing.T) {
	n, ps := newTestNetwork(t, "alice", "bob")
	alice, bob := ps["alice"], ps["bob"]
	if err := bob.DeclareRelation("inbox", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	if err := alice.LoadSource(`
		relation extensional out@alice(x);
		out@alice("hello");
		inbox@bob($x) :- out@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(bob, "inbox"); len(got) != 1 || got[0] != "(hello)" {
		t.Errorf("bob inbox = %v, want [(hello)]", got)
	}
}

func TestPaperDelegationScenario(t *testing.T) {
	// §2 of the paper: Jules' rule delegates the residual
	//   attendeePictures@jules(...) :- pictures@emilien(...)
	// to emilien once selectedAttendee@jules("emilien") holds.
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id, name, owner, data);
		pictures@emilien(1, "sea.jpg", "emilien", 0xABCD);
		pictures@emilien(2, "sky.jpg", "emilien", 0x1234);
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "attendeePictures"); len(got) != 0 {
		t.Fatalf("no attendee selected yet, but attendeePictures = %v", got)
	}

	if err := jules.InsertString(`selectedAttendee@jules("emilien");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	// The residual rule must now be installed at emilien.
	delegated := emilien.DelegatedRules()["jules"]
	if len(delegated) != 1 {
		t.Fatalf("emilien has %d delegated rules from jules, want 1: %v", len(delegated), delegated)
	}
	wantRule := `attendeePictures@jules($id, $name, $owner, $data) :- pictures@emilien($id, $name, $owner, $data)`
	if got := delegated[0].String(); got != wantRule {
		t.Errorf("delegated rule = %q, want %q", got, wantRule)
	}
	// And jules sees emilien's pictures.
	if got := tuples(jules, "attendeePictures"); len(got) != 2 {
		t.Errorf("attendeePictures = %v, want 2 pictures", got)
	}

	// Adding a picture at emilien flows to jules without further setup.
	if err := emilien.InsertString(`pictures@emilien(3, "dinner.jpg", "emilien", 0x99);`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "attendeePictures"); len(got) != 3 {
		t.Errorf("after new upload, attendeePictures = %v, want 3", got)
	}

	// Deselecting the attendee withdraws the delegation (maintenance).
	if err := jules.DeleteString(`selectedAttendee@jules("emilien");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := emilien.DelegatedRules()["jules"]; len(got) != 0 {
		t.Errorf("delegation not withdrawn: %v", got)
	}
	if got := tuples(jules, "attendeePictures"); len(got) != 0 {
		t.Errorf("attendeePictures after withdrawal = %v, want empty", got)
	}
}

func TestDelegationControlHoldAndAccept(t *testing.T) {
	// Figure 3 of the paper: an untrusted peer's delegation waits in a
	// queue; the program changes only after explicit approval.
	n := NewNetwork()
	jules, err := n.NewPeer(Config{Name: "jules", Policy: acl.NewTrustPolicy("sigmod")})
	if err != nil {
		t.Fatal(err)
	}
	julia, err := n.NewPeer(Config{Name: "julia"})
	if err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional pictures@jules(id);
		pictures@jules(7);
	`); err != nil {
		t.Fatal(err)
	}
	// Julia wants jules to push his picture ids to her.
	if err := julia.LoadSource(`
		relation extensional trigger@julia(p);
		relation extensional collected@julia(id);
		trigger@julia("jules");
		collected@julia($id) :- trigger@julia($p), pictures@$p($id);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	// The delegation must be pending, not installed.
	if got := jules.DelegatedRules()["julia"]; len(got) != 0 {
		t.Fatalf("delegation installed without approval: %v", got)
	}
	pend := jules.Controller().Pending()
	if len(pend) != 1 {
		t.Fatalf("pending queue = %v, want 1 entry", pend)
	}
	if got := tuples(julia, "collected"); len(got) != 0 {
		t.Errorf("julia got data before approval: %v", got)
	}

	// Jules accepts; the rule is installed and data flows.
	if err := jules.Controller().Accept(pend[0].ID); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := jules.DelegatedRules()["julia"]; len(got) != 1 {
		t.Fatalf("delegation not installed after approval: %v", got)
	}
	if got := tuples(julia, "collected"); len(got) != 1 || got[0] != "(7)" {
		t.Errorf("julia collected = %v, want [(7)]", got)
	}
	if !strings.Contains(jules.ProgramText(), "delegated by julia") {
		t.Errorf("program text does not show the delegated rule:\n%s", jules.ProgramText())
	}
}

func TestDelegationControlReject(t *testing.T) {
	n := NewNetwork()
	jules, err := n.NewPeer(Config{Name: "jules", Policy: acl.NewTrustPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	julia, err := n.NewPeer(Config{Name: "julia"})
	if err != nil {
		t.Fatal(err)
	}
	if err := jules.DeclareRelation("pictures", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	if err := julia.LoadSource(`
		relation extensional trigger@julia(p);
		trigger@julia("jules");
		collected@julia($id) :- trigger@julia($p), pictures@$p($id);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	pend := jules.Controller().Pending()
	if len(pend) != 1 {
		t.Fatalf("pending = %v", pend)
	}
	if err := jules.Controller().Reject(pend[0].ID); err != nil {
		t.Fatal(err)
	}
	if jules.Controller().Rejected() != 1 {
		t.Errorf("rejected count = %d, want 1", jules.Controller().Rejected())
	}
	if len(jules.Controller().Pending()) != 0 {
		t.Errorf("queue not emptied after reject")
	}
	quiesce(t, n)
	if got := jules.DelegatedRules()["julia"]; len(got) != 0 {
		t.Errorf("rejected delegation was installed: %v", got)
	}
}

func TestTransferRuleWithVariableProtocolAndPeer(t *testing.T) {
	// The paper's picture-transfer rule: the head relation AND peer both
	// come from data.
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional communicate@emilien(protocol);
		relation extensional wepic@emilien(attendee, name, id, owner);
		communicate@emilien("wepic");
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation extensional selectedPictures@jules(name, id, owner);
		selectedAttendee@jules("emilien");
		selectedPictures@jules("sea.jpg", 1, "jules");
		$protocol@$attendee($attendee, $name, $id, $owner) :-
			selectedAttendee@jules($attendee),
			communicate@$attendee($protocol),
			selectedPictures@jules($name, $id, $owner);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := tuples(emilien, "wepic")
	if len(got) != 1 || got[0] != "(emilien, sea.jpg, 1, jules)" {
		t.Errorf("emilien wepic = %v", got)
	}
}

func TestTransientIntensionalFacts(t *testing.T) {
	// A fact sent to a remote *intensional* relation holds for exactly one
	// stage at the destination.
	n, ps := newTestNetwork(t, "alice", "bob")
	alice, bob := ps["alice"], ps["bob"]
	if err := bob.LoadSource(`
		relation intensional ping@bob(x);
		relation extensional log@bob(x);
		log@bob($x) :- ping@bob($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := alice.DeclareRelation("dummy", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// Alice pushes a transient fact straight to bob's view.
	if err := alice.Insert(ast.NewFact("ping", "bob", value.Str("p1"))); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(bob, "log"); len(got) != 1 || got[0] != "(p1)" {
		t.Fatalf("bob log = %v, want [(p1)]", got)
	}
	// The transient fact itself must be gone after the stage that consumed it.
	if got := tuples(bob, "ping"); len(got) != 0 {
		t.Errorf("transient fact persisted in view: %v", got)
	}
}

func TestRuleCustomizationChangesView(t *testing.T) {
	// §4 "Customizing rules": replacing the rule with the rating-5 variant
	// changes the contents of attendeePictures.
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id, name, owner, data);
		relation extensional rate@emilien(id, stars);
		pictures@emilien(1, "sea.jpg", "emilien", 0x01);
		pictures@emilien(2, "sky.jpg", "emilien", 0x02);
		rate@emilien(1, 5);
		rate@emilien(2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");
	`); err != nil {
		t.Fatal(err)
	}
	id, err := jules.AddRule(`attendeePictures@jules($id,$name,$owner,$data) :-
		selectedAttendee@jules($attendee),
		pictures@$attendee($id,$name,$owner,$data);`)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "attendeePictures"); len(got) != 2 {
		t.Fatalf("attendeePictures = %v, want 2", got)
	}

	// Customize: only rating-5 pictures (the owner is the rater, as in the
	// paper's example).
	if err := jules.ReplaceRule(id, `attendeePictures@jules($id,$name,$owner,$data) :-
		selectedAttendee@jules($attendee),
		pictures@$attendee($id,$name,$owner,$data),
		rate@$owner($id, 5);`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := tuples(jules, "attendeePictures")
	if len(got) != 1 || !strings.HasPrefix(got[0], "(1, sea.jpg") {
		t.Errorf("customized attendeePictures = %v, want only picture 1", got)
	}
}

func TestChainedDelegation(t *testing.T) {
	// a's rule reads b then c: the residual delegated to b still contains a
	// non-local atom, so b re-delegates to c.
	n, ps := newTestNetwork(t, "a", "b", "c")
	pa, pb, pc := ps["a"], ps["b"], ps["c"]
	if err := pb.LoadSource(`
		relation extensional mid@b(x);
		mid@b("m");
	`); err != nil {
		t.Fatal(err)
	}
	if err := pc.LoadSource(`
		relation extensional leaf@c(x, y);
		leaf@c("m", "z");
	`); err != nil {
		t.Fatal(err)
	}
	if err := pa.LoadSource(`
		relation extensional seed@a(x);
		relation extensional got@a(y);
		seed@a("go");
		got@a($y) :- seed@a($x), mid@b($m), leaf@c($m, $y);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(pa, "got"); len(got) != 1 || got[0] != "(z)" {
		t.Errorf("a got = %v, want [(z)]", got)
	}
	if got := pc.DelegatedRules()["b"]; len(got) != 1 {
		t.Errorf("c should hold a re-delegated rule from b, got %v", got)
	}
}

func TestDeletePropagatesRemotely(t *testing.T) {
	n, ps := newTestNetwork(t, "alice", "bob")
	alice, bob := ps["alice"], ps["bob"]
	if err := bob.LoadSource(`
		relation extensional data@bob(x);
		data@bob("old");
	`); err != nil {
		t.Fatal(err)
	}
	if err := alice.LoadSource(`
		relation extensional purge@alice(x);
		purge@alice("old");
		-data@bob($x) :- purge@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(bob, "data"); len(got) != 0 {
		t.Errorf("bob data = %v, want empty after remote deletion", got)
	}
}

func TestStageSkippedWhenNothingChanges(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional a@alice(x);
		a@alice("v");
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	before := alice.Stats().Stages
	// Re-inserting an existing fact is a no-op: the stage must be skipped.
	if err := alice.InsertString(`a@alice("v");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	after := alice.Stats()
	if after.Stages != before {
		t.Errorf("stage ran on a no-op insert: %d -> %d", before, after.Stages)
	}
	if after.StagesSkipped == 0 {
		t.Errorf("expected a skipped stage to be recorded")
	}
}

func TestUnsafeRuleRejectedSynchronously(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	_ = n
	if _, err := ps["alice"].AddRule(`out@alice($x, $y) :- in@alice($x);`); err == nil {
		t.Fatal("expected safety error")
	}
}

func TestRemoveRuleWithdrawsDelegations(t *testing.T) {
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.DeclareRelation("pictures", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional sel@jules(a);
		sel@jules("emilien");
	`); err != nil {
		t.Fatal(err)
	}
	id, err := jules.AddRule(`view@jules($id) :- sel@jules($a), pictures@$a($id);`)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := emilien.DelegatedRules()["jules"]; len(got) != 1 {
		t.Fatalf("delegation missing: %v", got)
	}
	if err := jules.RemoveRule(id); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := emilien.DelegatedRules()["jules"]; len(got) != 0 {
		t.Errorf("delegation survives rule removal: %v", got)
	}
}

func TestProgramTextListsRules(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	_ = n
	alice := ps["alice"]
	if _, err := alice.AddRule(`b@alice($x) :- a@alice($x);`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(alice.ProgramText(), "b@alice($x) :- a@alice($x);") {
		t.Errorf("program text missing rule:\n%s", alice.ProgramText())
	}
}
