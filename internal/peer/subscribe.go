package peer

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/store"
	"repro/internal/value"
)

// Delta is one observed change to a subscribed relation: the insertion
// (default) or deletion of a tuple, as committed by a fixpoint stage.
type Delta struct {
	Rel    string
	Delete bool
	Tuple  value.Tuple
}

// String renders the delta for logs.
func (d Delta) String() string {
	if d.Delete {
		return "-" + d.Rel + d.Tuple.String()
	}
	return "+" + d.Rel + d.Tuple.String()
}

// SubscribeBuffer is the capacity of a subscription's delta channel. A
// consumer that falls more than a full buffer behind is disconnected (its
// channel is closed and an errdefs.ErrSlowSubscriber is recorded on the
// stage report) rather than allowed to wedge the stage loop.
const SubscribeBuffer = 256

type subscription struct {
	id   int
	rel  *store.Relation
	ch   chan Delta
	prev map[string]value.Tuple // relation contents at the last emit
	vers uint64                 // relation version at the last emit
	fp   uint64                 // relation content fingerprint at the last emit
}

// Subscribe streams changes to the named local relation: every time a stage
// commits, the tuples that appeared are delivered as insert deltas and the
// tuples that vanished as delete deltas, in sorted order, deletions first.
// This is the primitive a live UI (the Wepic photo wall) or any serving
// frontend polls-free view maintenance builds on.
//
// The baseline is the relation's contents at Subscribe time: only
// subsequent changes stream. Works for extensional and rule-derived
// (intensional) relations alike — a derived view that is cleared and
// re-derived to the same contents produces no deltas.
//
// The channel is closed when ctx is cancelled, when the peer is closed, or
// if the consumer falls further behind than SubscribeBuffer deltas. The
// relation must already be declared; subscribing to an unknown relation
// returns an error wrapping errdefs.ErrUnknownRelation.
func (p *Peer) Subscribe(ctx context.Context, relName string) (<-chan Delta, error) {
	rel := p.db.Get(relName, p.name)
	if rel == nil {
		return nil, fmt.Errorf("peer %s: %w: %s", p.name, errdefs.ErrUnknownRelation, relName)
	}
	// Build the baseline under p.mu: stages also hold p.mu, so the snapshot
	// cannot tear against a concurrently-committing fixpoint (a delta
	// between Tuples and Version would otherwise be lost forever).
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("peer %s: %w", p.name, errdefs.ErrClosed)
	}
	prev := make(map[string]value.Tuple)
	for _, t := range rel.Tuples() {
		prev[t.Key()] = t
	}
	sub := &subscription{
		rel:  rel,
		ch:   make(chan Delta, SubscribeBuffer),
		prev: prev,
		vers: rel.Version(),
		fp:   rel.Fingerprint(),
	}
	p.subSeq++
	sub.id = p.subSeq
	p.subs[sub.id] = sub
	p.mu.Unlock()

	if ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			p.removeSub(sub.id)
		}()
	}
	return sub.ch, nil
}

// Subscribers returns the number of live subscriptions (introspection).
func (p *Peer) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// removeSub unregisters and closes a subscription; idempotent.
func (p *Peer) removeSub(id int) {
	p.mu.Lock()
	sub, ok := p.subs[id]
	if ok {
		delete(p.subs, id)
	}
	p.mu.Unlock()
	if ok {
		close(sub.ch)
	}
}

// emitSubscriptionsLocked streams the stage's net effect to every
// subscription. Called at the end of each stage that ran, with p.mu held.
//
// On incremental stages the deltas are exact and already known — the
// extensional changes recorded during ingestion plus the engine's view
// deltas — so delivery is O(deltas) with no snapshotting. Recomputation
// stages (rebuilds, wrapper-hook peers whose relations are mutated out of
// band) fall back to diffing the relation against the last emitted state.
func (p *Peer) emitSubscriptionsLocked(rep *StageReport, d *stageDeltas, res *engine.Result, incremental bool) {
	var dropped []int
	for id, sub := range p.subs {
		var deltas []Delta
		if incremental {
			deltas = sub.collectDeltas(p.name, d, res)
			if len(deltas) > 0 {
				for _, dl := range deltas {
					if dl.Delete {
						delete(sub.prev, dl.Tuple.Key())
					} else {
						sub.prev[dl.Tuple.Key()] = dl.Tuple
					}
				}
			}
			sub.vers = sub.rel.Version()
			sub.fp = sub.rel.Fingerprint()
		} else {
			deltas = sub.diffDeltas()
		}
	deliver:
		for i, dl := range deltas {
			select {
			case sub.ch <- dl:
			default:
				rep.Errors = append(rep.Errors, fmt.Errorf(
					"peer %s: %w: %s subscription dropped %d deltas",
					p.name, errdefs.ErrSlowSubscriber, sub.rel.Name(), len(deltas)-i))
				dropped = append(dropped, id)
				break deliver
			}
		}
	}
	for _, id := range dropped {
		sub := p.subs[id]
		delete(p.subs, id)
		close(sub.ch)
	}
	p.stats.SubscriptionDrops += uint64(len(dropped))
}

// collectDeltas assembles an incremental stage's exact deltas for this
// subscription: deletions first, then insertions, each sorted.
func (sub *subscription) collectDeltas(peerName string, d *stageDeltas, res *engine.Result) []Delta {
	relID := sub.rel.Name() + "@" + peerName
	var dels, ins []value.Tuple
	for _, t := range d.del[relID] {
		dels = append(dels, t)
	}
	for _, t := range d.ins[relID] {
		ins = append(ins, t)
	}
	if vd := res.Views[relID]; vd != nil {
		dels = append(dels, vd.Del...)
		ins = append(ins, vd.Ins...)
	}
	dels, ins = netTuples(dels, ins)
	if len(dels) == 0 && len(ins) == 0 {
		return nil
	}
	value.SortTuples(dels)
	value.SortTuples(ins)
	out := make([]Delta, 0, len(dels)+len(ins))
	for _, t := range dels {
		out = append(out, Delta{Rel: sub.rel.Name(), Delete: true, Tuple: t})
	}
	for _, t := range ins {
		out = append(out, Delta{Rel: sub.rel.Name(), Tuple: t})
	}
	return out
}

// netTuples cancels same-key delete/insert pairs: a tuple seeded and
// retracted within one stage (coalesced maintained deltas) produces no
// observable change.
func netTuples(dels, ins []value.Tuple) ([]value.Tuple, []value.Tuple) {
	if len(dels) == 0 || len(ins) == 0 {
		return dels, ins
	}
	insKeys := make(map[string]bool, len(ins))
	for _, t := range ins {
		insKeys[t.Key()] = true
	}
	var cancelled map[string]bool
	keptDels := dels[:0]
	for _, t := range dels {
		if insKeys[t.Key()] {
			if cancelled == nil {
				cancelled = map[string]bool{}
			}
			cancelled[t.Key()] = true
			continue
		}
		keptDels = append(keptDels, t)
	}
	if cancelled == nil {
		return keptDels, ins
	}
	keptIns := ins[:0]
	for _, t := range ins {
		if !cancelled[t.Key()] {
			keptIns = append(keptIns, t)
		}
	}
	return keptDels, keptIns
}

// diffDeltas computes deltas by diffing the relation against the last
// emitted state — the recomputation-stage fallback.
func (sub *subscription) diffDeltas() []Delta {
	v := sub.rel.Version()
	if v == sub.vers {
		return nil // untouched since the last emit
	}
	fp := sub.rel.Fingerprint()
	if fp == sub.fp {
		// Mutated but content-identical — the common case for a view
		// cleared and re-derived to the same tuples. Skipping here keeps
		// subscriptions O(1) per quiescent stage.
		sub.vers = v
		return nil
	}
	cur := sub.rel.Tuples() // sorted snapshot
	curKeys := make(map[string]value.Tuple, len(cur))
	for _, t := range cur {
		curKeys[t.Key()] = t
	}
	var deltas []Delta
	removed := make([]value.Tuple, 0)
	for k, t := range sub.prev {
		if _, still := curKeys[k]; !still {
			removed = append(removed, t)
		}
	}
	value.SortTuples(removed)
	for _, t := range removed {
		deltas = append(deltas, Delta{Rel: sub.rel.Name(), Delete: true, Tuple: t})
	}
	for _, t := range cur {
		if _, had := sub.prev[t.Key()]; !had {
			deltas = append(deltas, Delta{Rel: sub.rel.Name(), Tuple: t})
		}
	}
	sub.prev = curKeys
	sub.vers = v
	sub.fp = fp
	return deltas
}
