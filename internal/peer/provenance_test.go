package peer

import (
	"testing"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/value"
)

// TestProvenanceRecordedAcrossStages checks that why-provenance is captured
// for facts derived during a peer stage, including multi-rule chains.
func TestProvenanceRecordedAcrossStages(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice", Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(`
		relation extensional pictures@alice(id);
		relation extensional private@alice(id);
		relation intensional album@alice(id);
		relation intensional featured@alice(id);
		pictures@alice(1);
		private@alice(1);
		album@alice($x) :- pictures@alice($x), private@alice($x);
		featured@alice($x) :- album@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	prov := p.Provenance()
	album := ast.NewFact("album", "alice", value.Int(1))
	featured := ast.NewFact("featured", "alice", value.Int(1))
	why := prov.Why(album)
	if len(why) != 1 || len(why[0].Supports) != 2 {
		t.Fatalf("why(album) = %v", why)
	}
	// featured's base supports reach through album to the two base facts.
	base := prov.BaseSupports(featured)
	if len(base) != 2 {
		t.Fatalf("base supports = %v, want the 2 extensional facts", base)
	}
	for _, f := range base {
		if f.Rel != "pictures" && f.Rel != "private" {
			t.Errorf("unexpected base support %v", f)
		}
	}
}

// TestViewGuardOverPeerProvenance wires the paper's sketched model end to
// end: grants on stored relations + the provenance-derived default policy
// for views, with declassification as the override.
func TestViewGuardOverPeerProvenance(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice", Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(`
		relation extensional pictures@alice(id);
		relation extensional private@alice(id);
		relation intensional album@alice(id);
		pictures@alice(1);
		private@alice(1);
		album@alice($x) :- pictures@alice($x), private@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	grants := acl.NewGrants("alice")
	guard := acl.NewViewGuard(grants, p.Provenance())
	view := ast.NewFact("album", "alice", value.Int(1))

	// Bob can read pictures but not private: the view is denied.
	grants.Grant("pictures", "bob", acl.ReadPriv)
	if guard.CanRead("bob", view, true) {
		t.Error("view readable although a base fact is not granted")
	}
	// Granting the second base relation opens the view.
	grants.Grant("private", "bob", acl.ReadPriv)
	if !guard.CanRead("bob", view, true) {
		t.Error("view denied although all base facts are granted")
	}
	// Declassification: carol gets the view without any base grants.
	if guard.CanRead("carol", view, true) {
		t.Error("carol must not read before declassification")
	}
	guard.Declassify("album")
	grants.Grant("album", "carol", acl.ReadPriv)
	if !guard.CanRead("carol", view, true) {
		t.Error("declassified view with a direct grant must be readable")
	}
}

// TestProvenanceResetsPerStage checks that stale derivations do not leak
// across stages (views are recomputed, so is their provenance).
func TestProvenanceResetsPerStage(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice", Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(`
		relation extensional src@alice(x);
		relation intensional view@alice(x);
		src@alice("a");
		view@alice($x) :- src@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	old := ast.NewFact("view", "alice", value.Str("a"))
	if !p.Provenance().IsDerived(old) {
		t.Fatal("derivation not recorded")
	}
	if err := p.DeleteString(`src@alice("a");`); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertString(`src@alice("b");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if p.Provenance().IsDerived(old) {
		t.Error("stale provenance for a fact no longer derivable")
	}
	if !p.Provenance().IsDerived(ast.NewFact("view", "alice", value.Str("b"))) {
		t.Error("fresh derivation missing")
	}
}

// TestStageReportShape sanity-checks the metrics the benchmarks rely on.
func TestStageReportShape(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(`
		relation extensional a@alice(x);
		relation intensional b@alice(x);
		a@alice("v");
		b@alice($x) :- a@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	rep := p.RunStage()
	if !rep.Ran || rep.Stage != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Applied != 1 || rep.Derived != 1 {
		t.Errorf("applied=%d derived=%d", rep.Applied, rep.Derived)
	}
	if rep.Duration() <= 0 {
		t.Error("durations not recorded")
	}
	stats := p.Stats()
	if stats.Stages != 1 || stats.Derived != 1 || stats.UpdatesApplied != 1 {
		t.Errorf("stats = %+v", stats)
	}
}
