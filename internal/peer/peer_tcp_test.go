package peer

import (
	"context"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/value"
)

// TestDistributedDeploymentOverTCP runs the paper's delegation scenario with
// real TCP endpoints and asynchronous peer loops — the deployment mode of
// the demo (two laptops + cloud), shrunk to two peers on localhost.
func TestDistributedDeploymentOverTCP(t *testing.T) {
	epE, err := transport.ListenTCP(context.Background(), "emilien", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	epJ, err := transport.ListenTCP(context.Background(), "jules", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	epE.AddPeer("jules", epJ.Addr())
	epJ.AddPeer("emilien", epE.Addr())

	emilien, err := New(Config{Name: "emilien"}, epE)
	if err != nil {
		t.Fatal(err)
	}
	jules, err := New(Config{Name: "jules"}, epJ)
	if err != nil {
		t.Fatal(err)
	}
	defer emilien.Close()
	defer jules.Close()

	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id, name);
		pictures@emilien(1, "sea.jpg");
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name) :- selectedAttendee@jules($a), pictures@$a($id,$name);
	`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = emilien.Run(ctx) }()
	go func() { _ = jules.Run(ctx) }()

	deadline := time.After(10 * time.Second)
	for {
		if got := jules.Query("attendeePictures"); len(got) == 1 {
			if got[0][1].StringVal() != "sea.jpg" {
				t.Fatalf("attendeePictures = %v", got)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("view never converged; attendeePictures = %v, delegated at emilien = %v",
				jules.Query("attendeePictures"), emilien.DelegatedRules())
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Live update: a new picture at emilien reaches jules' view.
	if err := emilien.InsertString(`pictures@emilien(2, "boat.jpg");`); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(10 * time.Second)
	for {
		if got := jules.Query("attendeePictures"); len(got) == 2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("update never propagated: %v", jules.Query("attendeePictures"))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestPeerWALRecovery checks that a peer restarted over the same WAL
// directory comes back with its extensional state.
func TestPeerWALRecovery(t *testing.T) {
	dir := t.TempDir()

	open := func() (*Peer, *Network) {
		n := NewNetwork()
		w, err := store.OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Name: "alice", WAL: w}, n.Bus().Endpoint("alice"))
		if err != nil {
			t.Fatal(err)
		}
		n.Add(p)
		return p, n
	}

	p1, n1 := open()
	if err := p1.LoadSource(`
		relation extensional pics@alice(id);
		pics@alice(1);
		pics@alice(2);
	`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n1.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, n2 := open()
	defer p2.Close()
	if got := p2.Query("pics"); len(got) != 2 {
		t.Fatalf("recovered pics = %v, want 2 tuples", got)
	}
	// Deletions after recovery are also durable.
	if err := p2.DeleteString(`pics@alice(1);`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n2.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	p3, _ := open()
	defer p3.Close()
	got := p3.Query("pics")
	if len(got) != 1 || !got[0].Equal(value.Tuple{value.Int(2)}) {
		t.Fatalf("after delete+recover, pics = %v", got)
	}
}

// TestPeerWALSnapshotRecovery checks recovery through a snapshot + tail.
func TestPeerWALSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	n := NewNetwork()
	w, err := store.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Name: "alice", WAL: w}, n.Bus().Endpoint("alice"))
	if err != nil {
		t.Fatal(err)
	}
	n.Add(p)
	if err := p.LoadSource(`
		relation extensional pics@alice(id);
		pics@alice(1);
	`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(p.Store(), "alice"); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertString(`pics@alice(2);`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := store.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	n2 := NewNetwork()
	p2, err := New(Config{Name: "alice", WAL: w2}, n2.Bus().Endpoint("alice"))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Query("pics"); len(got) != 2 {
		t.Fatalf("recovered pics = %v, want 2", got)
	}
}
