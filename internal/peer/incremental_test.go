package peer

import (
	"context"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TestDeletionRetractsDerivedFacts: deleting a base fact retracts exactly
// the derived facts that lost their last derivation, across a recursive
// view, and the stage loop does it without recomputing from scratch.
func TestDeletionRetractsDerivedFacts(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional edge@alice(a, b);
		relation intensional tc@alice(a, b);
		edge@alice("a","b");
		edge@alice("b","c");
		edge@alice("c","d");
		tc@alice($x,$y) :- edge@alice($x,$y);
		tc@alice($x,$z) :- tc@alice($x,$y), edge@alice($y,$z);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(alice, "tc"); len(got) != 6 {
		t.Fatalf("tc = %v, want 6", got)
	}
	if err := alice.DeleteString(`edge@alice("b","c");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := tuples(alice, "tc")
	if len(got) != 2 || got[0] != "(a, b)" || got[1] != "(c, d)" {
		t.Errorf("tc after deletion = %v, want [(a, b) (c, d)]", got)
	}
}

// TestDeletionPreservesAlternativeDerivation: a derived tuple with two
// independent derivations survives losing one of them.
func TestDeletionPreservesAlternativeDerivation(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional a@alice(x);
		relation extensional b@alice(x);
		relation intensional both@alice(x);
		a@alice("v");
		b@alice("v");
		both@alice($x) :- a@alice($x);
		both@alice($x) :- b@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if err := alice.DeleteString(`a@alice("v");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(alice, "both"); len(got) != 1 || got[0] != "(v)" {
		t.Fatalf("both = %v, want [(v)]: the b-derivation still stands", got)
	}
	if err := alice.DeleteString(`b@alice("v");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(alice, "both"); len(got) != 0 {
		t.Errorf("both = %v, want empty after losing the last derivation", got)
	}
}

// TestDeletionStreamsExactSubscriberDeltas: subscribers see exactly the net
// retractions and nothing else — no clear-and-rederive churn.
func TestDeletionStreamsExactSubscriberDeltas(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional edge@alice(a, b);
		relation intensional tc@alice(a, b);
		edge@alice("a","b");
		edge@alice("b","c");
		tc@alice($x,$y) :- edge@alice($x,$y);
		tc@alice($x,$z) :- tc@alice($x,$y), edge@alice($y,$z);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deltas, err := alice.Subscribe(ctx, "tc")
	if err != nil {
		t.Fatal(err)
	}

	// Extending the chain streams exactly the two new closure tuples.
	if err := alice.InsertString(`edge@alice("c","d");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := drainDeltas(deltas)
	if len(got) != 3 {
		t.Fatalf("deltas after insert = %v, want 3 inserts (c,d) (b,d) (a,d)", got)
	}
	for _, d := range got {
		if d.Delete {
			t.Errorf("unexpected delete delta %v", d)
		}
	}

	// Cutting the chain in the middle streams exactly the lost tuples,
	// as deletions, and nothing for the surviving ones.
	if err := alice.DeleteString(`edge@alice("b","c");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got = drainDeltas(deltas)
	if len(got) != 4 { // (b,c) (a,c) (b,d) (a,d)
		t.Fatalf("deltas after delete = %v, want 4 deletes", got)
	}
	for _, d := range got {
		if !d.Delete {
			t.Errorf("unexpected insert delta %v", d)
		}
	}
}

// TestMaintainedViewSurvivesUnrelatedStages: a remotely fed view no longer
// evaporates when the receiving peer runs a stage for unrelated reasons —
// the sender's maintained facts hold until explicitly retracted.
func TestMaintainedViewSurvivesUnrelatedStages(t *testing.T) {
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id);
		pictures@emilien(1);
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation extensional noise@jules(x);
		relation intensional attendeePictures@jules(id);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id) :-
			selectedAttendee@jules($a), pictures@$a($id);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "attendeePictures"); len(got) != 1 {
		t.Fatalf("attendeePictures = %v, want 1", got)
	}
	// Unrelated local churn at jules: the delegated view must not flicker.
	for i := 0; i < 3; i++ {
		if err := jules.Insert(ast.NewFact("noise", "jules", value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		quiesce(t, n)
		if got := tuples(jules, "attendeePictures"); len(got) != 1 {
			t.Fatalf("attendeePictures after noise %d = %v, want 1", i, got)
		}
	}
	// Retraction at the source still empties the view.
	if err := emilien.DeleteString(`pictures@emilien(1);`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "attendeePictures"); len(got) != 0 {
		t.Errorf("attendeePictures after source retraction = %v, want empty", got)
	}
}

// TestTransientSeedSurvivesSkippedStage: a transient seed re-delivered (or
// first delivered) during a stage that ends up skipped has not been seen by
// any fixpoint yet — it must hold through the next stage that actually runs
// and expire only at the one after.
func TestTransientSeedSurvivesSkippedStage(t *testing.T) {
	n, ps := newTestNetwork(t, "alice", "bob")
	alice, bob := ps["alice"], ps["bob"]
	if err := bob.LoadSource(`
		relation intensional seed@bob(x);
		relation extensional trigger@bob(x);
		relation extensional out@bob(x);
		out@bob($x) :- seed@bob($x), trigger@bob($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := alice.DeclareRelation("dummy", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// Stage 1 at bob consumes the seed (no trigger yet: out stays empty).
	if err := alice.Insert(ast.NewFact("seed", "bob", value.Str("a"))); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// Re-delivering the same seed is a no-op ingestion: the stage is
	// skipped, but the mark must stay fresh.
	if err := alice.Insert(ast.NewFact("seed", "bob", value.Str("a"))); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// The trigger arrives: this running stage must still see the seed.
	if err := bob.InsertString(`trigger@bob("a");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(bob, "out"); len(got) != 1 || got[0] != "(a)" {
		t.Fatalf("out = %v, want [(a)]: the re-delivered seed was lost", got)
	}
	// And it still expires afterwards.
	if err := bob.InsertString(`trigger@bob("b");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(bob, "seed"); len(got) != 0 {
		t.Errorf("seed = %v, want empty after expiry", got)
	}
}

// TestRemoteRetractionSparesLocalDerivation: a view tuple supported both by
// a remote maintainer and by a local rule survives the remote retraction,
// and disappears only when the local derivation goes too.
func TestRemoteRetractionSparesLocalDerivation(t *testing.T) {
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional src@emilien(x);
		src@emilien("v");
		mirror@jules($x) :- src@emilien($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional own@jules(x);
		relation intensional mirror@jules(x);
		own@jules("v");
		mirror@jules($x) :- own@jules($x);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "mirror"); len(got) != 1 {
		t.Fatalf("mirror = %v, want [(v)]", got)
	}
	// Remote support retracted; the local derivation must keep the tuple.
	if err := emilien.DeleteString(`src@emilien("v");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "mirror"); len(got) != 1 {
		t.Fatalf("mirror after remote retraction = %v, want [(v)]", got)
	}
	// Last support gone.
	if err := jules.DeleteString(`own@jules("v");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := tuples(jules, "mirror"); len(got) != 0 {
		t.Errorf("mirror = %v, want empty", got)
	}
}

// TestCoalescedMaintainedDeltas: maintained insert/retract (and
// insert/retract/insert) runs from a sender, ingested by the receiver in a
// single stage, must net out correctly — on a rule-less receiver too — and
// stream no contradictory deltas to subscribers.
func TestCoalescedMaintainedDeltas(t *testing.T) {
	n, ps := newTestNetwork(t, "bob", "alice")
	bob := ps["bob"]
	if err := bob.LoadSource(`relation intensional v@bob(x);`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deltas, err := bob.Subscribe(ctx, "v")
	if err != nil {
		t.Fatal(err)
	}
	alice := ps["alice"].Endpoint()
	fact := ast.NewFact("v", "bob", value.Str("z"))
	send := func(del bool) {
		t.Helper()
		err := alice.Send(ctx, "bob", protocol.FactsMsg{Ops: []protocol.FactDelta{
			{Delete: del, Maint: true, Fact: fact}}})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Insert + retract coalesced into one stage: net nothing, no zombie.
	send(false)
	send(true)
	quiesce(t, n)
	if got := tuples(bob, "v"); len(got) != 0 {
		t.Fatalf("v after +/- coalesced = %v, want empty", got)
	}
	if got := drainDeltas(deltas); len(got) != 0 {
		t.Fatalf("deltas after +/- coalesced = %v, want none", got)
	}

	// Insert + retract + insert coalesced: net supported.
	send(false)
	send(true)
	send(false)
	quiesce(t, n)
	if got := tuples(bob, "v"); len(got) != 1 {
		t.Fatalf("v after +/-/+ coalesced = %v, want [(z)]", got)
	}
	got := drainDeltas(deltas)
	if len(got) != 1 || got[0].Delete {
		t.Fatalf("deltas after +/-/+ = %v, want one insert", got)
	}

	// A later lone retraction still removes it.
	send(true)
	quiesce(t, n)
	if got := tuples(bob, "v"); len(got) != 0 {
		t.Fatalf("v after retract = %v, want empty", got)
	}
	got = drainDeltas(deltas)
	if len(got) != 1 || !got[0].Delete {
		t.Fatalf("deltas after retract = %v, want one delete", got)
	}
}

// TestIncrementalAndNaiveAgreeAcrossStages drives the same random-ish edit
// script through an incremental peer and a naive-recompute peer and checks
// the materialized views agree after every batch — the peer-level version of
// the engine's equivalence property.
func TestIncrementalAndNaiveAgreeAcrossStages(t *testing.T) {
	build := func(opts engine.Options) (*Network, *Peer) {
		n := NewNetwork()
		p, err := n.NewPeer(Config{Name: "p", Engine: &opts})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadSource(`
			relation extensional edge@p(a, b);
			relation intensional tc@p(a, b);
			relation intensional sym@p(a, b);
			tc@p($x,$y) :- edge@p($x,$y);
			tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z);
			sym@p($y,$x) :- tc@p($x,$y);
		`); err != nil {
			t.Fatal(err)
		}
		return n, p
	}
	naiveOpts := engine.DefaultOptions()
	naiveOpts.Incremental = false
	nInc, pInc := build(engine.DefaultOptions())
	nNaive, pNaive := build(naiveOpts)

	script := []struct {
		del  bool
		a, b int64
	}{
		{false, 1, 2}, {false, 2, 3}, {false, 3, 4}, {false, 4, 1},
		{true, 2, 3}, {false, 2, 5}, {false, 5, 3}, {true, 4, 1},
		{true, 1, 2}, {false, 1, 3}, {true, 5, 3}, {false, 3, 1},
	}
	for i, s := range script {
		f := ast.NewFact("edge", "p", value.Int(s.a), value.Int(s.b))
		for _, p := range []*Peer{pInc, pNaive} {
			var err error
			if s.del {
				err = p.Delete(f)
			} else {
				err = p.Insert(f)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		quiesce(t, nInc)
		quiesce(t, nNaive)
		for _, rel := range []string{"tc", "sym"} {
			gi, gn := tuples(pInc, rel), tuples(pNaive, rel)
			if len(gi) != len(gn) {
				t.Fatalf("step %d: %s differs: incremental %v, naive %v", i, rel, gi, gn)
			}
			for k := range gi {
				if gi[k] != gn[k] {
					t.Fatalf("step %d: %s differs at %d: %v vs %v", i, rel, k, gi[k], gn[k])
				}
			}
		}
	}
}
