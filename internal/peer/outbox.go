package peer

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errdefs"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/transport"
)

// The outbox is the peer's durable boundary between stage commits and the
// network: stages enqueue sequence-numbered envelopes (facts, delegations,
// withdrawals) and commit immediately; delivery happens out of band, off the
// peer lock, with retry and backoff, until the destination acknowledges the
// sequence number. Together with the receiver-side dedup in ingestion this
// gives at-least-once delivery with exactly-once application — the
// correctness obligation that delta shipping (PR 2) created.
//
// Stream state itself — the per-destination epoch, sequence numbers, entry
// queue, ack floor — lives in sendSession (session.go); the outbox is the
// delivery engine that creates and drives the sessions. Two flush modes:
//
//   - async (the default): one flusher goroutine per destination drains the
//     queue, retransmits unacked entries after ackTimeout, and backs off
//     exponentially while the destination is unreachable. Stage latency is
//     thereby decoupled from destination RTT and dial stalls (experiment
//     P7).
//   - sync (Config.SyncEmit, used by NewSequentialNetwork): no goroutines;
//     the queue is flushed synchronously at the end of every RunStage and
//     by the network scheduler, which keeps in-process multi-peer tests
//     deterministic. Failed entries stay queued and are retried at the next
//     flush.
//
// Entries with a sequence number are retained until acked. Control traffic
// (acks of the peer's own inbox, pongs, resync requests) is best-effort:
// sent after the data flush, dropped on failure (the protocol regenerates
// it). Anti-entropy digest adverts ride the flush cycle too, on a
// per-session clock (resyncEvery).

// outboxDefaults tuning; tests shrink these for fast fault convergence.
const (
	defaultAckTimeout  = 200 * time.Millisecond
	defaultBaseBackoff = 10 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
	defaultSendTimeout = 10 * time.Second
)

// outEntry is one sequenced payload awaiting acknowledgment.
type outEntry struct {
	seq  uint64
	msg  protocol.Payload
	sent bool // transmitted in the current cycle (cleared to retransmit)
}

// outbox owns every send session of one peer.
type outbox struct {
	ep   transport.Endpoint
	ctx  context.Context // peer lifetime: cancellation stops flushers and aborts dials
	sync bool            // Config.SyncEmit: no flusher goroutines
	logf func(string, ...any)

	// defaultEpoch is the epoch new streams start in: random per instance
	// for volatile peers, overridden with the persisted value for WAL-backed
	// peers. A stream reset (anti-entropy repair) rotates the affected
	// session away from it.
	defaultEpoch uint64

	ackTimeout  time.Duration
	baseBackoff time.Duration
	maxBackoff  time.Duration
	sendTimeout time.Duration

	// resyncEvery is the anti-entropy advert period (0 = disabled):
	// roughly every resyncEvery per destination, the flush cycle asks
	// onDigest for an advert of the maintained view and sends it
	// best-effort. The peer's callback returns nil when there is nothing
	// to advertise.
	resyncEvery time.Duration
	onDigest    func(dst string) protocol.Payload

	// Flow control. limit bounds each destination's unacknowledged entry
	// queue for admission-controlled enqueues (EnqueueDataCtx — the Apply
	// path); 0 = unbounded. Stage emissions (EnqueueData) are exempt: a
	// committed fixpoint's maintained deltas are already reflected in the
	// remote view and must reach the stream unconditionally, so a queue can
	// temporarily overshoot the limit by a stage's worth of output — the
	// bound is on API-driven intake, which is where unbounded growth
	// originates. failFast selects rejection (ErrBackpressure) over
	// blocking when a queue is full.
	limit    int
	failFast bool

	// shedAfter, when positive, arms slow-peer shedding: a destination
	// whose queue has pending entries but has made no ack progress for
	// this long is shed — onShed is invoked (off all outbox locks) and is
	// expected to reset the stream with a fresh snapshot via ShedReset,
	// dropping the wedged backlog and letting anti-entropy repair the
	// destination when it recovers.
	shedAfter time.Duration
	onShed    func(dst string)

	mu     sync.Mutex
	queues map[string]*sendSession
	order  []string
	closed bool
	wg     sync.WaitGroup

	// persistMu serializes enqueue persistence (shared) against log
	// compaction (exclusive): a compaction snapshot must never race an
	// append that already reached the old log file, or the rename would
	// silently drop a durable entry.
	persistMu sync.RWMutex

	// onEnqueue/onAck/onReset, when set, persist outbox transitions
	// (WAL-backed peers); see store.OutboxLog. onPreFlush runs before a
	// flush cycle transmits data entries: durable peers sync the log there,
	// off the stage path, preserving the invariant that a transmitted
	// sequence number is always recoverable.
	onEnqueue  func(dst string, seq uint64, msg protocol.Payload)
	onAck      func(dst string, seq uint64)
	onReset    func(dst string, epoch uint64, entries []outEntry)
	onPreFlush func() error

	// onActive, when set (network.go via setSchedHooks), fires every time the
	// outbox gains pending entries, so the concurrent scheduler can track
	// possibly-undrained outboxes without polling every peer. Atomic: fired
	// from stage and API goroutines, installed from the network.
	onActive atomic.Pointer[func()]

	enqueued    atomic.Uint64
	delivered   atomic.Uint64 // entries acknowledged by their destination
	retransmits atomic.Uint64
	sendErrors  atomic.Uint64
	resets      atomic.Uint64 // stream resets (anti-entropy repairs + sheds)
	sheds       atomic.Uint64 // slow-peer sheds (subset of resets)
	adverts     atomic.Uint64 // anti-entropy digest adverts transmitted
	bpWaits     atomic.Uint64 // admissions that had to wait for queue space
	bpRejects   atomic.Uint64 // admissions rejected with ErrBackpressure
}

func newOutbox(ep transport.Endpoint, ctx context.Context, syncMode bool, logf func(string, ...any)) *outbox {
	return &outbox{
		ep:           ep,
		ctx:          ctx,
		sync:         syncMode,
		logf:         logf,
		defaultEpoch: newEpoch(),
		ackTimeout:   defaultAckTimeout,
		baseBackoff:  defaultBaseBackoff,
		maxBackoff:   defaultMaxBackoff,
		sendTimeout:  defaultSendTimeout,
		queues:       make(map[string]*sendSession),
	}
}

// notifyActive fires the scheduler's outbox-gained-work hook, if installed.
// Called after an enqueue is published (queue Pending already reflects it),
// off all outbox locks, so the hook's observe-then-recheck protocol in the
// scheduler never misses the entry.
func (o *outbox) notifyActive() {
	if fn := o.onActive.Load(); fn != nil {
		(*fn)()
	}
}

// newEpoch picks a nonzero random stream epoch.
func newEpoch() uint64 {
	for {
		if e := rand.Uint64(); e != 0 {
			return e
		}
	}
}

// queue returns (creating if needed) the destination's send session,
// starting its flusher goroutine in async mode.
func (o *outbox) queue(dst string) *sendSession {
	o.mu.Lock()
	defer o.mu.Unlock()
	if dq, ok := o.queues[dst]; ok {
		return dq
	}
	dq := &sendSession{
		dst:        dst,
		epoch:      o.defaultEpoch,
		lastAdvert: time.Now(), // first advert one period after first contact
		wake:       make(chan struct{}, 1),
	}
	o.queues[dst] = dq
	o.order = append(o.order, dst)
	if !o.sync && !o.closed {
		o.wg.Add(1)
		go o.flusher(dq)
	}
	return dq
}

// snapshot returns the sessions in creation order.
func (o *outbox) snapshot() []*sendSession {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*sendSession, 0, len(o.order))
	for _, dst := range o.order {
		out = append(out, o.queues[dst])
	}
	return out
}

// streamState returns the current epoch and the highest assigned sequence
// number of the stream to dst (zeros when no stream exists yet). The peer
// reads it under its own lock when building a digest advert, so the pair is
// consistent with the enqueues made so far.
func (o *outbox) streamState(dst string) (epoch, nextSeq uint64) {
	o.mu.Lock()
	dq := o.queues[dst]
	o.mu.Unlock()
	if dq == nil {
		return 0, 0
	}
	dq.mu.Lock()
	defer dq.mu.Unlock()
	return dq.epoch, dq.nextSeq
}

// EnqueueData appends a sequenced payload for dst and returns its sequence
// number. The payload is retained until dst acknowledges it. Never fails:
// delivery trouble is the flusher's problem, not the committing stage's.
// For durable peers the entry is persisted before it becomes visible to a
// flusher, so a crash can never have transmitted an unlogged sequence.
// Admission limits do not apply here (see EnqueueDataCtx): stage emissions
// commit unconditionally.
func (o *outbox) EnqueueData(dst string, msg protocol.Payload) uint64 {
	dq := o.queue(dst)
	dq.enqMu.Lock()
	seq := o.enqueueHeld(dq, dst, msg)
	dq.enqMu.Unlock()
	o.enqueued.Add(1)
	dq.signal()
	o.notifyActive()
	return seq
}

// EnqueueDataBatch enqueues a run of sequenced payloads contiguously: the
// enqueue mutex is held across the whole run, so no concurrent enqueuer can
// interleave a message between them. Chunked snapshots rely on this — the
// receiver buffers chunks until the final one and must see them as one
// uninterrupted sequence run (interleaved FactsMsgs would apply against the
// pre-snapshot ledger, then be overwritten by the buffered chunks).
func (o *outbox) EnqueueDataBatch(dst string, msgs ...protocol.Payload) {
	if len(msgs) == 0 {
		return
	}
	dq := o.queue(dst)
	dq.enqMu.Lock()
	for _, msg := range msgs {
		o.enqueueHeld(dq, dst, msg)
	}
	dq.enqMu.Unlock()
	o.enqueued.Add(uint64(len(msgs)))
	dq.signal()
	o.notifyActive()
}

// EnqueueDataCtx is EnqueueData with admission control: when the
// destination's queue holds limit or more unacknowledged entries, a
// fail-fast outbox rejects with ErrBackpressure immediately, a blocking one
// waits for queue space until ctx (or the peer) is done. The API intake
// path (Apply) comes through here so a slow or dead destination pushes back
// on clients instead of growing the queue without bound.
func (o *outbox) EnqueueDataCtx(ctx context.Context, dst string, msg protocol.Payload) (uint64, error) {
	dq := o.queue(dst)
	for {
		dq.enqMu.Lock()
		dq.mu.Lock()
		if o.limit <= 0 || len(dq.entries) < o.limit {
			dq.mu.Unlock()
			seq := o.enqueueHeld(dq, dst, msg)
			dq.enqMu.Unlock()
			o.enqueued.Add(1)
			dq.signal()
			o.notifyActive()
			return seq, nil
		}
		if o.failFast {
			dq.mu.Unlock()
			dq.enqMu.Unlock()
			o.bpRejects.Add(1)
			return 0, fmt.Errorf("outbox %s: %d entries pending: %w", dst, o.limit, errdefs.ErrBackpressure)
		}
		// Blocking admission: subscribe to the space channel (closed when
		// acks, a reset, or a shed free room), then wait off all locks.
		if dq.spaceWait == nil {
			dq.spaceWait = make(chan struct{})
		}
		wait := dq.spaceWait
		dq.mu.Unlock()
		dq.enqMu.Unlock()
		o.bpWaits.Add(1)
		dq.signal() // make sure a flusher is pushing the backlog
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("outbox %s: waiting for queue space: %w: %w", dst, errdefs.ErrBackpressure, ctx.Err())
		case <-o.ctx.Done():
			return 0, fmt.Errorf("outbox %s: %w", dst, errdefs.ErrClosed)
		case <-wait:
		}
	}
}

// enqueueHeld runs the assign-seq / persist / publish sequence for one
// entry with dq.enqMu held (the caller owns admission and signaling).
func (o *outbox) enqueueHeld(dq *sendSession, dst string, msg protocol.Payload) uint64 {
	o.persistMu.RLock()
	dq.mu.Lock()
	dq.nextSeq++
	seq := dq.nextSeq
	dq.mu.Unlock()
	if o.onEnqueue != nil {
		o.onEnqueue(dst, seq, msg)
	}
	dq.mu.Lock()
	if len(dq.entries) == 0 {
		// The pending era starts now: the shed clock must measure from here,
		// not from whenever the queue last drained.
		dq.lastProgress = time.Now()
	}
	dq.entries = append(dq.entries, outEntry{seq: seq, msg: msg})
	dq.stalled = false // fresh work deserves a fresh attempt
	dq.nextTry = time.Time{}
	dq.mu.Unlock()
	o.persistMu.RUnlock()
	return seq
}

// Reset tears down and restarts the stream to dst under a fresh epoch — the
// anti-entropy repair for a receiver that lost its stream state. The given
// payloads (the resync snapshot, possibly chunked) become the new sequences
// 1..n; surviving pending entries are renumbered behind them (their
// maintained deltas are already reflected in the snapshot and replay as
// no-ops; one-shot updates must still be delivered). The destination adopts
// the fresh epoch at sequence 1 with a fresh watermark. For durable peers
// onReset re-logs the stream so recovery sees the renumbering, not the
// superseded entries.
func (o *outbox) Reset(dst string, firsts ...protocol.Payload) {
	o.reset(dst, firsts, false)
}

// ShedReset is the slow-peer variant of Reset: the pending backlog is
// *discarded* instead of renumbered behind the snapshot. Retaining it is
// exactly what the queue bound exists to prevent, and the snapshot already
// carries the full maintained view; one-shot updates still queued to the
// shed destination are abandoned (that loss is the documented cost of
// shedding — the destination was unackable for the whole shed window).
func (o *outbox) ShedReset(dst string, firsts ...protocol.Payload) {
	o.sheds.Add(1)
	o.reset(dst, firsts, true)
}

func (o *outbox) reset(dst string, firsts []protocol.Payload, drop bool) {
	dq := o.queue(dst)
	dq.enqMu.Lock()
	o.persistMu.RLock()
	dq.mu.Lock()
	dq.epoch = newEpoch()
	dq.resets++
	o.resets.Add(1)
	entries := make([]outEntry, 0, len(dq.entries)+len(firsts))
	for _, msg := range firsts {
		entries = append(entries, outEntry{seq: uint64(len(entries)) + 1, msg: msg})
	}
	if !drop {
		for _, e := range dq.entries {
			entries = append(entries, outEntry{seq: uint64(len(entries)) + 1, msg: e.msg})
		}
	}
	dq.entries = entries
	dq.nextSeq = uint64(len(entries))
	dq.acked = 0
	dq.stalled = false
	dq.nextTry = time.Time{}
	dq.backoff = 0
	dq.lastProgress = time.Now()
	dq.notifySpaceLocked()
	epoch := dq.epoch
	logged := make([]outEntry, len(entries))
	copy(logged, entries)
	dq.mu.Unlock()
	if o.onReset != nil {
		o.onReset(dst, epoch, logged)
	}
	o.persistMu.RUnlock()
	dq.enqMu.Unlock()
	o.enqueued.Add(1)
	dq.signal()
	o.notifyActive()
}

// EnqueueAck schedules a cumulative acknowledgment of the peer's own inbox
// back to dst, for the given inbound stream epoch. Acks coalesce: only the
// highest sequence of the current epoch is kept (a new epoch supersedes).
func (o *outbox) EnqueueAck(dst string, epoch, seq uint64) {
	dq := o.queue(dst)
	dq.mu.Lock()
	if epoch != dq.ackEpoch {
		dq.ackEpoch = epoch
		dq.pendingAck = seq
	} else if seq > dq.pendingAck {
		dq.pendingAck = seq
	}
	dq.mu.Unlock()
	dq.signal()
}

// EnqueueControl schedules a best-effort unsequenced payload (pong, resync
// request). It is dropped if its send fails.
func (o *outbox) EnqueueControl(dst string, msg protocol.Payload) {
	dq := o.queue(dst)
	dq.mu.Lock()
	dq.controls = append(dq.controls, msg)
	dq.mu.Unlock()
	dq.signal()
}

// Ack processes a cumulative acknowledgment from dst: every entry with
// sequence <= seq is delivered and dropped. Acks for a different epoch are
// stale (sent for a stream a previous incarnation of this peer — or this
// stream before a reset — was running) and are ignored: they must not drop
// entries of the current stream.
func (o *outbox) Ack(dst string, epoch, seq uint64) {
	o.mu.Lock()
	dq := o.queues[dst]
	o.mu.Unlock()
	if dq == nil {
		return // ack for nothing we track
	}
	dq.mu.Lock()
	if epoch != dq.epoch {
		dq.mu.Unlock()
		return
	}
	if seq > dq.acked {
		dq.acked = seq
	}
	kept := dq.entries[:0]
	dropped := 0
	for _, e := range dq.entries {
		if e.seq <= seq {
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	dq.entries = kept
	if dropped > 0 {
		// The link evidently works; clear any failure state, stamp the shed
		// clock, and release any admission waiters into the freed space.
		dq.stalled = false
		dq.nextTry = time.Time{}
		dq.lastProgress = time.Now()
		if o.limit <= 0 || len(dq.entries) < o.limit {
			dq.notifySpaceLocked()
		}
	}
	dq.mu.Unlock()
	if dropped > 0 {
		o.delivered.Add(uint64(dropped))
		if o.onAck != nil {
			o.onAck(dst, seq)
		}
		dq.signal()
	}
}

// send transmits one payload, bounding the attempt with the peer-lifetime
// context plus a per-attempt timeout so a black-holed link cannot wedge a
// flusher (or Close) forever.
func (o *outbox) send(dst string, msg protocol.Payload) error {
	ctx, cancel := context.WithTimeout(o.ctx, o.sendTimeout)
	defer cancel()
	return o.ep.Send(ctx, dst, msg)
}

// advertDue checks (and, when due, re-arms) the session's anti-entropy
// advert clock.
func (o *outbox) advertDue(dq *sendSession) bool {
	if o.resyncEvery <= 0 || o.onDigest == nil {
		return false
	}
	dq.mu.Lock()
	defer dq.mu.Unlock()
	if time.Since(dq.lastAdvert) < o.resyncEvery {
		return false
	}
	dq.lastAdvert = time.Now()
	return true
}

// flushQueue pushes everything currently sendable for one destination:
// unsent data entries in sequence order, then the pending ack, then control
// messages, then (when its clock says so) the anti-entropy digest advert.
// Reports whether anything was transmitted, whether a send failed, and
// whether another flush of the same queue was already in progress (busy —
// this call did nothing). Respects the queue's backoff gate.
func (o *outbox) flushQueue(dq *sendSession) (sent, failed, busy bool) {
	dq.mu.Lock()
	if dq.flushing {
		dq.mu.Unlock()
		return false, false, true
	}
	if !dq.nextTry.IsZero() && time.Now().Before(dq.nextTry) {
		dq.mu.Unlock()
		return false, false, false
	}
	dq.flushing = true
	dq.mu.Unlock()
	defer func() {
		dq.mu.Lock()
		dq.flushing = false
		if failed {
			dq.stalled = true
			// Exponential backoff: double the gate on consecutive failures.
			if dq.backoff == 0 {
				dq.backoff = o.baseBackoff
			} else {
				dq.backoff *= 2
				if dq.backoff > o.maxBackoff {
					dq.backoff = o.maxBackoff
				}
			}
			dq.nextTry = time.Now().Add(dq.backoff)
			// A failure invalidates the cycle: retransmit everything once the
			// link recovers, oldest first (the receiver dedups replays).
			for i := range dq.entries {
				dq.entries[i].sent = false
			}
		} else {
			dq.backoff = 0
			dq.nextTry = time.Time{}
			if sent {
				dq.stalled = false
			}
		}
		dq.mu.Unlock()
	}()

	synced := false
	for {
		dq.mu.Lock()
		var seq uint64
		var msg protocol.Payload
		epoch := dq.epoch
		gen := dq.resets
		for i := range dq.entries {
			if !dq.entries[i].sent {
				seq = dq.entries[i].seq
				msg = dq.entries[i].msg
				break
			}
		}
		if msg != nil && !synced && o.onPreFlush != nil {
			// Durable peers: the entry's log record must be on disk before
			// the first transmission of this cycle — otherwise a crash could
			// reuse an already-transmitted sequence number for a different
			// message, which the receiver would silently drop as a replay.
			dq.mu.Unlock()
			if err := o.onPreFlush(); err != nil {
				o.sendErrors.Add(1)
				o.debugf("outbox %s: pre-flush sync: %v", dq.dst, err)
				return sent, true, false
			}
			synced = true
			continue
		}
		if msg == nil {
			ack := dq.pendingAck
			ackEpoch := dq.ackEpoch
			controls := dq.controls
			dq.controls = nil
			dq.mu.Unlock()
			if ack > 0 {
				if err := o.send(dq.dst, protocol.AckMsg{Epoch: ackEpoch, Seq: ack}); err != nil {
					o.sendErrors.Add(1)
					o.debugf("outbox %s: ack send: %v", dq.dst, err)
					return sent, true, false
				}
				sent = true
				dq.mu.Lock()
				if dq.pendingAck == ack {
					dq.pendingAck = 0
				}
				dq.mu.Unlock()
			}
			for _, c := range controls {
				if err := o.send(dq.dst, c); err != nil {
					o.sendErrors.Add(1)
					o.debugf("outbox %s: control send: %v", dq.dst, err)
					return sent, true, false // remaining controls dropped: best-effort
				}
				sent = true
			}
			// Anti-entropy: advertise the maintained view's digests on the
			// session clock, after everything queued went out (the advert's
			// AsOfSeq then reflects a fully transmitted stream). Dropped on
			// failure like any control — the clock repeats it.
			if o.advertDue(dq) {
				if adv := o.onDigest(dq.dst); adv != nil {
					if err := o.send(dq.dst, adv); err != nil {
						o.sendErrors.Add(1)
						o.debugf("outbox %s: digest advert send: %v", dq.dst, err)
						return sent, true, false
					}
					o.adverts.Add(1)
					sent = true
				}
			}
			return sent, false, false
		}
		dq.mu.Unlock()

		if err := o.send(dq.dst, protocol.DataMsg{Epoch: epoch, Seq: seq, Msg: msg}); err != nil {
			o.sendErrors.Add(1)
			o.debugf("outbox %s: seq %d send: %v", dq.dst, seq, err)
			return sent, true, false
		}
		sent = true
		dq.mu.Lock()
		if dq.resets == gen {
			for i := range dq.entries {
				if dq.entries[i].seq == seq {
					dq.entries[i].sent = true
					break
				}
			}
		}
		// The ack clock runs from the last transmission: retransmit only
		// once the destination has had a full ackTimeout to answer it.
		dq.retransmitAt = time.Now().Add(o.ackTimeout)
		dq.mu.Unlock()
	}
}

// flusher is the per-destination delivery goroutine (async mode): it drains
// the queue whenever work arrives, retransmits unacked entries after
// ackTimeout, sleeps under the backoff gate while the destination is
// unreachable, and wakes for the anti-entropy advert clock when idle.
func (o *outbox) flusher(dq *sendSession) {
	defer o.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-o.ctx.Done():
			return
		default:
		}
		_, failed, busy := o.flushQueue(dq)
		o.maybeShed(dq)

		dq.mu.Lock()
		pendingData := len(dq.entries) > 0
		unsent := false
		for i := range dq.entries {
			if !dq.entries[i].sent {
				unsent = true
				break
			}
		}
		pendingOther := dq.pendingAck > 0 || len(dq.controls) > 0
		gate := dq.nextTry
		lastAdvert := dq.lastAdvert
		retransmitAt := dq.retransmitAt
		lastProgress := dq.lastProgress
		dq.mu.Unlock()

		var wait time.Duration
		gated := false
		switch {
		case busy:
			// Another flusher (the scheduler's inline FlushAll) is mid-send;
			// wait for a signal or a beat instead of spinning on its lock.
			wait = o.baseBackoff
		case failed || (!gate.IsZero() && time.Now().Before(gate)):
			// Unreachable: sleep out the backoff gate (an ack or new work
			// wakes us early — an ack means the link recovered).
			gated = true
			wait = time.Until(gate)
			if wait <= 0 {
				wait = o.baseBackoff
			}
		case unsent || pendingOther:
			// More to push right now (raced an enqueue): loop immediately.
			continue
		case pendingData:
			// Everything sent, awaiting acks: retransmit once the ack
			// deadline (stamped at the last transmission) passes.
			wait = time.Until(retransmitAt)
			if wait <= 0 {
				wait = time.Millisecond
			}
		default:
			// Idle: wait for work (or the advert clock below).
			wait = 0
		}
		// The advert clock can shorten an idle or ack wait, but never a
		// backoff gate: a gated queue cannot transmit the advert anyway, and
		// an overdue clock would just spin the flusher against the gate.
		if o.resyncEvery > 0 && o.onDigest != nil && !gated && !busy {
			untilAdvert := time.Until(lastAdvert.Add(o.resyncEvery))
			if untilAdvert <= 0 {
				untilAdvert = time.Millisecond
			}
			if wait <= 0 || untilAdvert < wait {
				wait = untilAdvert
			}
		}
		// The shed clock *does* shorten a backoff gate: a persistently
		// unreachable destination is the very case shedding exists for, and
		// its flusher would otherwise sleep out maxBackoff oblivious to the
		// deadline.
		if o.shedAfter > 0 && o.onShed != nil && pendingData && !lastProgress.IsZero() {
			untilShed := time.Until(lastProgress.Add(o.shedAfter))
			if untilShed <= 0 {
				untilShed = time.Millisecond
			}
			if wait <= 0 || untilShed < wait {
				wait = untilShed
			}
		}

		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-o.ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				return
			case <-dq.wake:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				// Only a genuinely elapsed ack deadline invalidates the
				// cycle for retransmission — the timer also fires for
				// advert-clock wakeups, which must not re-send anything.
				if pendingData && !failed && !time.Now().Before(retransmitAt) {
					dq.mu.Lock()
					resend := false
					for i := range dq.entries {
						if dq.entries[i].sent {
							dq.entries[i].sent = false
							resend = true
						}
					}
					dq.mu.Unlock()
					if resend {
						o.retransmits.Add(1)
					}
				}
			}
			continue
		}
		select {
		case <-o.ctx.Done():
			return
		case <-dq.wake:
		}
	}
}

// maybeShed sheds a persistently-unackable destination: its queue has
// pending entries but has seen no ack progress for shedAfter. The callback
// runs off all outbox locks — it takes the peer lock to snapshot the
// maintained view and then calls ShedReset, which takes the session locks,
// the same ordering the stage path uses (p.mu → session locks). Only the
// async flusher calls this; sync-emit peers (in-process test networks) do
// not shed.
func (o *outbox) maybeShed(dq *sendSession) {
	if o.shedAfter <= 0 || o.onShed == nil {
		return
	}
	dq.mu.Lock()
	pending := len(dq.entries)
	due := pending > 0 && !dq.shedding &&
		!dq.lastProgress.IsZero() && time.Since(dq.lastProgress) >= o.shedAfter
	if due {
		dq.shedding = true
	}
	dq.mu.Unlock()
	if !due {
		return
	}
	o.debugf("outbox %s: no ack progress for %v with %d pending: shedding stream", dq.dst, o.shedAfter, pending)
	o.onShed(dq.dst)
	dq.mu.Lock()
	dq.shedding = false
	// ShedReset stamped the clock; stamp again in case the callback
	// declined to reset (peer closing) so the next check waits a full
	// window instead of spinning.
	dq.lastProgress = time.Now()
	dq.mu.Unlock()
}

// FlushAll synchronously attempts one flush of every queue (sync mode after
// a stage, and the network scheduler accelerating delivery). Reports whether
// anything was transmitted.
func (o *outbox) FlushAll() bool {
	sent := false
	for _, dq := range o.snapshot() {
		s, _, _ := o.flushQueue(dq)
		sent = sent || s
	}
	return sent
}

// Pending returns the number of unacknowledged sequenced entries and how
// many of them sit in queues whose last delivery attempt failed (stalled —
// retrying under backoff). The network scheduler's quiescence condition is
// "no peer has work and no outbox entry is pending", with stalled entries
// exempt so an unreachable destination cannot wedge RunToQuiescence.
func (o *outbox) Pending() (total, stalled int) {
	for _, dq := range o.snapshot() {
		dq.mu.Lock()
		total += len(dq.entries)
		if dq.stalled || (!dq.nextTry.IsZero() && time.Now().Before(dq.nextTry)) {
			stalled += len(dq.entries)
		}
		dq.mu.Unlock()
	}
	return total, stalled
}

// seed restores recovered delivery state (WAL-backed peers): pending entries
// re-enter the queue unsent, the sequence counters resume past the highest
// logged value, and a stream that was reset away from the default epoch
// resumes under its per-stream epoch.
func (o *outbox) seed(dst string, epoch, nextSeq, acked uint64, entries []outEntry) {
	dq := o.queue(dst)
	dq.mu.Lock()
	if epoch != 0 {
		dq.epoch = epoch
	}
	dq.nextSeq = nextSeq
	dq.acked = acked
	if len(dq.entries) == 0 && len(entries) > 0 {
		dq.lastProgress = time.Now()
	}
	dq.entries = append(dq.entries, entries...)
	dq.mu.Unlock()
	dq.signal()
}

// compactTo rewrites the log to the outbox's live state plus the given
// applied watermarks, excluding concurrent enqueuers for the duration so a
// logged-but-unsnapshotted entry can never be dropped by the rewrite.
func (o *outbox) compactTo(log *store.OutboxLog, applied map[string]store.AppliedMark) error {
	o.persistMu.Lock()
	defer o.persistMu.Unlock()
	st, err := o.collectState(protocol.EncodePayload)
	if err != nil {
		return err
	}
	st.Epoch = o.defaultEpoch
	for from, mark := range applied {
		st.Applied[from] = mark
	}
	return log.Compact(st)
}

// collectState snapshots the live delivery state for log compaction,
// encoding retained payloads with encode. Applied watermarks are the
// peer's, merged in by the caller.
func (o *outbox) collectState(encode func(protocol.Payload) ([]byte, error)) (*store.OutboxState, error) {
	st := &store.OutboxState{
		Epochs:  map[string]uint64{},
		Pending: map[string][]store.OutboxEntry{},
		NextSeq: map[string]uint64{},
		Acked:   map[string]uint64{},
		Applied: map[string]store.AppliedMark{},
	}
	for _, dq := range o.snapshot() {
		dq.mu.Lock()
		entries := make([]outEntry, len(dq.entries))
		copy(entries, dq.entries)
		epoch, nextSeq, acked := dq.epoch, dq.nextSeq, dq.acked
		dq.mu.Unlock()
		st.Epochs[dq.dst] = epoch
		st.NextSeq[dq.dst] = nextSeq
		st.Acked[dq.dst] = acked
		for _, e := range entries {
			b, err := encode(e.msg)
			if err != nil {
				return nil, err
			}
			st.Pending[dq.dst] = append(st.Pending[dq.dst], store.OutboxEntry{Seq: e.seq, Payload: b})
		}
	}
	return st, nil
}

// Shutdown stops the flushers and waits for them; call after cancelling the
// peer context and closing the endpoint (both unblock in-flight sends).
func (o *outbox) Shutdown() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.wg.Wait()
}

func (o *outbox) debugf(format string, args ...any) {
	if o.logf != nil {
		o.logf(format, args...)
	}
}
