package peer

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Metric wiring. Every peer created with Config.Metrics labels its series
// with its own name in a shared registry, so a daemon hosting many peers
// exposes one coherent scrape. Two wiring styles:
//
//   - hot-path series (stage latency, fixpoint rounds, stage counts) are
//     cached children on peerMetrics, observed inline by the stage loop —
//     a few atomic ops per stage;
//   - everything that already exists as a counter elsewhere (the outbox's
//     atomic.Uint64 delivery counters, the peer Stats struct, the engine's
//     plan-cache counters) or is an instantaneous depth (outbox pending,
//     staged ops, live subscriptions) is registered as a scrape-time Func
//     collector, so exposing it costs nothing between scrapes and cannot
//     double-count.
//
// The exported metric names below are documented in docs/operations.md;
// the doc–code sync gate (TestOperationsDocMetricsCurrent) fails if the
// two drift.

// peerMetrics caches the metric children the stage loop touches inline.
type peerMetrics struct {
	stageSeconds   *metrics.Histogram
	fixpointRounds *metrics.Histogram
	stagesRan      *metrics.Counter
	stagesSkipped  *metrics.Counter
}

// fixpointBuckets: fixpoint iteration counts are small integers; a latency
// curve would waste all its resolution below 1.
var fixpointBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// registerMetrics wires the peer into reg. Idempotent per (registry, peer
// name): re-registration (a restarted peer under the same name) replaces
// the Func collectors, so the new incarnation's counters win.
func (p *Peer) registerMetrics(reg *metrics.Registry) {
	name := p.name
	pm := &peerMetrics{}
	stages := reg.Counter("wdl_stages_total",
		"Computation stages, by result (ran vs skipped as a no-op).", "peer", "result")
	pm.stagesRan = stages.With(name, "ran")
	pm.stagesSkipped = stages.With(name, "skipped")
	pm.stageSeconds = reg.Histogram("wdl_stage_seconds",
		"Stage latency (ingest + fixpoint + emit) per stage that ran.", nil, "peer").With(name)
	pm.fixpointRounds = reg.Histogram("wdl_stage_fixpoint_rounds",
		"Fixpoint iterations per stage that ran.", fixpointBuckets, "peer").With(name)

	ob := p.outbox
	atomicFn := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.Counter("wdl_outbox_enqueued_total",
		"Sequenced entries enqueued for remote destinations.", "peer").Func(atomicFn(&ob.enqueued), name)
	reg.Counter("wdl_outbox_acked_total",
		"Outbox entries acknowledged (and dropped) by their destination.", "peer").Func(atomicFn(&ob.delivered), name)
	reg.Counter("wdl_outbox_retransmits_total",
		"Retransmission cycles after an ack timeout.", "peer").Func(atomicFn(&ob.retransmits), name)
	reg.Counter("wdl_outbox_send_errors_total",
		"Failed transport send attempts (each retried).", "peer").Func(atomicFn(&ob.sendErrors), name)
	reg.Counter("wdl_outbox_resets_total",
		"Stream resets: anti-entropy repairs plus slow-peer sheds.", "peer").Func(atomicFn(&ob.resets), name)
	reg.Counter("wdl_outbox_sheds_total",
		"Slow-peer sheds: streams reset after the no-ack-progress window.", "peer").Func(atomicFn(&ob.sheds), name)
	reg.Counter("wdl_backpressure_waits_total",
		"Apply admissions that blocked waiting for queue space.", "peer").Func(atomicFn(&ob.bpWaits), name)
	reg.Counter("wdl_backpressure_rejections_total",
		"Apply admissions rejected with ErrBackpressure (fail-fast).", "peer").Func(atomicFn(&ob.bpRejects), name)
	reg.Counter("wdl_resync_adverts_total",
		"Anti-entropy digest adverts transmitted.", "peer").Func(atomicFn(&ob.adverts), name)

	reg.Gauge("wdl_outbox_depth",
		"Unacknowledged outbox entries across all destinations.", "peer").Func(func() float64 {
		total, _ := ob.Pending()
		return float64(total)
	}, name)
	reg.Gauge("wdl_outbox_stalled",
		"Unacknowledged entries in queues whose last delivery attempt failed.", "peer").Func(func() float64 {
		_, stalled := ob.Pending()
		return float64(stalled)
	}, name)
	reg.Gauge("wdl_pending_ops",
		"Staged local updates awaiting the next stage.", "peer").Func(func() float64 {
		p.mu.Lock()
		n := len(p.pendingOps)
		p.mu.Unlock()
		return float64(n)
	}, name)
	reg.Gauge("wdl_subscriptions",
		"Live subscription streams.", "peer").Func(func() float64 {
		return float64(p.Subscribers())
	}, name)

	statFn := func(read func(*Stats) uint64) func() float64 {
		return func() float64 {
			p.mu.Lock()
			v := read(&p.stats)
			p.mu.Unlock()
			return float64(v)
		}
	}
	reg.Counter("wdl_updates_applied_total",
		"Extensional updates applied during ingestion.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.UpdatesApplied }), name)
	reg.Counter("wdl_facts_out_total",
		"Facts emitted to remote peers.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.FactsOut }), name)
	reg.Counter("wdl_resync_requests_total",
		"Anti-entropy repair requests sent (as a receiver).", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncRequested }), name)
	reg.Counter("wdl_resync_snapshots_total",
		"Repair snapshots served (as a sender, including sheds).", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncSnapshots }), name)
	reg.Counter("wdl_resync_snapshot_bytes_total",
		"Total encoded size of repair snapshots served.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncSnapshotBytes }), name)
	reg.Counter("wdl_resync_ranged_repairs_total",
		"Ranged repair messages served (as a sender).", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncRangedRepairs }), name)
	reg.Counter("wdl_resync_ranged_repair_bytes_total",
		"Total encoded size of ranged repair messages served.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncRangedRepairBytes }), name)
	reg.Counter("wdl_resync_range_digest_bytes_total",
		"Total encoded size of range-digest replies served during bisection.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncRangeDigestBytes }), name)
	reg.Counter("wdl_resync_ranges_requested_total",
		"Hash ranges whose repair this peer requested after bisection.", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.ResyncRangesRequested }), name)
	reg.Counter("wdl_subscription_drops_total",
		"Subscriptions closed for falling behind (ErrSlowSubscriber).", "peer").Func(
		statFn(func(s *Stats) uint64 { return s.SubscriptionDrops }), name)

	eng := p.eng
	reg.Counter("wdl_plan_cache_hits_total",
		"Join-planner lookups that reused a stage's cached plan.", "peer").Func(func() float64 {
		hits, _ := eng.PlanCacheStats()
		return float64(hits)
	}, name)
	reg.Counter("wdl_plan_cache_misses_total",
		"Join-planner lookups that computed a fresh plan.", "peer").Func(func() float64 {
		_, misses := eng.PlanCacheStats()
		return float64(misses)
	}, name)
	reg.Counter("wdl_rule_compiles_total",
		"Rule walks compiled into closure chains (per stage kind and delta position).", "peer").Func(func() float64 {
		compiles, _, _ := eng.CompiledStats()
		return float64(compiles)
	}, name)
	reg.Counter("wdl_compiled_hits_total",
		"Rule walks served from the compiled-program cache.", "peer").Func(func() float64 {
		_, hits, _ := eng.CompiledStats()
		return float64(hits)
	}, name)
	reg.Counter("wdl_compile_fallbacks_total",
		"Rule walks that fell back to the interpreter (delegating or dynamic rules).", "peer").Func(func() float64 {
		_, _, fallbacks := eng.CompiledStats()
		return float64(fallbacks)
	}, name)

	p.pm = pm
}

// RegisterNetworkMetrics exposes the concurrent scheduler's wake-queue
// counters on the registry: how many peers the scheduler has examined and
// how much of the network is currently awake. On a quiescent swarm the scan
// counter stays flat — the property experiment P11 asserts.
func RegisterNetworkMetrics(reg *metrics.Registry, n *Network) {
	reg.Counter("wdl_sched_scans_total",
		"Peers examined by the concurrent scheduler (HasWork/outbox probes).").Func(func() float64 {
		return float64(n.SchedulerScans())
	})
	reg.Gauge("wdl_sched_ready_peers",
		"Peers currently in the scheduler's wake queue.").Func(func() float64 {
		ready, _ := n.SchedulerQueueDepths()
		return float64(ready)
	})
	reg.Gauge("wdl_sched_active_outboxes",
		"Peers whose outbox the scheduler tracks as possibly undrained.").Func(func() float64 {
		_, outboxes := n.SchedulerQueueDepths()
		return float64(outboxes)
	})
}
