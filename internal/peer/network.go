package peer

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/errdefs"
	"repro/internal/transport"
)

// Network is an in-process collection of peers connected by a transport.Bus,
// with round-based scheduling and quiescence detection. It is the harness
// used by tests, benchmarks, the examples and the single-process demo mode
// ("launch their own Wepic peer" on one machine).
//
// By default independent peers' stages run concurrently on a bounded worker
// pool (each peer's own lock serializes its stages). NewSequentialNetwork
// builds the deterministic variant: name-ordered sequential stages and
// synchronous outbox flushes, the mode deterministic multi-peer tests rely
// on.
type Network struct {
	bus *transport.Bus

	mu    sync.Mutex
	peers map[string]*Peer
	order []string

	sequential bool
	workers    int
}

// NewNetwork creates an empty network over a fresh bus with the concurrent
// scheduler.
func NewNetwork() *Network {
	return &Network{bus: transport.NewBus(), peers: make(map[string]*Peer)}
}

// NewSequentialNetwork creates a network whose scheduler runs stages one at
// a time in peer-name order and whose peers (created via NewPeer) flush
// their outboxes synchronously at the end of each stage — fully
// deterministic, at the price of stages blocking on emission.
func NewSequentialNetwork() *Network {
	n := NewNetwork()
	n.sequential = true
	return n
}

// Bus returns the underlying transport bus.
func (n *Network) Bus() *transport.Bus { return n.bus }

// SetWorkers bounds the concurrent scheduler's worker pool (default:
// GOMAXPROCS). It has no effect on a sequential network.
func (n *Network) SetWorkers(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.workers = k
}

// NewPeer creates a peer with the given config, attached to the network's
// bus, and registers it. On a sequential network the peer is created in
// sync-emit mode (see Config.SyncEmit).
func (n *Network) NewPeer(cfg Config) (*Peer, error) {
	if n.sequential {
		cfg.SyncEmit = true
	}
	ep := n.bus.Endpoint(cfg.Name)
	p, err := New(cfg, ep)
	if err != nil {
		return nil, err
	}
	n.Add(p)
	return p, nil
}

// Add registers an externally-created peer (it must be attached to this
// network's bus for messages to flow). Registering a peer under a name
// already present replaces the old registration — a restarted peer takes
// over its name; close the previous instance first.
func (n *Network) Add(p *Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[p.Name()]; dup {
		n.peers[p.Name()] = p
		return
	}
	n.peers[p.Name()] = p
	n.order = append(n.order, p.Name())
	sort.Strings(n.order)
}

// Peer returns the registered peer with the given name, or nil.
func (n *Network) Peer(name string) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[name]
}

// Peers returns all registered peers in name order.
func (n *Network) Peers() []*Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Peer, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.peers[name])
	}
	return out
}

// QuiescenceError reports that RunToQuiescence hit its round budget, which
// usually means the program oscillates (e.g. rules that insert and delete
// the same fact forever). It wraps errdefs.ErrNoQuiescence, so
// errors.Is(err, webdamlog.ErrNoQuiescence) matches and errors.As recovers
// the round count.
type QuiescenceError struct {
	Rounds int
}

// Error implements the error interface.
func (e *QuiescenceError) Error() string {
	return fmt.Sprintf("peer: network did not quiesce within %d rounds", e.Rounds)
}

// Unwrap ties the error into the public taxonomy.
func (e *QuiescenceError) Unwrap() error { return errdefs.ErrNoQuiescence }

// RunToQuiescence drives stages until the network quiesces: no peer has
// work, every outbox is drained (all sequenced messages acknowledged), and
// hence no message or ack is in flight. It returns the number of scheduler
// rounds and the stages that actually ran. maxRounds bounds the loop (<=0
// uses the default of 1000 rounds).
//
// The peer set is re-snapshotted every round, so a peer added mid-run (e.g.
// discovered via delegation) is scheduled as soon as it appears.
//
// Outbox entries whose destination is currently unreachable (every delivery
// attempt failing, retrying under backoff) do not prevent quiescence: the
// call returns with the entries still queued — their flushers keep retrying
// in the background, and a later RunToQuiescence resumes driving the stages
// their delivery triggers.
//
// The context is checked between peer stages: cancellation makes the call
// return promptly with ctx's error, leaving already-completed stages
// committed (stages are atomic; the run as a whole is resumable by simply
// calling RunToQuiescence again).
func (n *Network) RunToQuiescence(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	if n.sequential {
		return n.runSequential(ctx, maxRounds)
	}
	return n.runConcurrent(ctx, maxRounds)
}

// runSequential is the deterministic scheduler: one stage at a time, peers
// in name order, outboxes flushed inline after every stage so each message
// is visible to the receiver within the round it was emitted.
func (n *Network) runSequential(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	for r := 0; r < maxRounds; r++ {
		progressed := false
		delivered := false
		for _, p := range n.Peers() { // fresh snapshot: peers may join mid-run
			if err := ctx.Err(); err != nil {
				return rounds, stages, err
			}
			if p.HasWork() {
				rep := p.RunStage()
				progressed = true
				if rep.Ran {
					stages++
				}
			}
			// Flush regardless of HasWork: sync-emit peers flushed in
			// RunStage (no-op here), async peers attached to a sequential
			// network get their delivery driven by the scheduler.
			if p.FlushOutbox() {
				delivered = true
			}
		}
		if !progressed {
			if n.outboxesDrained() {
				return r, stages, nil
			}
			if !delivered {
				// Undelivered entries with every attempt failing: quiescent
				// as far as this network can drive it. The entries stay
				// queued for retry.
				return r, stages, nil
			}
		}
		rounds = r + 1
	}
	return rounds, stages, &QuiescenceError{Rounds: maxRounds}
}

// runConcurrent is the default scheduler: each round stages every peer with
// work on a bounded worker pool, then accelerates outbox delivery inline.
func (n *Network) runConcurrent(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	workers := n.workerCount()
	for r := 0; r < maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			return rounds, stages, err
		}
		peers := n.Peers() // fresh snapshot: peers may join mid-run
		var work []*Peer
		for _, p := range peers {
			if p.HasWork() {
				work = append(work, p)
			}
		}
		if len(work) == 0 {
			delivered := false
			for _, p := range peers {
				if p.FlushOutbox() {
					delivered = true
				}
			}
			if !n.anyWork() {
				total, stalled := n.outboxTotals()
				if total == 0 {
					return r, stages, nil
				}
				if !delivered && total == stalled {
					// Every pending entry is behind a failing destination's
					// backoff gate: unreachable peers must not wedge the
					// scheduler. Background flushers keep retrying.
					return r, stages, nil
				}
				if !delivered {
					// In-flight flushers (or backoff gates about to expire):
					// give them a moment rather than spinning.
					select {
					case <-ctx.Done():
						return rounds, stages, ctx.Err()
					case <-time.After(200 * time.Microsecond):
					}
				}
			}
			rounds = r + 1
			continue
		}

		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, p := range work {
			sem <- struct{}{}
			wg.Add(1)
			go func(p *Peer) {
				defer wg.Done()
				defer func() { <-sem }()
				rep := p.RunStage()
				if rep.Ran {
					mu.Lock()
					stages++
					mu.Unlock()
				}
			}(p)
		}
		wg.Wait()
		for _, p := range peers {
			p.FlushOutbox()
		}
		rounds = r + 1
	}
	return rounds, stages, &QuiescenceError{Rounds: maxRounds}
}

func (n *Network) workerCount() int {
	n.mu.Lock()
	k := n.workers
	n.mu.Unlock()
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return k
}

func (n *Network) anyWork() bool {
	for _, p := range n.Peers() {
		if p.HasWork() {
			return true
		}
	}
	return false
}

func (n *Network) outboxesDrained() bool {
	total, _ := n.outboxTotals()
	return total == 0
}

func (n *Network) outboxTotals() (total, stalled int) {
	for _, p := range n.Peers() {
		t, s := p.OutboxPending()
		total += t
		stalled += s
	}
	return total, stalled
}

// StageAll runs at most one stage on every peer that has work — including
// peers that gain work (or are registered) while the pass is running. It
// returns the reports of the stages that ran.
func (n *Network) StageAll() []*StageReport {
	var out []*StageReport
	staged := map[string]bool{}
	for {
		progressed := false
		for _, p := range n.Peers() {
			if staged[p.Name()] || !p.HasWork() {
				continue
			}
			staged[p.Name()] = true
			out = append(out, p.RunStage())
			p.FlushOutbox()
			progressed = true
		}
		if !progressed {
			return out
		}
	}
}
