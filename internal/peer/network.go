package peer

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errdefs"
	"repro/internal/transport"
)

// Network is an in-process collection of peers connected by a transport.Bus,
// with round-based scheduling and quiescence detection. It is the harness
// used by tests, benchmarks, the examples and the single-process demo mode
// ("launch their own Wepic peer" on one machine).
//
// By default independent peers' stages run concurrently on a bounded worker
// pool (each peer's own lock serializes its stages). NewSequentialNetwork
// builds the deterministic variant: name-ordered sequential stages and
// synchronous outbox flushes, the mode deterministic multi-peer tests rely
// on.
type Network struct {
	bus *transport.Bus

	mu    sync.Mutex
	peers map[string]*Peer
	order []string

	sequential bool
	workers    int

	// Wake-queue scheduler state (concurrent mode only). Peers and outboxes
	// report gaining work through hooks (kick → markReady, outbox enqueue →
	// markOutbox, endpoint delivery → markReady), so each round examines only
	// the peers that were woken — O(active peers) — instead of scanning the
	// whole network: a quiescent region of a 100k-peer swarm costs nothing.
	// schedMu is a leaf lock: nothing else is ever acquired under it, so the
	// hooks are safe to fire from any goroutine and lock context.
	schedMu  sync.Mutex
	ready    map[string]struct{} // woken peers (set half: dedupe)
	readyq   []string            // woken peers (queue half: FIFO order)
	obAct    map[string]struct{} // peers whose outbox may have pending entries
	unhooked map[string]struct{} // peers whose endpoint can't hook: polled every round
	wakeCh   chan struct{}       // 1-slot, edge-triggered: some hook fired

	// scans counts peers examined by the scheduler (HasWork / OutboxPending
	// probes). Experiment P11 asserts it stays flat across a RunToQuiescence
	// on an already-quiescent swarm.
	scans atomic.Uint64
}

// NewNetwork creates an empty network over a fresh bus with the concurrent
// scheduler.
func NewNetwork() *Network {
	return &Network{
		bus:      transport.NewBus(),
		peers:    make(map[string]*Peer),
		ready:    make(map[string]struct{}),
		obAct:    make(map[string]struct{}),
		unhooked: make(map[string]struct{}),
		wakeCh:   make(chan struct{}, 1),
	}
}

// NewSequentialNetwork creates a network whose scheduler runs stages one at
// a time in peer-name order and whose peers (created via NewPeer) flush
// their outboxes synchronously at the end of each stage — fully
// deterministic, at the price of stages blocking on emission.
func NewSequentialNetwork() *Network {
	n := NewNetwork()
	n.sequential = true
	return n
}

// Bus returns the underlying transport bus.
func (n *Network) Bus() *transport.Bus { return n.bus }

// SetWorkers bounds the concurrent scheduler's worker pool (default:
// GOMAXPROCS). It has no effect on a sequential network.
func (n *Network) SetWorkers(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.workers = k
}

// NewPeer creates a peer with the given config, attached to the network's
// bus, and registers it. On a sequential network the peer is created in
// sync-emit mode (see Config.SyncEmit).
func (n *Network) NewPeer(cfg Config) (*Peer, error) {
	if n.sequential {
		cfg.SyncEmit = true
	}
	ep := n.bus.Endpoint(cfg.Name)
	p, err := New(cfg, ep)
	if err != nil {
		return nil, err
	}
	n.Add(p)
	return p, nil
}

// Add registers an externally-created peer (it must be attached to this
// network's bus for messages to flow). Registering a peer under a name
// already present replaces the old registration — a restarted peer takes
// over its name; close the previous instance first.
func (n *Network) Add(p *Peer) {
	name := p.Name()
	n.mu.Lock()
	if _, dup := n.peers[name]; !dup {
		n.order = append(n.order, name)
		sort.Strings(n.order)
	}
	n.peers[name] = p
	sequential := n.sequential
	n.mu.Unlock()
	if sequential {
		return
	}
	// Wire the peer into the wake queue: message arrival at its endpoint and
	// every internal kick mark it ready; outbox enqueues mark its outbox
	// active. An endpoint that cannot hook (a wrapper over an unhookable
	// inner) falls back to per-round polling.
	hooked := false
	if h, ok := p.ep.(transport.WakeHooker); ok {
		hooked = h.SetWakeHook(func() { n.markReady(name) })
	}
	if !hooked {
		n.schedMu.Lock()
		n.unhooked[name] = struct{}{}
		n.schedMu.Unlock()
	}
	p.setSchedHooks(func() { n.markReady(name) }, func() { n.markOutbox(name) })
	// Conservative initial state: the peer may already hold work (recovered
	// WAL state, pre-attach deliveries) and has never run a stage.
	n.markReady(name)
	n.markOutbox(name)
}

// markReady records that a peer may have stage work and wakes the scheduler.
// Safe from any goroutine; schedMu is a leaf lock.
func (n *Network) markReady(name string) {
	n.schedMu.Lock()
	if _, ok := n.ready[name]; !ok {
		n.ready[name] = struct{}{}
		n.readyq = append(n.readyq, name)
	}
	n.schedMu.Unlock()
	select {
	case n.wakeCh <- struct{}{}:
	default:
	}
}

// markOutbox records that a peer's outbox may have undrained entries.
func (n *Network) markOutbox(name string) {
	n.schedMu.Lock()
	n.obAct[name] = struct{}{}
	n.schedMu.Unlock()
	select {
	case n.wakeCh <- struct{}{}:
	default:
	}
}

// SchedulerScans returns the cumulative number of peers the concurrent
// scheduler has examined (HasWork / outbox probes). On a quiescent network a
// RunToQuiescence adds zero: no hook fired, so nothing is examined.
func (n *Network) SchedulerScans() uint64 { return n.scans.Load() }

// SchedulerQueueDepths returns the current sizes of the wake queue and the
// outbox-active set (metrics).
func (n *Network) SchedulerQueueDepths() (ready, outboxes int) {
	n.schedMu.Lock()
	defer n.schedMu.Unlock()
	return len(n.ready), len(n.obAct)
}

// Peer returns the registered peer with the given name, or nil.
func (n *Network) Peer(name string) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[name]
}

// Peers returns all registered peers in name order.
func (n *Network) Peers() []*Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Peer, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.peers[name])
	}
	return out
}

// QuiescenceError reports that RunToQuiescence hit its round budget, which
// usually means the program oscillates (e.g. rules that insert and delete
// the same fact forever). It wraps errdefs.ErrNoQuiescence, so
// errors.Is(err, webdamlog.ErrNoQuiescence) matches and errors.As recovers
// the round count.
type QuiescenceError struct {
	Rounds int
}

// Error implements the error interface.
func (e *QuiescenceError) Error() string {
	return fmt.Sprintf("peer: network did not quiesce within %d rounds", e.Rounds)
}

// Unwrap ties the error into the public taxonomy.
func (e *QuiescenceError) Unwrap() error { return errdefs.ErrNoQuiescence }

// RunToQuiescence drives stages until the network quiesces: no peer has
// work, every outbox is drained (all sequenced messages acknowledged), and
// hence no message or ack is in flight. It returns the number of scheduler
// rounds and the stages that actually ran. maxRounds bounds the loop (<=0
// uses the default of 1000 rounds).
//
// The peer set is re-snapshotted every round, so a peer added mid-run (e.g.
// discovered via delegation) is scheduled as soon as it appears.
//
// Outbox entries whose destination is currently unreachable (every delivery
// attempt failing, retrying under backoff) do not prevent quiescence: the
// call returns with the entries still queued — their flushers keep retrying
// in the background, and a later RunToQuiescence resumes driving the stages
// their delivery triggers.
//
// The context is checked between peer stages: cancellation makes the call
// return promptly with ctx's error, leaving already-completed stages
// committed (stages are atomic; the run as a whole is resumable by simply
// calling RunToQuiescence again).
func (n *Network) RunToQuiescence(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	if n.sequential {
		return n.runSequential(ctx, maxRounds)
	}
	return n.runConcurrent(ctx, maxRounds)
}

// runSequential is the deterministic scheduler: one stage at a time, peers
// in name order, outboxes flushed inline after every stage so each message
// is visible to the receiver within the round it was emitted.
func (n *Network) runSequential(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	for r := 0; r < maxRounds; r++ {
		progressed := false
		delivered := false
		for _, p := range n.Peers() { // fresh snapshot: peers may join mid-run
			if err := ctx.Err(); err != nil {
				return rounds, stages, err
			}
			if p.HasWork() {
				rep := p.RunStage()
				progressed = true
				if rep.Ran {
					stages++
				}
			}
			// Flush regardless of HasWork: sync-emit peers flushed in
			// RunStage (no-op here), async peers attached to a sequential
			// network get their delivery driven by the scheduler.
			if p.FlushOutbox() {
				delivered = true
			}
		}
		if !progressed {
			if n.outboxesDrained() {
				return r, stages, nil
			}
			if !delivered {
				// Undelivered entries with every attempt failing: quiescent
				// as far as this network can drive it. The entries stay
				// queued for retry.
				return r, stages, nil
			}
		}
		rounds = r + 1
	}
	return rounds, stages, &QuiescenceError{Rounds: maxRounds}
}

// runConcurrent is the default scheduler: wake-queue driven. Each round
// stages the peers the wake queue surfaced (not every peer) on a bounded
// worker pool; when the queue is empty it accelerates delivery on the
// outboxes known to be active and decides quiescence from those sets alone.
// Work discovery is O(active peers): a peer that stays quiet is never
// examined, so idle regions of a large swarm cost nothing per round.
func (n *Network) runConcurrent(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	workers := n.workerCount()
	for r := 0; r < maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			return rounds, stages, err
		}
		work := n.takeReady()
		if len(work) == 0 {
			total, stalled, delivered := n.checkOutboxes()
			if !n.readyPending() {
				if total == 0 {
					return r, stages, nil
				}
				if !delivered && total == stalled {
					// Every pending entry is behind a failing destination's
					// backoff gate: unreachable peers must not wedge the
					// scheduler. Background flushers keep retrying.
					return r, stages, nil
				}
				if !delivered {
					// In-flight flushers (or backoff gates about to expire):
					// sleep until a hook fires or a short tick elapses rather
					// than spinning.
					select {
					case <-ctx.Done():
						return rounds, stages, ctx.Err()
					case <-n.wakeCh:
					case <-time.After(200 * time.Microsecond):
					}
				}
			}
			rounds = r + 1
			continue
		}

		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, p := range work {
			sem <- struct{}{}
			wg.Add(1)
			go func(p *Peer) {
				defer wg.Done()
				defer func() { <-sem }()
				rep := p.RunStage()
				if rep.Ran {
					mu.Lock()
					stages++
					mu.Unlock()
				}
				if p.HasWork() {
					// A stage can queue its own follow-up work (staged local
					// updates) without a kick; re-wake explicitly.
					n.markReady(p.Name())
				}
			}(p)
		}
		wg.Wait()
		for _, p := range work {
			p.FlushOutbox()
		}
		rounds = r + 1
	}
	return rounds, stages, &QuiescenceError{Rounds: maxRounds}
}

// takeReady drains the wake queue and returns the woken peers that actually
// have work, in wake order. Unhookable-endpoint peers are appended every
// round (the polling fallback). A popped peer whose work check comes up
// empty is simply dropped: any later work-gaining event re-marks it, because
// hooks fire after the state they report is published.
func (n *Network) takeReady() []*Peer {
	n.schedMu.Lock()
	names := n.readyq
	n.readyq = nil
	clear(n.ready)
	for name := range n.unhooked {
		names = append(names, name)
	}
	n.schedMu.Unlock()
	var work []*Peer
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		p := n.Peer(name)
		if p == nil {
			continue // woken before registration, or removed
		}
		n.scans.Add(1)
		if p.HasWork() {
			work = append(work, p)
		}
	}
	return work
}

// checkOutboxes accelerates delivery on the outboxes marked active and
// returns their pending totals plus whether this pass delivered anything.
// A drained outbox is retired from the set — with a re-check after the
// removal, so an enqueue racing the probe (its hook firing between our read
// and our delete) is never lost.
func (n *Network) checkOutboxes() (total, stalled int, delivered bool) {
	n.schedMu.Lock()
	names := make([]string, 0, len(n.obAct))
	for name := range n.obAct {
		names = append(names, name)
	}
	n.schedMu.Unlock()
	for _, name := range names {
		p := n.Peer(name)
		if p == nil {
			n.schedMu.Lock()
			delete(n.obAct, name)
			n.schedMu.Unlock()
			continue
		}
		n.scans.Add(1)
		if p.FlushOutbox() {
			delivered = true
		}
		t, s := p.OutboxPending()
		if t == 0 {
			n.schedMu.Lock()
			delete(n.obAct, name)
			n.schedMu.Unlock()
			if t2, _ := p.OutboxPending(); t2 > 0 {
				// Enqueue raced the retirement: re-mark and keep counting it
				// as pending (not stalled, so the scheduler keeps driving).
				n.markOutbox(name)
				total += t2
			}
			continue
		}
		total += t
		stalled += s
	}
	return total, stalled, delivered
}

// readyPending reports whether any wake-queue entry (or any unhookable
// peer's work) exists without consuming the queue — the guard that keeps
// quiescence decisions honest when checkOutboxes' deliveries just woke
// receivers.
func (n *Network) readyPending() bool {
	n.schedMu.Lock()
	pending := len(n.ready) > 0
	var poll []string
	if !pending {
		poll = make([]string, 0, len(n.unhooked))
		for name := range n.unhooked {
			poll = append(poll, name)
		}
	}
	n.schedMu.Unlock()
	if pending {
		return true
	}
	for _, name := range poll {
		if p := n.Peer(name); p != nil {
			n.scans.Add(1)
			if p.HasWork() {
				return true
			}
		}
	}
	return false
}

func (n *Network) workerCount() int {
	n.mu.Lock()
	k := n.workers
	n.mu.Unlock()
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return k
}

func (n *Network) outboxesDrained() bool {
	total, _ := n.outboxTotals()
	return total == 0
}

func (n *Network) outboxTotals() (total, stalled int) {
	for _, p := range n.Peers() {
		t, s := p.OutboxPending()
		total += t
		stalled += s
	}
	return total, stalled
}

// StageAll runs at most one stage on every peer that has work — including
// peers that gain work (or are registered) while the pass is running. It
// returns the reports of the stages that ran.
func (n *Network) StageAll() []*StageReport {
	var out []*StageReport
	staged := map[string]bool{}
	for {
		progressed := false
		for _, p := range n.Peers() {
			if staged[p.Name()] || !p.HasWork() {
				continue
			}
			staged[p.Name()] = true
			out = append(out, p.RunStage())
			p.FlushOutbox()
			progressed = true
		}
		if !progressed {
			return out
		}
	}
}
