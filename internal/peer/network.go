package peer

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/errdefs"
	"repro/internal/transport"
)

// Network is an in-process collection of peers connected by a transport.Bus,
// with deterministic round-based scheduling and quiescence detection. It is
// the harness used by tests, benchmarks, the examples and the single-process
// demo mode ("launch their own Wepic peer" on one machine).
type Network struct {
	bus *transport.Bus

	mu    sync.Mutex
	peers map[string]*Peer
	order []string
}

// NewNetwork creates an empty network over a fresh bus.
func NewNetwork() *Network {
	return &Network{bus: transport.NewBus(), peers: make(map[string]*Peer)}
}

// Bus returns the underlying transport bus.
func (n *Network) Bus() *transport.Bus { return n.bus }

// NewPeer creates a peer with the given config, attached to the network's
// bus, and registers it.
func (n *Network) NewPeer(cfg Config) (*Peer, error) {
	ep := n.bus.Endpoint(cfg.Name)
	p, err := New(cfg, ep)
	if err != nil {
		return nil, err
	}
	n.Add(p)
	return p, nil
}

// Add registers an externally-created peer (it must be attached to this
// network's bus for messages to flow).
func (n *Network) Add(p *Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[p.Name()]; dup {
		return
	}
	n.peers[p.Name()] = p
	n.order = append(n.order, p.Name())
	sort.Strings(n.order)
}

// Peer returns the registered peer with the given name, or nil.
func (n *Network) Peer(name string) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[name]
}

// Peers returns all registered peers in name order.
func (n *Network) Peers() []*Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Peer, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.peers[name])
	}
	return out
}

// QuiescenceError reports that RunToQuiescence hit its round budget, which
// usually means the program oscillates (e.g. rules that insert and delete
// the same fact forever). It wraps errdefs.ErrNoQuiescence, so
// errors.Is(err, webdamlog.ErrNoQuiescence) matches and errors.As recovers
// the round count.
type QuiescenceError struct {
	Rounds int
}

// Error implements the error interface.
func (e *QuiescenceError) Error() string {
	return fmt.Sprintf("peer: network did not quiesce within %d rounds", e.Rounds)
}

// Unwrap ties the error into the public taxonomy.
func (e *QuiescenceError) Unwrap() error { return errdefs.ErrNoQuiescence }

// RunToQuiescence repeatedly runs a stage on every peer that has work, in
// name order, until no peer has work (and hence no messages are in flight —
// the bus delivers synchronously). It returns the number of rounds and the
// total number of stages that actually ran. maxRounds bounds the loop
// (<=0 uses the default of 1000 rounds).
//
// The context is checked before every peer stage: cancellation makes the
// call return promptly with ctx's error, leaving already-completed stages
// committed (stages are atomic; the run as a whole is resumable by simply
// calling RunToQuiescence again).
func (n *Network) RunToQuiescence(ctx context.Context, maxRounds int) (rounds, stages int, err error) {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	peers := n.Peers()
	for r := 0; r < maxRounds; r++ {
		progressed := false
		for _, p := range peers {
			if err := ctx.Err(); err != nil {
				return rounds, stages, err
			}
			if p.HasWork() {
				rep := p.RunStage()
				progressed = true
				if rep.Ran {
					stages++
				}
			}
		}
		if !progressed {
			return r, stages, nil
		}
		rounds = r + 1
	}
	return rounds, stages, &QuiescenceError{Rounds: maxRounds}
}

// StageAll runs exactly one stage on every peer that has work, in name
// order. It returns the reports of the stages that ran.
func (n *Network) StageAll() []*StageReport {
	var out []*StageReport
	for _, p := range n.Peers() {
		if p.HasWork() {
			out = append(out, p.RunStage())
		}
	}
	return out
}
