package peer

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/value"
)

// newFaultyPeer attaches a peer to the network's bus behind a fault-
// injecting wrapper, with outbox timers shrunk so retransmission and
// backoff cycles run at test speed.
func newFaultyPeer(t *testing.T, n *Network, name string, cfg transport.FaultConfig) *Peer {
	t.Helper()
	ep := transport.Faulty(n.Bus().Endpoint(name), cfg)
	p, err := New(Config{Name: name}, ep)
	if err != nil {
		t.Fatal(err)
	}
	p.outbox.ackTimeout = 10 * time.Millisecond
	p.outbox.baseBackoff = 2 * time.Millisecond
	p.outbox.maxBackoff = 20 * time.Millisecond
	n.Add(p)
	t.Cleanup(func() { p.Close() })
	return p
}

// drive stages every peer with work until the predicate holds or the
// deadline passes.
func drive(peers []*Peer, until func() bool, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		worked := false
		for _, p := range peers {
			if p.HasWork() {
				p.RunStage()
				worked = true
			}
		}
		if until() {
			return true
		}
		if !worked {
			time.Sleep(time.Millisecond)
		}
	}
	return false
}

func tupleSet(p *Peer, rel string) string {
	return fmt.Sprint(p.Query(rel)) // Query returns sorted tuples
}

// TestTwoPeerConvergenceUnderFaults: a maintained remote view fed through a
// transport that drops, duplicates, reorders and fails messages must end up
// exactly mirroring the sender's base relation — the at-least-once outbox
// plus receiver dedup make the faults invisible to the fixpoint.
func TestTwoPeerConvergenceUnderFaults(t *testing.T) {
	schedules := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"drop", transport.FaultConfig{Seed: 11, Drop: 0.3}},
		{"dup", transport.FaultConfig{Seed: 12, Dup: 0.3}},
		{"reorder", transport.FaultConfig{Seed: 13, Reorder: 0.3}},
		{"fail", transport.FaultConfig{Seed: 14, Fail: 0.3}},
		{"mixed", transport.FaultConfig{Seed: 15, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Fail: 0.1}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			n := NewNetwork()
			a := newFaultyPeer(t, n, "a", sched.cfg)
			b := newFaultyPeer(t, n, "b", sched.cfg)
			if err := a.LoadSource(`
				relation extensional src@a(x);
				view@b($x) :- src@a($x);
			`); err != nil {
				t.Fatal(err)
			}
			if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
				t.Fatal(err)
			}
			peers := []*Peer{a, b}

			rng := rand.New(rand.NewSource(sched.cfg.Seed))
			present := map[int64]bool{}
			for i := 0; i < 60; i++ {
				k := rng.Int63n(8)
				var err error
				if present[k] {
					err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
				} else {
					err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
				}
				if err != nil {
					t.Fatal(err)
				}
				present[k] = !present[k]
				// Interleave a little scheduling so faults hit mid-run
				// traffic, not one final batch.
				drive(peers, func() bool { return false }, 2*time.Millisecond)
			}

			var want []value.Tuple
			for k, in := range present {
				if in {
					want = append(want, value.Tuple{value.Int(k)})
				}
			}
			value.SortTuples(want)
			expected := fmt.Sprint(want)
			if !drive(peers, func() bool { return tupleSet(b, "view") == expected }, 20*time.Second) {
				t.Fatalf("view@b never converged under %s faults:\n got %s\nwant %s\n(outbox: %+v)",
					sched.name, tupleSet(b, "view"), expected, a.Stats())
			}
		})
	}
}

// TestThreePeerDelegationConvergenceUnderFaults: the paper's delegated-join
// topology (c's rule delegates residuals to a and b) over fully faulty
// links, with base updates and a mid-run delegation withdrawal, must
// converge to exactly the contents a fault-free naive-recompute run
// produces.
func TestThreePeerDelegationConvergenceUnderFaults(t *testing.T) {
	cfg := transport.FaultConfig{Seed: 42, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Fail: 0.1}

	type op struct {
		peer, src string
		del       bool
	}
	var ops []op
	rng := rand.New(rand.NewSource(99))
	present := map[string]bool{}
	for i := 0; i < 40; i++ {
		owner := []string{"a", "b"}[rng.Intn(2)]
		k := fmt.Sprintf(`data@%s(%d);`, owner, rng.Int63n(6))
		ops = append(ops, op{peer: owner, src: k, del: present[k]})
		present[k] = !present[k]
	}

	load := func(a, b, c *Peer) error {
		if err := a.DeclareRelation("data", ast.Extensional, "x"); err != nil {
			return err
		}
		if err := b.DeclareRelation("data", ast.Extensional, "x"); err != nil {
			return err
		}
		return c.LoadSource(`
			relation extensional sel@c(a);
			relation intensional view@c(x);
			sel@c("a");
			sel@c("b");
			view@c($x) :- sel@c($a), data@$a($x);
		`)
	}
	apply := func(p *Peer, o op) error {
		if o.del {
			return p.DeleteString(o.src)
		}
		return p.InsertString(o.src)
	}

	// Reference: the same program and update sequence on a clean sequential
	// network with incremental maintenance off — the recompute-mode
	// fixpoint the faulty run must match.
	ref := NewSequentialNetwork()
	naive := engine.DefaultOptions()
	naive.Incremental = false
	refPeer := func(name string) *Peer {
		p, err := ref.NewPeer(Config{Name: name, Engine: &naive})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ra, rb, rc := refPeer("a"), refPeer("b"), refPeer("c")
	if err := load(ra, rb, rc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.RunToQuiescence(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	for _, o := range ops {
		if err := apply(ref.Peer(o.peer), o); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-run withdrawal exercise: c stops watching a, then resumes.
	if err := rc.DeleteString(`sel@c("a");`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.RunToQuiescence(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	if err := rc.InsertString(`sel@c("a");`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.RunToQuiescence(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	expected := tupleSet(rc, "view")

	// Faulty run: same program, same updates, every link injecting faults.
	n := NewNetwork()
	a := newFaultyPeer(t, n, "a", cfg)
	b := newFaultyPeer(t, n, "b", cfg)
	c := newFaultyPeer(t, n, "c", cfg)
	if err := load(a, b, c); err != nil {
		t.Fatal(err)
	}
	peers := []*Peer{a, b, c}
	drive(peers, func() bool { return false }, 20*time.Millisecond)
	for i, o := range ops {
		if err := apply(n.Peer(o.peer), o); err != nil {
			t.Fatal(err)
		}
		if i == len(ops)/2 {
			if err := c.DeleteString(`sel@c("a");`); err != nil {
				t.Fatal(err)
			}
			drive(peers, func() bool { return false }, 10*time.Millisecond)
			if err := c.InsertString(`sel@c("a");`); err != nil {
				t.Fatal(err)
			}
		}
		drive(peers, func() bool { return false }, 2*time.Millisecond)
	}

	if !drive(peers, func() bool { return tupleSet(c, "view") == expected }, 30*time.Second) {
		t.Fatalf("view@c never converged to the recompute fixpoint:\n got %s\nwant %s",
			tupleSet(c, "view"), expected)
	}
}

// TestConvergenceAcrossDisconnect: a hard link outage in the middle of an
// update stream (SetDown) heals: everything queued during the outage is
// delivered when the link returns.
func TestConvergenceAcrossDisconnect(t *testing.T) {
	n := NewNetwork()
	a := newFaultyPeer(t, n, "a", transport.FaultConfig{Seed: 7})
	b := newFaultyPeer(t, n, "b", transport.FaultConfig{Seed: 8})
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	peers := []*Peer{a, b}

	fa := a.Endpoint().(*transport.FaultyEndpoint)
	for i := int64(0); i < 5; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	drive(peers, func() bool { return len(b.Query("view")) == 5 }, 10*time.Second)

	fa.SetDown(true)
	for i := int64(5); i < 10; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Delete(ast.NewFact("src", "a", value.Int(0))); err != nil {
		t.Fatal(err)
	}
	drive(peers, func() bool { return false }, 50*time.Millisecond)
	if got := len(b.Query("view")); got != 5 {
		t.Fatalf("updates leaked through a downed link: view has %d tuples", got)
	}
	fa.SetDown(false)

	if !drive(peers, func() bool { return len(b.Query("view")) == 9 }, 20*time.Second) {
		t.Fatalf("view@b never healed after reconnect: %d tuples, want 9", len(b.Query("view")))
	}
}
