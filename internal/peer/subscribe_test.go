package peer

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/value"
)

// drainDeltas reads everything currently buffered on ch.
func drainDeltas(ch <-chan Delta) []Delta {
	var out []Delta
	for {
		select {
		case d, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestSubscribeDerivedAcrossPeers is the acceptance case: a subscription on
// jules' rule-derived view streams deltas caused by changes at emilien —
// including the deletion when the supporting fact is retracted.
func TestSubscribeDerivedAcrossPeers(t *testing.T) {
	n, ps := newTestNetwork(t, "jules", "emilien")
	jules, emilien := ps["jules"], ps["emilien"]
	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id, name);
	`); err != nil {
		t.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name) :-
			selectedAttendee@jules($a), pictures@$a($id,$name);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deltas, err := jules.Subscribe(ctx, "attendeePictures")
	if err != nil {
		t.Fatal(err)
	}

	// An upload at emilien flows through the delegated rule into jules'
	// view and out of the subscription.
	if err := emilien.InsertString(`pictures@emilien(1, "sea.jpg");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := drainDeltas(deltas)
	if len(got) != 1 || got[0].Delete || got[0].Rel != "attendeePictures" ||
		got[0].Tuple[1].StringVal() != "sea.jpg" {
		t.Fatalf("deltas after upload = %v, want one insert of sea.jpg", got)
	}

	// Quiescent re-derivation produces no deltas.
	quiesce(t, n)
	if got := drainDeltas(deltas); len(got) != 0 {
		t.Fatalf("spurious deltas with no change: %v", got)
	}

	// Retracting the selection empties the view: one delete delta.
	if err := jules.DeleteString(`selectedAttendee@jules("emilien");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got = drainDeltas(deltas)
	if len(got) != 1 || !got[0].Delete {
		t.Fatalf("deltas after retraction = %v, want one delete", got)
	}
}

// TestSubscribeExtensional: local inserts and deletes stream too, with the
// Subscribe-time contents as the baseline.
func TestSubscribeExtensional(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.LoadSource(`
		relation extensional data@alice(x);
		data@alice("pre");
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	deltas, err := alice.Subscribe(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	// The pre-existing tuple is baseline, not a delta.
	if got := drainDeltas(deltas); len(got) != 0 {
		t.Fatalf("baseline leaked as deltas: %v", got)
	}
	if err := alice.InsertString(`data@alice("new");`); err != nil {
		t.Fatal(err)
	}
	if err := alice.DeleteString(`data@alice("pre");`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := drainDeltas(deltas)
	if len(got) != 2 {
		t.Fatalf("deltas = %v, want delete(pre)+insert(new)", got)
	}
	// Deletions are delivered before insertions.
	if !got[0].Delete || got[0].Tuple[0].StringVal() != "pre" {
		t.Errorf("first delta = %v, want -data(pre)", got[0])
	}
	if got[1].Delete || got[1].Tuple[0].StringVal() != "new" {
		t.Errorf("second delta = %v, want +data(new)", got[1])
	}
}

// TestSubscribeUnknownRelation returns the typed error.
func TestSubscribeUnknownRelation(t *testing.T) {
	_, ps := newTestNetwork(t, "alice")
	_, err := ps["alice"].Subscribe(context.Background(), "ghost")
	if !errors.Is(err, errdefs.ErrUnknownRelation) {
		t.Errorf("err = %v, want ErrUnknownRelation", err)
	}
}

// TestSubscribeCancelClosesChannel: cancelling the context closes the
// stream promptly.
func TestSubscribeCancelClosesChannel(t *testing.T) {
	_, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	deltas, err := alice.Subscribe(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	if alice.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", alice.Subscribers())
	}
	cancel()
	select {
	case _, ok := <-deltas:
		if ok {
			t.Error("got a delta instead of close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after cancel")
	}
	if alice.Subscribers() != 0 {
		t.Errorf("subscribers = %d after cancel, want 0", alice.Subscribers())
	}
}

// TestSubscribeCloseOnPeerClose: closing the peer ends all streams.
func TestSubscribeCloseOnPeerClose(t *testing.T) {
	_, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	deltas, err := alice.Subscribe(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-deltas; ok {
		t.Error("channel still open after peer close")
	}
	if _, err := alice.Subscribe(context.Background(), "data"); !errors.Is(err, errdefs.ErrClosed) {
		t.Errorf("subscribe after close: %v, want ErrClosed", err)
	}
}

// TestSubscribeSlowConsumerDropped: a consumer that never reads is
// disconnected instead of wedging the stage loop.
func TestSubscribeSlowConsumerDropped(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	deltas, err := alice.Subscribe(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the buffer in one stage without ever reading.
	b := engine.NewBatch()
	for i := 0; i < SubscribeBuffer+10; i++ {
		b.Insert(ast.NewFact("data", "alice", value.Int(int64(i))))
	}
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if alice.Subscribers() != 0 {
		t.Fatalf("slow subscriber not dropped: %d live", alice.Subscribers())
	}
	// The channel still drains what fit, then closes.
	n2 := 0
	for range deltas {
		n2++
	}
	if n2 != SubscribeBuffer {
		t.Errorf("drained %d buffered deltas, want %d", n2, SubscribeBuffer)
	}
}

// TestSubscribeStalledConsumerStageNeverBlocks: a consumer that reads for a
// while and then stalls mid-stream is shed without the stage loop ever
// blocking on its channel — the drop path is non-blocking by construction,
// and this pins it with a watchdog across the overflowing stage.
func TestSubscribeStalledConsumerStageNeverBlocks(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	deltas, err := alice.Subscribe(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	// A healthy phase first: the consumer keeps up for a few small stages.
	for i := 0; i < 3; i++ {
		if err := alice.Insert(ast.NewFact("data", "alice", value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		quiesce(t, n)
		select {
		case d := <-deltas:
			if d.Delete {
				t.Fatalf("unexpected delete delta %v", d)
			}
		case <-time.After(time.Second):
			t.Fatal("healthy consumer received nothing")
		}
	}
	// Now the consumer stalls for good. Overflow its buffer across stages
	// while a watchdog asserts every stage still completes promptly.
	b := engine.NewBatch()
	for i := 100; i < 100+SubscribeBuffer+10; i++ {
		b.Insert(ast.NewFact("data", "alice", value.Int(int64(i))))
	}
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	type staged struct{ rep *StageReport }
	done := make(chan staged, 1)
	go func() { done <- staged{alice.RunStage()} }()
	var rep *StageReport
	select {
	case s := <-done:
		rep = s.rep
	case <-time.After(5 * time.Second):
		t.Fatal("stage blocked on a stalled subscriber")
	}
	found := false
	for _, e := range rep.Errors {
		if errors.Is(e, errdefs.ErrSlowSubscriber) {
			found = true
		}
	}
	if !found {
		t.Errorf("stage report errors = %v, want ErrSlowSubscriber", rep.Errors)
	}
	if alice.Subscribers() != 0 {
		t.Errorf("stalled subscriber still registered: %d live", alice.Subscribers())
	}
	if got := alice.Stats().SubscriptionDrops; got != 1 {
		t.Errorf("SubscriptionDrops = %d, want 1", got)
	}
	// Later stages proceed normally with the subscriber gone.
	if err := alice.Insert(ast.NewFact("data", "alice", value.Int(9999))); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// The channel drains what fit before the stall, then closes.
	drained := 0
	for range deltas {
		drained++
	}
	if drained != SubscribeBuffer {
		t.Errorf("drained %d buffered deltas, want %d", drained, SubscribeBuffer)
	}
}
