package peer

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/value"
)

// resyncTestInterval is fast enough that a periodic advert fires within a
// test, slow enough not to flood the in-process bus.
const resyncTestInterval = 20 * time.Millisecond

// newResyncPeer attaches a fresh volatile peer to the network's bus with
// the outbox timers and the anti-entropy clock shrunk to test speed.
// interval < 0 disables periodic adverts.
func newResyncPeer(t *testing.T, n *Network, name string, interval time.Duration) *Peer {
	t.Helper()
	p, err := New(Config{
		Name:             name,
		OutboxAckTimeout: 10 * time.Millisecond,
		OutboxBackoff:    2 * time.Millisecond,
		ResyncInterval:   interval,
	}, n.Bus().Endpoint(name))
	if err != nil {
		t.Fatal(err)
	}
	n.Add(p)
	return p
}

// loadViewSender loads the canonical maintained-view program at the sender.
func loadViewSender(t *testing.T, a *Peer) {
	t.Helper()
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		t.Fatal(err)
	}
}

// TestVolatileReceiverRestartResyncs is the scenario PR 3 documented as its
// remaining gap, closed here: a volatile receiver holding a remotely
// maintained view crashes and restarts, and the sender *never changes
// again* — so no delta will ever flow. The sender's periodic digest advert
// must find the restarted (empty) receiver, trigger a stream reset with a
// snapshot, and restore the view to the fault-free fixpoint. The control
// arm runs the same schedule with anti-entropy disabled and must stay
// diverged — the behavior this PR removes.
func TestVolatileReceiverRestartResyncs(t *testing.T) {
	for _, resync := range []bool{true, false} {
		name := "with-resync"
		interval := resyncTestInterval
		if !resync {
			name = "without-resync"
			interval = -1
		}
		t.Run(name, func(t *testing.T) {
			n := NewNetwork()
			a := newResyncPeer(t, n, "a", interval)
			defer a.Close()
			loadViewSender(t, a)
			b := newResyncPeer(t, n, "b", interval)
			if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(42))
			present := map[int64]bool{}
			for i := 0; i < 40; i++ {
				k := rng.Int63n(8)
				var err error
				if present[k] {
					err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
				} else {
					err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
				}
				if err != nil {
					t.Fatal(err)
				}
				present[k] = !present[k]
				drive([]*Peer{a, b}, func() bool { return false }, time.Millisecond)
			}
			var want []value.Tuple
			for k, in := range present {
				if in {
					want = append(want, value.Tuple{value.Int(k)})
				}
			}
			value.SortTuples(want)
			expected := fmt.Sprint(want)
			if expected == "[]" {
				t.Fatal("degenerate schedule: fixpoint is empty")
			}
			if !drive([]*Peer{a, b}, func() bool { return tupleSet(b, "view") == expected }, 10*time.Second) {
				t.Fatalf("pre-crash convergence failed: got %s want %s", tupleSet(b, "view"), expected)
			}
			// Let every in-flight entry be acknowledged before the crash:
			// a leftover unacked entry would be retransmitted into the
			// fresh receiver and trigger the (always-on) wedge repair,
			// which is a different scenario than the idle-sender one this
			// test pins down.
			if !drive([]*Peer{a, b}, func() bool { total, _ := a.OutboxPending(); return total == 0 }, 10*time.Second) {
				t.Fatal("sender outbox never drained before the crash")
			}

			// Crash the receiver and bring up a fresh incarnation under the
			// same name. The sender's relations do not change again.
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b2 := newResyncPeer(t, n, "b", interval)
			defer b2.Close()
			if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
				t.Fatal(err)
			}

			if resync {
				if !drive([]*Peer{a, b2}, func() bool { return tupleSet(b2, "view") == expected }, 20*time.Second) {
					t.Fatalf("restarted receiver never resynced:\n got %s\nwant %s\n(sender stats: %+v)",
						tupleSet(b2, "view"), expected, a.Stats())
				}
				if st := b2.Stats(); st.ResyncRequested == 0 {
					t.Errorf("receiver recovered without ever requesting a resync: %+v", st)
				}
				if st := a.Stats(); st.ResyncSnapshots == 0 {
					t.Errorf("sender never served a snapshot: %+v", st)
				}
			} else {
				// Divergence is the documented pre-resync behavior: nothing
				// re-teaches the restarted receiver. Give it ample time to
				// prove no mechanism kicks in.
				drive([]*Peer{a, b2}, func() bool { return false }, 500*time.Millisecond)
				if got := tupleSet(b2, "view"); got == expected {
					t.Fatalf("receiver recovered with resync disabled — the control arm is broken: %s", got)
				}
				if got := len(b2.Query("view")); got != 0 {
					t.Fatalf("view partially refilled without resync: %d tuples", got)
				}
			}
		})
	}
}

// TestReceiverRestartStreamRepairedOnNextSend: with periodic adverts
// disabled, the data-driven repair must still work — a restarted receiver
// that sees the sender's next mid-sequence delta has a wedged stream (the
// acknowledged prefix is gone from the sender), asks for a reset, and the
// reset snapshot restores the *whole* view, not just the new delta. On the
// pre-session code this scenario wedged the stream forever: the receiver
// dropped the gap and the sender retransmitted it until the end of time.
func TestReceiverRestartStreamRepairedOnNextSend(t *testing.T) {
	n := NewNetwork()
	a := newResyncPeer(t, n, "a", -1)
	defer a.Close()
	loadViewSender(t, a)
	b := newResyncPeer(t, n, "b", -1)
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !drive([]*Peer{a, b}, func() bool { return len(b.Query("view")) == 5 }, 10*time.Second) {
		t.Fatalf("initial convergence failed: %v", b.Query("view"))
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := newResyncPeer(t, n, "b", -1)
	defer b2.Close()
	if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}

	// The sender changes: one new fact rides the existing stream at a
	// sequence the fresh receiver cannot follow.
	if err := a.Insert(ast.NewFact("src", "a", value.Int(99))); err != nil {
		t.Fatal(err)
	}
	if !drive([]*Peer{a, b2}, func() bool { return len(b2.Query("view")) == 6 }, 20*time.Second) {
		t.Fatalf("restarted receiver never repaired the stream: view = %v (want all 6)", b2.Query("view"))
	}
}

// TestEpochAdoptionDropsStaleSupport: a volatile *sender* that crashes with
// an undelivered retraction re-derives only what it still derives; its old
// incarnation's facts would survive at the receiver forever. Adopting the
// restarted sender's fresh epoch must trigger a resync, whose snapshot no
// longer covers the stale fact — the receiver drops it and converges to the
// new fixpoint.
func TestEpochAdoptionDropsStaleSupport(t *testing.T) {
	n := NewNetwork()
	a := newResyncPeer(t, n, "a", -1)
	loadViewSender(t, a)
	b := newResyncPeer(t, n, "b", -1)
	defer b.Close()
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !drive([]*Peer{a, b}, func() bool { return len(b.Query("view")) == 3 }, 10*time.Second) {
		t.Fatalf("initial convergence failed: %v", b.Query("view"))
	}

	// The sender crashes; its new incarnation derives only {1, 2} — fact 3
	// is the stale support nothing will ever retract explicitly.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2 := newResyncPeer(t, n, "a", -1)
	defer a2.Close()
	loadViewSender(t, a2)
	for i := int64(1); i <= 2; i++ {
		if err := a2.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := fmt.Sprint([]value.Tuple{{value.Int(1)}, {value.Int(2)}})
	if !drive([]*Peer{a2, b}, func() bool { return tupleSet(b, "view") == want }, 20*time.Second) {
		t.Fatalf("stale support survived the sender restart:\n got %s\nwant %s", tupleSet(b, "view"), want)
	}
}

// TestResyncRestoresDelegations: a restarted receiver lost the rules other
// peers had delegated to it; the delegating peer's fingerprint cache says
// "unchanged" and would never re-send them. A stream reset forgets those
// fingerprints, so the delegation is re-installed and the delegated flow
// resumes.
func TestResyncRestoresDelegations(t *testing.T) {
	n := NewNetwork()
	// c's rule delegates its residual to b; b evaluates it against data@b.
	c := newResyncPeer(t, n, "c", resyncTestInterval)
	defer c.Close()
	if err := c.LoadSource(`
		relation extensional sel@c(p);
		relation intensional out@c(x);
		sel@c("b");
		out@c($x) :- sel@c($p), data@$p($x);
	`); err != nil {
		t.Fatal(err)
	}
	b := newResyncPeer(t, n, "b", resyncTestInterval)
	if err := b.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertString(`data@b(7);`); err != nil {
		t.Fatal(err)
	}
	if !drive([]*Peer{c, b}, func() bool { return len(c.Query("out")) == 1 }, 10*time.Second) {
		t.Fatalf("delegated flow never produced out@c: %v", c.Query("out"))
	}

	// b restarts, losing the installed delegation and its data.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := newResyncPeer(t, n, "b", resyncTestInterval)
	defer b2.Close()
	if err := b2.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	if err := b2.InsertString(`data@b(8);`); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]value.Tuple{{value.Int(8)}})
	if !drive([]*Peer{c, b2}, func() bool { return tupleSet(c, "out") == want }, 20*time.Second) {
		t.Fatalf("delegation was never re-installed after the receiver restart:\n out@c = %s, want %s\n delegated at b2: %v",
			tupleSet(c, "out"), want, b2.DelegatedRules())
	}
}
