package peer

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/transport"
)

// TestRemoteDeltaSurvivesSendFailure is the regression test for the headline
// delivery bug: a maintained remote delta emitted while the receiver's TCP
// listener is down used to be recorded as an error and *dropped* — and since
// the engine's maintained remoteView already counted it as delivered, the
// sender would never re-derive it, permanently diverging the receiver. The
// delta must instead be retried until the listener comes back.
func TestRemoteDeltaSurvivesSendFailure(t *testing.T) {
	// Reserve a port for the receiver, then leave it dead: the sender's
	// first emission hits a closed port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx := context.Background()
	epS, err := transport.ListenTCP(ctx, "sender", "127.0.0.1:0", map[string]string{"rcv": addr})
	if err != nil {
		t.Fatal(err)
	}
	epS.DialTimeout = 500 * time.Millisecond
	sender, err := New(Config{Name: "sender"}, epS)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if err := sender.LoadSource(`
		relation extensional src@sender(x);
		view@rcv($x) :- src@sender($x);
		src@sender(1);
	`); err != nil {
		t.Fatal(err)
	}

	// Stage with the listener down: emission commits to the outbox and the
	// stage returns immediately; the delta stays queued for retry.
	sender.RunStage()
	if total, _ := sender.OutboxPending(); total == 0 {
		t.Fatalf("failed send left the outbox empty: the delta was dropped")
	}

	// Restart the listener on the same address and attach the receiver.
	epR, err := transport.ListenTCP(ctx, "rcv", addr, nil)
	if err != nil {
		t.Fatalf("restarting listener on %s: %v", addr, err)
	}
	rcv, err := New(Config{Name: "rcv"}, epR)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	if err := rcv.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}

	// Drive both peers until the maintained view reconverges.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sender.HasWork() {
			sender.RunStage()
		}
		if rcv.HasWork() {
			rcv.RunStage()
		}
		if got := rcv.Query("view"); len(got) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("view never reconverged after listener restart: view@rcv = %v", rcv.Query("view"))
}
