package peer

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/value"
)

// ingestOp is one fact operation entering the peer: from the local API
// (pendingOps), or from the wire with the sender and the maintenance flag
// attached.
type ingestOp struct {
	del   bool
	maint bool
	src   string
	fact  ast.Fact
}

// stageDeltas collects the net base-fact changes of one ingestion, keyed by
// "rel@peer". A tuple is recorded as inserted iff it was absent when the
// stage began and present afterwards (and symmetrically for deletions), so
// an insert-then-delete inside one batch nets out to nothing. These deltas
// seed the engine's incremental evaluation and the subscription streams.
type stageDeltas struct {
	ins  map[string]map[string]value.Tuple
	del  map[string]map[string]value.Tuple
	cand map[string]map[string]value.Tuple // intensional tuples that lost support
}

func newStageDeltas() *stageDeltas {
	return &stageDeltas{
		ins:  map[string]map[string]value.Tuple{},
		del:  map[string]map[string]value.Tuple{},
		cand: map[string]map[string]value.Tuple{},
	}
}

func (d *stageDeltas) record(relID string, t value.Tuple, del bool) {
	key := t.Key()
	if del {
		if m := d.ins[relID]; m[key] != nil {
			delete(m, key) // inserted earlier this stage: net zero
			return
		}
		putTuple(d.del, relID, key, t)
		return
	}
	if m := d.del[relID]; m[key] != nil {
		delete(m, key) // deleted earlier this stage: net zero
		return
	}
	putTuple(d.ins, relID, key, t)
}

func (d *stageDeltas) addCand(relID string, t value.Tuple) {
	putTuple(d.cand, relID, t.Key(), t)
}

// removeCand cancels a pending deletion candidate — a later operation in the
// same stage re-supported the tuple. Reports whether one was cancelled.
func (d *stageDeltas) removeCand(relID, key string) bool {
	if m := d.cand[relID]; m[key] != nil {
		delete(m, key)
		return true
	}
	return false
}

func putTuple(m map[string]map[string]value.Tuple, relID, key string, t value.Tuple) {
	inner := m[relID]
	if inner == nil {
		inner = map[string]value.Tuple{}
		m[relID] = inner
	}
	inner[key] = t
}

// engineInput converts the collected deltas into the engine's stage input.
func (d *stageDeltas) engineInput() *engine.StageInput {
	in := &engine.StageInput{
		Ins:  map[string][]value.Tuple{},
		Del:  map[string][]value.Tuple{},
		Cand: map[string][]value.Tuple{},
	}
	for relID, m := range d.ins {
		for _, t := range m {
			in.Ins[relID] = append(in.Ins[relID], t)
		}
	}
	for relID, m := range d.del {
		for _, t := range m {
			in.Del[relID] = append(in.Del[relID], t)
		}
	}
	for relID, m := range d.cand {
		for _, t := range m {
			in.Cand[relID] = append(in.Cand[relID], t)
		}
	}
	return in
}

// RunStage executes one computation stage: ingest inputs, run the fixpoint,
// emit outputs. If ingestion changed nothing (all inbox messages were
// no-ops, no staged updates, no program change), the fixpoint and emission
// are skipped — the previous stage's outputs already reflect this state,
// which is what lets a network of peers reach quiescence.
//
// When the program is incrementally maintainable (engine.Options.Incremental
// and no tracer, hooks or negation-through-views), derived relations stay
// materialized between stages and the engine maintains them from this
// stage's base-fact deltas; otherwise the stage recomputes the views from
// scratch, re-seeding externally supported and freshly arrived transient
// facts.
func (p *Peer) RunStage() *StageReport {
	rep := p.runStageLocked()
	// Sync-emit peers flush everything the stage (or a skipped stage's ack
	// bookkeeping) enqueued before returning, off the peer lock, so
	// in-process schedulers observe the old synchronous-delivery semantics.
	p.flushIfSync()
	return rep
}

func (p *Peer) runStageLocked() *StageReport {
	p.mu.Lock()
	defer p.mu.Unlock()

	rep := &StageReport{Stage: p.stageNo + 1}
	startIngest := time.Now()
	p.poked = false

	d := newStageDeltas()
	changed := p.ingestLocked(rep, d)
	if hooks := p.hooks; hooks != nil {
		// Wrapper pull hook: let the external service refresh the wrapper's
		// relations. Detect changes via relation version counters, since the
		// hook mutates relations directly.
		before := p.storeVersionLocked()
		p.mu.Unlock()
		err := hooks.BeforeStage(p)
		p.mu.Lock()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: before-stage hook: %w", p.name, err))
		}
		if p.storeVersionLocked() != before {
			changed = true
		}
	}
	if p.progDirty {
		p.compileLocked(rep)
		p.needRebuild = true
		changed = true
	}
	if !p.ranOnce {
		changed = true
	}
	rep.Ingest = time.Since(startIngest)

	if p.oblog != nil && p.oblog.Records() > outboxCompactThreshold {
		p.compactOutboxLogLocked(rep)
	}

	if !changed {
		p.stats.StagesSkipped++
		if p.pm != nil {
			p.pm.stagesSkipped.Inc()
		}
		// Transient marks collected by this skipped stage stay *fresh*: no
		// fixpoint has observed them yet, so they must live through the
		// next stage that actually runs and expire only at the one after.
		// freshTransient simply keeps accumulating until a stage runs.
		return rep
	}

	p.stageNo++
	rep.Stage = p.stageNo
	p.ranOnce = true
	rep.Ran = true

	// Step 2: fixpoint — incremental view maintenance on the fast path,
	// recompute-from-scratch on the first stage, after program changes, and
	// for peers outside the incremental envelope (hooks, provenance tracer,
	// negation through views, Options.Incremental off).
	startFix := time.Now()
	incremental := p.prog != nil && p.prog.Incremental && !p.needRebuild && p.hooks == nil
	var res *engine.Result
	if incremental {
		p.expireTransientsLocked(d)
		res = p.eng.RunStageIncremental(p.prog, d.engineInput(), p.rv)
	} else {
		if p.prov != nil {
			p.prov.Reset()
		}
		res = p.eng.RunStageFull(p.prog, p.rebuildSeedsLocked(), p.rv)
	}
	p.transient = p.freshTransient
	p.freshTransient = nil
	p.needRebuild = false
	rep.Fixpoint = time.Since(startFix)
	rep.Derived = res.Derived
	rep.Retracted = res.Retracted
	rep.Iterations = res.Iterations
	rep.Errors = append(rep.Errors, res.Errors...)

	// Step 3: emit. Local updates buffer for the next stage; remote fact
	// deltas and delegations go out now.
	startEmit := time.Now()
	p.pendingOps = append(p.pendingOps, res.LocalUpdates...)
	p.emitFactsLocked(res, rep)
	p.emitDelegationsLocked(res, rep)
	rep.Emit = time.Since(startEmit)

	p.stats.Stages++
	p.stats.Derived += uint64(res.Derived)
	p.stats.RuntimeErrors += uint64(len(res.Errors))
	if p.pm != nil {
		p.pm.stagesRan.Inc()
		p.pm.stageSeconds.Observe(rep.Duration().Seconds())
		p.pm.fixpointRounds.Observe(float64(rep.Iterations))
	}

	// Stream the stage's net effect to subscribers before hooks observe it.
	p.emitSubscriptionsLocked(rep, d, res, incremental)

	if hooks := p.hooks; hooks != nil {
		// Run the hook outside the lock: it may call back into the peer.
		p.mu.Unlock()
		err := hooks.AfterStage(p, rep)
		p.mu.Lock()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: after-stage hook: %w", p.name, err))
		}
	}
	return rep
}

// expireTransientsLocked turns the previous stage's transient seeds into
// deletion candidates — unless the same fact was re-seeded this stage. A
// candidate with surviving support (a rule derivation, a remote maintainer)
// is kept by the engine's rederivation pass; the paper's "facts received in
// intensional relations hold for one stage" semantics falls out for the
// rest.
func (p *Peer) expireTransientsLocked(d *stageDeltas) {
	for relID, marks := range p.transient {
		rel := p.db.GetID(relID)
		if rel == nil {
			continue
		}
		for key, t := range marks {
			if p.freshTransient[relID][key] != nil {
				continue
			}
			if rel.Contains(t) {
				d.addCand(relID, t)
			}
		}
	}
	p.transient = nil
}

// rebuildSeedsLocked returns the facts a from-scratch recomputation must
// re-insert after clearing the views: tuples maintained by remote senders
// and transient seeds that arrived for this stage.
func (p *Peer) rebuildSeedsLocked() map[string][]value.Tuple {
	seeds := map[string][]value.Tuple{}
	for _, rel := range p.db.RelationsOf(p.name) {
		if rel.Kind() != ast.Intensional {
			continue
		}
		if ts := rel.ExternallySupported(); len(ts) > 0 {
			relID := rel.Schema().ID()
			seeds[relID] = append(seeds[relID], ts...)
		}
	}
	for relID, marks := range p.freshTransient {
		for _, t := range marks {
			seeds[relID] = append(seeds[relID], t)
		}
	}
	return seeds
}

// ingestLocked performs step 1 of the stage — applying staged local
// operations and draining the transport inbox — recording the net deltas in
// d, and reports whether anything about the peer's state actually changed.
func (p *Peer) ingestLocked(rep *StageReport, d *stageDeltas) bool {
	changed := false

	// Apply updates staged by the previous stage and by the local API. The
	// drain frees admission space: release any Apply caller blocked on the
	// pending-op bound.
	staged := p.pendingOps
	p.pendingOps = nil
	if p.pendingSpace != nil {
		close(p.pendingSpace)
		p.pendingSpace = nil
	}
	ops := make([]ingestOp, len(staged))
	for i, op := range staged {
		ops[i] = ingestOp{del: op.Op == ast.Delete, src: p.name, fact: op.Fact}
	}
	if p.applyOpsLocked(ops, rep, d) {
		changed = true
	}

	// Drain the transport inbox.
	envs := p.ep.Drain()
	for _, env := range envs {
		switch msg := env.Msg.(type) {
		case protocol.DataMsg:
			if p.ingestDataLocked(env.From, msg, rep, d) {
				changed = true
			}
		case protocol.AckMsg:
			// Delivery bookkeeping, not peer state: never triggers a stage.
			p.outbox.Ack(env.From, msg.Epoch, msg.Seq)
		default:
			// Bare (unsequenced) payloads: best-effort legacy traffic and
			// transport-level control. Applied without dedup.
			if p.ingestPayloadLocked(env.From, env.Msg, rep, d) {
				changed = true
			}
		}
	}

	durable := true
	if p.wal != nil && rep.Applied > 0 {
		if err := p.wal.Sync(); err != nil {
			rep.Errors = append(rep.Errors, err)
			durable = false
		}
	}
	// Release the staged acks only once everything they certify is durable:
	// the applied facts (WAL) and the per-sender watermark (outbox log). On
	// a persistence failure the acks stay staged — the sender retransmits,
	// the replay coalesces onto the same staged ack, and the release is
	// retried by a later ingestion.
	ackable := p.stagedAckSessionsLocked()
	if p.oblog != nil && len(ackable) > 0 && durable {
		for _, s := range ackable {
			if err := p.oblog.LogApplied(s.from, s.ackEpoch, s.ackSeq); err != nil {
				rep.Errors = append(rep.Errors, err)
				durable = false
				break
			}
		}
		if durable {
			if err := p.oblog.Sync(); err != nil {
				rep.Errors = append(rep.Errors, err)
				durable = false
			}
		}
	}
	if durable {
		for _, s := range ackable {
			p.outbox.EnqueueAck(s.from, s.ackEpoch, s.ackSeq)
			s.ackStaged = false
		}
	}
	return changed
}

// stagedAckSessionsLocked returns the inbound sessions with a staged
// acknowledgment, in sender-name order for deterministic release.
func (p *Peer) stagedAckSessionsLocked() []*inSession {
	var out []*inSession
	for _, s := range p.inbound {
		if s.ackStaged {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	return out
}

// ingestDataLocked applies one sequenced message through the sender's
// inbound session, which enforces exactly-once application: a sender's
// DataMsgs apply strictly in sequence order; replays (<= watermark) are
// re-acked and skipped; gaps (the transport reordered or dropped a
// predecessor) are dropped unacked, to be retransmitted in order; a new
// epoch starting at sequence 1 is adopted with a fresh watermark.
//
// Acks are *staged* on the session rather than enqueued directly: they are
// released at the end of ingestion, after the durable watermark has been
// synced, so a crash can never leave a sender believing a message was
// applied when the receiver's recovered watermark says otherwise.
//
// Two repair triggers live here. A *wedged* stream — the sender is
// mid-sequence but this session has never applied anything of its epoch,
// the signature of a receiver that lost its state — asks the sender for a
// stream reset (in-order retransmission alone can never recover it: the
// sender has dropped the acknowledged prefix). And adopting a *new epoch*
// of a known stream asks for a repair snapshot: the sender's previous
// incarnation may have died owing us retractions, which its fresh
// incarnation will never re-send.
func (p *Peer) ingestDataLocked(from string, msg protocol.DataMsg, rep *StageReport, d *stageDeltas) bool {
	sess := p.sessionLocked(from)
	apply, adopted := sess.accept(msg)
	if !apply {
		if sess.wedged(msg) {
			p.requestResyncLocked(from, true)
		}
		return false
	}
	if adopted {
		// A fresh incarnation (or reset stream) of a known sender: its old
		// incarnation's delegations are stale — whatever it still delegates
		// is re-sent on this stream (its fingerprint cache died with it, or
		// the reset handler cleared it). Drop before applying the payload,
		// which may itself be the first re-delegation.
		p.dropDelegationsLocked(from)
	}
	changed := p.ingestPayloadLocked(from, msg.Msg, rep, d)
	if adopted {
		if _, isSnapshot := msg.Msg.(protocol.SnapshotMsg); !isSnapshot {
			p.requestAdoptionRepairLocked(from)
		}
	}
	return changed
}

// requestAdoptionRepairLocked asks a freshly adopted sender for repair: its
// previous incarnation may have died owing us retractions its fresh stream
// will never re-send. A session whose ledger is large enough to clear the
// ranged-repair floor asks for an immediate digest advert instead of a view
// re-ship — the advert comparison then routes the repair through the
// bisection dialogue, turning the classic O(view) restart snapshot into
// O(δ log n) when the ledger is in fact nearly correct. Small ledgers, and
// peers with adverts disabled, keep the plain snapshot request.
func (p *Peer) requestAdoptionRepairLocked(from string) {
	s := p.sessionLocked(from)
	if p.resyncEvery <= 0 || p.rangedFloor < 0 || s.ledgerCount() < p.rangedFloor {
		p.requestResyncLocked(from, false)
		return
	}
	now := time.Now()
	if !s.repairAsked.IsZero() && now.Sub(s.repairAsked) < resyncRequestTTL {
		return
	}
	s.repairAsked = now
	s.advertWanted = true
	p.stats.ResyncRequested++
	p.outbox.EnqueueControl(from, protocol.ResyncRequestMsg{Advert: true})
}

// dropDelegationsLocked removes every delegation group the given origin
// installed here, scheduling a recompile when anything was dropped.
func (p *Peer) dropDelegationsLocked(origin string) {
	dropped := false
	for key := range p.delegated {
		if key.Origin == origin {
			delete(p.delegated, key)
			dropped = true
		}
	}
	if dropped {
		p.progDirty = true
	}
}

// requestResyncLocked sends a best-effort repair request to a stream's
// sender, rate-limited per session (resyncRequestTTL) so retransmission
// storms and repeated digest adverts do not multiply snapshots. reset asks
// for a full stream restart (the requester cannot follow the stream);
// otherwise for an in-stream snapshot.
func (p *Peer) requestResyncLocked(from string, reset bool) {
	s := p.sessionLocked(from)
	now := time.Now()
	if reset {
		if !s.resetAsked.IsZero() && now.Sub(s.resetAsked) < resyncRequestTTL {
			return
		}
		s.resetAsked = now
	} else {
		if !s.repairAsked.IsZero() && now.Sub(s.repairAsked) < resyncRequestTTL {
			return
		}
		s.repairAsked = now
	}
	p.stats.ResyncRequested++
	p.outbox.EnqueueControl(from, protocol.ResyncRequestMsg{Reset: reset})
}

// handleDigestLocked compares a sender's anti-entropy advert against the
// session's per-sender support ledger. Only a session that is caught up to
// the advertised stream position may conclude divergence — anything behind
// is still being decided by in-flight deltas. A session that does not know
// the stream at all learned something important: the sender maintains
// state here that this peer has lost (it restarted), so it asks for a full
// stream reset.
func (p *Peer) handleDigestLocked(from string, msg protocol.DigestMsg) {
	s := p.sessionLocked(from)
	if !s.known {
		p.requestResyncLocked(from, true)
		return
	}
	if s.epoch != msg.Epoch || s.seq != msg.AsOfSeq {
		// Behind the advert (deltas still in flight), or already past it
		// (the advert is stale — a reordered delivery after newer deltas
		// applied): neither is evidence of divergence. The next advert
		// carries the newer position.
		return
	}
	mism := s.mismatchedRels(msg.Rels)
	if len(mism) == 0 && p.delegationsMatchLocked(from, msg.Deleg) {
		s.repairAsked = time.Time{}
		s.advertWanted = false
		return
	}
	if s.advertWanted {
		// This advert was solicited (Advert repair request): the stamp that
		// rate-limited the request must not also suppress the repair the
		// comparison just concluded is needed.
		s.advertWanted = false
		s.repairAsked = time.Time{}
	}
	// Route the repair. Delegation divergence always takes the snapshot
	// path — serving it re-sends the residual rule sets, which no ranged
	// dialogue carries. Fact divergence takes the bisection path when the
	// divergent relations are collectively large enough to clear the floor
	// (below it, one snapshot costs less than the dialogue).
	if p.rangedFloor < 0 || !p.delegationsMatchLocked(from, msg.Deleg) {
		p.requestResyncLocked(from, false)
		return
	}
	total := 0
	for _, relID := range mism {
		n := int(msg.Rels[relID].Count)
		if c := s.ledgerDigest(relID).Count; int(c) > n {
			n = int(c)
		}
		total += n
	}
	if total < p.rangedFloor {
		p.requestResyncLocked(from, false)
		return
	}
	p.startRangedRepairLocked(from, mism)
}

// startRangedRepairLocked opens the bisection dialogue with a divergent
// sender: one full-range digest request per mismatched relation,
// rate-limited exactly like a snapshot request (the dialogue is
// best-effort; a lost round is restarted by the next advert).
func (p *Peer) startRangedRepairLocked(from string, mism []string) {
	s := p.sessionLocked(from)
	now := time.Now()
	if !s.repairAsked.IsZero() && now.Sub(s.repairAsked) < resyncRequestTTL {
		return
	}
	s.repairAsked = now
	p.stats.ResyncRequested++
	full := []protocol.HashRange{{Lo: 0, Hi: ^uint64(0)}}
	for _, relID := range mism {
		p.outbox.EnqueueControl(from, protocol.RangeDigestRequestMsg{RelID: relID, Ranges: full})
	}
}

// delegationsMatchLocked compares the sender's advertised delegation
// fingerprints against the groups it has installed here. Both sides sort
// residual sets by rule text before fingerprinting, so the hashes agree
// exactly when the installed rules are the currently delegated ones.
func (p *Peer) delegationsMatchLocked(from string, deleg map[string]uint64) bool {
	for ruleID, want := range deleg {
		rules := p.delegated[delegationKey{Origin: from, RuleID: ruleID}]
		if len(rules) == 0 || store.KeyHash(fingerprint(rules)) != want {
			return false
		}
	}
	for key := range p.delegated {
		if key.Origin != from {
			continue
		}
		if _, ok := deleg[key.RuleID]; !ok {
			return false // installed here, no longer delegated by the sender
		}
	}
	return true
}

// snapshotChunkOps bounds one snapshot chunk: a maintained view larger than
// this ships as a contiguous run of SnapshotMsgs (every chunk but the last
// with More set) instead of one unbounded gob message, and the receiver
// buffers the run and applies it atomically at the final chunk.
const snapshotChunkOps = 4096

// snapshotChunksLocked builds the full-snapshot repair for dst as a run of
// bounded chunks (always at least one — an empty final chunk is the whole
// message for an empty view), counting the snapshot stats as it goes. The
// caller enqueues the run contiguously (EnqueueDataBatch or a reset).
func (p *Peer) snapshotChunksLocked(dst string) []protocol.Payload {
	facts := p.rv.SnapshotFacts(dst)
	ops := make([]protocol.FactDelta, len(facts))
	for i, f := range facts {
		ops[i] = protocol.FactDelta{Maint: true, Fact: f}
	}
	var chunks []protocol.Payload
	for {
		n := len(ops)
		if n > snapshotChunkOps {
			n = snapshotChunkOps
		}
		chunk := protocol.SnapshotMsg{Ops: ops[:n], More: n < len(ops)}
		ops = ops[n:]
		if b, err := protocol.EncodePayload(chunk); err == nil {
			p.stats.ResyncSnapshotBytes += uint64(len(b))
		}
		chunks = append(chunks, chunk)
		if len(ops) == 0 {
			break
		}
	}
	p.stats.ResyncSnapshots++
	return chunks
}

// handleResyncRequestLocked serves a receiver's repair request with a
// snapshot of everything this peer maintains there, and forgets the
// delegation fingerprints for that target — the requester may have lost its
// installed delegations along with its data, so the next stage (forced via
// progDirty) re-sends the current residual sets, which the receiver
// installs idempotently. A reset request additionally restarts the stream
// under a fresh epoch, with the snapshot chunks as its sequences 1..n.
//
// An Advert request is different in kind: the requester holds a large,
// probably-nearly-correct ledger and wants the digest advert *now* instead
// of waiting out the advert clock — the comparison then routes the repair
// (ranged, snapshot, or nothing). No view is shipped and no delegation
// state is touched; if the comparison does conclude divergence, the
// follow-up request comes back through here without the flag.
func (p *Peer) handleResyncRequestLocked(from string, msg protocol.ResyncRequestMsg) {
	if msg.Advert {
		p.outbox.EnqueueControl(from, p.digestMsgLocked(from))
		return
	}
	chunks := p.snapshotChunksLocked(from)
	if msg.Reset {
		p.outbox.Reset(from, chunks...)
	} else {
		p.outbox.EnqueueDataBatch(from, chunks...)
	}
	for ruleID, targets := range p.lastSentDeleg {
		if _, ok := targets[from]; ok {
			delete(targets, from)
			if len(targets) == 0 {
				delete(p.lastSentDeleg, ruleID)
			}
			p.progDirty = true
		}
	}
}

// applySnapshotLocked replaces the sender's support at this peer with
// exactly the snapshot's content: ledger facts the snapshot no longer
// covers are applied as maintained deletes (stale support from before a
// crash dies here; a tuple with a surviving local derivation is kept by
// the rederivation pass), then every snapshot fact is applied as a
// maintained insert (idempotent for facts already supported). Since the
// snapshot rides the sequenced stream, this is correctly ordered against
// live deltas on both sides.
func (p *Peer) applySnapshotLocked(from string, msg protocol.SnapshotMsg, rep *StageReport, d *stageDeltas) bool {
	sess := p.sessionLocked(from)
	covered := map[string]map[string]bool{}
	for _, fd := range msg.Ops {
		if fd.Fact.Peer != p.name || fd.Delete {
			rep.Errors = append(rep.Errors, fmt.Errorf(
				"peer %s: malformed snapshot entry %s from %s", p.name, fd.String(), from))
			continue
		}
		relID := fd.Fact.Rel + "@" + fd.Fact.Peer
		m := covered[relID]
		if m == nil {
			m = map[string]bool{}
			covered[relID] = m
		}
		m[fd.Fact.Args.Key()] = true
	}
	ops := make([]ingestOp, 0, len(msg.Ops))
	for _, f := range sess.staleAgainst(covered) {
		ops = append(ops, ingestOp{del: true, maint: true, src: from, fact: f})
	}
	for _, fd := range msg.Ops {
		if fd.Fact.Peer != p.name || fd.Delete {
			continue
		}
		ops = append(ops, ingestOp{maint: true, src: from, fact: fd.Fact})
	}
	sess.repairAsked = time.Time{}
	return p.applyOpsLocked(ops, rep, d)
}

// Ranged-repair tuning. The bisection dialogue is receiver-driven and
// stateless: every round the receiver compares the sender's range digests
// against its own ledger trees, asks for repair of mismatching ranges the
// sender counts at most rangedRepairLeaf members in, and splits anything
// bigger into rangedBisectFanout subranges for the next round — so a
// divergence of δ keys in a view of n costs O(δ·fanout·log n) digests plus
// O(δ) re-shipped facts instead of O(n). rangedMaxRanges caps one message —
// bigger rounds ship as several independent requests (every round is
// stateless), and the cap also bounds what a malformed request can make the
// sender do. rangedMaxRound caps a whole round: divergence broad enough to
// blow past it is cheaper as one snapshot.
const (
	defaultRangedRepairFloor = 1024
	rangedRepairLeaf         = 128
	rangedBisectFanout       = 16
	rangedMaxRanges          = 512
	rangedMaxRound           = 4096
)

// splitRange cuts one hash range into up to rangedBisectFanout equal
// subranges (fewer when the range spans fewer hashes). The caller never
// splits a single-point range.
func splitRange(r protocol.HashRange) []protocol.HashRange {
	step := (r.Hi-r.Lo)/rangedBisectFanout + 1
	out := make([]protocol.HashRange, 0, rangedBisectFanout)
	lo := r.Lo
	for {
		hi := lo + step - 1
		if hi < lo || hi > r.Hi {
			hi = r.Hi // clamp the last subrange (and uint64 overflow) to the end
		}
		out = append(out, protocol.HashRange{Lo: lo, Hi: hi})
		if hi == r.Hi {
			return out
		}
		lo = hi + 1
	}
}

// handleRangeDigestRequestLocked answers one bisection round as the stream's
// sender: digest the requested ranges of the maintained view's summary tree
// — O(log n) per range — and reply with the stream position the digests are
// current as of (stages enqueue under p.mu, so position and tree are
// mutually consistent, exactly as in digestFor).
func (p *Peer) handleRangeDigestRequestLocked(from string, msg protocol.RangeDigestRequestMsg) {
	if len(msg.Ranges) == 0 || len(msg.Ranges) > rangedMaxRanges {
		return
	}
	tr := p.rv.Tree(from, msg.RelID)
	epoch, nextSeq := p.outbox.streamState(from)
	reply := protocol.RangeDigestMsg{
		Epoch:   epoch,
		AsOfSeq: nextSeq,
		RelID:   msg.RelID,
		Ranges:  make([]protocol.RangeDigest, 0, len(msg.Ranges)),
	}
	for _, r := range msg.Ranges {
		var d store.Digest
		if tr != nil {
			d = tr.RangeDigest(r.Lo, r.Hi)
		}
		reply.Ranges = append(reply.Ranges, protocol.RangeDigest{Lo: r.Lo, Hi: r.Hi, Hash: d.Hash, Count: d.Count})
	}
	if b, err := protocol.EncodePayload(reply); err == nil {
		p.stats.ResyncRangeDigestBytes += uint64(len(b))
	}
	p.outbox.EnqueueControl(from, reply)
}

// handleRangeDigestLocked advances the bisection dialogue as the stream's
// receiver: compare each advertised range against the ledger tree, request
// repair of mismatching leaf-sized ranges, recurse into bigger ones. Like a
// full digest advert, the reply is only meaningful to a session caught up
// to its stamped stream position — anything else is still being decided by
// in-flight deltas and is dropped (the next advert restarts the dialogue).
func (p *Peer) handleRangeDigestLocked(from string, msg protocol.RangeDigestMsg) {
	s := p.sessionLocked(from)
	if !s.known || s.epoch != msg.Epoch || s.seq != msg.AsOfSeq || len(msg.Ranges) > rangedMaxRanges {
		return
	}
	var repair, deeper []protocol.HashRange
	for _, rd := range msg.Ranges {
		if rd.Hi < rd.Lo {
			continue
		}
		d := s.rangeDigest(msg.RelID, rd.Lo, rd.Hi)
		if d.Hash == rd.Hash && d.Count == rd.Count {
			continue
		}
		if rd.Count <= rangedRepairLeaf || rd.Lo == rd.Hi {
			repair = append(repair, protocol.HashRange{Lo: rd.Lo, Hi: rd.Hi})
			continue
		}
		deeper = append(deeper, splitRange(protocol.HashRange{Lo: rd.Lo, Hi: rd.Hi})...)
	}
	if len(repair) == 0 && len(deeper) == 0 {
		return // every range agreed: the divergence healed (or lives in another relation)
	}
	if len(repair) > rangedMaxRound || len(deeper) > rangedMaxRound {
		// Divergence too broad for a dialogue — one snapshot is cheaper.
		// Clear the rate limiter the dialogue stamped so the request goes out.
		s.repairAsked = time.Time{}
		p.requestResyncLocked(from, false)
		return
	}
	// Progress: re-arm the limiter so the periodic advert does not open a
	// competing snapshot path mid-dialogue.
	s.repairAsked = time.Now()
	p.stats.ResyncRangesRequested += uint64(len(repair))
	for len(repair) > 0 {
		n := len(repair)
		if n > rangedMaxRanges {
			n = rangedMaxRanges
		}
		p.outbox.EnqueueControl(from, protocol.RangeRepairRequestMsg{RelID: msg.RelID, Ranges: repair[:n]})
		repair = repair[n:]
	}
	for len(deeper) > 0 {
		n := len(deeper)
		if n > rangedMaxRanges {
			n = rangedMaxRanges
		}
		p.outbox.EnqueueControl(from, protocol.RangeDigestRequestMsg{RelID: msg.RelID, Ranges: deeper[:n]})
		deeper = deeper[n:]
	}
}

// handleRangeRepairRequestLocked serves the end of a bisection dialogue as
// the stream's sender: re-ship the maintained facts of the requested ranges
// as sequenced RangeRepairMsgs. Each message is self-contained — it carries
// whole ranges together with every fact it maintains in them — so a run
// chunked at roughly snapshotChunkOps facts needs no cross-message
// atomicity; every piece is an idempotent range-scoped snapshot on its own.
func (p *Peer) handleRangeRepairRequestLocked(from string, msg protocol.RangeRepairRequestMsg) {
	if len(msg.Ranges) == 0 || len(msg.Ranges) > rangedMaxRanges {
		return
	}
	var ranges []protocol.HashRange
	var ops []protocol.FactDelta
	flush := func() {
		if len(ranges) == 0 {
			return
		}
		m := protocol.RangeRepairMsg{RelID: msg.RelID, Ranges: ranges, Ops: ops}
		p.stats.ResyncRangedRepairs++
		if b, err := protocol.EncodePayload(m); err == nil {
			p.stats.ResyncRangedRepairBytes += uint64(len(b))
		}
		p.outbox.EnqueueData(from, m)
		ranges, ops = nil, nil
	}
	for _, r := range msg.Ranges {
		if r.Hi < r.Lo {
			continue
		}
		ranges = append(ranges, r)
		for _, f := range p.rv.RangeFacts(from, msg.RelID, r.Lo, r.Hi) {
			ops = append(ops, protocol.FactDelta{Maint: true, Fact: f})
		}
		if len(ops) >= snapshotChunkOps {
			flush()
		}
	}
	flush()
}

// applyRangeRepairLocked applies one range-scoped snapshot: within the
// message's ranges, the sender's support here becomes exactly the message's
// ops — ledger facts inside the ranges that the ops do not cover are
// applied as maintained deletes, then the ops as maintained inserts (both
// idempotent). The message rides the sequenced stream, so it is ordered
// exactly-once against live deltas; applying it when the ranges no longer
// mismatch is harmless for the same reason a replayed snapshot is.
func (p *Peer) applyRangeRepairLocked(from string, msg protocol.RangeRepairMsg, rep *StageReport, d *stageDeltas) bool {
	sess := p.sessionLocked(from)
	covered := make(map[string]bool, len(msg.Ops))
	for _, fd := range msg.Ops {
		if fd.Fact.Peer != p.name || fd.Delete || fd.Fact.Rel+"@"+fd.Fact.Peer != msg.RelID {
			rep.Errors = append(rep.Errors, fmt.Errorf(
				"peer %s: malformed ranged repair entry %s from %s", p.name, fd.String(), from))
			continue
		}
		covered[fd.Fact.Args.Key()] = true
	}
	var stale []ast.Fact
	if tr := sess.trees[msg.RelID]; tr != nil {
		name, peerName := store.SplitID(msg.RelID)
		sup := sess.sup[msg.RelID]
		for _, r := range msg.Ranges {
			if r.Hi < r.Lo {
				continue
			}
			for _, key := range tr.RangeKeys(r.Lo, r.Hi) {
				if covered[key] {
					continue
				}
				if t, ok := sup[key]; ok {
					stale = append(stale, ast.Fact{Rel: name, Peer: peerName, Args: t})
				}
			}
		}
	}
	sortFactsByKey(stale)
	ops := make([]ingestOp, 0, len(stale)+len(msg.Ops))
	for _, f := range stale {
		ops = append(ops, ingestOp{del: true, maint: true, src: from, fact: f})
	}
	for _, fd := range msg.Ops {
		if fd.Fact.Peer != p.name || fd.Delete || fd.Fact.Rel+"@"+fd.Fact.Peer != msg.RelID {
			continue
		}
		ops = append(ops, ingestOp{maint: true, src: from, fact: fd.Fact})
	}
	sess.repairAsked = time.Time{}
	return p.applyOpsLocked(ops, rep, d)
}

// outboxCompactThreshold is the record count past which the outbox log is
// rewritten to its live state at the end of a stage.
const outboxCompactThreshold = 8192

// compactOutboxLogLocked rewrites the outbox log to the live delivery state
// (acknowledged history dropped). Concurrent enqueuers are excluded for the
// duration (outbox.compactTo), so no logged entry can fall between the
// snapshot and the rewrite.
func (p *Peer) compactOutboxLogLocked(rep *StageReport) {
	applied := make(map[string]store.AppliedMark, len(p.inbound))
	for from, s := range p.inbound {
		if s.known {
			applied[from] = store.AppliedMark{Epoch: s.epoch, Seq: s.seq}
		}
	}
	if err := p.outbox.compactTo(p.oblog, applied); err != nil {
		rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: compacting outbox log: %w", p.name, err))
	}
}

// ingestPayloadLocked routes one protocol payload into the peer, reporting
// whether it changed state the fixpoint must observe.
func (p *Peer) ingestPayloadLocked(from string, payload protocol.Payload, rep *StageReport, d *stageDeltas) bool {
	changed := false
	switch msg := payload.(type) {
	case protocol.FactsMsg:
		batch := make([]ingestOp, 0, len(msg.Ops))
		for _, fd := range msg.Ops {
			p.stats.FactsIn++
			if fd.Fact.Peer != p.name {
				rep.Errors = append(rep.Errors, fmt.Errorf(
					"peer %s: misrouted fact %s from %s", p.name, fd.Fact.String(), from))
				continue
			}
			batch = append(batch, ingestOp{del: fd.Delete, maint: fd.Maint, src: from, fact: fd.Fact})
		}
		if p.applyOpsLocked(batch, rep, d) {
			changed = true
		}
	case protocol.DelegationMsg:
		p.stats.DelegationsIn++
		// The controller's install callback takes p.mu; release it for
		// the duration of the decision.
		p.mu.Unlock()
		decision := p.ctrl.OnDelegation(from, msg.RuleID, msg.Rules)
		p.mu.Lock()
		// installDelegation sets progDirty only on real changes; fold
		// that into `changed` via the progDirty check in RunStage.
		if decision == acl.Reject {
			rep.Errors = append(rep.Errors, fmt.Errorf(
				"peer %s: %w: delegation %s from %s", p.name, errdefs.ErrPolicyDenied, msg.RuleID, from))
		}
	case protocol.SnapshotMsg:
		sess := p.sessionLocked(from)
		if msg.More {
			// One chunk of a larger snapshot: park its ops (the sequenced
			// stream already acked it) and apply the whole run atomically at
			// the final chunk.
			sess.snapParts = append(sess.snapParts, msg.Ops...)
			break
		}
		if len(sess.snapParts) > 0 {
			msg.Ops = append(sess.snapParts, msg.Ops...)
			sess.snapParts = nil
		}
		if p.applySnapshotLocked(from, msg, rep, d) {
			changed = true
		}
	case protocol.RangeRepairMsg:
		if p.applyRangeRepairLocked(from, msg, rep, d) {
			changed = true
		}
	case protocol.DigestMsg:
		// Anti-entropy advert: pure delivery bookkeeping plus, possibly, a
		// repair request — never itself a reason to run the fixpoint.
		p.handleDigestLocked(from, msg)
	case protocol.RangeDigestRequestMsg:
		p.handleRangeDigestRequestLocked(from, msg)
	case protocol.RangeDigestMsg:
		p.handleRangeDigestLocked(from, msg)
	case protocol.RangeRepairRequestMsg:
		p.handleRangeRepairRequestLocked(from, msg)
	case protocol.ResyncRequestMsg:
		p.handleResyncRequestLocked(from, msg)
	case protocol.ControlMsg:
		if msg.Kind == protocol.ControlPing {
			p.outbox.EnqueueControl(from, protocol.ControlMsg{Kind: protocol.ControlPong, Token: msg.Token})
		}
	default:
		rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: unknown message %T from %s", p.name, payload, from))
	}
	return changed
}

// applyOpsLocked applies a sequence of fact operations, recording the net
// deltas and reporting whether any changed the peer's state. Consecutive
// runs of the same operation on the same declared extensional relation take
// a batched path — one store lock acquisition and one WAL append run per
// group instead of one per fact — which is what makes a 1000-fact Batch a
// single cheap transaction. Anything irregular (undeclared relations,
// intensional facts, arity mismatches, alternating ops, maintained
// retractions) falls back to the per-fact path, preserving operation order
// either way.
func (p *Peer) applyOpsLocked(ops []ingestOp, rep *StageReport, d *stageDeltas) bool {
	changed := false
	for i := 0; i < len(ops); {
		op := ops[i]
		f := op.fact
		rel := p.db.Get(f.Rel, p.name)
		if rel == nil || rel.Kind() != ast.Extensional || len(f.Args) != rel.Schema().Arity() ||
			(op.maint && op.del) {
			if p.applyFactLocked(op, rep, d) {
				changed = true
			}
			i++
			continue
		}
		// Extend the run while the op and relation stay the same.
		j := i + 1
		for j < len(ops) &&
			ops[j].del == op.del &&
			!(ops[j].maint && ops[j].del) &&
			ops[j].fact.Rel == f.Rel &&
			len(ops[j].fact.Args) == rel.Schema().Arity() {
			j++
		}
		if j-i == 1 {
			if p.applyFactLocked(op, rep, d) {
				changed = true
			}
			i++
			continue
		}
		tuples := make([]value.Tuple, j-i)
		for k := i; k < j; k++ {
			tuples[k-i] = ops[k].fact.Args
		}
		// Maintained inserts into an extensional relation: the sender keeps
		// them in its remote view, so the session ledger mirrors them
		// (dedup inside ledgerAdd), applied or not. Runs may mix maintained
		// and one-shot inserts; only the maintained ones are ledgered.
		for k := i; k < j; k++ {
			if ops[k].maint {
				p.sessionLocked(ops[k].src).ledgerAdd(rel.Schema().ID(), ops[k].fact.Args)
			}
		}
		var applied []value.Tuple
		if op.del {
			applied = rel.DeleteMany(tuples)
		} else {
			applied = rel.InsertMany(tuples)
		}
		if len(applied) > 0 {
			changed = true
			rep.Applied += len(applied)
			p.stats.UpdatesApplied += uint64(len(applied))
			relID := rel.Schema().ID()
			for _, t := range applied {
				d.record(relID, t, op.del)
			}
			if p.wal != nil {
				if err := p.wal.LogMany(op.del, f.Rel, p.name, applied); err != nil {
					rep.Errors = append(rep.Errors, err)
				}
			}
		}
		i = j
	}
	return changed
}

// applyFactLocked routes one fact delta. Extensional relations are updated
// durably now (maintained retractions of durable updates are ignored).
// Intensional facts are transient seeds when unmaintained — they hold until
// the next stage that runs — and per-sender supported tuples when
// maintained. It returns true if the peer's state changed in a way the
// fixpoint must observe.
//
// Maintained deltas additionally keep the sender's session ledger in step:
// it mirrors the sender's remote view of this peer — what anti-entropy
// digests are compared against and what a resync snapshot replaces — so it
// is updated whether or not the store membership changed.
func (p *Peer) applyFactLocked(op ingestOp, rep *StageReport, d *stageDeltas) bool {
	f := op.fact
	if op.maint {
		sess := p.sessionLocked(op.src)
		if op.del {
			sess.ledgerRemove(f.Rel+"@"+p.name, f.Args)
		} else {
			sess.ledgerAdd(f.Rel+"@"+p.name, f.Args)
		}
	}
	rel := p.db.Get(f.Rel, p.name)
	if rel == nil {
		if op.del {
			return false // deleting from an unknown relation: nothing to do
		}
		// "Peers may discover … new relations": auto-declare extensional.
		schema := store.Schema{Name: f.Rel, Peer: p.name, Kind: ast.Extensional, Cols: genericCols(len(f.Args))}
		var err error
		rel, err = p.db.Declare(schema)
		if err != nil {
			rep.Errors = append(rep.Errors, err)
			return false
		}
		if p.wal != nil {
			if err := p.wal.LogDeclare(schema); err != nil {
				rep.Errors = append(rep.Errors, err)
			}
		}
	}
	if len(f.Args) != rel.Schema().Arity() {
		rep.Errors = append(rep.Errors, fmt.Errorf(
			"peer %s: %w: fact %s has wrong arity for %s", p.name, errdefs.ErrArity, f.String(), rel.Schema().ID()))
		return false
	}
	relID := rel.Schema().ID()
	if rel.Kind() == ast.Intensional {
		if op.maint {
			if op.del {
				// The sender no longer derives the fact: drop its support.
				// The tuple becomes a deletion candidate only when the last
				// supporter goes; a local derivation can still keep it. A
				// transient seed from this very stage shields it until the
				// normal expiry decides.
				if rel.DropExternalSupport(f.Args, op.src) && rel.Contains(f.Args) &&
					p.freshTransient[relID][f.Args.Key()] == nil {
					d.addCand(relID, f.Args)
					return true
				}
				return false
			}
			rel.AddExternalSupport(f.Args, op.src)
			// Re-supporting a tuple cancels a same-stage deletion candidate
			// (a maintained insert/retract/insert run coalesced into one
			// ingestion nets out to "supported").
			cancelled := d.removeCand(relID, f.Args.Key())
			if rel.Insert(f.Args) {
				d.record(relID, f.Args, false)
				rep.Seeds++
				return true
			}
			return cancelled
		}
		if op.del {
			rep.Errors = append(rep.Errors, fmt.Errorf(
				"peer %s: cannot delete transient fact %s from intensional relation", p.name, f.String()))
			return false
		}
		// Transient seed: hold until the next stage that runs. It also
		// shields the tuple from a same-stage support-loss candidate.
		if p.freshTransient == nil {
			p.freshTransient = map[string]map[string]value.Tuple{}
		}
		putTuple(p.freshTransient, relID, f.Args.Key(), f.Args)
		cancelled := d.removeCand(relID, f.Args.Key())
		if rel.Insert(f.Args) {
			d.record(relID, f.Args, false)
			rep.Seeds++
			return true
		}
		return cancelled
	}
	if op.maint && op.del {
		return false // durable updates are never unwound by lost derivations
	}
	var changed bool
	if op.del {
		changed = rel.Delete(f.Args)
	} else {
		changed = rel.Insert(f.Args)
	}
	if changed {
		d.record(relID, f.Args, op.del)
		rep.Applied++
		p.stats.UpdatesApplied++
		if p.wal != nil {
			var err error
			if op.del {
				err = p.wal.LogDelete(f.Rel, f.Peer, f.Args)
			} else {
				err = p.wal.LogInsert(f.Rel, f.Peer, f.Args)
			}
			if err != nil {
				rep.Errors = append(rep.Errors, err)
			}
		}
	}
	return changed
}

// compileLocked rebuilds the engine program from own + delegated rules.
// Unsafe rules are skipped with errors recorded; if stratification fails
// with delegated rules included, the peer falls back to its own rules so a
// hostile delegation cannot wedge it.
func (p *Peer) compileLocked(rep *StageReport) {
	all := make([]ast.Rule, 0, len(p.ownRules)+len(p.delegated))
	all = append(all, p.ownRules...)
	keys := make([]delegationKey, 0, len(p.delegated))
	for k := range p.delegated {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Origin != keys[j].Origin {
			return keys[i].Origin < keys[j].Origin
		}
		return keys[i].RuleID < keys[j].RuleID
	})
	for _, k := range keys {
		all = append(all, p.delegated[k]...)
	}
	prog, errs := p.eng.CompileRules(all)
	if prog == nil {
		rep.Errors = append(rep.Errors, fmt.Errorf(
			"peer %s: program with delegated rules does not stratify; quarantining delegations", p.name))
		var errs2 []error
		prog, errs2 = p.eng.CompileRules(p.ownRules)
		errs = append(errs, errs2...)
	}
	p.compileErr = errs
	for _, err := range errs {
		rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: %w", p.name, err))
	}
	p.prog = prog
	p.progDirty = false
}

// emitFactsLocked ships the engine's remote deltas: maintained inserts for
// newly derived facts, maintained deletes for facts whose last derivation
// vanished, and pass-through one-shot deletion-rule updates — one FactsMsg
// per destination instead of re-sending every derived fact every stage.
//
// Emission commits to the per-destination outbox and returns immediately:
// the engine's maintained remoteView counts these deltas as delivered, and
// the outbox upholds that by retrying until the destination acknowledges
// them — the stage never blocks on a dial and never loses a delta.
func (p *Peer) emitFactsLocked(res *engine.Result, rep *StageReport) {
	for _, dst := range res.RemotePeers() {
		ops := res.RemoteOut[dst]
		deltas := make([]protocol.FactDelta, len(ops))
		for i, op := range ops {
			deltas[i] = protocol.FactDelta{Delete: op.Op == ast.Delete, Maint: op.Maint, Fact: op.Fact}
		}
		p.outbox.EnqueueData(dst, protocol.FactsMsg{Ops: deltas})
		rep.FactsSent += len(deltas)
		p.stats.FactsOut += uint64(len(deltas))
	}
}

// emitDelegationsLocked sends the current residual sets and withdraws the
// (rule, target) pairs that no longer produce residuals — the paper's
// delegation maintenance. Delegations and withdrawals ride the same
// sequenced outbox as fact deltas, so the old "retry next stage"
// bookkeeping for failed sends is gone: once enqueued, delivery is the
// outbox's guarantee, and ordering with the stage's facts is preserved
// per destination.
func (p *Peer) emitDelegationsLocked(res *engine.Result, rep *StageReport) {
	current := make(map[string]map[string]string, len(res.Delegations))
	ruleIDs := make([]string, 0, len(res.Delegations))
	for ruleID := range res.Delegations {
		ruleIDs = append(ruleIDs, ruleID)
	}
	sort.Strings(ruleIDs)
	for _, ruleID := range ruleIDs {
		byTarget := res.Delegations[ruleID]
		targets := make([]string, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, target := range targets {
			rules := byTarget[target]
			sort.Slice(rules, func(i, j int) bool { return rules[i].String() < rules[j].String() })
			fp := fingerprint(rules)
			if current[ruleID] == nil {
				current[ruleID] = map[string]string{}
			}
			current[ruleID][target] = fp
			if p.lastSentDeleg[ruleID][target] == fp {
				continue // unchanged since last send
			}
			p.outbox.EnqueueData(target, protocol.DelegationMsg{RuleID: ruleID, Rules: rules})
			rep.DelegationsSent++
			p.stats.DelegationsOut++
		}
	}
	// Withdrawals: (rule, target) pairs that had residuals before but none now.
	for ruleID, targets := range p.lastSentDeleg {
		for target := range targets {
			if current[ruleID][target] != "" {
				continue
			}
			p.outbox.EnqueueData(target, protocol.DelegationMsg{RuleID: ruleID, Rules: nil})
			rep.DelegationsSent++
			p.stats.Withdrawals++
		}
	}
	p.lastSentDeleg = current
}

// storeVersionLocked sums relation version counters for cheap global change
// detection around wrapper hooks.
func (p *Peer) storeVersionLocked() uint64 {
	var sum uint64
	for _, r := range p.db.Relations() {
		sum += r.Version()
	}
	return sum
}

func fingerprint(rules []ast.Rule) string {
	var sb []byte
	for _, r := range rules {
		sb = append(sb, r.String()...)
		sb = append(sb, '\n')
	}
	return string(sb)
}

func genericCols(n int) []string {
	cols := make([]string, n)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	return cols
}

// Run drives the peer until ctx is cancelled: stages run whenever there is
// work, and the goroutine sleeps on transport/API wakeups otherwise. This
// is the deployment loop for TCP networks; in-process tests prefer
// Network.RunToQuiescence for determinism.
func (p *Peer) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if p.HasWork() {
			rep := p.RunStage()
			for _, err := range rep.Errors {
				p.debugf("stage %d: %v", rep.Stage, err)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.ep.Notify():
		case <-p.wake:
		}
	}
}
