package peer

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/value"
)

// RunStage executes one computation stage: ingest inputs, run the fixpoint,
// emit outputs. If ingestion changed nothing (all inbox messages were
// no-ops, no staged updates, no program change), the fixpoint and emission
// are skipped — the previous stage's outputs already reflect this state,
// which is what lets a network of peers reach quiescence.
func (p *Peer) RunStage() *StageReport {
	p.mu.Lock()
	defer p.mu.Unlock()

	rep := &StageReport{Stage: p.stageNo + 1}
	startIngest := time.Now()
	p.poked = false

	changed := p.ingestLocked(rep)
	if p.prov != nil {
		p.prov.Reset()
	}
	if hooks := p.hooks; hooks != nil {
		// Wrapper pull hook: let the external service refresh the wrapper's
		// relations. Detect changes via relation version counters, since the
		// hook mutates relations directly.
		before := p.storeVersionLocked()
		p.mu.Unlock()
		err := hooks.BeforeStage(p)
		p.mu.Lock()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: before-stage hook: %w", p.name, err))
		}
		if p.storeVersionLocked() != before {
			changed = true
		}
	}
	if p.progDirty {
		p.compileLocked(rep)
		changed = true
	}
	if !p.ranOnce {
		changed = true
	}
	rep.Ingest = time.Since(startIngest)

	if !changed {
		p.stats.StagesSkipped++
		return rep
	}

	p.stageNo++
	rep.Stage = p.stageNo
	p.ranOnce = true
	rep.Ran = true

	// Step 2: fixpoint. Intensional relations are recomputed from scratch
	// each stage; seeds ingested above were inserted after the clear.
	startFix := time.Now()
	var res *engine.Result
	if p.prog != nil {
		res = p.eng.RunStage(p.prog)
	} else {
		res = &engine.Result{}
	}
	rep.Fixpoint = time.Since(startFix)
	rep.Derived = res.Derived
	rep.Iterations = res.Iterations
	rep.Errors = append(rep.Errors, res.Errors...)

	// Step 3: emit. Local updates buffer for the next stage; remote facts
	// and delegations go out now.
	startEmit := time.Now()
	p.pendingOps = append(p.pendingOps, res.LocalUpdates...)
	p.emitFactsLocked(res, rep)
	p.emitDelegationsLocked(res, rep)
	rep.Emit = time.Since(startEmit)

	p.stats.Stages++
	p.stats.Derived += uint64(res.Derived)
	p.stats.RuntimeErrors += uint64(len(res.Errors))

	// Stream the stage's net effect to subscribers before hooks observe it.
	p.emitSubscriptionsLocked(rep)

	if hooks := p.hooks; hooks != nil {
		// Run the hook outside the lock: it may call back into the peer.
		p.mu.Unlock()
		err := hooks.AfterStage(p, rep)
		p.mu.Lock()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: after-stage hook: %w", p.name, err))
		}
	}
	return rep
}

// ingestLocked performs step 1 of the stage and reports whether anything
// about the peer's state actually changed.
func (p *Peer) ingestLocked(rep *StageReport) bool {
	changed := false

	// Clear the per-stage views before seeding them.
	p.db.ClearIntensional()

	// Apply updates staged by the previous stage and by the local API.
	ops := p.pendingOps
	p.pendingOps = nil
	if p.applyOpsLocked(ops, rep) {
		changed = true
	}

	// Drain the transport inbox.
	envs := p.ep.Drain()
	for _, env := range envs {
		switch msg := env.Msg.(type) {
		case protocol.FactsMsg:
			batch := make([]engine.FactOp, 0, len(msg.Ops))
			for _, d := range msg.Ops {
				p.stats.FactsIn++
				if d.Fact.Peer != p.name {
					rep.Errors = append(rep.Errors, fmt.Errorf(
						"peer %s: misrouted fact %s from %s", p.name, d.Fact.String(), env.From))
					continue
				}
				op := ast.Derive
				if d.Delete {
					op = ast.Delete
				}
				batch = append(batch, engine.FactOp{Op: op, Fact: d.Fact})
			}
			if p.applyOpsLocked(batch, rep) {
				changed = true
			}
		case protocol.DelegationMsg:
			p.stats.DelegationsIn++
			// The controller's install callback takes p.mu; release it for
			// the duration of the decision.
			p.mu.Unlock()
			decision := p.ctrl.OnDelegation(env.From, msg.RuleID, msg.Rules)
			p.mu.Lock()
			// installDelegation sets progDirty only on real changes; fold
			// that into `changed` via the progDirty check in RunStage.
			if decision == acl.Reject {
				rep.Errors = append(rep.Errors, fmt.Errorf(
					"peer %s: %w: delegation %s from %s", p.name, errdefs.ErrPolicyDenied, msg.RuleID, env.From))
			}
		case protocol.ControlMsg:
			if msg.Kind == protocol.ControlPing {
				if err := p.ep.Send(context.Background(), env.From, protocol.ControlMsg{Kind: protocol.ControlPong, Token: msg.Token}); err != nil {
					rep.Errors = append(rep.Errors, err)
				}
			}
		default:
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: unknown message %T from %s", p.name, env.Msg, env.From))
		}
	}

	if p.wal != nil && rep.Applied > 0 {
		if err := p.wal.Sync(); err != nil {
			rep.Errors = append(rep.Errors, err)
		}
	}
	return changed
}

// applyOpsLocked applies a sequence of fact operations, reporting whether
// any changed the peer's state. Consecutive runs of the same operation on
// the same declared extensional relation take a batched path — one store
// lock acquisition and one WAL append run per group instead of one per
// fact — which is what makes a 1000-fact Batch a single cheap transaction.
// Anything irregular (undeclared relations, intensional seeds, arity
// mismatches, alternating ops) falls back to the per-fact path, preserving
// operation order either way.
func (p *Peer) applyOpsLocked(ops []engine.FactOp, rep *StageReport) bool {
	changed := false
	for i := 0; i < len(ops); {
		f := ops[i].Fact
		rel := p.db.Get(f.Rel, p.name)
		if rel == nil || rel.Kind() != ast.Extensional || len(f.Args) != rel.Schema().Arity() {
			if p.applyFactLocked(ops[i].Op == ast.Delete, f, rep) {
				changed = true
			}
			i++
			continue
		}
		// Extend the run while the op and relation stay the same.
		j := i + 1
		for j < len(ops) &&
			ops[j].Op == ops[i].Op &&
			ops[j].Fact.Rel == f.Rel &&
			len(ops[j].Fact.Args) == rel.Schema().Arity() {
			j++
		}
		if j-i == 1 {
			if p.applyFactLocked(ops[i].Op == ast.Delete, f, rep) {
				changed = true
			}
			i++
			continue
		}
		tuples := make([]value.Tuple, j-i)
		for k := i; k < j; k++ {
			tuples[k-i] = ops[k].Fact.Args
		}
		del := ops[i].Op == ast.Delete
		var applied []value.Tuple
		if del {
			applied = rel.DeleteMany(tuples)
		} else {
			applied = rel.InsertMany(tuples)
		}
		if len(applied) > 0 {
			changed = true
			rep.Applied += len(applied)
			p.stats.UpdatesApplied += uint64(len(applied))
			if p.wal != nil {
				if err := p.wal.LogMany(del, f.Rel, p.name, applied); err != nil {
					rep.Errors = append(rep.Errors, err)
				}
			}
		}
		i = j
	}
	return changed
}

// applyFactLocked routes one fact delta: extensional relations are updated
// durably now; intensional facts become transient seeds for this stage.
// It returns true if the peer's state changed.
func (p *Peer) applyFactLocked(del bool, f ast.Fact, rep *StageReport) bool {
	rel := p.db.Get(f.Rel, p.name)
	if rel == nil {
		if del {
			return false // deleting from an unknown relation: nothing to do
		}
		// "Peers may discover … new relations": auto-declare extensional.
		schema := store.Schema{Name: f.Rel, Peer: p.name, Kind: ast.Extensional, Cols: genericCols(len(f.Args))}
		var err error
		rel, err = p.db.Declare(schema)
		if err != nil {
			rep.Errors = append(rep.Errors, err)
			return false
		}
		if p.wal != nil {
			if err := p.wal.LogDeclare(schema); err != nil {
				rep.Errors = append(rep.Errors, err)
			}
		}
	}
	if len(f.Args) != rel.Schema().Arity() {
		rep.Errors = append(rep.Errors, fmt.Errorf(
			"peer %s: %w: fact %s has wrong arity for %s", p.name, errdefs.ErrArity, f.String(), rel.Schema().ID()))
		return false
	}
	if rel.Kind() == ast.Intensional {
		if del {
			rep.Errors = append(rep.Errors, fmt.Errorf(
				"peer %s: cannot delete transient fact %s from intensional relation", p.name, f.String()))
			return false
		}
		// Transient: hold for one stage. Seeding happens in ingestLocked
		// after the intensional clear, so stash directly into the relation
		// if we are mid-ingest; seeds queued between stages land in p.seeds.
		rel.Insert(f.Args)
		rep.Seeds++
		return true
	}
	var changed bool
	if del {
		changed = rel.Delete(f.Args)
	} else {
		changed = rel.Insert(f.Args)
	}
	if changed {
		rep.Applied++
		p.stats.UpdatesApplied++
		if p.wal != nil {
			var err error
			if del {
				err = p.wal.LogDelete(f.Rel, f.Peer, f.Args)
			} else {
				err = p.wal.LogInsert(f.Rel, f.Peer, f.Args)
			}
			if err != nil {
				rep.Errors = append(rep.Errors, err)
			}
		}
	}
	return changed
}

// compileLocked rebuilds the engine program from own + delegated rules.
// Unsafe rules are skipped with errors recorded; if stratification fails
// with delegated rules included, the peer falls back to its own rules so a
// hostile delegation cannot wedge it.
func (p *Peer) compileLocked(rep *StageReport) {
	all := make([]ast.Rule, 0, len(p.ownRules)+len(p.delegated))
	all = append(all, p.ownRules...)
	keys := make([]delegationKey, 0, len(p.delegated))
	for k := range p.delegated {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Origin != keys[j].Origin {
			return keys[i].Origin < keys[j].Origin
		}
		return keys[i].RuleID < keys[j].RuleID
	})
	for _, k := range keys {
		all = append(all, p.delegated[k]...)
	}
	prog, errs := p.eng.CompileRules(all)
	if prog == nil {
		rep.Errors = append(rep.Errors, fmt.Errorf(
			"peer %s: program with delegated rules does not stratify; quarantining delegations", p.name))
		var errs2 []error
		prog, errs2 = p.eng.CompileRules(p.ownRules)
		errs = append(errs, errs2...)
	}
	p.compileErr = errs
	for _, err := range errs {
		rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: %w", p.name, err))
	}
	p.prog = prog
	p.progDirty = false
}

func (p *Peer) emitFactsLocked(res *engine.Result, rep *StageReport) {
	for _, dst := range res.RemotePeers() {
		ops := res.Remote[dst]
		deltas := make([]protocol.FactDelta, len(ops))
		for i, op := range ops {
			deltas[i] = protocol.FactDelta{Delete: op.Op == ast.Delete, Fact: op.Fact}
		}
		if err := p.ep.Send(context.Background(), dst, protocol.FactsMsg{Ops: deltas}); err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: sending facts to %s: %w", p.name, dst, err))
			continue
		}
		rep.FactsSent += len(deltas)
		p.stats.FactsOut += uint64(len(deltas))
	}
}

// emitDelegationsLocked sends the current residual sets and withdraws the
// (rule, target) pairs that no longer produce residuals — the paper's
// delegation maintenance.
func (p *Peer) emitDelegationsLocked(res *engine.Result, rep *StageReport) {
	current := make(map[string]map[string]string, len(res.Delegations))
	ruleIDs := make([]string, 0, len(res.Delegations))
	for ruleID := range res.Delegations {
		ruleIDs = append(ruleIDs, ruleID)
	}
	sort.Strings(ruleIDs)
	for _, ruleID := range ruleIDs {
		byTarget := res.Delegations[ruleID]
		targets := make([]string, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, target := range targets {
			rules := byTarget[target]
			sort.Slice(rules, func(i, j int) bool { return rules[i].String() < rules[j].String() })
			fp := fingerprint(rules)
			if current[ruleID] == nil {
				current[ruleID] = map[string]string{}
			}
			current[ruleID][target] = fp
			if p.lastSentDeleg[ruleID][target] == fp {
				continue // unchanged since last send
			}
			if err := p.ep.Send(context.Background(), target, protocol.DelegationMsg{RuleID: ruleID, Rules: rules}); err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: delegating to %s: %w", p.name, target, err))
				delete(current[ruleID], target) // retry next stage
				continue
			}
			rep.DelegationsSent++
			p.stats.DelegationsOut++
		}
	}
	// Withdrawals: (rule, target) pairs that had residuals before but none now.
	for ruleID, targets := range p.lastSentDeleg {
		for target := range targets {
			if current[ruleID][target] != "" {
				continue
			}
			if err := p.ep.Send(context.Background(), target, protocol.DelegationMsg{RuleID: ruleID, Rules: nil}); err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("peer %s: withdrawing from %s: %w", p.name, target, err))
				// Keep it recorded so withdrawal is retried next stage.
				if current[ruleID] == nil {
					current[ruleID] = map[string]string{}
				}
				current[ruleID][target] = targets[target]
				continue
			}
			rep.DelegationsSent++
			p.stats.Withdrawals++
		}
	}
	p.lastSentDeleg = current
}

// storeVersionLocked sums relation version counters for cheap global change
// detection around wrapper hooks.
func (p *Peer) storeVersionLocked() uint64 {
	var sum uint64
	for _, r := range p.db.Relations() {
		sum += r.Version()
	}
	return sum
}

func fingerprint(rules []ast.Rule) string {
	var sb []byte
	for _, r := range rules {
		sb = append(sb, r.String()...)
		sb = append(sb, '\n')
	}
	return string(sb)
}

func genericCols(n int) []string {
	cols := make([]string, n)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	return cols
}

// Run drives the peer until ctx is cancelled: stages run whenever there is
// work, and the goroutine sleeps on transport/API wakeups otherwise. This
// is the deployment loop for TCP networks; in-process tests prefer
// Network.RunToQuiescence for determinism.
func (p *Peer) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if p.HasWork() {
			rep := p.RunStage()
			for _, err := range rep.Errors {
				p.debugf("stage %d: %v", rep.Stage, err)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.ep.Notify():
		case <-p.wake:
		}
	}
}
