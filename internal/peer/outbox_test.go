package peer

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/value"
)

// TestDataMsgReplayIsDeduplicated: a retransmitted DataMsg must be re-acked
// but not re-applied — the receiver's watermark gives exactly-once
// application under at-least-once delivery.
func TestDataMsgReplayIsDeduplicated(t *testing.T) {
	n := NewSequentialNetwork()
	p, err := n.NewPeer(Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	fake := n.Bus().Endpoint("fake")
	msg := protocol.DataMsg{Seq: 1, Msg: protocol.FactsMsg{Ops: []protocol.FactDelta{
		{Fact: ast.NewFact("data", "alice", value.Int(7))},
	}}}
	if err := fake.Send(context.Background(), "alice", msg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if got := tuples(p, "data"); len(got) != 1 {
		t.Fatalf("data = %v, want 1 tuple", got)
	}
	// The ack must have come back.
	acked := false
	for _, env := range fake.Drain() {
		if a, ok := env.Msg.(protocol.AckMsg); ok && a.Seq == 1 {
			acked = true
		}
	}
	if !acked {
		t.Fatalf("no ack for seq 1")
	}

	// The fact is deleted locally; a replay of seq 1 must not resurrect it.
	if err := p.DeleteString(`data@alice(7);`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := fake.Send(context.Background(), "alice", msg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if got := tuples(p, "data"); len(got) != 0 {
		t.Fatalf("replayed DataMsg was re-applied: data = %v", got)
	}
	// And the replay is re-acked so the sender can drop it.
	acked = false
	for _, env := range fake.Drain() {
		if a, ok := env.Msg.(protocol.AckMsg); ok && a.Seq == 1 {
			acked = true
		}
	}
	if !acked {
		t.Fatalf("replay was not re-acked")
	}
}

// TestDataMsgGapIsDroppedUntilRetransmit: an out-of-order DataMsg (gap) is
// dropped without an ack; delivery resumes once the missing predecessor
// arrives and the successor is retransmitted — in-order application no
// matter how the transport reorders.
func TestDataMsgGapIsDroppedUntilRetransmit(t *testing.T) {
	n := NewSequentialNetwork()
	p, err := n.NewPeer(Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	fake := n.Bus().Endpoint("fake")
	mk := func(seq uint64, id int64) protocol.DataMsg {
		return protocol.DataMsg{Seq: seq, Msg: protocol.FactsMsg{Ops: []protocol.FactDelta{
			{Fact: ast.NewFact("data", "alice", value.Int(id))},
		}}}
	}
	ctx := context.Background()
	// Seq 2 arrives first: must not apply.
	if err := fake.Send(ctx, "alice", mk(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(ctx, 50); err != nil {
		t.Fatal(err)
	}
	if got := tuples(p, "data"); len(got) != 0 {
		t.Fatalf("gap applied out of order: data = %v", got)
	}
	// Retransmission in order: 1 then 2.
	if err := fake.Send(ctx, "alice", mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fake.Send(ctx, "alice", mk(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(ctx, 50); err != nil {
		t.Fatal(err)
	}
	if got := tuples(p, "data"); len(got) != 2 {
		t.Fatalf("after in-order retransmit, data = %v, want 2 tuples", got)
	}
}

// addPeerHook registers a new peer (with staged work) on the network from
// inside another peer's stage — the "peer discovered mid-run" scenario.
type addPeerHook struct {
	n     *Network
	added bool
	err   error
}

func (h *addPeerHook) BeforeStage(p *Peer) error { return nil }

func (h *addPeerHook) AfterStage(p *Peer, rep *StageReport) error {
	if h.added {
		return nil
	}
	h.added = true
	late, err := h.n.NewPeer(Config{Name: "late"})
	if err != nil {
		h.err = err
		return err
	}
	if err := late.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		h.err = err
		return err
	}
	return late.InsertString(`data@late(1);`)
}

// TestPeerAddedMidRunIsScheduled: RunToQuiescence re-snapshots the peer set
// every round, so a peer registered while the run is in progress gets its
// stages driven by the same call — on both schedulers.
func TestPeerAddedMidRunIsScheduled(t *testing.T) {
	for _, mode := range []string{"concurrent", "sequential"} {
		t.Run(mode, func(t *testing.T) {
			n := NewNetwork()
			if mode == "sequential" {
				n = NewSequentialNetwork()
			}
			first, err := n.NewPeer(Config{Name: "first"})
			if err != nil {
				t.Fatal(err)
			}
			h := &addPeerHook{n: n}
			first.SetHooks(h)
			if err := first.InsertString(`seed@first(0);`); err != nil {
				t.Fatal(err)
			}
			if _, _, err := n.RunToQuiescence(context.Background(), 100); err != nil {
				t.Fatal(err)
			}
			if h.err != nil {
				t.Fatal(h.err)
			}
			late := n.Peer("late")
			if late == nil {
				t.Fatal("late peer not registered")
			}
			if got := len(late.Query("data")); got != 1 {
				t.Errorf("late peer was never scheduled: data has %d tuples", got)
			}
		})
	}
}

// TestStageAllSchedulesMidPassWork: StageAll offers a stage to peers that
// gain work while the pass runs (here: the receiver of another stage's
// emission).
func TestStageAllSchedulesMidPassWork(t *testing.T) {
	n := NewSequentialNetwork()
	zed, err := n.NewPeer(Config{Name: "zed"}) // name-sorts after its receiver
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewPeer(Config{Name: "abe"}); err != nil {
		t.Fatal(err)
	}
	if err := zed.LoadSource(`
		relation extensional src@zed(x);
		sink@abe($x) :- src@zed($x);
	`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	// Now only zed has work; its stage hands abe work mid-pass.
	if err := zed.InsertString(`src@zed(1);`); err != nil {
		t.Fatal(err)
	}
	reps := n.StageAll()
	if len(reps) < 2 {
		t.Fatalf("StageAll ran %d stages; the receiver gaining work mid-pass was skipped", len(reps))
	}
	if got := len(n.Peer("abe").Query("sink")); got != 1 {
		t.Errorf("sink@abe = %d tuples, want 1", got)
	}
}

// TestSequentialNetworkDeterministic: two identical runs over sequential
// networks produce identical round/stage counts and identical bus traffic —
// the property deterministic tests rely on.
func TestSequentialNetworkDeterministic(t *testing.T) {
	run := func() (int, int, uint64, string) {
		n := NewSequentialNetwork()
		jules, err := n.NewPeer(Config{Name: "jules"})
		if err != nil {
			t.Fatal(err)
		}
		emilien, err := n.NewPeer(Config{Name: "emilien"})
		if err != nil {
			t.Fatal(err)
		}
		if err := emilien.LoadSource(`
			relation extensional pictures@emilien(id);
			pictures@emilien(1);
			pictures@emilien(2);
		`); err != nil {
			t.Fatal(err)
		}
		if err := jules.LoadSource(`
			relation extensional sel@jules(a);
			relation intensional view@jules(id);
			sel@jules("emilien");
			view@jules($id) :- sel@jules($a), pictures@$a($id);
		`); err != nil {
			t.Fatal(err)
		}
		rounds, stages, err := n.RunToQuiescence(context.Background(), 100)
		if err != nil {
			t.Fatal(err)
		}
		return rounds, stages, n.Bus().Stats().MessagesSent, fmt.Sprint(jules.Query("view"))
	}
	r1, s1, m1, v1 := run()
	r2, s2, m2, v2 := run()
	if r1 != r2 || s1 != s2 || m1 != m2 || v1 != v2 {
		t.Errorf("sequential runs diverged: (%d,%d,%d,%s) vs (%d,%d,%d,%s)", r1, s1, m1, v1, r2, s2, m2, v2)
	}
	if v1 != "[(1) (2)]" {
		t.Errorf("view = %s, want [(1) (2)]", v1)
	}
}

// TestCloseCancelsInFlightDial: closing a peer aborts an outbox dial to a
// black-holed destination promptly instead of hanging to DialTimeout.
func TestCloseCancelsInFlightDial(t *testing.T) {
	ctx := context.Background()
	// 192.0.2.0/24 (TEST-NET-1) black-holes SYNs on most systems; the dial
	// hangs until its timeout.
	ep, err := transport.ListenTCP(ctx, "sender", "127.0.0.1:0", map[string]string{"rcv": "192.0.2.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	ep.DialTimeout = 30 * time.Second
	p, err := New(Config{Name: "sender"}, ep)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(`
		relation extensional src@sender(x);
		view@rcv($x) :- src@sender($x);
		src@sender(1);
	`); err != nil {
		t.Fatal(err)
	}
	p.RunStage() // enqueues; the flusher starts dialing the black hole
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an in-flight dial")
	}
}
