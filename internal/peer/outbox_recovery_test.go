package peer

import (
	"context"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/value"
)

// TestDurableOutboxRedeliversAfterRestart exercises the one delivery a
// restarted sender cannot regenerate from its rules: a maintained *delete*.
// After a crash, a fresh engine re-derives and re-sends everything it still
// derives — but a retraction emitted while the destination was unreachable
// exists nowhere except the outbox. A WAL-backed peer must recover it from
// the outbox log and deliver it, or the receiver keeps the stale fact
// forever.
func TestDurableOutboxRedeliversAfterRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	epR, err := transport.ListenTCP(ctx, "rcv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := New(Config{Name: "rcv"}, epR)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	if err := rcv.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}

	openSender := func(rcvAddr string) *Peer {
		w, err := store.OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := transport.ListenTCP(ctx, "sender", "127.0.0.1:0", map[string]string{"rcv": rcvAddr})
		if err != nil {
			t.Fatal(err)
		}
		ep.DialTimeout = 500 * time.Millisecond
		p, err := New(Config{Name: "sender", WAL: w}, ep)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	drive := func(deadline time.Duration, sender *Peer, done func() bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if sender != nil && sender.HasWork() {
				sender.RunStage()
			}
			if rcv.HasWork() {
				rcv.RunStage()
			}
			if done() {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return false
	}

	// Phase 1: normal operation — the maintained view reaches the receiver.
	sender := openSender(epR.Addr())
	if err := sender.LoadSource(`
		relation extensional src@sender(x);
		view@rcv($x) :- src@sender($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := sender.InsertString(`src@sender(1);`); err != nil {
		t.Fatal(err)
	}
	if !drive(10*time.Second, sender, func() bool { return len(rcv.Query("view")) == 1 }) {
		t.Fatalf("view never converged: %v", rcv.Query("view"))
	}

	// Phase 2: the receiver becomes unreachable; the sender retracts the
	// fact (maintained delete enqueued, undeliverable) and crashes.
	sender.Endpoint().(*transport.TCPEndpoint).AddPeer("rcv", "127.0.0.1:1")
	if err := sender.DeleteString(`src@sender(1);`); err != nil {
		t.Fatal(err)
	}
	sender.RunStage()
	if total, _ := sender.OutboxPending(); total == 0 {
		t.Fatalf("retraction was not queued")
	}
	if err := sender.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: the sender restarts with the receiver reachable again. Its
	// engine no longer derives view@rcv(1) and so will never re-send a
	// retraction — only the recovered outbox entry can fix the receiver.
	sender = openSender(epR.Addr())
	defer sender.Close()
	if err := sender.LoadSource(`view@rcv($x) :- src@sender($x);`); err != nil {
		t.Fatal(err)
	}
	if !drive(10*time.Second, sender, func() bool { return len(rcv.Query("view")) == 0 }) {
		t.Fatalf("stale fact survived the sender restart: view = %v", rcv.Query("view"))
	}
}

// TestVolatileSenderRestartStartsFreshStream: a volatile sender restarting
// under the same name begins a new stream epoch, which the receiver adopts
// — its re-derived sends must be applied, not misread as replays of the old
// incarnation's sequence numbers and silently dropped.
func TestVolatileSenderRestartStartsFreshStream(t *testing.T) {
	ctx := context.Background()
	epR, err := transport.ListenTCP(ctx, "rcv", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := New(Config{Name: "rcv"}, epR)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	if err := rcv.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}

	openSender := func() *Peer {
		ep, err := transport.ListenTCP(ctx, "sender", "127.0.0.1:0", map[string]string{"rcv": epR.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Name: "sender"}, ep)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadSource(`
			relation extensional src@sender(x);
			view@rcv($x) :- src@sender($x);
		`); err != nil {
			t.Fatal(err)
		}
		return p
	}
	drive := func(sender *Peer, deadline time.Duration, done func() bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if sender.HasWork() {
				sender.RunStage()
			}
			if rcv.HasWork() {
				rcv.RunStage()
			}
			if done() {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return false
	}

	// First incarnation delivers two facts (receiver watermark advances).
	sender := openSender()
	if err := sender.InsertString(`src@sender(1);`); err != nil {
		t.Fatal(err)
	}
	if err := sender.InsertString(`src@sender(2);`); err != nil {
		t.Fatal(err)
	}
	if !drive(sender, 10*time.Second, func() bool { return len(rcv.Query("view")) == 2 }) {
		t.Fatalf("initial facts never arrived: %v", rcv.Query("view"))
	}
	if err := sender.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: volatile restart, fresh state, one new fact. Its
	// stream restarts at seq 1 — without epoch adoption the receiver would
	// dedup it against the old watermark and never see (3).
	sender = openSender()
	defer sender.Close()
	if err := sender.InsertString(`src@sender(3);`); err != nil {
		t.Fatal(err)
	}
	if !drive(sender, 10*time.Second, func() bool {
		for _, tup := range rcv.Query("view") {
			if tup[0].IntVal() == 3 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("restarted sender's stream was deduplicated against the old incarnation: view = %v", rcv.Query("view"))
	}
}

// TestDurableWatermarkSuppressesReplayAfterRestart: a durable receiver that
// applied a message, then crashed, must not re-apply the sender's
// retransmission after recovery — the applied watermark is durable too.
func TestDurableWatermarkSuppressesReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()

	// Each phase gets a fresh bus (so nothing but the WAL directory's
	// durable state can carry over between them).
	open := func() (*Peer, *transport.BusEndpoint) {
		bus := transport.NewBus()
		w, err := store.OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Name: "alice", WAL: w, SyncEmit: true}, bus.Endpoint("alice"))
		if err != nil {
			t.Fatal(err)
		}
		return p, bus.Endpoint("fake")
	}

	p, fake := open()
	if err := p.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	msg := protocol.DataMsg{Seq: 1, Msg: protocol.FactsMsg{Ops: []protocol.FactDelta{
		{Fact: ast.NewFact("data", "alice", value.Int(7))},
	}}}
	ctx := context.Background()
	if err := fake.Send(ctx, "alice", msg); err != nil {
		t.Fatal(err)
	}
	p.RunStage()
	if got := len(p.Query("data")); got != 1 {
		t.Fatalf("data = %d tuples, want 1", got)
	}
	// The fact is then deleted locally — durably.
	if err := p.DeleteString(`data@alice(7);`); err != nil {
		t.Fatal(err)
	}
	p.RunStage()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart; the sender (not having seen an ack) retransmits seq 1. The
	// recovered watermark must suppress it.
	p, fake = open()
	defer p.Close()
	if err := fake.Send(ctx, "alice", msg); err != nil {
		t.Fatal(err)
	}
	p.RunStage()
	if got := p.Query("data"); len(got) != 0 {
		t.Fatalf("replay after restart resurrected the fact: %v", got)
	}
	// And it re-acks so the sender can finally drop the entry.
	acked := false
	for _, env := range fake.Drain() {
		if a, ok := env.Msg.(protocol.AckMsg); ok && a.Seq >= 1 {
			acked = true
		}
	}
	if !acked {
		t.Fatalf("replay after restart was not re-acked")
	}
}
