package peer

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/value"
)

// newRangedPeer attaches a volatile peer with the anti-entropy clock and
// outbox timers shrunk to test speed and an explicit ranged-repair floor
// (0 keeps the default, negative disables the dialogue). When faults is
// non-nil the peer talks through a fault-injecting endpoint.
func newRangedPeer(t *testing.T, n *Network, name string, floor int, faults *transport.FaultConfig) *Peer {
	t.Helper()
	ep := transport.Endpoint(n.Bus().Endpoint(name))
	if faults != nil {
		ep = transport.Faulty(ep, *faults)
	}
	p, err := New(Config{
		Name:              name,
		OutboxAckTimeout:  10 * time.Millisecond,
		OutboxBackoff:     2 * time.Millisecond,
		ResyncInterval:    resyncTestInterval,
		RangedRepairFloor: floor,
	}, ep)
	if err != nil {
		t.Fatal(err)
	}
	n.Add(p)
	return p
}

// applySrcFacts stages one batch inserting src@a(k) for every key.
func applySrcFacts(t *testing.T, a *Peer, keys []int64) {
	t.Helper()
	b := engine.NewBatch()
	for _, k := range keys {
		b.Insert(ast.NewFact("src", "a", value.Int(k)))
	}
	if err := a.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
}

// fixpointFor computes the fault-free fixpoint of the maintained view for
// the given sender facts, on a pristine network with no failures or
// restarts — the reference both repair paths must reproduce exactly.
func fixpointFor(t *testing.T, keys []int64) string {
	t.Helper()
	n := NewNetwork()
	a := newRangedPeer(t, n, "a", 0, nil)
	defer a.Close()
	loadViewSender(t, a)
	b := newRangedPeer(t, n, "b", 0, nil)
	defer b.Close()
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	applySrcFacts(t, a, keys)
	want := len(keys)
	if !drive([]*Peer{a, b}, func() bool { return len(b.Query("view")) == want }, 10*time.Second) {
		t.Fatalf("reference pair never converged to %d facts", want)
	}
	return tupleSet(b, "view")
}

func intRange(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// mutateKeys drops the keys in `drop` and appends `add` fresh keys past n.
func mutateKeys(n int, drop map[int64]bool, add int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		if !drop[int64(i)] {
			out = append(out, int64(i))
		}
	}
	for i := 0; i < add; i++ {
		out = append(out, int64(n+i))
	}
	return out
}

// TestSenderRestartRangedRepair is the tentpole scenario: a receiver holds
// a large, almost-correct maintained view when its sender restarts without
// the facts it deleted while down. With the ranged dialogue enabled the
// divergence is repaired through digest bisection — no full snapshot is
// ever served — and the repair traffic is a fraction of the view. The
// ablation arm (RangedRepairFloor < 0) runs the same schedule and must
// converge identically, but by re-shipping the whole view.
func TestSenderRestartRangedRepair(t *testing.T) {
	const viewSize = 3000
	drop := map[int64]bool{500: true, 1500: true, 2500: true}
	finalKeys := mutateKeys(viewSize, drop, 2)
	want := fixpointFor(t, finalKeys)

	type arm struct {
		rangedRepairs, rangedBytes, digestBytes uint64
		snapshots, snapshotBytes                uint64
	}
	run := func(t *testing.T, floor int) arm {
		n := NewNetwork()
		a := newRangedPeer(t, n, "a", floor, nil)
		loadViewSender(t, a)
		b := newRangedPeer(t, n, "b", floor, nil)
		defer b.Close()
		if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
			t.Fatal(err)
		}
		applySrcFacts(t, a, intRange(viewSize))
		if !drive([]*Peer{a, b}, func() bool { return len(b.Query("view")) == viewSize }, 10*time.Second) {
			t.Fatalf("initial load never converged")
		}

		// Crash the sender; its fresh incarnation never knew the dropped keys.
		a.Close()
		a2 := newRangedPeer(t, n, "a", floor, nil)
		defer a2.Close()
		loadViewSender(t, a2)
		applySrcFacts(t, a2, finalKeys)
		if !drive([]*Peer{a2, b}, func() bool { return tupleSet(b, "view") == want }, 20*time.Second) {
			t.Fatalf("restarted pair never converged:\n got %.120s\nwant %.120s", tupleSet(b, "view"), want)
		}
		s := a2.Stats()
		return arm{
			rangedRepairs: s.ResyncRangedRepairs,
			rangedBytes:   s.ResyncRangedRepairBytes,
			digestBytes:   s.ResyncRangeDigestBytes,
			snapshots:     s.ResyncSnapshots,
			snapshotBytes: s.ResyncSnapshotBytes,
		}
	}

	var ranged, ablated arm
	t.Run("ranged", func(t *testing.T) {
		ranged = run(t, 0)
		if ranged.snapshots != 0 {
			t.Errorf("ranged arm served %d full snapshots, want 0", ranged.snapshots)
		}
		if ranged.rangedRepairs == 0 {
			t.Errorf("ranged arm served no ranged repairs")
		}
	})
	t.Run("snapshot-ablation", func(t *testing.T) {
		ablated = run(t, -1)
		if ablated.snapshots == 0 {
			t.Errorf("ablation arm served no snapshot — divergence was never repaired")
		}
		if ablated.rangedRepairs != 0 {
			t.Errorf("ablation arm served %d ranged repairs with the dialogue disabled", ablated.rangedRepairs)
		}
	})
	if t.Failed() {
		return
	}
	repairBytes := ranged.rangedBytes + ranged.digestBytes
	if repairBytes == 0 || repairBytes*4 > ablated.snapshotBytes {
		t.Errorf("ranged repair cost %d bytes (%d repair + %d digest); want well under the %d-byte snapshot",
			repairBytes, ranged.rangedBytes, ranged.digestBytes, ablated.snapshotBytes)
	}
}

// TestChunkedSnapshotRestart: a repair snapshot of a view larger than
// snapshotChunkOps ships as a run of bounded chunks which the restarted
// receiver buffers and applies atomically — the recovered view is exactly
// the fault-free fixpoint, never a partially-applied prefix.
func TestChunkedSnapshotRestart(t *testing.T) {
	const viewSize = snapshotChunkOps + 1000
	keys := intRange(viewSize)
	n := NewNetwork()
	a := newRangedPeer(t, n, "a", 0, nil)
	defer a.Close()
	loadViewSender(t, a)
	b := newRangedPeer(t, n, "b", 0, nil)
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	applySrcFacts(t, a, keys)
	// Converge AND let the ack land: once the sender drops the acknowledged
	// prefix, plain retransmission can never recover a restarted receiver —
	// only the snapshot path can.
	if !drive([]*Peer{a, b}, func() bool {
		pending, _ := a.OutboxPending()
		return len(b.Query("view")) == viewSize && pending == 0
	}, 20*time.Second) {
		t.Fatalf("initial load never converged")
	}
	want := tupleSet(b, "view")

	// The receiver loses everything; recovery must ship the whole view.
	b.Close()
	b2 := newRangedPeer(t, n, "b", 0, nil)
	defer b2.Close()
	if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	partial := false
	if !drive([]*Peer{a, b2}, func() bool {
		if got := len(b2.Query("view")); got > 0 && got < viewSize {
			partial = true
		}
		return tupleSet(b2, "view") == want
	}, 20*time.Second) {
		t.Fatalf("restarted receiver never recovered: %d of %d facts", len(b2.Query("view")), viewSize)
	}
	if partial {
		t.Errorf("receiver exposed a partially-applied snapshot mid-recovery")
	}
	if s := a.Stats(); s.ResyncSnapshots == 0 {
		t.Errorf("sender stats: ResyncSnapshots = 0, want at least one chunked snapshot")
	}
}

// TestRangedDifferentialUnderFaults is the differential property test: a
// randomized divergence schedule — sender restart with lost retractions,
// receiver restart, live mutations after both — runs through a transport
// that drops, duplicates and reorders, once with the ranged dialogue
// enabled (floor shrunk so the small ledger qualifies) and once with it
// disabled (snapshot-only). Both arms must converge to exactly the
// fault-free recompute fixpoint.
func TestRangedDifferentialUnderFaults(t *testing.T) {
	seeds := []int64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const viewSize = 400
			drop := map[int64]bool{}
			for len(drop) < 5 {
				drop[rng.Int63n(viewSize)] = true
			}
			restartKeys := mutateKeys(viewSize, drop, 3)
			// Live mutations after the restarts: delete a few survivors,
			// add a few more fresh keys.
			finalKeys := restartKeys[:0:0]
			lateDrop := map[int64]bool{}
			for len(lateDrop) < 3 {
				k := restartKeys[rng.Intn(len(restartKeys))]
				lateDrop[k] = true
			}
			for _, k := range restartKeys {
				if !lateDrop[k] {
					finalKeys = append(finalKeys, k)
				}
			}
			finalKeys = append(finalKeys, viewSize+100, viewSize+101)
			want := fixpointFor(t, finalKeys)

			cfg := transport.FaultConfig{Seed: seed, Drop: 0.15, Dup: 0.1, Reorder: 0.1}
			for _, floor := range []int{16, -1} {
				name := "ranged"
				if floor < 0 {
					name = "snapshot-only"
				}
				t.Run(name, func(t *testing.T) {
					n := NewNetwork()
					a := newRangedPeer(t, n, "a", floor, &cfg)
					loadViewSender(t, a)
					b := newRangedPeer(t, n, "b", floor, &cfg)
					if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
						t.Fatal(err)
					}
					applySrcFacts(t, a, intRange(viewSize))
					if !drive([]*Peer{a, b}, func() bool { return len(b.Query("view")) == viewSize }, 20*time.Second) {
						t.Fatalf("initial load never converged under faults")
					}

					// Sender crashes; its fresh incarnation owes retractions
					// it will never send as deltas.
					a.Close()
					a2 := newRangedPeer(t, n, "a", floor, &cfg)
					defer a2.Close()
					loadViewSender(t, a2)
					applySrcFacts(t, a2, restartKeys)
					if !drive([]*Peer{a2, b}, func() bool { return len(b.Query("view")) == len(restartKeys) }, 30*time.Second) {
						t.Fatalf("post-restart repair never converged: %d facts, want %d",
							len(b.Query("view")), len(restartKeys))
					}

					// Receiver crashes too, then the sender keeps mutating.
					b.Close()
					b2 := newRangedPeer(t, n, "b", floor, &cfg)
					defer b2.Close()
					if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
						t.Fatal(err)
					}
					mb := engine.NewBatch()
					for k := range lateDrop {
						mb.Delete(ast.NewFact("src", "a", value.Int(k)))
					}
					mb.Insert(ast.NewFact("src", "a", value.Int(viewSize+100)))
					mb.Insert(ast.NewFact("src", "a", value.Int(viewSize+101)))
					if err := a2.Apply(context.Background(), mb); err != nil {
						t.Fatal(err)
					}
					if !drive([]*Peer{a2, b2}, func() bool { return tupleSet(b2, "view") == want }, 30*time.Second) {
						t.Fatalf("differential arm diverged from the fault-free fixpoint:\n got %.160s\nwant %.160s",
							tupleSet(b2, "view"), want)
					}
					s := a2.Stats()
					if floor >= 0 && s.ResyncRangedRepairs == 0 {
						t.Errorf("ranged arm repaired without any ranged repair message")
					}
					if floor < 0 && s.ResyncRangedRepairs != 0 {
						t.Errorf("snapshot-only arm served %d ranged repairs", s.ResyncRangedRepairs)
					}
				})
			}
		})
	}
}
