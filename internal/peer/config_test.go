package peer

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/parser"
	"repro/internal/transport"
	"repro/internal/value"
)

func TestNewPeerValidation(t *testing.T) {
	bus := transport.NewBus()
	if _, err := New(Config{Name: ""}, bus.Endpoint("x")); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Config{Name: "a"}, nil); err == nil {
		t.Error("nil endpoint accepted")
	}
	if _, err := New(Config{Name: "a"}, bus.Endpoint("b")); err == nil {
		t.Error("endpoint/peer name mismatch accepted")
	}
}

func TestNaiveEngineConfig(t *testing.T) {
	n := NewNetwork()
	opts := engine.DefaultOptions()
	opts.SemiNaive = false
	opts.UseIndexes = false
	p, err := n.NewPeer(Config{Name: "alice", Engine: &opts})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine().Options().SemiNaive || p.Engine().Options().UseIndexes {
		t.Error("explicit naive/no-index options not honored")
	}
	// The peer still computes correctly in naive mode.
	if err := p.LoadSource(`
		relation extensional edge@alice(a,b);
		relation intensional tc@alice(a,b);
		edge@alice("x","y");
		edge@alice("y","z");
		tc@alice($a,$b) :- edge@alice($a,$b);
		tc@alice($a,$c) :- tc@alice($a,$b), edge@alice($b,$c);
	`); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := len(p.Query("tc")); got != 3 {
		t.Errorf("tc = %d tuples, want 3", got)
	}
}

func TestDuplicateRuleIDRejected(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.AddRule(`b@alice($x) :- a@alice($x);`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := parser.ParseRule(`c@alice($x) :- a@alice($x);`)
	if err != nil {
		t.Fatal(err)
	}
	r.ID = r1
	if _, err := p.AddRuleAST(r); err == nil {
		t.Error("duplicate rule id accepted")
	}
}

func TestRemoveUnknownRule(t *testing.T) {
	n := NewNetwork()
	p, err := n.NewPeer(Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveRule("nope"); !errors.Is(err, errdefs.ErrUnknownRule) {
		t.Errorf("err = %v, want ErrUnknownRule", err)
	}
	if err := p.ReplaceRule("nope", `a@alice($x) :- b@alice($x);`); !errors.Is(err, errdefs.ErrUnknownRule) {
		t.Errorf("replace of unknown rule: err = %v, want ErrUnknownRule", err)
	}
}

func TestMisroutedFactReported(t *testing.T) {
	n, ps := newTestNetwork(t, "alice", "bob")
	alice := ps["alice"]
	// A rule at alice addressing a fact to bob's relation but with the
	// wrong fact peer cannot be constructed through the API, so inject a
	// misrouted fact directly through the bus.
	ep := n.Bus().Endpoint("mallory")
	_ = ep
	if err := alice.DeclareRelation("inbox", 0, "x"); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	// Sending bob a fact claiming to live at alice must be rejected there.
	err := ps["bob"].Insert(ast.NewFact("inbox", "alice", value.Str("v")))
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := len(alice.Query("inbox")); got != 1 {
		t.Errorf("correctly-routed fact missing: %d", got)
	}
}

func TestQuiescenceBudget(t *testing.T) {
	// Two rules that bounce a growing counter would never quiesce; emulate
	// non-quiescence with mutual re-insertion of fresh facts via deletion
	// and insertion of the same fact (insert -> delete -> insert ...).
	n, ps := newTestNetwork(t, "a")
	p := ps["a"]
	if err := p.LoadSource(`
		relation extensional flip@a(x);
		relation extensional flop@a(x);
		flip@a("v");
		flop@a($x)  :- flip@a($x), not flop@a($x);
		-flop@a($x) :- flip@a($x), flop@a($x);
	`); err != nil {
		t.Fatal(err)
	}
	_, _, err := n.RunToQuiescence(context.Background(), 20)
	if err == nil {
		t.Skip("oscillator reached a fixpoint on this schedule; budget path not exercised")
	}
	if !errors.Is(err, errdefs.ErrNoQuiescence) {
		t.Errorf("err = %v, want ErrNoQuiescence", err)
	}
	var nq *QuiescenceError
	if !errors.As(err, &nq) || nq.Rounds != 20 {
		t.Errorf("err = %v, want QuiescenceError{Rounds: 20}", err)
	}
}
