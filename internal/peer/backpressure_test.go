package peer

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/errdefs"
	"repro/internal/value"
)

// remoteBatch builds a batch of inserts for data@dst.
func remoteBatch(dst string, vals ...int64) *engine.Batch {
	b := engine.NewBatch()
	for _, v := range vals {
		b.Insert(ast.NewFact("data", dst, value.Int(v)))
	}
	return b
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestApplyFailFastBackpressure: a full outbox queue under AdmitFailFast
// rejects Apply with ErrBackpressure instead of growing.
func TestApplyFailFastBackpressure(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{Name: "alice", OutboxLimit: 2, Admission: AdmitFailFast})
	if err != nil {
		t.Fatal(err)
	}
	// sink is attached to the bus but never runs stages, so it never acks:
	// alice's entries stay pending forever.
	if _, err := n.NewPeer(Config{Name: "sink"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 2; i++ {
		if err := alice.Apply(ctx, remoteBatch("sink", i)); err != nil {
			t.Fatalf("apply %d within the limit: %v", i, err)
		}
	}
	err = alice.Apply(ctx, remoteBatch("sink", 99))
	if !errors.Is(err, errdefs.ErrBackpressure) {
		t.Fatalf("apply over the limit = %v, want ErrBackpressure", err)
	}
	if got := alice.Stats().BackpressureRejections; got != 1 {
		t.Errorf("BackpressureRejections = %d, want 1", got)
	}
	// Stage emissions stay exempt: Insert commits past the full queue.
	if err := alice.Insert(ast.NewFact("data", "sink", value.Int(7))); err != nil {
		t.Errorf("Insert blocked by admission control: %v", err)
	}
}

// TestApplyBlocksUntilSpace: under AdmitBlock a full queue parks the Apply
// caller, and it completes once the destination starts acking.
func TestApplyBlocksUntilSpace(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{
		Name: "alice", OutboxLimit: 2,
		OutboxAckTimeout: 20 * time.Millisecond, OutboxBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := n.NewPeer(Config{Name: "sink"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 2; i++ {
		if err := alice.Apply(ctx, remoteBatch("sink", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Alice's loop runs throughout (it must ingest the acks), but with the
	// sink asleep no acks arrive and the queue stays full.
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go alice.Run(runCtx)
	done := make(chan error, 1)
	go func() { done <- alice.Apply(ctx, remoteBatch("sink", 99)) }()
	select {
	case err := <-done:
		t.Fatalf("apply over the limit returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// Wake the sink: its stage loop drains and acks, freeing queue space.
	go sink.Run(runCtx)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked apply after space freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("apply still blocked after the destination started acking")
	}
	if alice.Stats().BackpressureWaits == 0 {
		t.Error("BackpressureWaits = 0, want > 0")
	}
}

// TestApplyBackpressureCtxExpiry: a blocking admission that cannot make
// progress surfaces the caller's context error wrapped in ErrBackpressure.
func TestApplyBackpressureCtxExpiry(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{Name: "alice", OutboxLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewPeer(Config{Name: "sink"}); err != nil {
		t.Fatal(err)
	}
	if err := alice.Apply(context.Background(), remoteBatch("sink", 1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = alice.Apply(ctx, remoteBatch("sink", 2))
	if !errors.Is(err, errdefs.ErrBackpressure) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrBackpressure wrapping DeadlineExceeded", err)
	}
}

// TestApplyPendingOpsBound: the staged-local-update queue is bounded the
// same way, and a stage drains it back under the limit.
func TestApplyPendingOpsBound(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{Name: "alice", MaxPendingOps: 2, Admission: AdmitFailFast})
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 2; i++ {
		if err := alice.Apply(ctx, remoteBatch("alice", i)); err != nil {
			t.Fatal(err)
		}
	}
	err = alice.Apply(ctx, remoteBatch("alice", 99))
	if !errors.Is(err, errdefs.ErrBackpressure) {
		t.Fatalf("apply over MaxPendingOps = %v, want ErrBackpressure", err)
	}
	// One stage drains the queue; admission reopens.
	alice.RunStage()
	if err := alice.Apply(ctx, remoteBatch("alice", 100)); err != nil {
		t.Fatalf("apply after drain: %v", err)
	}
	// An oversized batch admits when the queue is empty rather than
	// deadlocking against a bound it can never fit under.
	alice.RunStage()
	if err := alice.Apply(ctx, remoteBatch("alice", 1, 2, 3, 4, 5)); err != nil {
		t.Fatalf("oversized batch on empty queue: %v", err)
	}
}

// TestSlowPeerShedResetsStream: a destination with pending entries and no
// ack progress for the shed window has its stream reset with the backlog
// discarded — the queue depth collapses to the single snapshot entry.
func TestSlowPeerShedResetsStream(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{
		Name:             "alice",
		OutboxShedAfter:  80 * time.Millisecond,
		OutboxAckTimeout: 20 * time.Millisecond,
		OutboxBackoff:    2 * time.Millisecond,
		ResyncInterval:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewPeer(Config{Name: "bob"}); err != nil { // never acks
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 5; i++ {
		if err := alice.Apply(ctx, remoteBatch("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, 3*time.Second, func() bool {
		return alice.Stats().OutboxSheds >= 1
	}, "stream to the unackable peer never shed")
	eventually(t, time.Second, func() bool {
		total, _ := alice.OutboxPending()
		return total == 1
	}, "backlog not discarded: pending != 1 (the snapshot) after shed")
	if alice.Stats().OutboxResets == 0 {
		t.Error("OutboxResets = 0 after a shed")
	}
}

// TestShedRepairedByResync is the end-to-end acceptance: a derived view
// maintained at a stalled destination survives a shed — when the
// destination wakes up it adopts the fresh stream and the shed snapshot
// rebuilds the full view, despite the discarded backlog.
func TestShedRepairedByResync(t *testing.T) {
	n := NewNetwork()
	alice, err := n.NewPeer(Config{
		Name:             "alice",
		OutboxShedAfter:  80 * time.Millisecond,
		OutboxAckTimeout: 20 * time.Millisecond,
		OutboxBackoff:    2 * time.Millisecond,
		ResyncInterval:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := n.NewPeer(Config{Name: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.DeclareRelation("mirror", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}
	if err := alice.LoadSource(`
		relation extensional data@alice(x);
		relation extensional mirror@bob(x);
		mirror@bob($x) :- data@alice($x);
	`); err != nil {
		t.Fatal(err)
	}
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	go alice.Run(actx)

	const N = 20
	b := engine.NewBatch()
	for i := int64(0); i < N; i++ {
		b.Insert(ast.NewFact("data", "alice", value.Int(i)))
	}
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	// bob stays asleep until the shed has happened.
	eventually(t, 5*time.Second, func() bool {
		return alice.Stats().OutboxSheds >= 1
	}, "stream to the stalled peer never shed")

	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	go bob.Run(bctx)
	eventually(t, 5*time.Second, func() bool {
		return len(bob.Query("mirror")) == N
	}, "shed snapshot did not rebuild the maintained view at the recovered peer")
}
