package peer

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/transport"
	"repro/internal/value"
)

// newMuxFaultPair builds two peers on separate muxes whose carriers — the
// single shared frame link every stream between the muxes rides — are
// fault-wrapped in both directions. All of the existing fault machinery
// (at-least-once outbox, receiver dedup, anti-entropy) must hold when the
// faults hit multiplexed frames instead of per-pair links.
func newMuxFaultPair(t *testing.T, cfg transport.FaultConfig) (a, b *Peer) {
	t.Helper()
	bus := transport.NewBus()
	m1 := transport.NewMuxOver(transport.Faulty(bus.Endpoint("node1"), cfg))
	m2 := transport.NewMuxOver(transport.Faulty(bus.Endpoint("node2"), cfg))
	t.Cleanup(func() { m1.Close(); m2.Close() })
	m1.Route("b", "node2")
	m2.Route("a", "node1")

	mk := func(m *transport.Mux, name string) *Peer {
		p, err := New(Config{Name: name}, m.Endpoint(name))
		if err != nil {
			t.Fatal(err)
		}
		p.outbox.ackTimeout = 10 * time.Millisecond
		p.outbox.baseBackoff = 2 * time.Millisecond
		p.outbox.maxBackoff = 20 * time.Millisecond
		t.Cleanup(func() { p.Close() })
		return p
	}
	return mk(m1, "a"), mk(m2, "b")
}

// TestMuxConvergenceUnderFaults re-runs the two-peer maintained-view
// convergence schedules with both peers behind multiplexed transports and
// the faults injected into the shared carrier link: drops, duplicates,
// reorders and failures of MuxFrames must stay invisible to the fixpoint.
func TestMuxConvergenceUnderFaults(t *testing.T) {
	schedules := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"drop", transport.FaultConfig{Seed: 21, Drop: 0.3}},
		{"dup", transport.FaultConfig{Seed: 22, Dup: 0.3}},
		{"reorder", transport.FaultConfig{Seed: 23, Reorder: 0.3}},
		{"fail", transport.FaultConfig{Seed: 24, Fail: 0.3}},
		{"mixed", transport.FaultConfig{Seed: 25, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Fail: 0.1}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			a, b := newMuxFaultPair(t, sched.cfg)
			if err := a.LoadSource(`
				relation extensional src@a(x);
				view@b($x) :- src@a($x);
			`); err != nil {
				t.Fatal(err)
			}
			if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
				t.Fatal(err)
			}
			peers := []*Peer{a, b}

			rng := rand.New(rand.NewSource(sched.cfg.Seed))
			present := map[int64]bool{}
			for i := 0; i < 60; i++ {
				k := rng.Int63n(8)
				var err error
				if present[k] {
					err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
				} else {
					err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
				}
				if err != nil {
					t.Fatal(err)
				}
				present[k] = !present[k]
				drive(peers, func() bool { return false }, 2*time.Millisecond)
			}

			var want []value.Tuple
			for k, in := range present {
				if in {
					want = append(want, value.Tuple{value.Int(k)})
				}
			}
			value.SortTuples(want)
			expected := fmt.Sprint(want)
			if !drive(peers, func() bool { return tupleSet(b, "view") == expected }, 20*time.Second) {
				t.Fatalf("view@b never converged under %s faults over mux:\n got %s\nwant %s\n(outbox: %+v)",
					sched.name, tupleSet(b, "view"), expected, a.Stats())
			}
		})
	}
}

// TestMuxDisconnectRecovery hard-drops the carrier mid-stream (SetDown) and
// checks the maintained view repairs once the link returns.
func TestMuxDisconnectRecovery(t *testing.T) {
	bus := transport.NewBus()
	down := transport.Faulty(bus.Endpoint("node1"), transport.FaultConfig{Seed: 31})
	m1 := transport.NewMuxOver(down)
	m2 := transport.NewMuxOver(bus.Endpoint("node2"))
	t.Cleanup(func() { m1.Close(); m2.Close() })
	m1.Route("b", "node2")
	m2.Route("a", "node1")

	a, err := New(Config{Name: "a"}, m1.Endpoint("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Name: "b"}, m2.Endpoint("b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Peer{a, b} {
		p.outbox.ackTimeout = 10 * time.Millisecond
		p.outbox.baseBackoff = 2 * time.Millisecond
		p.outbox.maxBackoff = 20 * time.Millisecond
		t.Cleanup(func() { p.Close() })
	}
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		t.Fatal(err)
	}
	peers := []*Peer{a, b}

	down.SetDown(true)
	for i := int64(0); i < 5; i++ {
		if err := a.Insert(ast.NewFact("src", "a", value.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	drive(peers, func() bool { return false }, 50*time.Millisecond)
	if got := len(b.Query("view")); got != 0 {
		t.Fatalf("view@b has %d tuples while the carrier is down", got)
	}
	down.SetDown(false)
	if !drive(peers, func() bool { return len(b.Query("view")) == 5 }, 20*time.Second) {
		t.Fatalf("view@b never recovered after carrier reconnect: %v", b.Query("view"))
	}
}
