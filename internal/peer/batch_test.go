package peer

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/value"
)

// TestBatchSingleStage is the core atomicity guarantee of the v2 API: a
// batch of 1000 facts is ingested by exactly one fixpoint stage.
func TestBatchSingleStage(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	// Settle the initial compile stage so only the batch's stage remains.
	quiesce(t, n)
	base := alice.Stats().Stages

	b := engine.NewBatch()
	for i := 0; i < 1000; i++ {
		b.Insert(ast.NewFact("data", "alice", value.Int(int64(i))))
	}
	if b.Len() != 1000 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)

	if got := alice.Stats().Stages - base; got != 1 {
		t.Errorf("batch of 1000 ran %d stages, want exactly 1", got)
	}
	if got := len(alice.Query("data")); got != 1000 {
		t.Errorf("data has %d tuples, want 1000", got)
	}
	if got := alice.Stats().UpdatesApplied; got != 1000 {
		t.Errorf("UpdatesApplied = %d, want 1000", got)
	}
}

// TestBatchPreservesOrder: an insert followed by a delete of the same fact
// inside one batch nets out to the delete, and vice versa.
func TestBatchPreservesOrder(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	if err := alice.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	f := func(i int64) ast.Fact { return ast.NewFact("data", "alice", value.Int(i)) }
	b := engine.NewBatch().
		Insert(f(1)).
		Delete(f(1)). // net: absent
		Delete(f(2)).
		Insert(f(2)) // net: present
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	got := tuples(alice, "data")
	if len(got) != 1 || got[0] != "(2)" {
		t.Errorf("data = %v, want [(2)]", got)
	}
}

// TestBatchRemoteWireBatching: a batch touching two remote peers ships
// exactly one message per destination, and each destination ingests its
// share in one stage.
func TestBatchRemoteWireBatching(t *testing.T) {
	n, ps := newTestNetwork(t, "src", "b1", "b2")
	for _, name := range []string{"b1", "b2"} {
		if err := ps[name].DeclareRelation("inbox", ast.Extensional, "id"); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, n)
	sent := n.Bus().Stats().MessagesSent
	stages1, stages2 := ps["b1"].Stats().Stages, ps["b2"].Stats().Stages

	enqueued := ps["src"].Stats().OutboxEnqueued
	b := engine.NewBatch()
	for i := 0; i < 50; i++ {
		b.Insert(ast.NewFact("inbox", "b1", value.Int(int64(i))))
		b.Insert(ast.NewFact("inbox", "b2", value.Int(int64(i))))
	}
	if err := ps["src"].Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if got := ps["src"].Stats().OutboxEnqueued - enqueued; got != 2 {
		t.Errorf("batch enqueued %d messages, want 2 (one per destination)", got)
	}
	quiesce(t, n)
	// On the wire: one sequenced data message per destination plus their
	// acknowledgments — never one frame per fact.
	if got := n.Bus().Stats().MessagesSent - sent; got > 6 {
		t.Errorf("batch shipped %d bus messages, want at most 6 (2 data + acks)", got)
	}
	for _, name := range []string{"b1", "b2"} {
		if got := len(ps[name].Query("inbox")); got != 50 {
			t.Errorf("%s inbox = %d tuples, want 50", name, got)
		}
	}
	if got := ps["b1"].Stats().Stages - stages1; got != 1 {
		t.Errorf("b1 ran %d stages for its share, want 1", got)
	}
	if got := ps["b2"].Stats().Stages - stages2; got != 1 {
		t.Errorf("b2 ran %d stages for its share, want 1", got)
	}
}

// TestBatchDurability: the grouped WAL path recovers exactly like the
// per-fact path.
func TestBatchDurability(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Peer, *Network) {
		n := NewNetwork()
		w, err := store.OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Name: "alice", WAL: w}, n.Bus().Endpoint("alice"))
		if err != nil {
			t.Fatal(err)
		}
		n.Add(p)
		return p, n
	}
	p1, n1 := open()
	if err := p1.DeclareRelation("data", ast.Extensional, "id"); err != nil {
		t.Fatal(err)
	}
	b := engine.NewBatch()
	for i := 0; i < 100; i++ {
		b.Insert(ast.NewFact("data", "alice", value.Int(int64(i))))
	}
	b.Delete(ast.NewFact("data", "alice", value.Int(7)))
	if err := p1.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n1.RunToQuiescence(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, _ := open()
	defer p2.Close()
	if got := len(p2.Query("data")); got != 99 {
		t.Errorf("recovered %d tuples, want 99", got)
	}
}

// TestApplyEmptyAndNil: degenerate batches are no-ops.
func TestApplyEmptyAndNil(t *testing.T) {
	_, ps := newTestNetwork(t, "alice")
	if err := ps["alice"].Apply(context.Background(), nil); err != nil {
		t.Errorf("nil batch: %v", err)
	}
	if err := ps["alice"].Apply(context.Background(), engine.NewBatch()); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if ps["alice"].HasWork() != true {
		// First stage always pending on a fresh peer; just exercise the call.
		t.Log("no work after empty batch")
	}
}

// TestBatchMixedRelations exercises run grouping across interleaved
// relations.
func TestBatchMixedRelations(t *testing.T) {
	n, ps := newTestNetwork(t, "alice")
	alice := ps["alice"]
	for _, rel := range []string{"r1", "r2"} {
		if err := alice.DeclareRelation(rel, ast.Extensional, "id"); err != nil {
			t.Fatal(err)
		}
	}
	b := engine.NewBatch()
	for i := 0; i < 30; i++ {
		b.Insert(ast.NewFact(fmt.Sprintf("r%d", i%2+1), "alice", value.Int(int64(i))))
	}
	if err := alice.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	quiesce(t, n)
	if got := len(alice.Query("r1")) + len(alice.Query("r2")); got != 30 {
		t.Errorf("r1+r2 = %d tuples, want 30", got)
	}
}
